#!/usr/bin/env bash
# Determinism + perf gate for the open-arrivals service mode (src/serve/).
#
# Runs the ndf_serve --soak grid (multi-tenant poisson burst, two machines,
# every admission policy) through the engine at --jobs=1 and --jobs=N and:
#   1. FAILS if any output (stdout table, JSON, CSV) differs byte-for-byte
#      between the two, with and without --misses: cell-level parallelism
#      must be unobservable in results, measured per-job Q_i included.
#   2. FAILS if a rerun at the same seed is not byte-identical: a service
#      simulation is a pure function of (stream, seed).
#   3. Records best-of-3 wall-clock (raw per-run timings included) and peak
#      RSS for both jobs values into BENCH_serve.json — the service-mode
#      trajectory artifact nightly CI uploads.
#
# Like ci_perf_gate.sh: the minimum of 3 runs is the wall-clock estimator,
# RSS comes from getrusage(RUSAGE_CHILDREN), and a speedup below
# MIN_SPEEDUP only warns unless PERF_GATE_STRICT=1 (nightly sets it).
#
# Usage: scripts/ci_serve_gate.sh <build-dir> [jobs]
set -euo pipefail

BUILD_DIR=${1:?usage: ci_serve_gate.sh <build-dir> [jobs]}
JOBS=${2:-4}
MIN_SPEEDUP=${MIN_SPEEDUP:-1.5}
OUT="$BUILD_DIR/serve-gate"
mkdir -p "$OUT"

if [[ ! -x "$BUILD_DIR/ndf_serve" ]]; then
  echo "FAIL: $BUILD_DIR/ndf_serve not found or not executable —" \
       "build it first: cmake --build $BUILD_DIR --target ndf_serve" >&2
  exit 1
fi

run_soak() { # <jobs> <prefix> [extra serve args...]
  local jobs=$1 prefix=$2
  shift 2
  "$BUILD_DIR/ndf_serve" --soak "$@" --jobs="$jobs" \
      --json="$OUT/$prefix.json" --csv="$OUT/$prefix.csv" \
      > "$OUT/$prefix.txt"
}

check_identical() { # <prefix-a> <prefix-b> <label>
  local a=$1 b=$2 label=$3 ext
  for ext in txt json csv; do
    if ! cmp -s "$OUT/$a.$ext" "$OUT/$b.$ext"; then
      echo "FAIL: $label: .$ext output differs:" >&2
      diff "$OUT/$a.$ext" "$OUT/$b.$ext" | head -20 >&2
      exit 1
    fi
  done
  echo "OK: $label byte-identical"
}

# --- determinism gates ---------------------------------------------------
run_soak 1 soak-serial
run_soak "$JOBS" soak-parallel
check_identical soak-serial soak-parallel \
    "soak grid at --jobs=1 vs --jobs=$JOBS"

run_soak "$JOBS" soak-rerun
check_identical soak-parallel soak-rerun "soak grid rerun (same seed)"

run_soak 1 soak-misses-serial --misses
run_soak "$JOBS" soak-misses-parallel --misses
check_identical soak-misses-serial soak-misses-parallel \
    "soak grid with --misses at --jobs=1 vs --jobs=$JOBS"

# --- tracing is observational in service mode too ------------------------
# --trace-out must leave every output byte-identical (the sink only rides
# cell 0), and the trace itself must not depend on --jobs.
run_soak 1 soak-traced-serial --trace-out="$OUT/trace-serial.json"
run_soak "$JOBS" soak-traced-parallel --trace-out="$OUT/trace-parallel.json"
check_identical soak-serial soak-traced-serial \
    "soak grid, untraced vs --trace-out at --jobs=1"
check_identical soak-parallel soak-traced-parallel \
    "soak grid, untraced vs --trace-out at --jobs=$JOBS"
if ! cmp -s "$OUT/trace-serial.json" "$OUT/trace-parallel.json"; then
  echo "FAIL: serve trace differs between --jobs=1 and --jobs=$JOBS:" >&2
  diff "$OUT/trace-serial.json" "$OUT/trace-parallel.json" | head -10 >&2
  exit 1
fi
echo "OK: serve chrome trace byte-identical across --jobs"

# --- best-of-3 timing + RSS into the trajectory artifact -----------------
: > "$OUT/timings.txt"
for jobs in 1 "$JOBS"; do
  python3 - "$jobs" "$OUT/timings.txt" \
      "$BUILD_DIR/ndf_serve" --soak --jobs="$jobs" \
      --json="$OUT/timed.json" --csv="$OUT/timed.csv" <<'EOF'
import resource, subprocess, sys, time
jobs, log = sys.argv[1:3]
cmd = sys.argv[3:]
runs = []
for _ in range(3):
    with open("/dev/null", "w") as out:
        t0 = time.monotonic()
        subprocess.run(cmd, stdout=out, check=True)
        runs.append(time.monotonic() - t0)
rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(log, "a") as f:
    f.write(f"{jobs} {','.join(f'{t:.4f}' for t in runs)} {rss_kb}\n")
EOF
done

python3 - "$OUT/timings.txt" "$JOBS" "$MIN_SPEEDUP" \
    "$BUILD_DIR/BENCH_serve.json" <<'EOF'
import json, os, sys
log, jobs, min_speedup, path = sys.argv[1:5]
doc = {
    "bench": "serve_soak",
    "jobs": int(jobs),
    "min_speedup": float(min_speedup),
    "grid": "ndf_serve --soak (360 poisson jobs, 6 tenants, deadlines; "
            "2 machines x 2 sigma x 4 policies = 16 cells)",
    "timing": "best of 3 runs (raw per-run walls in *_wall_runs_s); "
              "peak RSS via getrusage(RUSAGE_CHILDREN)",
}
for line in open(log):
    j, walls, rss = line.split()
    key = "serial" if int(j) == 1 else "parallel"
    runs = [round(float(w), 4) for w in walls.split(",")]
    doc[f"{key}_wall_runs_s"] = runs
    doc[f"{key}_wall_s"] = min(runs)
    doc[f"{key}_peak_rss_kb"] = int(rss)
doc["speedup"] = round(doc["serial_wall_s"] / doc["parallel_wall_s"], 3) \
    if doc["parallel_wall_s"] > 0 else float("inf")
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"serve soak: serial {doc['serial_wall_s']:.3f}s, parallel({jobs}) "
      f"{doc['parallel_wall_s']:.3f}s, speedup {doc['speedup']:.2f}x "
      f"(target > {min_speedup}x), peak RSS {doc['parallel_peak_rss_kb']} KB")
if doc["speedup"] < float(min_speedup):
    msg = (f"serve soak speedup {doc['speedup']:.2f}x below target "
           f"{min_speedup}x")
    if os.environ.get("PERF_GATE_STRICT") == "1":
        sys.exit(f"FAIL: {msg}")
    print(f"WARN: {msg} (non-fatal; PERF_GATE_STRICT=1 to enforce)")
EOF
