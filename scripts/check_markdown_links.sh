#!/usr/bin/env bash
# Markdown link check + light lint for the repo's documentation, with no
# dependencies beyond bash/grep/sed — runnable locally and in the CI
# `docs` job.
#
# Checks, for every tracked *.md at the repo root and under docs/:
#   1. Every relative link target [text](path) exists on disk (http(s) and
#      mailto links are skipped — CI must not depend on the network).
#   2. Every intra-document anchor [text](#heading) matches a heading in
#      the same file (GitHub anchor rules: lowercase, punctuation
#      stripped, spaces to dashes).
#   3. Lint: no trailing whitespace (a diff-noise magnet in docs).
#
# Usage: scripts/check_markdown_links.sh [repo-root]
set -euo pipefail

ROOT=${1:-$(git -C "$(dirname "$0")/.." rev-parse --show-toplevel 2>/dev/null || echo "$(dirname "$0")/..")}
cd "$ROOT"

FILES=$(ls ./*.md 2>/dev/null; [ -d docs ] && ls docs/*.md 2>/dev/null || true)
[ -n "$FILES" ] || { echo "no markdown files found under $ROOT" >&2; exit 1; }

# GitHub-style anchor from a heading line: strip leading #s, lowercase,
# drop everything but alnum/space/dash, spaces to dashes.
anchor_of() {
  sed -E 's/^#+[[:space:]]*//' <<<"$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

fail=0
for f in $FILES; do
  # All (text)(target) pairs; targets only. Inline code spans are rare in
  # link position, so a plain grep over the rendered source is enough.
  targets=$(grep -oE '\]\(([^)]+)\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
  anchors=""
  while IFS= read -r line; do
    anchors+="$(anchor_of "$line")"$'\n'
  done < <(grep -E '^#{1,6}[[:space:]]' "$f" || true)

  while IFS= read -r t; do
    [ -z "$t" ] && continue
    case "$t" in
      http://*|https://*|mailto:*) continue ;;  # external: not checked
      '#'*)
        want=${t#\#}
        if ! grep -qxF "$want" <<<"$anchors"; then
          echo "$f: broken anchor link ($t)" >&2
          fail=1
        fi
        ;;
      *)
        path=${t%%#*}  # file.md#section -> file.md
        # GitHub resolves relative to the containing file — only that.
        rel=$(dirname "$f")/$path
        if [ ! -e "$rel" ]; then
          echo "$f: broken relative link ($t)" >&2
          fail=1
        fi
        ;;
    esac
  done <<<"$targets"

  if grep -nE '[[:space:]]+$' "$f" >/dev/null; then
    echo "$f: trailing whitespace on lines:" >&2
    grep -nE '[[:space:]]+$' "$f" | cut -d: -f1 | paste -sd, - >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "FAIL: markdown check found problems (see above)" >&2
  exit 1
fi
echo "OK: markdown links, anchors and whitespace clean ($(echo "$FILES" | wc -w | tr -d ' ') files)"
