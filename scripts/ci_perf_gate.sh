#!/usr/bin/env bash
# Perf-regression gate for the parallel sweep engine.
#
# Runs the gate grid and the ndf_sweep --stress grid through the engine at
# --jobs=1 (serial path) and --jobs=N (chunked thread-pool fan-out) and:
#   1. FAILS if any output (stdout table, JSON, CSV) differs byte-for-byte
#      between the two: parallel execution must be unobservable in results.
#      The identity check also covers the smoke grid with and without
#      --misses (measured LRU counters must be deterministic too), and the
#      default cache model: --misses with an explicit --cache=lru must be
#      byte-identical to no --cache flag at all (the registry must not
#      perturb the ideal-LRU default).
#   2. Records best-of-3 wall-clock for both runs, the speedup, and each
#      run's peak RSS into BENCH_sweep_parallel.json (uploaded as a CI
#      artifact, so the parallel-efficiency and memory trajectories are
#      tracked across commits).
#
# Measurement validity: both timed grids take >= 1 s serially (the old gate
# grid finished in ~20 ms, where thread startup dominates and a speedup
# number is noise), each timing is the best of 3 runs (the minimum is the
# right estimator for wall-clock on a shared runner — noise only adds), and
# peak RSS comes from resource.getrusage(RUSAGE_CHILDREN) around each child.
# Speedup below MIN_SPEEDUP is reported (and recorded) but only warns by
# default — shared CI runners are too noisy for a hard latency gate; set
# PERF_GATE_STRICT=1 to make it fail.
#
# Usage: scripts/ci_perf_gate.sh <build-dir> [jobs]
set -euo pipefail

BUILD_DIR=${1:?usage: ci_perf_gate.sh <build-dir> [jobs]}
JOBS=${2:-4}

# Fail with a diagnosis, not a bash "No such file or directory", when the
# gate is pointed at a directory that was never built (or a Debug tree
# missing the bench targets).
for bin in ndf_sweep bench_cache_miss; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "FAIL: $BUILD_DIR/$bin not found or not executable —" \
         "build it first: cmake --build $BUILD_DIR --target $bin" >&2
    exit 1
  fi
done
MIN_SPEEDUP=${MIN_SPEEDUP:-2.5}
# Trimmed repeat axis for the stress grid (CI uses the default; a local run
# can crank it: STRESS_REPEAT=7 is the binary's own default grid).
STRESS_REPEAT=${STRESS_REPEAT:-4}
OUT="$BUILD_DIR/perf-gate"
mkdir -p "$OUT"

GATE_ARGS=(--name=perf-gate
           --workloads='mm:n=128;lcs:n=1024;cholesky:n=128;gen:family=sp,depth=8,fan=4,seed=7;gen:family=wavefront,n=32'
           --machines='flat16;deep4x4'
           --sched=sb,ws,greedy,serial --sigma=0.33 --repeat=8)
STRESS_ARGS=(--stress "--repeat=$STRESS_REPEAT")

run_grid() { # <jobs> <prefix> [extra sweep args...]
  local jobs=$1 prefix=$2
  shift 2
  "$BUILD_DIR/ndf_sweep" "$@" --jobs="$jobs" \
      --json="$OUT/$prefix.json" --csv="$OUT/$prefix.csv" \
      > "$OUT/$prefix.txt"
}

# Best-of-3 wall-clock + peak-RSS of one grid at one jobs value; appends a
# "<label> <jobs> <t1,t2,t3> <peak_rss_kb>" line to $OUT/timings.txt — the
# raw per-run timings, not just the minimum, so the uploaded artifact shows
# how noisy the runner was when a regression is being judged.
# getrusage(RUSAGE_CHILDREN) is cumulative, so ru_maxrss after the runs is
# the max over them — exactly the peak we want to record.
time_grid() { # <jobs> <prefix> <label> [sweep args...]
  local jobs=$1 prefix=$2 label=$3
  shift 3
  python3 - "$label" "$jobs" "$OUT/timings.txt" \
      "$BUILD_DIR/ndf_sweep" "$@" --jobs="$jobs" \
      --json="$OUT/$prefix.json" --csv="$OUT/$prefix.csv" <<'EOF'
import resource, subprocess, sys, time
label, jobs, log = sys.argv[1:4]
cmd = sys.argv[4:]
prefix = next(a.split("=", 1)[1] for a in cmd if a.startswith("--json="))
runs = []
for _ in range(3):
    with open(prefix.rsplit(".", 1)[0] + ".txt", "w") as out:
        t0 = time.monotonic()
        subprocess.run(cmd, stdout=out, check=True)
        runs.append(time.monotonic() - t0)
rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(log, "a") as f:
    f.write(f"{label} {jobs} {','.join(f'{t:.4f}' for t in runs)} {rss_kb}\n")
EOF
}

check_identical() { # <prefix-a> <prefix-b> <label>
  local a=$1 b=$2 label=$3 ext
  for ext in txt json csv; do
    if ! cmp -s "$OUT/$a.$ext" "$OUT/$b.$ext"; then
      echo "FAIL: $label: .$ext output differs:" >&2
      diff "$OUT/$a.$ext" "$OUT/$b.$ext" | head -20 >&2
      exit 1
    fi
  done
  echo "OK: $label output byte-identical"
}

# --- determinism gate on the smoke grid (the one CI runs everywhere) ----
run_grid 1 smoke-serial --smoke
run_grid "$JOBS" smoke-parallel --smoke
check_identical smoke-serial smoke-parallel \
    "smoke grid, --jobs=1 vs --jobs=$JOBS"

# --- measured-miss counters: deterministic across --jobs too ------------
run_grid 1 misses-serial --smoke --misses
run_grid "$JOBS" misses-parallel --smoke --misses
check_identical misses-serial misses-parallel \
    "smoke grid with --misses, --jobs=1 vs --jobs=$JOBS"

# --- default cache model: the registry must not perturb the default -----
# An explicit --cache=lru parses to the default model, so its output must
# be byte-identical to the same run with no --cache flag at all: no cache
# column appears and every measured counter matches. This is the gate on
# the cache-model registry's "default stays ideal LRU" contract
# (docs/cache-models.md).
run_grid 1 misses-lru --smoke --misses --cache=lru
check_identical misses-serial misses-lru \
    "smoke grid with --misses, default vs explicit --cache=lru"

# --- tracing is observational: --trace-out must not perturb results ------
# The obs subsystem's core contract (docs/observability.md): attaching a
# trace sink changes no simulation result, so every output of a traced run
# is byte-identical to the untraced run — at --jobs=1 and --jobs=N. The
# traced cell (cell 0) always runs with the sink regardless of jobs, so the
# trace file itself must be byte-identical across jobs values too.
run_grid 1 smoke-traced-serial --smoke \
    --trace-out="$OUT/trace-serial.json"
run_grid "$JOBS" smoke-traced-parallel --smoke \
    --trace-out="$OUT/trace-parallel.json"
check_identical smoke-serial smoke-traced-serial \
    "smoke grid, untraced vs --trace-out at --jobs=1"
check_identical smoke-parallel smoke-traced-parallel \
    "smoke grid, untraced vs --trace-out at --jobs=$JOBS"
if ! cmp -s "$OUT/trace-serial.json" "$OUT/trace-parallel.json"; then
  echo "FAIL: chrome trace differs between --jobs=1 and --jobs=$JOBS:" >&2
  diff "$OUT/trace-serial.json" "$OUT/trace-parallel.json" | head -10 >&2
  exit 1
fi
echo "OK: chrome trace byte-identical across --jobs"

# Schema sanity on the exported trace: non-empty traceEvents, the metadata
# (M), complete-slice (X) and counter (C) phases all present, and the slice
# events covering both unit executions and queue waits. jq when available
# (CI runners), python3 otherwise.
check_trace_schema() { # <trace.json> <label>
  local trace=$1 label=$2
  if command -v jq > /dev/null 2>&1; then
    jq -e '(.traceEvents | length > 0)
           and ([.traceEvents[].ph] | unique | contains(["C", "M", "X"]))
           and ([.traceEvents[] | select(.ph == "X") | .cat] | unique
                | contains(["queue", "unit"]))' \
        "$trace" > /dev/null || {
      echo "FAIL: $label: trace schema check failed for $trace" >&2
      exit 1
    }
  else
    python3 - "$trace" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
ev = doc["traceEvents"]
assert ev, "empty traceEvents"
phases = {e["ph"] for e in ev}
assert {"C", "M", "X"} <= phases, f"missing phases in {phases}"
cats = {e.get("cat") for e in ev if e["ph"] == "X"}
assert {"queue", "unit"} <= cats, f"missing X categories in {cats}"
EOF
  fi
  echo "OK: $label trace schema sane (traceEvents nonempty, M/X/C phases, unit+queue slices)"
}
check_trace_schema "$OUT/trace-serial.json" "smoke grid"

# --- Theorem 1 gate + cache-miss trajectory artifact --------------------
# bench_cache_miss exits non-zero if any space-bounded run's measured Q_i
# exceeds Q*(sigma*Mi); its JSON is uploaded next to the sweep timings.
# On failure, print the violating rows — the artifact upload is skipped
# for failed jobs, so the log must carry the diagnosis.
if ! "$BUILD_DIR/bench_cache_miss" \
    --json="$BUILD_DIR/BENCH_cache_miss.json" > "$OUT/cache-miss.txt"; then
  echo "FAIL: Theorem 1 violated — rows outside Q*:" >&2
  grep -E ' NO$|VIOLATIONS' "$OUT/cache-miss.txt" >&2 || \
      cat "$OUT/cache-miss.txt" >&2
  exit 1
fi
tail -2 "$OUT/cache-miss.txt"
echo "OK: Theorem 1 held for all space-bounded runs (BENCH_cache_miss.json)"

# --- determinism + best-of-3 timing + RSS on the timed grids ------------
: > "$OUT/timings.txt"
time_grid 1 gate-serial gate "${GATE_ARGS[@]}"
time_grid "$JOBS" gate-parallel gate "${GATE_ARGS[@]}"
check_identical gate-serial gate-parallel \
    "perf grid, --jobs=1 vs --jobs=$JOBS"

time_grid 1 stress-serial stress "${STRESS_ARGS[@]}"
time_grid "$JOBS" stress-parallel stress "${STRESS_ARGS[@]}"
check_identical stress-serial stress-parallel \
    "stress grid, --jobs=1 vs --jobs=$JOBS"

python3 - "$OUT/timings.txt" "$JOBS" "$MIN_SPEEDUP" "$STRESS_REPEAT" \
    "$BUILD_DIR/BENCH_sweep_parallel.json" <<'EOF'
import json, os, sys
log, jobs, min_speedup, stress_repeat, path = sys.argv[1:6]
grids = {}
for line in open(log):
    label, j, walls, rss = line.split()
    key = "serial" if int(j) == 1 else "parallel"
    g = grids.setdefault(label, {})
    runs = [round(float(w), 4) for w in walls.split(",")]
    # Raw per-run wall clocks next to the best-of: the artifact must show
    # the runner's noise, not hide it behind the minimum.
    g[f"{key}_wall_runs_s"] = runs
    g[f"{key}_wall_s"] = min(runs)
    g[f"{key}_peak_rss_kb"] = int(rss)
for g in grids.values():
    g["speedup"] = round(g["serial_wall_s"] / g["parallel_wall_s"], 3) \
        if g["parallel_wall_s"] > 0 else float("inf")
doc = {
    "bench": "sweep_parallel",
    "jobs": int(jobs),
    "min_speedup": float(min_speedup),
    "timing": "best of 3 runs per grid (raw per-run walls in "
              "*_wall_runs_s); peak RSS via getrusage(RUSAGE_CHILDREN)",
    "gate": {
        "grid": "perf-gate (mm:n=128;lcs:n=1024;cholesky:n=128 + 2 "
                "generated workloads x 2 machines x 4 policies x "
                "8 repeats = 320 runs)",
        **grids["gate"],
    },
    "stress": {
        "grid": f"ndf_sweep --stress --repeat={stress_repeat} (6 deep/wide "
                "generated workloads x 2 sigma x 3 machines x 4 policies)",
        **grids["stress"],
    },
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
failures = []
for label, g in grids.items():
    print(f"{label}: serial {g['serial_wall_s']:.3f}s, parallel({jobs}) "
          f"{g['parallel_wall_s']:.3f}s, speedup {g['speedup']:.2f}x "
          f"(target > {min_speedup}x), peak RSS "
          f"{g['parallel_peak_rss_kb']} KB")
    if g["speedup"] < float(min_speedup):
        failures.append(f"{label} speedup {g['speedup']:.2f}x below "
                        f"target {min_speedup}x")
if failures:
    msg = "; ".join(failures)
    if os.environ.get("PERF_GATE_STRICT") == "1":
        sys.exit(f"FAIL: {msg}")
    print(f"WARN: {msg} (non-fatal; PERF_GATE_STRICT=1 to enforce)")
EOF
