#!/usr/bin/env bash
# Perf-regression gate for the parallel sweep engine.
#
# Runs the same grid through ndf_sweep twice — --jobs=1 (legacy serial
# path) and --jobs=N (thread-pool fan-out) — and:
#   1. FAILS if any output (stdout table, JSON, CSV) differs byte-for-byte
#      between the two: parallel execution must be unobservable in results.
#   2. Records wall-clock for both runs and the speedup into
#      BENCH_sweep_parallel.json (uploaded as a CI artifact, so the
#      parallel-efficiency trajectory is tracked across commits).
#
# The timing grid is deliberately bigger than --smoke: the smoke grid
# finishes in ~20 ms, where thread startup dominates and a speedup number
# is noise. The byte-identity check runs on BOTH grids. Speedup below
# MIN_SPEEDUP is reported (and recorded) but only warns by default —
# shared CI runners are too noisy for a hard latency gate; set
# PERF_GATE_STRICT=1 to make it fail.
#
# Usage: scripts/ci_perf_gate.sh <build-dir> [jobs]
set -euo pipefail

BUILD_DIR=${1:?usage: ci_perf_gate.sh <build-dir> [jobs]}
JOBS=${2:-4}
MIN_SPEEDUP=${MIN_SPEEDUP:-1.5}
OUT="$BUILD_DIR/perf-gate"
mkdir -p "$OUT"

GATE_ARGS=(--name=perf-gate
           --workloads='mm:n=128;lcs:n=1024;cholesky:n=128;gen:family=sp,depth=8,fan=4,seed=7;gen:family=wavefront,n=32'
           --machines='flat16;deep4x4'
           --sched=sb,ws,greedy,serial --sigma=0.33 --repeat=4)

now() { python3 -c 'import time; print(time.monotonic())'; }

run_grid() { # <jobs> <prefix> [extra sweep args...]
  local jobs=$1 prefix=$2
  shift 2
  "$BUILD_DIR/ndf_sweep" "$@" --jobs="$jobs" \
      --json="$OUT/$prefix.json" --csv="$OUT/$prefix.csv" \
      > "$OUT/$prefix.txt"
}

check_identical() { # <prefix-a> <prefix-b> <label>
  local a=$1 b=$2 label=$3 ext
  for ext in txt json csv; do
    if ! cmp -s "$OUT/$a.$ext" "$OUT/$b.$ext"; then
      echo "FAIL: $label: --jobs=1 and --jobs=$JOBS .$ext output differ:" >&2
      diff "$OUT/$a.$ext" "$OUT/$b.$ext" | head -20 >&2
      exit 1
    fi
  done
  echo "OK: $label output byte-identical at --jobs=1 and --jobs=$JOBS"
}

# --- determinism gate on the smoke grid (the one CI runs everywhere) ----
run_grid 1 smoke-serial --smoke
run_grid "$JOBS" smoke-parallel --smoke
check_identical smoke-serial smoke-parallel "smoke grid"

# --- measured-miss counters: deterministic across --jobs too ------------
run_grid 1 misses-serial --smoke --misses
run_grid "$JOBS" misses-parallel --smoke --misses
check_identical misses-serial misses-parallel "smoke grid with --misses"

# --- Theorem 1 gate + cache-miss trajectory artifact --------------------
# bench_cache_miss exits non-zero if any space-bounded run's measured Q_i
# exceeds Q*(sigma*Mi); its JSON is uploaded next to the sweep timings.
# On failure, print the violating rows — the artifact upload is skipped
# for failed jobs, so the log must carry the diagnosis.
if ! "$BUILD_DIR/bench_cache_miss" \
    --json="$BUILD_DIR/BENCH_cache_miss.json" > "$OUT/cache-miss.txt"; then
  echo "FAIL: Theorem 1 violated — rows outside Q*:" >&2
  grep -E ' NO$|VIOLATIONS' "$OUT/cache-miss.txt" >&2 || \
      cat "$OUT/cache-miss.txt" >&2
  exit 1
fi
tail -2 "$OUT/cache-miss.txt"
echo "OK: Theorem 1 held for all space-bounded runs (BENCH_cache_miss.json)"

# --- determinism + timing on the perf grid ------------------------------
T0=$(now); run_grid 1 gate-serial "${GATE_ARGS[@]}"; T1=$(now)
T2=$(now); run_grid "$JOBS" gate-parallel "${GATE_ARGS[@]}"; T3=$(now)
check_identical gate-serial gate-parallel "perf grid"

python3 - "$T0" "$T1" "$T2" "$T3" "$JOBS" "$MIN_SPEEDUP" \
    "$BUILD_DIR/BENCH_sweep_parallel.json" <<'EOF'
import json, os, sys
t0, t1, t2, t3, jobs, min_speedup, path = sys.argv[1:8]
serial_s = float(t1) - float(t0)
parallel_s = float(t3) - float(t2)
speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
doc = {
    "bench": "sweep_parallel",
    "grid": "perf-gate (mm:n=128;lcs:n=1024;cholesky:n=128 + 2 generated "
            "workloads x 2 machines x 4 policies x 4 repeats = 160 runs)",
    "jobs": int(jobs),
    "serial_wall_s": round(serial_s, 4),
    "parallel_wall_s": round(parallel_s, 4),
    "speedup": round(speedup, 3),
    "min_speedup": float(min_speedup),
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"serial {serial_s:.3f}s, parallel({jobs}) {parallel_s:.3f}s, "
      f"speedup {speedup:.2f}x (target > {min_speedup}x)")
if speedup < float(min_speedup):
    msg = f"speedup {speedup:.2f}x below target {min_speedup}x"
    if os.environ.get("PERF_GATE_STRICT") == "1":
        sys.exit(f"FAIL: {msg}")
    print(f"WARN: {msg} (non-fatal; PERF_GATE_STRICT=1 to enforce)")
EOF
