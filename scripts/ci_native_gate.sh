#!/usr/bin/env bash
# Native-executor gate: measures real-thread wall-clock scaling and sanity-
# checks the work-stealing accounting.
#
#   1. Runs `ndf_native --smoke` — hard correctness assertions (every
#      strand exactly once, worker accounting partitions the totals) at
#      several thread counts in both ws and sb modes.
#   2. Runs the measurement grid (two compute-heavy workloads, ws+sb,
#      best-of-3 at 1 and NATIVE_THREADS threads) and emits
#      BENCH_native.json — uploaded as a CI artifact so the native scaling
#      trajectory (and how it tracks the simulator's predicted speedup) is
#      recorded across commits.
#   3. Sanity bounds on the accounting, which FAIL hard: a 1-thread run
#      must report zero steals, successful steals can never exceed strands
#      executed or attempts made, and sb runs on a hierarchical machine
#      must have recorded anchors.
#   4. Speedup at NATIVE_THREADS below MIN_NATIVE_SPEEDUP warns by default
#      (shared CI runners oversubscribe cores; a laptop container may have
#      one) and fails under PERF_GATE_STRICT=1 — same contract as
#      scripts/ci_perf_gate.sh.
#
# Usage: scripts/ci_native_gate.sh <build-dir> [threads]
set -euo pipefail

BUILD_DIR=${1:?usage: ci_native_gate.sh <build-dir> [threads]}
NATIVE_THREADS=${2:-4}
MIN_NATIVE_SPEEDUP=${MIN_NATIVE_SPEEDUP:-1.5}

if [[ ! -x "$BUILD_DIR/ndf_native" ]]; then
  echo "FAIL: $BUILD_DIR/ndf_native not found or not executable —" \
       "build it first: cmake --build $BUILD_DIR --target ndf_native" >&2
  exit 1
fi
OUT="$BUILD_DIR/native-gate"
mkdir -p "$OUT"

# --- correctness smoke ---------------------------------------------------
"$BUILD_DIR/ndf_native" --smoke > "$OUT/smoke.txt"
tail -1 "$OUT/smoke.txt"

# --- measured scaling + artifact ----------------------------------------
# Compute-heavy spin workloads so thread startup is noise: the sp tree and
# the blocked multiply both take >= ~0.5 s serially at --spin=2000.
"$BUILD_DIR/ndf_native" \
    --workloads='mm:n=48;gen:family=sp,depth=9,fan=4,work=32,seed=11' \
    --threads="1,$NATIVE_THREADS" --sched=ws,sb --machine=deep2x4 \
    --reps=3 --spin=2000 \
    --json="$BUILD_DIR/BENCH_native.json" > "$OUT/scaling.txt"
cat "$OUT/scaling.txt"

# --- sanity bounds + speedup gate ---------------------------------------
python3 - "$BUILD_DIR/BENCH_native.json" "$NATIVE_THREADS" \
    "$MIN_NATIVE_SPEEDUP" <<'EOF'
import json, os, sys
path, threads, min_speedup = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
doc = json.load(open(path))
scaling = next(t for t in doc["tables"] if t["title"].startswith("native scaling"))
cols = {name: i for i, name in enumerate(scaling["header"])}
rows = [dict(zip(scaling["header"], r)) for r in scaling["rows"]]

failures = []
for r in rows:
    tag = f'{r["workload"]} {r["mode"]} @{r["threads"]}t'
    if r["threads"] == 1 and r["steals"] != 0:
        failures.append(f"{tag}: {r['steals']} steals on one worker")
    if r["steals"] > r["strands"]:
        failures.append(f"{tag}: steals {r['steals']} > strands {r['strands']}")
    if r["steals"] > r["attempts"]:
        failures.append(f"{tag}: steals {r['steals']} > attempts {r['attempts']}")
    if r["mode"] == "sb" and r["threads"] > 1 and r["anchors"] == 0:
        failures.append(f"{tag}: sb run recorded no anchors")
    if not (0.0 <= r["busy_frac"] <= 1.0 + 1e-9):
        failures.append(f"{tag}: busy fraction {r['busy_frac']} outside [0,1]")
if failures:
    sys.exit("FAIL: native accounting sanity violated:\n  " +
             "\n  ".join(failures))
print(f"OK: accounting sane across {len(rows)} native runs "
      "(zero steals serial, steals <= strands <= attempts bounds, "
      "sb anchors recorded, busy fractions in [0,1])")

slow = []
for r in rows:
    if r["threads"] != threads:
        continue
    tag = f'{r["workload"]} {r["mode"]}'
    print(f"{tag}: {r['best_s']:.3f}s at {threads} threads, speedup "
          f"{r['speedup']:.2f}x (sim predicts {r['sim_speedup']:.2f}x, "
          f"target > {min_speedup}x), {r['steals']} steals")
    if r["speedup"] < min_speedup:
        slow.append(f"{tag} speedup {r['speedup']:.2f}x below "
                    f"target {min_speedup}x")
if slow:
    msg = "; ".join(slow)
    if os.environ.get("PERF_GATE_STRICT") == "1":
        sys.exit(f"FAIL: {msg}")
    print(f"WARN: {msg} (non-fatal; PERF_GATE_STRICT=1 to enforce)")
EOF

echo "OK: native gate done (BENCH_native.json)"
