// ndf_sweep — the declarative experiment-sweep driver. One binary expands a
// workload × machine × policy × σ × α' × repeat grid, reuses each
// workload's condensation across everything that shares it, and emits one
// consolidated table / JSON / CSV (src/exp/). The per-claim bench binaries
// (bench_sb_vs_ws, bench_ablation, bench_sb_scaling) are thin wrappers over
// the same subsystem; this driver is the general tool.
//
//   ndf_sweep --workloads='mm:n=64;trs:n=48,np'
//             --machines='flat16;twotier:s=4,c=4'
//             --sched=sb,ws,greedy,serial --sigma=0.2,0.33
//             --repeat=3 --json=SWEEP.json --csv=SWEEP.csv
//   (one line; wrapped here for readability)
//
// Flags:
//   --workloads=<spec;spec;...>  see src/exp/workload.hpp (named algos and
//                                generated "gen:family=..." specs alike)
//   --machines=<spec;spec;...>   see src/pmh/presets.hpp
//   --sched=<name,name,...>      registry policies (default all four)
//   --sigma=<x,x,...>            dilation values in (0,1), default 1/3
//   --alpha=<x,x,...>            SB allocation exponents, default 1.0
//   --repeat=<k> --seed=<s>      seed axis: seeds s..s+k-1 (ws variance)
//   --jobs=<n>                   grid workers: 0 = hardware concurrency
//                                (default), 1 = legacy serial path; output
//                                is byte-identical at every n
//   --misses                     simulate cache occupancy per run and
//                                grow comm_cost + Q_L<i> measured-miss
//                                columns in every emitter (off: legacy
//                                output, byte-identical)
//   --cache=<spec;spec;...>      cache-model axis for the measured
//                                occupancy (pmh/cache_model.hpp): bare
//                                replacement names ("lru;clock") or full
//                                "cache:repl=clock,assoc=8,line=64,wb=1,
//                                bw=0.5,excl=1" specs; default the single
//                                ideal LRU model. Only meaningful with
//                                --misses; non-default models add a cache
//                                column to every emitter
//   --json=<path> --csv=<path>   consolidated emitters
//   --dump-dot=<path>            DOT of the first workload's strand DAG
//                                (nd/dot), then run the sweep as usual
//   --name=<id>                  sweep id in the outputs
//   --smoke                      small fixed grid for CI (fast)
//   --stress                     large fixed grid (~1000 cells of deep/wide
//                                generated workloads) for perf measurement;
//                                axes overridable as usual (CI trims with
//                                --repeat=2)
//   --phase-times                print per-phase wall-clock (workload build
//                                / condensation / cell execution / emit) and
//                                per-worker busy/task accounting to stderr,
//                                so a perf regression is attributable
//                                without a profiler
//   --trace-out=<path>           record grid cell 0's full event stream
//                                (unit slices, queue waits, cache events)
//                                and write it as Chrome trace-event JSON —
//                                loadable in Perfetto — or raw CSV when the
//                                path ends in .csv (docs/observability.md).
//                                Observational: stdout/JSON/CSV stay
//                                byte-identical with or without it
//   --progress                   stderr heartbeat (phase, cells done/total,
//                                ETA) while the sweep runs
//   --list                       print workloads/machines/policies/gen
//                                families and exit
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "obs/export.hpp"
#include "gen/gen.hpp"
#include "pmh/cache_model.hpp"
#include "pmh/presets.hpp"
#include "sched/registry.hpp"

using namespace ndf;

namespace {

void list_everything() {
  std::cout << "workloads (--workloads=<name>[:n=,base=,np][;...]):\n";
  for (const auto& w : exp::registered_workloads())
    std::cout << "  " << w.name << " — " << w.description
              << " (default n=" << w.default_n << ")\n";
  std::cout << "\ngenerated workloads "
               "(--workloads=gen:family=<f>[,key=value...][,np][;...]):\n";
  for (const auto& f : gen::registered_families())
    std::cout << "  " << f.name << " — " << f.description << " (" << f.keys
              << ")\n";
  std::cout << "\nmachine presets (--machines=<preset or "
               "flat:p=,m1=,c1= / twotier:s=,c=,m1=,m2=,c1=,c2=>[;...]):\n";
  for (const auto& m : pmh_presets())
    std::cout << "  " << m.name << " — " << m.description << "\n";
  std::cout << "\npolicies (--sched=<name,...>):\n";
  for (const auto& p : registered_schedulers())
    std::cout << "  " << p.name << " — " << p.description << "\n";
  std::cout << "\ncache models (--cache=<name or "
               "cache:repl=,assoc=,line=,excl=,wb=,bw=>[;...], with "
               "--misses):\n";
  for (const auto& c : registered_cache_repls())
    std::cout << "  " << c.name << " — " << c.description << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(
      args,
      {"workloads", "machines", "sched", "sigma", "alpha", "repeat", "seed",
       "jobs", "json", "csv", "name", "smoke", "stress", "list", "dump-dot",
       "misses", "cache", "phase-times", "trace-out", "progress"},
      "see the header of ndf_sweep.cpp or --list");
  if (args.get("list", false)) {
    list_everything();
    return 0;
  }

  exp::Scenario s;
  const bool smoke = args.get("smoke", false);
  const bool stress = args.get("stress", false);
  NDF_CHECK_MSG(!(smoke && stress), "--smoke and --stress are exclusive");
  if (smoke) {
    // Small fixed grid CI can afford on every push: three transcribed
    // workloads (two ND, one NP variant) plus two generated ones (a random
    // series-parallel tree and a wavefront), two machine shapes, all four
    // policies, two σ, a repeat axis for ws variance — 160 runs.
    s.name = "smoke";
    s.workloads = exp::parse_workload_list(
        "mm:n=32;lcs:n=128;trs:n=32,np;"
        "gen:family=sp,depth=6,fan=3,seed=7;gen:family=wavefront,n=12");
    s.machines = {"flat:p=8,m1=192,c1=10", "deep2x4"};
    s.policies = {"sb", "ws", "greedy", "serial"};
    s.sigmas = {1.0 / 3.0, 0.5};
    s.repeats = 2;
  }
  if (stress) {
    // Deliberately big: deep/wide generated DAGs the smoke grid never
    // touches, across three machine shapes — 6 workloads × 2 σ × 3
    // machines × 4 policies × 7 repeats = 1008 cells, a few seconds of
    // serial wall-clock. This is the grid the perf gate and scaling
    // measurements use when thread startup must be noise, not signal.
    s.name = "stress";
    s.workloads = exp::parse_workload_list(
        "gen:family=sp,depth=9,fan=4,work=32,cross=60,seed=11;"
        "gen:family=sp,depth=11,fan=3,work=32,cross=60,seed=13;"
        "gen:family=wavefront,n=96;"
        "gen:family=forkjoin,depth=64,fan=48;"
        "gen:family=diamond,depth=128,fan=24;"
        "gen:family=chain,n=4096");
    s.machines = {"flat16", "deep4x4", "deep2x4"};
    s.policies = {"sb", "ws", "greedy", "serial"};
    s.sigmas = {1.0 / 3.0, 0.5};
    s.repeats = 7;
  }
  s.name = args.get("name", s.name);
  if (args.has("workloads"))
    s.workloads =
        exp::parse_workload_list(args.get("workloads", std::string()));
  if (args.has("machines"))
    s.machines = bench::split_specs(args.get("machines", std::string()));
  if (args.has("sched") || (!smoke && !stress))
    s.policies =
        parse_sched_list(args.get("sched", std::string("sb,ws,greedy,serial")));
  if (args.has("sigma"))
    s.sigmas =
        bench::parse_double_list(args.get("sigma", std::string()), "sigma");
  if (args.has("alpha"))
    s.alpha_primes =
        bench::parse_double_list(args.get("alpha", std::string()), "alpha");
  const long long repeat = args.get("repeat", (long long)s.repeats);
  NDF_CHECK_MSG(repeat >= 1, "--repeat must be >= 1, got " << repeat);
  s.repeats = std::size_t(repeat);
  s.base_seed = std::uint64_t(args.get("seed", 42LL));
  s.measure_misses = bench::misses_flag(args);
  if (args.has("cache"))
    s.cache_models = parse_cache_model_list(args.get("cache", std::string()));
  const std::size_t jobs = bench::jobs_flag(args);

  NDF_CHECK_MSG(!s.workloads.empty(),
                "no workloads — pass --workloads=... or --smoke "
                "(--list shows what exists)");
  NDF_CHECK_MSG(!s.machines.empty(),
                "no machines — pass --machines=... or --smoke "
                "(--list shows what exists)");

  bench::dump_dot_flag(args, s.workloads.front());

  // Outlives the sweep: the scenario only borrows the sink.
  obs::EventRecorder rec;
  const std::string trace_out = args.get("trace-out", std::string());
  if (!trace_out.empty()) s.trace_sink = &rec;
  s.progress = args.get("progress", false);

  exp::Sweep sweep(std::move(s), jobs);
  const auto& runs = sweep.run();
  const auto emit_start = std::chrono::steady_clock::now();

  std::ostringstream title;
  title << "sweep '" << sweep.scenario().name << "': " << runs.size()
        << " runs, " << sweep.condensations_built() << " condensations built";
  exp::results_table(title.str(), runs).print(std::cout);

  const std::string json = args.get("json", std::string());
  if (!json.empty()) {
    std::ofstream os(json);
    NDF_CHECK_MSG(bool(os), "cannot write --json=" << json);
    exp::write_sweep_json(os, sweep.scenario().name, runs);
  }
  const std::string csv = args.get("csv", std::string());
  if (!csv.empty()) {
    std::ofstream os(csv);
    NDF_CHECK_MSG(bool(os), "cannot write --csv=" << csv);
    exp::write_sweep_csv(os, runs);
  }

  if (!trace_out.empty()) {
    obs::write_trace_file(trace_out, rec, sweep.scenario().name);
    // stderr, like --phase-times: stdout must stay byte-identical with
    // and without the flag (the perf gate diffs it).
    std::fprintf(stderr, "trace: wrote %zu events to %s\n",
                 rec.events().size(), trace_out.c_str());
  }

  if (args.get("phase-times", false)) {
    const double emit_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      emit_start)
            .count();
    const exp::PhaseTimes& pt = sweep.phase_times();
    // stderr, so piping/redirecting stdout (the result table) stays
    // byte-identical with and without the flag.
    std::fprintf(stderr,
                 "phase-times: workload-build %.3fs, condensation %.3fs, "
                 "cell-execution %.3fs, emit %.3fs\n",
                 pt.workload_build, pt.condensation, pt.cell_execution,
                 emit_s);
    // Pool self-profiling (empty on the serial path): busy seconds and
    // task count per worker expose imbalance the phase totals hide.
    const auto& ws = sweep.worker_stats();
    for (std::size_t w = 0; w < ws.size(); ++w)
      std::fprintf(stderr, "phase-times: worker %zu busy %.3fs (%zu tasks)\n",
                   w, ws[w].busy_s, ws[w].tasks);
  }
  return 0;
}
