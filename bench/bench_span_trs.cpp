// E2 — TRS span: NP Θ(n log n) vs ND Θ(n) (Sec. 3 Eq. 4, Fig. 8: the DAG
// cross-section's longest path is O(n)).
#include <cmath>

#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"

using namespace ndf;

int main() {
  bench::heading("E2 span/TRS",
                 "Claim: T_inf(TRS) = Theta(n log n) in NP vs Theta(n) in "
                 "ND; Fig. 8's cross-section chain is O(n).");
  Table t("TRS span vs n");
  t.set_header({"n", "span_ND", "span_NP", "ND/n", "NP/(n log2 n)"});
  std::vector<double> ns, nds, nps;
  for (std::size_t n : {16, 32, 64, 128, 256}) {
    SpawnTree tree = make_trs_tree(n, 2);
    const double nd = elaborate(tree).span();
    const double np = elaborate(tree, {.np_mode = true}).span();
    ns.push_back(double(n));
    nds.push_back(nd);
    nps.push_back(np);
    t.add_row({(long long)n, nd, np, nd / double(n),
               np / (double(n) * std::log2(double(n)))});
  }
  t.print(std::cout);
  bench::print_fit("ND span", ns, nds);
  bench::print_fit("NP span", ns, nps);
  std::cout << "Expected shape: ND exponent ~1.0 (optimal), NP strictly "
               "above; crossover favors ND at every n.\n";
  return 0;
}
