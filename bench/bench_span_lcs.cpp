// E1 — LCS span: NP Θ(n log n) vs ND Θ(n) (Sec. 1 Fig. 1, Sec. 3 Eq. 17).
// Regenerates the claim as a series of measured critical-path lengths.
#include <cmath>

#include "algos/lcs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"

using namespace ndf;

int main() {
  bench::heading("E1 span/LCS",
                 "Claim: T_inf(LCS) = Theta(n log n) in NP vs Theta(n) in "
                 "ND (optimal).");
  Table t("LCS span vs n (base case 1 cell emulated by base=2)");
  t.set_header({"n", "span_ND", "span_NP", "ND/n", "NP/(n log2 n)"});
  std::vector<double> ns, nds, nps;
  for (std::size_t n : {64, 128, 256, 512, 1024}) {
    SpawnTree tree = make_lcs_tree(n, 2);
    const double nd = elaborate(tree).span();
    const double np = elaborate(tree, {.np_mode = true}).span();
    ns.push_back(double(n));
    nds.push_back(nd);
    nps.push_back(np);
    t.add_row({(long long)n, nd, np, nd / double(n),
               np / (double(n) * std::log2(double(n)))});
  }
  t.print(std::cout);
  bench::print_fit("ND span", ns, nds);
  bench::print_fit("NP span", ns, nps);
  std::cout << "Expected shape: ND exponent ~1.0; NP exponent >1 with "
               "NP/(n log n) ratio flat.\n";
  return 0;
}
