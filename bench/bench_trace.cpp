// E13 — utilization timelines (Fig.-style series): processor utilization
// over time under a simulated scheduler for the ND vs NP elaborations of
// the same program. The NP curve shows the starvation phases (serialized
// subtask boundaries) that the fire construct removes.
//
// Flags: --n=<size> --buckets=<k> --sched=<policy> (default sb),
// --json=<path>, --trace-out=<path> (export the first timeline's full
// event stream as Chrome trace-event JSON / CSV, docs/observability.md).
#include "algos/lcs.hpp"
#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "obs/export.hpp"
#include "sched/registry.hpp"
#include "sched/trace.hpp"

using namespace ndf;

namespace {

/// Runs one elaboration and prints its utilization timeline. The unit
/// trace now comes from the structured event stream (obs::EventRecorder →
/// unit_trace()), which is element-identical to the legacy
/// SchedOptions::trace capture, so the table is byte-identical to the
/// pre-obs bench. `keep`, when non-null, receives the run's recorder (the
/// --trace-out export).
void timeline(bench::Output& out, const std::string& policy,
              const std::string& name, const StrandGraph& g, const Pmh& m,
              std::size_t buckets, obs::EventRecorder* keep = nullptr) {
  obs::EventRecorder rec;
  SchedOptions o;
  o.sink = &rec;
  const SchedStats s = run_scheduler(policy, g, m, o);
  const Trace trace = rec.unit_trace();
  const auto tl =
      utilization_timeline(trace, m.num_processors(), s.makespan, buckets);
  Table t(name + " (makespan " + std::to_string((long long)s.makespan) +
          ", avg util " + std::to_string(s.utilization).substr(0, 5) + ")");
  t.set_header({"time_slice", "utilization", "bar"});
  for (std::size_t b = 0; b < tl.size(); ++b) {
    std::string bar(std::size_t(tl[b] * 40.0 + 0.5), '#');
    t.add_row({(long long)b, tl[b], bar});
  }
  out.emit(t);
  if (keep != nullptr) *keep = std::move(rec);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"n", "buckets", "sched", "json",
                                     "trace-out"},
                              "see the header of bench_trace.cpp");
  const std::size_t n = std::size_t(args.get("n", 128LL));
  const std::size_t buckets = std::size_t(args.get("buckets", 16LL));
  const std::string policy = bench::single_policy(args, "sb");
  bench::Output out("E13 trace/utilization", args);
  bench::heading("E13 trace/utilization",
                 "Simulated-scheduler utilization over time, ND vs NP "
                 "elaboration of the same spawn tree.");
  const std::string trace_out = args.get("trace-out", std::string());
  obs::EventRecorder first;
  Pmh m(PmhConfig::flat(16, 768, 10));
  {
    SpawnTree tree = make_trs_tree(n, 4);
    timeline(out, policy, "TRS n=" + std::to_string(n) + " [ND]",
             elaborate(tree), m, buckets,
             trace_out.empty() ? nullptr : &first);
    timeline(out, policy, "TRS n=" + std::to_string(n) + " [NP]",
             elaborate(tree, {.np_mode = true}), m, buckets);
  }
  {
    Pmh m2(PmhConfig::flat(16, 96, 10));
    SpawnTree tree = make_lcs_tree(2 * n, 4);
    timeline(out, policy, "LCS n=" + std::to_string(2 * n) + " [ND]",
             elaborate(tree), m2, buckets);
    timeline(out, policy, "LCS n=" + std::to_string(2 * n) + " [NP]",
             elaborate(tree, {.np_mode = true}), m2, buckets);
  }
  std::cout << "Expected shape: the ND timelines hold high utilization; the "
               "NP timelines show deep troughs at serialized recursion "
               "boundaries.\n";
  if (!trace_out.empty()) {
    obs::write_trace_file(trace_out, first, "E13 TRS [ND]");
    std::fprintf(stderr, "trace: wrote %zu events to %s\n",
                 first.events().size(), trace_out.c_str());
  }
  return 0;
}
