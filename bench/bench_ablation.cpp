// Ablations over the design choices DESIGN.md calls out:
//   A1 — dilation parameter σ (boundedness): capacity vs parallelism.
//   A2 — allocation exponent α' in gi(S): subcluster provisioning.
//   A3 — base-case size: span/overhead vs cache-complexity granularity.
// Flags: --n=<size> --sched=<policy> (default sb; A1 applies to any
// registered policy, A2 is sb-specific), --json=<path>.
#include <cmath>

#include "algos/lcs.hpp"
#include "algos/trs.hpp"
#include "analysis/pcc.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "sched/registry.hpp"

using namespace ndf;

namespace {

void sigma_sweep(bench::Output& out, const std::string& policy,
                 const std::string& name, const StrandGraph& g,
                 const Pmh& m) {
  Table t("A1: sigma sweep — " + name + " on " + m.to_string());
  t.set_header({"sigma", "makespan", "misses_L1", "utilization"});
  for (double sigma : {0.1, 0.2, 1.0 / 3.0, 0.5, 0.8}) {
    SchedOptions o;
    o.sigma = sigma;
    const SchedStats s = run_scheduler(policy, g, m, o);
    t.add_row({sigma, s.makespan, s.misses[0], s.utilization});
  }
  out.emit(t);
}

void alpha_sweep(bench::Output& out, const std::string& name,
                 const StrandGraph& g, const Pmh& m) {
  Table t("A2: allocation exponent sweep — " + name);
  t.set_header({"alpha'", "makespan", "utilization", "anchors"});
  for (double a : {0.25, 0.5, 0.75, 1.0}) {
    SchedOptions o;
    o.alpha_prime = a;
    const SchedStats s = run_scheduler("sb", g, m, o);
    t.add_row({a, s.makespan, s.utilization, (long long)s.anchors});
  }
  out.emit(t);
}

void base_sweep(bench::Output& out, std::size_t n) {
  Table t("A3: base-case sweep — TRS n=" + std::to_string(n));
  t.set_header({"base", "strands", "span_ND", "span_NP", "Q*(M=768)"});
  for (std::size_t b : {2, 4, 8, 16}) {
    SpawnTree tree = make_trs_tree(n, b);
    StrandGraph g = elaborate(tree);
    t.add_row({(long long)b, (long long)tree.strand_count(tree.root()),
               g.span(), elaborate(tree, {.np_mode = true}).span(),
               parallel_cache_complexity(tree, 768.0)});
  }
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::size_t n = std::size_t(args.get("n", 64LL));
  const std::string policy = bench::single_policy(args, "sb");
  bench::Output out("EA ablations", args);
  bench::heading("EA ablations",
                 "Design-choice ablations: boundedness sigma, allocation "
                 "exponent, base-case size.");
  {
    SpawnTree tree = make_trs_tree(n, 4);
    StrandGraph g = elaborate(tree);
    Pmh m(PmhConfig::flat(8, 768, 10));
    sigma_sweep(out, policy, "TRS n=" + std::to_string(n), g, m);
    Pmh deep(PmhConfig::two_tier(2, 4, 192, 3072, 3, 30));
    alpha_sweep(out, "TRS n=" + std::to_string(n), g, deep);
  }
  {
    SpawnTree tree = make_lcs_tree(4 * n, 4);
    StrandGraph g = elaborate(tree);
    Pmh m(PmhConfig::flat(8, 256, 10));
    sigma_sweep(out, policy, "LCS n=" + std::to_string(4 * n), g, m);
  }
  base_sweep(out, n);
  std::cout << "Expected shape: very small sigma serializes (capacity), "
               "sigma near 1 overcommits caches without miss benefit in "
               "this model; alpha' mainly shifts anchoring granularity; "
               "larger bases cut strand counts but coarsen the DAG.\n";
  return 0;
}
