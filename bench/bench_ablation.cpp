// Ablations over the design choices DESIGN.md calls out:
//   A1 — dilation parameter σ (boundedness): capacity vs parallelism.
//   A2 — allocation exponent α' in gi(S): subcluster provisioning.
//   A3 — base-case size: span/overhead vs cache-complexity granularity.
// A1/A2 are thin wrappers over the sweep subsystem's σ and α' axes
// (src/exp/); A3 is analysis-only (no scheduling) and builds its trees
// through the same workload registry.
// Flags: --n=<size> --sched=<policy> (default sb; A1 applies to any
// registered policy, A2 is sb-specific), --json=<path>, --jobs=<n> (sweep
// workers; 0 = hardware concurrency), --misses (A1 grows measured Q_L1 +
// comm_cost columns; off keeps the legacy output byte-identical).
#include <cmath>

#include "analysis/pcc.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "nd/drs.hpp"

using namespace ndf;

namespace {

void sigma_sweep(bench::Output& out, const std::string& policy,
                 const std::string& name, const std::string& workload,
                 const std::string& machine, std::size_t jobs, bool misses) {
  exp::Scenario sc;
  sc.name = "ablation/sigma";
  sc.workloads = {exp::parse_workload(workload)};
  sc.machines = {machine};
  sc.policies = {policy};
  sc.sigmas = {0.1, 0.2, 1.0 / 3.0, 0.5, 0.8};
  sc.measure_misses = misses;
  exp::Sweep sweep(std::move(sc), jobs);
  const auto& runs = sweep.run();

  Table t("A1: sigma sweep — " + name + " on " + runs[0].machine_desc);
  std::vector<std::string> header{"sigma", "makespan", "misses_L1",
                                  "utilization"};
  if (misses) {
    header.push_back("Q_L1");
    header.push_back("comm_cost");
  }
  t.set_header(std::move(header));
  for (const exp::RunPoint& r : runs) {
    std::vector<Cell> row{r.sigma, r.stats.makespan, r.stats.misses[0],
                          r.stats.utilization};
    if (misses) {
      row.push_back(r.stats.measured_misses[0]);
      row.push_back(r.stats.comm_cost);
    }
    t.add_row(std::move(row));
  }
  out.emit(t);
}

void alpha_sweep(bench::Output& out, const std::string& name,
                 const std::string& workload, const std::string& machine,
                 std::size_t jobs) {
  exp::Scenario sc;
  sc.name = "ablation/alpha";
  sc.workloads = {exp::parse_workload(workload)};
  sc.machines = {machine};
  sc.policies = {"sb"};
  sc.alpha_primes = {0.25, 0.5, 0.75, 1.0};
  exp::Sweep sweep(std::move(sc), jobs);
  const auto& runs = sweep.run();

  Table t("A2: allocation exponent sweep — " + name);
  t.set_header({"alpha'", "makespan", "utilization", "anchors"});
  for (const exp::RunPoint& r : runs)
    t.add_row({r.alpha_prime, r.stats.makespan, r.stats.utilization,
               (long long)r.stats.anchors});
  out.emit(t);
}

void base_sweep(bench::Output& out, std::size_t n) {
  Table t("A3: base-case sweep — TRS n=" + std::to_string(n));
  t.set_header({"base", "strands", "span_ND", "span_NP", "Q*(M=768)"});
  for (std::size_t b : {2, 4, 8, 16}) {
    exp::WorkloadSpec spec{"trs", n, b, false, {}};
    SpawnTree tree = exp::build_workload_tree(spec);
    StrandGraph g = elaborate(tree);
    t.add_row({(long long)b, (long long)tree.strand_count(tree.root()),
               g.span(), elaborate(tree, {.np_mode = true}).span(),
               parallel_cache_complexity(tree, 768.0)});
  }
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"n", "sched", "jobs", "misses", "json"},
                              "see the header of bench_ablation.cpp");
  const std::size_t n = std::size_t(args.get("n", 64LL));
  const std::string policy = bench::single_policy(args, "sb");
  const std::size_t jobs = bench::jobs_flag(args);
  const bool misses = bench::misses_flag(args);
  bench::Output out("EA ablations", args);
  bench::heading("EA ablations",
                 "Design-choice ablations: boundedness sigma, allocation "
                 "exponent, base-case size.");
  sigma_sweep(out, policy, "TRS n=" + std::to_string(n),
              "trs:n=" + std::to_string(n), "flat8", jobs, misses);
  alpha_sweep(out, "TRS n=" + std::to_string(n),
              "trs:n=" + std::to_string(n), "deep2x4", jobs);
  sigma_sweep(out, policy, "LCS n=" + std::to_string(4 * n),
              "lcs:n=" + std::to_string(4 * n), "flat:p=8,m1=256,c1=10", jobs,
              misses);
  base_sweep(out, n);
  std::cout << "Expected shape: very small sigma serializes (capacity), "
               "sigma near 1 overcommits caches without miss benefit in "
               "this model; alpha' mainly shifts anchoring granularity; "
               "larger bases cut strand counts but coarsen the DAG.\n";
  return 0;
}
