// ndf_native — the native execution driver: runs workloads on the
// real-thread executor (src/runtime) instead of the simulator, and reports
// measured wall-clock scaling next to the scaling the simulator predicts
// for the same DAG. Structure-only workloads (the registry kernels and
// every gen: family) get calibrated spin bodies so strand durations mirror
// their declared work (runtime/workbody.hpp).
//
//   ndf_native --workloads='mm:n=64;gen:family=sp,depth=9,fan=4,seed=11'
//              --threads=1,2,4,8 --sched=ws,sb --machine=deep2x4
//              --reps=3 --json=BENCH_native.json
//   (one line; wrapped here for readability)
//
// Flags:
//   --workloads=<spec;spec;...>  workload specs (src/exp/workload.hpp);
//                                default: all eight kernels plus two
//                                generated DAGs at measurement sizes
//   --threads=<n,n,...>          worker counts, default 1,2,4,8
//   --sched=<ws[,sb]>            native modes (runtime/executor.hpp);
//                                default both
//   --machine=<spec>             PMH preset whose cache tree defines the
//                                sb anchor groups (default deep2x4)
//   --sigma=<x>                  sb anchoring dilation, default 1/3
//   --seed=<s>                   steal-victim PRNG seed, default 42
//   --reps=<k>                   best-of-k timing, default 3
//   --spin=<x>                   spin iterations per declared work unit
//                                for body-less strands, default 64
//   --pin                        pin worker i to cpu i (Linux only)
//   --chaos[=<seed>]             enable chaos delays (stress demo; times
//                                reported are then perturbed on purpose)
//   --json=<path>                mirror tables to JSON (BENCH_native.json)
//   --smoke                      tiny fixed grid + exactly-once assertion,
//                                for sanitizer CI jobs
//   --list                       print workloads/machines/modes and exit
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/gen.hpp"
#include "pmh/presets.hpp"
#include "runtime/executor.hpp"
#include "runtime/workbody.hpp"
#include "sched/registry.hpp"

using namespace ndf;

namespace {

constexpr const char* kDefaultWorkloads =
    "mm:n=48;trs:n=48;cholesky:n=48;lu:n=48;lcs:n=192;gotoh:n=128;"
    "fw1d:n=48;fw2d:n=48;"
    "gen:family=sp,depth=9,fan=4,work=32,seed=11;"
    "gen:family=wavefront,n=48";

void list_everything() {
  std::cout << "workloads (--workloads=<name>[:n=,base=,np][;...]):\n";
  for (const auto& w : exp::registered_workloads())
    std::cout << "  " << w.name << " — " << w.description
              << " (default n=" << w.default_n << ")\n";
  std::cout << "\ngenerated workloads "
               "(--workloads=gen:family=<f>[,key=value...][;...]):\n";
  for (const auto& f : gen::registered_families())
    std::cout << "  " << f.name << " — " << f.description << " (" << f.keys
              << ")\n";
  std::cout << "\nmachine presets (--machine=<spec>):\n";
  for (const auto& m : pmh_presets())
    std::cout << "  " << m.name << " — " << m.description << "\n";
  std::cout << "\nnative modes (--sched=<m,...>):\n"
               "  ws — randomized work stealing over per-worker deques\n"
               "  sb — space-bounded: stealing confined to anchor groups\n";
}

std::vector<std::size_t> parse_thread_list(const std::string& csv) {
  std::vector<std::size_t> out;
  for (double v : bench::parse_double_list(csv, "threads")) {
    NDF_CHECK_MSG(v >= 1 && v == static_cast<std::size_t>(v),
                  "--threads entries must be positive integers");
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

/// Simulator-predicted parallel speedup of `g` at `p` processors under the
/// matching policy: makespan on one processor over makespan on p flat
/// processors. This is the model curve the measured curve is compared to;
/// flat machines isolate the parallelism prediction from cache effects the
/// spin bodies don't reproduce.
double sim_speedup(const StrandGraph& g, const std::string& policy,
                   std::size_t p, double sigma) {
  SchedOptions opts;
  opts.sigma = sigma;
  opts.charge_misses = false;
  const double one =
      run_scheduler(policy, g, make_pmh("flat:p=1"), opts).makespan;
  if (p == 1) return 1.0;
  const double many =
      run_scheduler(policy, g, make_pmh("flat:p=" + std::to_string(p)), opts)
          .makespan;
  return many > 0 ? one / many : 0.0;
}

struct BestRun {
  ExecReport report;  ///< the fastest rep's full report
};

BestRun best_of(const StrandGraph& g, const ExecOptions& opts,
                std::size_t reps) {
  BestRun best;
  for (std::size_t r = 0; r < reps; ++r) {
    ExecReport rep = execute(g, opts);
    if (r == 0 || rep.seconds < best.report.seconds)
      best.report = std::move(rep);
  }
  return best;
}

int run_smoke(double spin) {
  // Tiny grid, hard assertions: every strand exactly once at every thread
  // count and mode, steals accounted. The sanitizer jobs run this.
  const auto specs = exp::parse_workload_list(
      "mm:n=16;lcs:n=32;gen:family=sp,depth=6,fan=3,seed=7");
  const Pmh machine = make_pmh("deep2x4");
  for (const exp::WorkloadSpec& spec : specs) {
    SpawnTree tree = exp::build_workload_tree(spec);
    attach_spin_bodies(tree, spin);
    const std::size_t total = tree.strand_count(tree.root());
    const StrandGraph g = elaborate(tree, {.np_mode = spec.np});
    for (std::size_t threads : {1ul, 2ul, 4ul}) {
      for (ExecMode mode : {ExecMode::Ws, ExecMode::Sb}) {
        ExecOptions opts;
        opts.threads = threads;
        opts.mode = mode;
        opts.machine = &machine;
        const ExecReport r = execute(g, opts);
        NDF_CHECK_MSG(r.strands == total,
                      spec.label() << ": ran " << r.strands << " of "
                                   << total << " strands");
        std::size_t per_worker = 0, steals = 0;
        for (const WorkerReport& w : r.workers) {
          per_worker += w.strands;
          steals += w.steals;
        }
        NDF_CHECK_MSG(per_worker == total, "worker accounting mismatch");
        NDF_CHECK_MSG(steals == r.steals, "steal accounting mismatch");
      }
    }
    std::cout << "smoke: " << spec.label() << " ok (" << total
              << " strands)\n";
  }
  std::cout << "smoke: all native checks passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(
      args,
      {"workloads", "threads", "sched", "machine", "sigma", "seed", "reps",
       "spin", "pin", "chaos", "json", "smoke", "list"},
      "see the header of ndf_native.cpp or --list");
  if (args.get("list", false)) {
    list_everything();
    return 0;
  }
  const double spin = args.get("spin", 64.0);
  NDF_CHECK_MSG(spin >= 0, "--spin must be >= 0");
  if (args.get("smoke", false)) return run_smoke(spin);

  const auto specs = exp::parse_workload_list(
      args.get("workloads", std::string(kDefaultWorkloads)));
  const auto threads =
      parse_thread_list(args.get("threads", std::string("1,2,4,8")));
  std::vector<ExecMode> modes;
  for (const std::string& m :
       bench::split_specs(args.get("sched", std::string("ws;sb")))) {
    std::stringstream ss(m);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item == "ws")
        modes.push_back(ExecMode::Ws);
      else if (item == "sb")
        modes.push_back(ExecMode::Sb);
      else
        NDF_CHECK_MSG(false, "--sched must list ws and/or sb, got " << item);
    }
  }
  const std::string machine_spec =
      args.get("machine", std::string("deep2x4"));
  const Pmh machine = make_pmh(machine_spec);
  const double sigma = args.get("sigma", 1.0 / 3.0);
  const std::uint64_t seed = std::uint64_t(args.get("seed", 42LL));
  const std::size_t reps = std::size_t(args.get("reps", 3LL));
  NDF_CHECK_MSG(reps >= 1, "--reps must be >= 1");
  const bool pin = args.get("pin", false);
  const bool chaos = args.has("chaos");

  bench::Output out("native", args);
  bench::heading("native scaling",
                 "measured wall-clock on the real-thread executor vs the "
                 "simulator's predicted parallel speedup (flat:p=P model; "
                 "best of " +
                     std::to_string(reps) + ")");
  std::cout << "spin calibration: "
            << static_cast<long long>(spin_rate_per_second())
            << " iters/s, --spin=" << spin << " iters per work unit\n";

  Table scaling("native scaling (machine " + machine_spec + ", sigma " +
                std::to_string(sigma) + ")");
  scaling.set_header({"workload", "mode", "threads", "strands", "best_s",
                      "speedup", "sim_speedup", "steals", "attempts",
                      "handoffs", "anchors", "busy_frac"});
  Table workers_tab("per-worker accounting (max thread count per mode)");
  workers_tab.set_header({"workload", "mode", "worker", "busy_s", "strands",
                          "steals", "attempts"});

  for (const exp::WorkloadSpec& spec : specs) {
    SpawnTree tree = exp::build_workload_tree(spec);
    attach_spin_bodies(tree, spin);
    const StrandGraph g = elaborate(tree, {.np_mode = spec.np});

    double serial_best = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      const double s = execute_serial(g).seconds;
      if (r == 0 || s < serial_best) serial_best = s;
    }

    for (const ExecMode mode : modes) {
      const std::string mode_name = mode == ExecMode::Ws ? "ws" : "sb";
      for (const std::size_t t : threads) {
        ExecOptions opts;
        opts.threads = t;
        opts.mode = mode;
        opts.seed = seed;
        opts.machine = &machine;
        opts.sigma = sigma;
        opts.pin_threads = pin;
        if (chaos) {
          opts.chaos.enabled = true;
          opts.chaos.seed = std::uint64_t(args.get("chaos", 0LL));
        }
        const BestRun best = best_of(g, opts, reps);
        const ExecReport& r = best.report;
        double busy = 0;
        for (const WorkerReport& w : r.workers) busy += w.busy_s;
        const double busy_frac =
            r.seconds > 0 ? busy / (double(t) * r.seconds) : 0.0;
        scaling.add_row(
            {spec.label(), mode_name, (long long)t, (long long)r.strands,
             r.seconds, r.seconds > 0 ? serial_best / r.seconds : 0.0,
             sim_speedup(g, mode_name, t, sigma), (long long)r.steals,
             (long long)r.steal_attempts, (long long)r.handoffs,
             (long long)r.anchors, busy_frac});
        if (t == *std::max_element(threads.begin(), threads.end())) {
          for (std::size_t w = 0; w < r.workers.size(); ++w) {
            const WorkerReport& wr = r.workers[w];
            workers_tab.add_row({spec.label(), mode_name, (long long)w,
                                 wr.busy_s, (long long)wr.strands,
                                 (long long)wr.steals,
                                 (long long)wr.steal_attempts});
          }
        }
      }
    }
  }
  out.emit(scaling);
  out.emit(workers_tab);
  return 0;
}
