// Shared helpers for the experiment harness binaries. Every bench prints
// the series the paper's corresponding claim describes (EXPERIMENTS.md maps
// bench → table/figure/claim) plus a fitted growth exponent where the claim
// is asymptotic.
//
// Passing `--json=<path>` to any bench that routes its tables through
// bench::Output mirrors every table into a machine-readable JSON file
// (e.g. BENCH_sb_vs_ws.json) for the perf trajectory.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/workload.hpp"
#include "nd/dot.hpp"
#include "sched/registry.hpp"
#include "support/args.hpp"
#include "support/fit.hpp"
#include "support/table.hpp"

namespace ndf::bench {

/// `--sched=<name>` for benches that run exactly one policy; validated
/// against the registry (the error lists the registered names).
inline std::string single_policy(const Args& args, const std::string& dflt) {
  const auto list = parse_sched_list(args.get("sched", dflt));
  NDF_CHECK_MSG(list.size() == 1,
                "--sched expects exactly one policy here, got "
                    << list.size());
  return list[0];
}

/// `--jobs=<n>` for benches that execute sweeps: 0 (the default) means one
/// worker per hardware thread, 1 forces the serial path. Sweep output is
/// byte-identical at every value, so this only changes wall-clock time.
inline std::size_t jobs_flag(const Args& args) {
  const long long jobs = args.get("jobs", 0LL);
  NDF_CHECK_MSG(jobs >= 0, "--jobs must be >= 0 (0 = hardware concurrency), "
                               << "got " << jobs);
  return std::size_t(jobs);
}

/// `--misses` for drivers that execute sweeps: simulate LRU cache
/// occupancy and grow the emitters' measured-Q columns. Off by default so
/// legacy stdout/JSON/CSV stay byte-identical (see docs/metrics.md).
inline bool misses_flag(const Args& args) {
  return args.get("misses", false);
}

/// Rejects unknown `--flags` loudly: a typo'd axis must not silently run
/// the default grid and emit a plausible-looking but wrong artifact.
/// `allowed` is the driver's full flag set; `hint` says where the flags
/// are documented.
inline void reject_unknown_flags(const Args& args,
                                 std::initializer_list<const char*> allowed,
                                 const std::string& hint) {
  for (const std::string& name : args.names()) {
    bool known = false;
    for (const char* a : allowed) known = known || name == a;
    NDF_CHECK_MSG(known, "unknown flag --" << name << " (" << hint << ")");
  }
}

/// Comma-separated doubles for an axis flag (`--sigma=0.2,0.33`).
inline std::vector<double> parse_double_list(const std::string& csv,
                                             const std::string& flag) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    NDF_CHECK_MSG(end && *end == '\0',
                  "--" << flag << " entry is not a number: " << item);
    out.push_back(v);
  }
  NDF_CHECK_MSG(!out.empty(), "--" << flag << " list is empty");
  return out;
}

/// Semicolon-separated spec strings (`--machines='flat8;deep2x4'`);
/// empty items are skipped, so trailing separators are harmless.
inline std::vector<std::string> split_specs(const std::string& specs) {
  std::vector<std::string> out;
  std::stringstream ss(specs);
  std::string item;
  while (std::getline(ss, item, ';'))
    if (!item.empty()) out.push_back(item);
  return out;
}

inline void heading(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

/// `--dump-dot=<path>` for drivers that take workload specs: writes the
/// strand DAG of `first` (generated or named, via nd/dot) so it can be
/// eyeballed, and says where it went. No-op when the flag is absent.
inline void dump_dot_flag(const Args& args, const exp::WorkloadSpec& first) {
  const std::string path = args.get("dump-dot", std::string());
  if (path.empty()) return;
  const exp::Workload w(first);
  std::ofstream os(path);
  NDF_CHECK_MSG(bool(os), "cannot write --dump-dot=" << path);
  os << to_dot(w.graph());
  std::cout << "wrote strand DAG of " << w.spec().label() << " to " << path
            << "\n";
}

inline void print_fit(const std::string& label, std::vector<double> xs,
                      std::vector<double> ys) {
  const auto f = ndf::fit_loglog(xs, ys);
  std::cout << label << ": fitted exponent " << f.slope << " (r2 " << f.r2
            << ")\n";
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void write_cell(std::ostream& os, const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    os << '"' << json_escape(*s) << '"';
  } else if (const auto* i = std::get_if<long long>(&cell)) {
    os << *i;
  } else {
    const double d = std::get<double>(cell);
    if (std::isfinite(d))
      os << d;
    else
      os << "null";  // JSON has no inf/nan
  }
}

}  // namespace detail

/// Routes bench tables to stdout and, when `--json=<path>` was given,
/// mirrors them into a JSON file on destruction:
///   {"bench": "<id>", "tables": [{"title", "header", "rows"}, ...]}
class Output {
 public:
  Output(std::string bench_id, const Args& args)
      : id_(std::move(bench_id)), path_(args.get("json", std::string())) {}

  Output(const Output&) = delete;
  Output& operator=(const Output&) = delete;

  ~Output() {
    if (path_.empty()) return;
    std::ofstream os(path_);
    if (!os) {
      std::cerr << "bench: cannot write --json=" << path_ << "\n";
      return;
    }
    // Round-trippable doubles — the whole point of the JSON mirror.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"bench\": \"" << detail::json_escape(id_)
       << "\",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const Table& tab = tables_[t];
      os << (t ? ",\n" : "\n") << "    {\"title\": \""
         << detail::json_escape(tab.title()) << "\", \"header\": [";
      for (std::size_t c = 0; c < tab.header().size(); ++c)
        os << (c ? ", " : "") << '"' << detail::json_escape(tab.header()[c])
           << '"';
      os << "], \"rows\": [";
      for (std::size_t r = 0; r < tab.rows().size(); ++r) {
        os << (r ? ", " : "") << '[';
        const auto& row = tab.rows()[r];
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c) os << ", ";
          detail::write_cell(os, row[c]);
        }
        os << ']';
      }
      os << "]}";
    }
    os << "\n  ]\n}\n";
  }

  /// Prints the table and records it for the JSON mirror.
  void emit(const Table& t) {
    t.print(std::cout);
    if (!path_.empty()) tables_.push_back(t);
  }

 private:
  std::string id_;
  std::string path_;
  std::vector<Table> tables_;
};

}  // namespace ndf::bench
