// Shared helpers for the experiment harness binaries. Every bench prints
// the series the paper's corresponding claim describes (EXPERIMENTS.md maps
// bench → table/figure/claim) plus a fitted growth exponent where the claim
// is asymptotic.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "support/fit.hpp"
#include "support/table.hpp"

namespace ndf::bench {

inline void heading(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline void print_fit(const std::string& label, std::vector<double> xs,
                      std::vector<double> ys) {
  const auto f = ndf::fit_loglog(xs, ys);
  std::cout << label << ": fitted exponent " << f.slope << " (r2 " << f.r2
            << ")\n";
}

}  // namespace ndf::bench
