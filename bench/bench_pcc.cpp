// E5 — parallel cache complexity (Claim 1): for N = n×n inputs, MM, TRS,
// Cholesky and 2D Floyd-Warshall have Q*(N;M) = O(N^1.5/M^0.5); LCS has
// Q*(n;M) = O(n²/M). Identical in NP and ND (the decomposition ignores
// composition constructs), which we also report.
#include <cmath>

#include "algos/cholesky.hpp"
#include "algos/fw2d.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/pcc.hpp"
#include "bench_common.hpp"

using namespace ndf;

namespace {

template <typename Make>
void sweep(const std::string& name, Make make,
           std::initializer_list<std::size_t> sizes, double M,
           double norm_exp_n, double norm_exp_m) {
  Table t(name + "  (M = " + std::to_string((long long)M) + ")");
  t.set_header({"n", "Q*", "Q*/(n^a/M^b)"});
  std::vector<double> ns, qs;
  for (std::size_t n : sizes) {
    SpawnTree tree = make(n, 4);
    const double q = parallel_cache_complexity(tree, M);
    ns.push_back(double(n));
    qs.push_back(q);
    t.add_row({(long long)n, q,
               q / (std::pow(double(n), norm_exp_n) /
                    std::pow(M, norm_exp_m))});
  }
  t.print(std::cout);
  bench::print_fit(name + " Q* vs n", ns, qs);
}

}  // namespace

int main() {
  bench::heading("E5 pcc/Claim 1",
                 "Claim 1: Q*(N;M) = O(N^1.5/M^0.5) = O(n^3/sqrt(M)) for "
                 "MM/TRS/CHO/FW2D; Q*(n;M) = O(n^2/M) for LCS.");
  const double M = 3 * 16 * 16;
  sweep("MM", [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); },
        {32, 64, 128, 256}, M, 3.0, 0.5);
  sweep("TRS", make_trs_tree, {32, 64, 128, 256}, M, 3.0, 0.5);
  sweep("Cholesky", make_cholesky_tree, {32, 64, 128, 256}, M, 3.0, 0.5);
  sweep("FW2D", make_fw2d_tree, {16, 32, 64, 128}, M, 3.0, 0.5);
  sweep("LCS", make_lcs_tree, {128, 256, 512, 1024}, 64.0, 2.0, 1.0);

  // M-dependence at fixed n: MM should halve Q* per 4x M; LCS per 2x M.
  Table t("M sweep at fixed n");
  t.set_header({"algo", "M", "Q*"});
  for (double m : {48.0, 192.0, 768.0, 3072.0}) {
    t.add_row({std::string("MM n=128"), m,
               parallel_cache_complexity(make_mm_tree(128, 4), m)});
  }
  for (double m : {32.0, 64.0, 128.0, 256.0}) {
    t.add_row({std::string("LCS n=512"), m,
               parallel_cache_complexity(make_lcs_tree(512, 4), m)});
  }
  t.print(std::cout);
  std::cout << "Expected shape: exponents ~3 (dense) and ~2 (LCS); Q* "
               "falls like 1/sqrt(M) (dense) and 1/M (LCS).\n";
  return 0;
}
