// E12 — structural comparison of workload DAGs in the two models: strand
// counts, work/span/parallelism, and wavefront (parallelism profile)
// widths. This is the table form of the paper's Figs. 1, 6, 8, 11: the
// same spawn tree, drastically different available parallelism.
//
// Driven by the workload registry (src/exp/workload), so any spec works —
// the eight transcribed algorithms and generated "gen:family=..."
// workloads alike. Each spec's tree is elaborated twice (ND and the NP
// serial elision); a spec's own `np` flag is irrelevant here.
//
//   bench_dag_stats                                  # the paper's table
//   bench_dag_stats --workloads='gen:family=wavefront,n=32;lcs:n=64'
//   bench_dag_stats --json=BENCH_dag_stats.json
#include "bench_common.hpp"
#include "exp/workload.hpp"
#include "nd/drs.hpp"
#include "nd/stats.hpp"

using namespace ndf;

namespace {

// The historical E12 rows (base-8 trees at the paper's sizes).
const char* kPaperSpecs =
    "mm:n=64,base=8;trs:n=64,base=8;cholesky:n=64,base=8;lu:n=64,base=8;"
    "lcs:n=256,base=8;gotoh:n=256,base=8;fw1d:n=256,base=8;fw2d:n=64,base=8";

void row(Table& t, const exp::WorkloadSpec& spec) {
  const SpawnTree tree = exp::build_workload_tree(spec);
  const DagStats nd = compute_stats(elaborate(tree));
  const DagStats np = compute_stats(elaborate(tree, {.np_mode = true}));
  t.add_row({spec.label(), (long long)nd.strands, nd.work, nd.span, np.span,
             nd.parallelism, np.parallelism,
             (long long)nd.max_level_width, (long long)np.max_level_width});
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"workloads", "json"},
                              "see the header of bench_dag_stats.cpp");

  bench::Output out("dag_stats", args);
  bench::heading("E12 dag-stats",
                 "Same spawn trees, two semantics: the ND elaboration's "
                 "parallelism (T1/T_inf) and wavefront width vs the NP "
                 "serial elision.");
  const bool custom = args.has("workloads");
  const auto specs = exp::parse_workload_list(
      args.get("workloads", std::string(kPaperSpecs)));
  NDF_CHECK_MSG(!specs.empty(), "no workloads — pass --workloads=...");

  Table t("algorithm DAGs (ND vs NP)");
  t.set_header({"workload", "strands", "work", "span_ND", "span_NP",
                "par_ND", "par_NP", "width_ND", "width_NP"});
  for (const exp::WorkloadSpec& s : specs) row(t, s);
  out.emit(t);
  if (!custom)
    std::cout << "Expected shape: par_ND >> par_NP for TRS/CHO/LCS/GOTOH/"
                 "FW1D (the paper's algorithms); MM similar in both "
                 "models.\n";
  return 0;
}
