// E12 — structural comparison of every algorithm's DAG in the two models:
// strand counts, work/span/parallelism, and wavefront (parallelism
// profile) widths. This is the table form of the paper's Figs. 1, 6, 8,
// 11: the same spawn tree, drastically different available parallelism.
#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/fw2d.hpp"
#include "algos/gotoh.hpp"
#include "algos/lcs.hpp"
#include "algos/lu.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "nd/stats.hpp"

using namespace ndf;

namespace {

void row(Table& t, const std::string& name, const SpawnTree& tree) {
  const DagStats nd = compute_stats(elaborate(tree));
  const DagStats np = compute_stats(elaborate(tree, {.np_mode = true}));
  t.add_row({name, (long long)nd.strands, nd.work, nd.span, np.span,
             nd.parallelism, np.parallelism,
             (long long)nd.max_level_width, (long long)np.max_level_width});
}

}  // namespace

int main() {
  bench::heading("E12 dag-stats",
                 "Same spawn trees, two semantics: the ND elaboration's "
                 "parallelism (T1/T_inf) and wavefront width vs the NP "
                 "serial elision.");
  Table t("algorithm DAGs (ND vs NP)");
  t.set_header({"algo", "strands", "work", "span_ND", "span_NP", "par_ND",
                "par_NP", "width_ND", "width_NP"});
  row(t, "MM n=64", make_mm_tree(64, 8));
  row(t, "TRS n=64", make_trs_tree(64, 8));
  row(t, "CHO n=64", make_cholesky_tree(64, 8));
  row(t, "LU n=64", make_lu_tree(64, 8));
  row(t, "LCS n=256", make_lcs_tree(256, 8));
  row(t, "GOTOH n=256", make_gotoh_tree(256, 8));
  row(t, "FW1D n=256", make_fw1d_tree(256, 8));
  row(t, "FW2D n=64 (NP substrate)", make_fw2d_tree(64, 8));
  t.print(std::cout);
  std::cout << "Expected shape: par_ND >> par_NP for TRS/CHO/LCS/GOTOH/FW1D "
               "(the paper's algorithms); MM similar in both models.\n";
  return 0;
}
