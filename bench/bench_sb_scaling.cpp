// E8 — the headline scheduling experiment: the SB scheduler can use more
// processors on ND programs than on NP programs (Sec. 1: with input
// N > M_{h-1}, ND stays efficient out to ~N^{1-c}/M_{h-1} subclusters,
// while NP TRS/Cholesky lose efficiency much earlier). We sweep processor
// counts and report speedup and efficiency for both elaborations.
//
// Flags: --sched=<policy> (default sb — any registry policy can be swept),
// --json=<path>.
#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "sched/registry.hpp"

using namespace ndf;

namespace {

template <typename Make>
void sweep(bench::Output& out, const std::string& policy,
           const std::string& name, Make make, std::size_t n, double M1) {
  SpawnTree tree = make(n, 4);
  StrandGraph nd = elaborate(tree);
  StrandGraph np = elaborate(tree, {.np_mode = true});

  Table t(name + " n=" + std::to_string(n) +
          ": " + policy + " speedup vs p (flat PMH, M1=" +
          std::to_string((long long)M1) + ")");
  t.set_header({"p", "T_ND", "T_NP", "speedup_ND", "speedup_NP", "eff_ND",
                "eff_NP"});
  double t1_nd = 0, t1_np = 0;
  for (std::size_t p : {1, 2, 4, 8, 16, 32, 64}) {
    Pmh m(PmhConfig::flat(p, M1, 10));
    const double ms_nd = run_scheduler(policy, nd, m).makespan;
    const double ms_np = run_scheduler(policy, np, m).makespan;
    if (p == 1) {
      t1_nd = ms_nd;
      t1_np = ms_np;
    }
    t.add_row({(long long)p, ms_nd, ms_np, t1_nd / ms_nd, t1_np / ms_np,
               t1_nd / ms_nd / double(p), t1_np / ms_np / double(p)});
  }
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string policy = bench::single_policy(args, "sb");
  bench::Output out("E8 sb-scaling/ND vs NP", args);
  bench::heading("E8 sb-scaling/ND vs NP",
                 "Sec. 1+4: SB schedulers exploit the ND model's extra "
                 "parallelizability — ND keeps near-linear speedup to "
                 "larger p; NP TRS/Cholesky flatten early.");
  sweep(out, policy, "TRS", make_trs_tree, 128, 3 * 16 * 16);
  sweep(out, policy, "Cholesky", make_cholesky_tree, 128, 3 * 16 * 16);
  sweep(out, policy, "LCS", make_lcs_tree, 512, 64);
  std::cout << "Expected shape: eff_ND stays near 1 to higher p than "
               "eff_NP; the gap widens with p (who wins: ND, by a growing "
               "factor).\n";
  return 0;
}
