// E8 — the headline scheduling experiment: the SB scheduler can use more
// processors on ND programs than on NP programs (Sec. 1: with input
// N > M_{h-1}, ND stays efficient out to ~N^{1-c}/M_{h-1} subclusters,
// while NP TRS/Cholesky lose efficiency much earlier). We sweep processor
// counts and report speedup and efficiency for both elaborations.
//
// Thin wrapper over the sweep subsystem: one Scenario per algorithm with
// the ND and NP elaborations as two workloads and the processor axis as
// seven flat machines sharing one cache profile — so each elaboration's
// condensation is built once and reused across the whole p sweep.
//
// Flags: --sched=<policy> (default sb — any registry policy can be swept),
// --json=<path>, --jobs=<n> (sweep workers; 0 = hardware concurrency),
// --misses (grows measured comm-cost columns for both elaborations; off
// keeps the legacy output byte-identical).
#include <sstream>

#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace ndf;

namespace {

const std::size_t kProcs[] = {1, 2, 4, 8, 16, 32, 64};

void sweep(bench::Output& out, const std::string& policy,
           const std::string& name, const std::string& algo, std::size_t n,
           double M1, std::size_t jobs, bool misses) {
  exp::Scenario sc;
  sc.name = "sb_scaling/" + name;
  std::ostringstream nd, np;
  nd << algo << ":n=" << n;
  np << algo << ":n=" << n << ",np";
  sc.workloads = {exp::parse_workload(nd.str()), exp::parse_workload(np.str())};
  for (std::size_t p : kProcs) {
    std::ostringstream m;
    m << "flat:p=" << p << ",m1=" << M1 << ",c1=10";
    sc.machines.push_back(m.str());
  }
  sc.policies = {policy};
  sc.measure_misses = misses;
  exp::Sweep sw(std::move(sc), jobs);
  const auto& runs = sw.run();
  // Grid order is workload-major: runs[m] is ND on machine m, runs[P + m]
  // is NP on machine m.
  const std::size_t P = std::size(kProcs);

  Table t(name + " n=" + std::to_string(n) + ": " + policy +
          " speedup vs p (flat PMH, M1=" + std::to_string((long long)M1) +
          ")");
  std::vector<std::string> header{"p",          "T_ND",   "T_NP",
                                  "speedup_ND", "speedup_NP", "eff_ND",
                                  "eff_NP"};
  if (misses) {
    header.push_back("comm_ND");
    header.push_back("comm_NP");
  }
  t.set_header(std::move(header));
  const double t1_nd = runs[0].stats.makespan;
  const double t1_np = runs[P].stats.makespan;
  for (std::size_t i = 0; i < P; ++i) {
    const double p = double(kProcs[i]);
    const double ms_nd = runs[i].stats.makespan;
    const double ms_np = runs[P + i].stats.makespan;
    std::vector<Cell> row{(long long)kProcs[i], ms_nd, ms_np, t1_nd / ms_nd,
                          t1_np / ms_np, t1_nd / ms_nd / p,
                          t1_np / ms_np / p};
    if (misses) {
      row.push_back(runs[i].stats.comm_cost);
      row.push_back(runs[P + i].stats.comm_cost);
    }
    t.add_row(std::move(row));
  }
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"sched", "jobs", "misses", "json"},
                              "see the header of bench_sb_scaling.cpp");
  const std::string policy = bench::single_policy(args, "sb");
  const std::size_t jobs = bench::jobs_flag(args);
  const bool misses = bench::misses_flag(args);
  bench::Output out("E8 sb-scaling/ND vs NP", args);
  bench::heading("E8 sb-scaling/ND vs NP",
                 "Sec. 1+4: SB schedulers exploit the ND model's extra "
                 "parallelizability — ND keeps near-linear speedup to "
                 "larger p; NP TRS/Cholesky flatten early.");
  sweep(out, policy, "TRS", "trs", 128, 3 * 16 * 16, jobs, misses);
  sweep(out, policy, "Cholesky", "cholesky", 128, 3 * 16 * 16, jobs, misses);
  sweep(out, policy, "LCS", "lcs", 512, 64, jobs, misses);
  std::cout << "Expected shape: eff_ND stays near 1 to higher p than "
               "eff_NP; the gap widens with p (who wins: ND, by a growing "
               "factor).\n";
  return 0;
}
