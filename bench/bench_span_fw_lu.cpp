// E4 — spans of 1D Floyd-Warshall (Eq. 15: NP Θ(n log n) → ND Θ(n)) and of
// LU with partial pivoting (Sec. 3: ND O(m log n); NP pays an extra log).
#include <cmath>

#include "algos/fw1d.hpp"
#include "algos/lu.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"

using namespace ndf;

int main() {
  bench::heading("E4 span/FW1D+LU",
                 "Claims: FW1D NP Theta(n log n) vs ND Theta(n) (Eq. 15); "
                 "LU ND O(n log n) vs NP O(n log^2 n) for square n.");
  {
    Table t("1D Floyd-Warshall span vs n");
    t.set_header({"n", "span_ND", "span_NP", "ND/n", "NP/(n log2 n)"});
    std::vector<double> ns, nds, nps;
    for (std::size_t n : {64, 128, 256, 512, 1024}) {
      SpawnTree tree = make_fw1d_tree(n, 2);
      const double nd = elaborate(tree).span();
      const double np = elaborate(tree, {.np_mode = true}).span();
      ns.push_back(double(n));
      nds.push_back(nd);
      nps.push_back(np);
      t.add_row({(long long)n, nd, np, nd / double(n),
                 np / (double(n) * std::log2(double(n)))});
    }
    t.print(std::cout);
    bench::print_fit("FW1D ND span", ns, nds);
    bench::print_fit("FW1D NP span", ns, nps);
  }
  {
    Table t("LU (partial pivoting) span vs n");
    t.set_header({"n", "span_ND", "span_NP", "ND/(n log2 n)", "NP/ND"});
    std::vector<double> ns, nds;
    for (std::size_t n : {16, 32, 64, 128, 256}) {
      SpawnTree tree = make_lu_tree(n, 4);
      const double nd = elaborate(tree).span();
      const double np = elaborate(tree, {.np_mode = true}).span();
      ns.push_back(double(n));
      nds.push_back(nd);
      t.add_row({(long long)n, nd, np,
                 nd / (double(n) * std::log2(double(n))), np / nd});
    }
    t.print(std::cout);
    bench::print_fit("LU ND span", ns, nds);
  }
  std::cout << "Expected shape: FW1D ND exponent ~1.0; LU keeps one log "
               "factor in ND (pivoting) and gains one over NP.\n";
  return 0;
}
