// E9 — SB vs randomized work stealing: anchoring preserves locality while
// stealing scatters footprints (the empirical motivation from [47, 48]).
// Same DAGs, same machine, same atomic units; compare misses and makespan.
//
// Thin wrapper over the sweep subsystem (src/exp/): each comparison block
// is a one-workload × one-machine × N-policy Scenario, so the workload's
// condensation is built once and shared by every policy instead of being
// rebuilt per run. `ndf_sweep` runs the same grids (and arbitrary others)
// with consolidated output.
//
// Flags: --sched=sb,ws[,greedy,serial] (policies from the registry; the
// first is the ratio baseline), --json=<path>, --jobs=<n> (sweep workers;
// 0 = hardware concurrency, output identical at every value), --misses
// (adds measured-occupancy rows "Q L<i> (measured)" and "comm cost";
// without it the output is byte-identical to the pre-measurement bench).
#include <algorithm>
#include <cctype>

#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace ndf;

namespace {

std::string upper(std::string s) {
  for (char& c : s) c = char(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

void compare(bench::Output& out, const std::vector<std::string>& policies,
             const std::string& name, const std::string& workload,
             const std::string& machine, std::size_t jobs, bool misses) {
  exp::Scenario sc;
  sc.name = "sb_vs_ws/" + name;
  sc.workloads = {exp::parse_workload(workload)};
  sc.machines = {machine};
  sc.policies = policies;
  sc.measure_misses = misses;
  exp::Sweep sweep(std::move(sc), jobs);
  const std::vector<exp::RunPoint>& runs = sweep.run();
  // One workload × one machine × one σ: runs arrive in policy order.
  const std::size_t levels = runs[0].stats.misses.size();

  Table t(name + " n=" + std::to_string(runs[0].workload.n) + " on " +
          runs[0].machine_desc);
  std::vector<std::string> header{"metric"};
  for (const std::string& p : policies) header.push_back(upper(p));
  for (std::size_t i = 1; i < policies.size(); ++i)
    header.push_back(upper(policies[i]) + "/" + upper(policies[0]));
  t.set_header(header);

  auto add = [&](const std::string& metric, auto value, auto ratio) {
    std::vector<Cell> row{metric};
    for (std::size_t i = 0; i < runs.size(); ++i) row.push_back(value(i));
    for (std::size_t i = 1; i < runs.size(); ++i) row.push_back(ratio(i));
    t.add_row(std::move(row));
  };
  for (std::size_t l = 1; l <= levels; ++l)
    add(std::string("misses L") + std::to_string(l),
        [&](std::size_t i) { return runs[i].stats.misses[l - 1]; },
        [&](std::size_t i) {
          return runs[i].stats.misses[l - 1] / runs[0].stats.misses[l - 1];
        });
  add(std::string("miss cost"),
      [&](std::size_t i) { return runs[i].stats.miss_cost; },
      [&](std::size_t i) {
        return runs[i].stats.miss_cost / std::max(1.0, runs[0].stats.miss_cost);
      });
  add(std::string("makespan"),
      [&](std::size_t i) { return runs[i].stats.makespan; },
      [&](std::size_t i) {
        return runs[i].stats.makespan / runs[0].stats.makespan;
      });
  if (misses) {
    for (std::size_t l = 1; l <= levels; ++l)
      add("Q L" + std::to_string(l) + " (measured)",
          [&](std::size_t i) { return runs[i].stats.measured_misses[l - 1]; },
          [&](std::size_t i) {
            return runs[i].stats.measured_misses[l - 1] /
                   std::max(1.0, runs[0].stats.measured_misses[l - 1]);
          });
    add(std::string("comm cost"),
        [&](std::size_t i) { return runs[i].stats.comm_cost; },
        [&](std::size_t i) {
          return runs[i].stats.comm_cost /
                 std::max(1.0, runs[0].stats.comm_cost);
        });
  }
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"sched", "jobs", "misses", "json"},
                              "see the header of bench_sb_vs_ws.cpp");
  const auto policies =
      parse_sched_list(args.get("sched", std::string("sb,ws")));
  NDF_CHECK_MSG(!policies.empty(), "--sched list must name a policy");
  const std::size_t jobs = bench::jobs_flag(args);
  const bool misses = bench::misses_flag(args);
  bench::Output out("E9 sb-vs-ws/locality", args);
  bench::heading("E9 sb-vs-ws/locality",
                 "SB's anchoring bounds misses by Q*(sigma*M); random "
                 "stealing reloads scattered footprints ([47,48]).");
  compare(out, policies, "MM", "mm:n=64", "flat16", jobs, misses);
  compare(out, policies, "TRS", "trs:n=64", "flat16", jobs, misses);
  compare(out, policies, "LCS", "lcs:n=256", "flat16", jobs, misses);
  compare(out, policies, "MM(2-tier)", "mm:n=64", "deep4x4", jobs, misses);
  std::cout << "Expected shape: WS/SB miss ratio > 1 (often substantially); "
               "makespan follows when miss costs dominate.\n";
  return 0;
}
