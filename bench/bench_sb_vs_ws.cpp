// E9 — SB vs randomized work stealing: anchoring preserves locality while
// stealing scatters footprints (the empirical motivation from [47, 48]).
// Same DAGs, same machine, same atomic units; compare misses and makespan.
//
// Flags: --sched=sb,ws[,greedy,serial] (policies from the registry; the
// first is the ratio baseline), --json=<path>.
#include <algorithm>
#include <cctype>

#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "sched/registry.hpp"

using namespace ndf;

namespace {

std::string upper(std::string s) {
  for (char& c : s) c = char(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

template <typename Make>
void compare(bench::Output& out, const std::vector<std::string>& policies,
             const std::string& name, Make make, std::size_t n,
             const Pmh& m) {
  SpawnTree tree = make(n, 4);
  StrandGraph g = elaborate(tree);
  std::vector<SchedStats> stats;
  for (const std::string& p : policies)
    stats.push_back(run_scheduler(p, g, m));

  Table t(name + " n=" + std::to_string(n) + " on " + m.to_string());
  std::vector<std::string> header{"metric"};
  for (const std::string& p : policies) header.push_back(upper(p));
  for (std::size_t i = 1; i < policies.size(); ++i)
    header.push_back(upper(policies[i]) + "/" + upper(policies[0]));
  t.set_header(header);

  auto add = [&](const std::string& metric, auto value, auto ratio) {
    std::vector<Cell> row{metric};
    for (std::size_t i = 0; i < stats.size(); ++i) row.push_back(value(i));
    for (std::size_t i = 1; i < stats.size(); ++i) row.push_back(ratio(i));
    t.add_row(std::move(row));
  };
  for (std::size_t l = 1; l <= m.num_cache_levels(); ++l)
    add(std::string("misses L") + std::to_string(l),
        [&](std::size_t i) { return stats[i].misses[l - 1]; },
        [&](std::size_t i) {
          return stats[i].misses[l - 1] / stats[0].misses[l - 1];
        });
  add(std::string("miss cost"),
      [&](std::size_t i) { return stats[i].miss_cost; },
      [&](std::size_t i) {
        return stats[i].miss_cost / std::max(1.0, stats[0].miss_cost);
      });
  add(std::string("makespan"),
      [&](std::size_t i) { return stats[i].makespan; },
      [&](std::size_t i) { return stats[i].makespan / stats[0].makespan; });
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto policies =
      parse_sched_list(args.get("sched", std::string("sb,ws")));
  NDF_CHECK_MSG(!policies.empty(), "--sched list must name a policy");
  bench::Output out("E9 sb-vs-ws/locality", args);
  bench::heading("E9 sb-vs-ws/locality",
                 "SB's anchoring bounds misses by Q*(sigma*M); random "
                 "stealing reloads scattered footprints ([47,48]).");
  Pmh flat(PmhConfig::flat(16, 3 * 16 * 16, 10));
  Pmh deep(PmhConfig::two_tier(4, 4, 3 * 8 * 8, 3 * 32 * 32, 3, 30));
  compare(out, policies, "MM",
          [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); }, 64,
          flat);
  compare(out, policies, "TRS", make_trs_tree, 64, flat);
  compare(out, policies, "LCS", make_lcs_tree, 256, flat);
  compare(out, policies, "MM(2-tier)",
          [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); }, 64,
          deep);
  std::cout << "Expected shape: WS/SB miss ratio > 1 (often substantially); "
               "makespan follows when miss costs dominate.\n";
  return 0;
}
