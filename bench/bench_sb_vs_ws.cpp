// E9 — SB vs randomized work stealing: anchoring preserves locality while
// stealing scatters footprints (the empirical motivation from [47, 48]).
// Same DAGs, same machine, same atomic units; compare misses and makespan.
#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "sched/sb_scheduler.hpp"
#include "sched/ws_scheduler.hpp"

using namespace ndf;

namespace {

template <typename Make>
void compare(const std::string& name, Make make, std::size_t n,
             const Pmh& m) {
  SpawnTree tree = make(n, 4);
  StrandGraph g = elaborate(tree);
  const SbStats sb = run_sb_scheduler(g, m);
  const WsStats ws = run_ws_scheduler(g, m);

  Table t(name + " n=" + std::to_string(n) + " on " + m.to_string());
  t.set_header({"metric", "SB", "WS", "WS/SB"});
  for (std::size_t l = 1; l <= m.num_cache_levels(); ++l)
    t.add_row({std::string("misses L") + std::to_string(l), sb.misses[l - 1],
               ws.misses[l - 1], ws.misses[l - 1] / sb.misses[l - 1]});
  t.add_row({std::string("miss cost"), sb.miss_cost, ws.miss_cost,
             ws.miss_cost / std::max(1.0, sb.miss_cost)});
  t.add_row({std::string("makespan"), sb.makespan, ws.makespan,
             ws.makespan / sb.makespan});
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::heading("E9 sb-vs-ws/locality",
                 "SB's anchoring bounds misses by Q*(sigma*M); random "
                 "stealing reloads scattered footprints ([47,48]).");
  Pmh flat(PmhConfig::flat(16, 3 * 16 * 16, 10));
  Pmh deep(PmhConfig::two_tier(4, 4, 3 * 8 * 8, 3 * 32 * 32, 3, 30));
  compare("MM",
          [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); }, 64,
          flat);
  compare("TRS", make_trs_tree, 64, flat);
  compare("LCS", make_lcs_tree, 256, flat);
  compare("MM(2-tier)",
          [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); }, 64,
          deep);
  std::cout << "Expected shape: WS/SB miss ratio > 1 (often substantially); "
               "makespan follows when miss costs dominate.\n";
  return 0;
}
