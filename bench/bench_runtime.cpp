// E10 — the runtime prototype on real cores: fire-construct programs
// executed by the work-stealing counter executor, versus their serial
// elision, on actual hardware threads.
//
// Flags: --json=<path> mirrors the wall-time tables to JSON.
#include <thread>

#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

using namespace ndf;

namespace {

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  Matrix<double> m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

double median_run(const StrandGraph& g, std::size_t threads, int reps = 3) {
  std::vector<double> xs;
  for (int i = 0; i < reps; ++i)
    xs.push_back(execute_parallel(g, threads).seconds);
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"json"},
                              "see the header of bench_runtime.cpp");
  bench::Output out("E10 runtime/real threads", args);
  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  bench::heading("E10 runtime/real threads",
                 "Runtime prototype: ND programs executed by the "
                 "counter-based work-stealing pool on real cores.");
  std::cout << "hardware threads: " << hw << "\n";

  {
    const std::size_t n = 512, base = 64;
    Matrix<double> A = random_matrix(n, n, 1), B = random_matrix(n, n, 2);
    Matrix<double> C(n, n, 0.0);
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_mm(t, ty, n, n, n, base, 1.0,
                        MmViews{A.view(), B.view(), C.view(), false}));
    StrandGraph g = elaborate(t);
    Table tb("MM n=512 base=64 wall time");
    tb.set_header({"threads", "seconds", "speedup"});
    const double t1 = median_run(g, 1);
    for (std::size_t p : {1ul, 2ul, 4ul, hw}) {
      const double tp = median_run(g, p);
      tb.add_row({(long long)p, tp, t1 / tp});
    }
    out.emit(tb);
  }
  {
    const std::size_t n = 1024, base = 64;
    Matrix<double> T = random_matrix(n, n, 3);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) T(i, j) = 0.0;
      T(i, i) = 2.0 + T(i, i);
    }
    Matrix<double> B0 = random_matrix(n, n, 4);
    Table tb("TRS n=1024 base=64 wall time (ND vs NP elaboration)");
    tb.set_header({"threads", "sec_ND", "sec_NP", "NP/ND"});
    for (std::size_t p : {1ul, 2ul, 4ul, hw}) {
      Matrix<double> X1 = B0, X2 = B0;
      SpawnTree t1;
      const LinalgTypes ty1 = LinalgTypes::install(t1);
      t1.set_root(build_trs(t1, ty1, TrsSide::LeftLower, n, n, base,
                            TrsViews{T.view(), X1.view()}));
      const double snd = median_run(elaborate(t1), p);
      SpawnTree t2;
      const LinalgTypes ty2 = LinalgTypes::install(t2);
      t2.set_root(build_trs(t2, ty2, TrsSide::LeftLower, n, n, base,
                            TrsViews{T.view(), X2.view()}));
      const double snp = median_run(elaborate(t2, {.np_mode = true}), p);
      tb.add_row({(long long)p, snd, snp, snp / snd});
    }
    out.emit(tb);
  }
  {
    const std::size_t n = 4096, base = 128;
    Rng rng(7);
    std::vector<int> S(n), T(n);
    for (auto& x : S) x = int(rng.below(4));
    for (auto& x : T) x = int(rng.below(4));
    Matrix<int> X(n + 1, n + 1, 0);
    SpawnTree t;
    const LcsTypes ty = LcsTypes::install(t);
    t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));
    StrandGraph g = elaborate(t);
    Table tb("LCS n=4096 base=128 wall time");
    tb.set_header({"threads", "seconds", "speedup"});
    const double t1 = median_run(g, 1);
    for (std::size_t p : {1ul, 2ul, 4ul, hw}) {
      const double tp = median_run(g, p);
      tb.add_row({(long long)p, tp, t1 / tp});
    }
    out.emit(tb);
  }
  std::cout << "Expected shape: speedup grows with threads; ND TRS at least "
               "matches NP (same work, more overlap).\n";
  return 0;
}
