// ndf_serve — the open-arrivals service-mode driver. One binary admits a
// stream of DAG jobs (a trace file or a seeded arrival distribution) onto
// each machine × σ × policy cell, runs the full multi-tenant service
// simulation (src/serve/), and emits one consolidated summary table /
// JSON / CSV. Deadline-aware policies (`edf`) admit queued jobs earliest-
// deadline-first; everything else admits in arrival order.
//
//   ndf_serve --arrivals='poisson:rate=0.001,jobs=40,tenants=4' \
//             --workloads='mm:n=32;gen:family=sp,depth=6,fan=3,seed=7' \
//             --machines=flat16 --sched=sb,edf --json=BENCH_serve.json
//   ndf_serve --trace=jobs.trace --machines=deep2x4 --sched=edf
//
// Flags:
//   --trace=<path>               job stream from a trace file, one job per
//                                line: <arrival> <tenant> <workload-spec>
//                                [deadline=<t>] (src/serve/arrivals.hpp)
//   --arrivals=<spec>            generated stream instead of a trace:
//                                poisson:rate=,jobs=[,tenants=][,deadline=]
//                                [,seed=] (open) or closed:clients=,jobs=
//                                [,think=][,deadline=] (closed loop); the
//                                workload mix comes from --workloads
//   --workloads=<spec;spec;...>  workload mix for --arrivals (dealt
//                                round-robin); ignored with --trace
//   --machines=<spec;spec;...>   see src/pmh/presets.hpp
//   --sched=<name,name,...>      registry policies (default sb,edf)
//   --sigma=<x,x,...>            dilation values in (0,1), default 1/3
//   --alpha=<x>                  SB allocation exponent, default 1.0
//   --seed=<s>                   base seed; job i runs with seed s+i
//   --jobs=<n>                   cell workers: 0 = hardware concurrency
//                                (default); output is byte-identical at
//                                every n
//   --misses                     simulate cache occupancy persistently
//                                across jobs and attribute per-job/per-
//                                tenant measured Q_i (docs/metrics.md)
//   --cache=<spec>               single cache model for the persistent
//                                occupancy (pmh/cache_model.hpp): a bare
//                                replacement name or a full cache:repl=...
//                                spec; default ideal LRU. Not an axis —
//                                the service caches persist across jobs,
//                                so one model binds the whole scenario
//   --json=<path> --csv=<path>   consolidated emitters
//   --name=<id>                  run id in the outputs
//   --smoke                      small fixed scenario for CI (fast)
//   --soak                       larger fixed grid (nightly CI): a
//                                multi-tenant poisson burst across two
//                                machines, all admission policies
//   --trace-out=<path>           record grid cell 0's full event stream —
//                                job arrival/admission/completion/deadline
//                                plus every admitted job's unit, queue-wait
//                                and cache events on the global service
//                                clock — as Chrome trace-event JSON
//                                (Perfetto-loadable) or raw CSV when the
//                                path ends in .csv (docs/observability.md).
//                                Observational: stdout/JSON/CSV stay
//                                byte-identical with or without it
//   --progress                   stderr heartbeat (phase, cells done/total,
//                                ETA) while the grid runs
//   --list                       print workloads/machines/policies and exit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "pmh/cache_model.hpp"
#include "pmh/presets.hpp"
#include "sched/registry.hpp"
#include "serve/engine.hpp"
#include "serve/report.hpp"

using namespace ndf;

namespace {

void list_everything() {
  std::cout << "workloads (--workloads=<name>[:n=,base=,np][;...]):\n";
  for (const auto& w : exp::registered_workloads())
    std::cout << "  " << w.name << " — " << w.description
              << " (default n=" << w.default_n << ")\n";
  std::cout << "\nmachine presets (--machines=<preset or "
               "flat:p=,m1=,c1= / twotier:s=,c=,m1=,m2=,c1=,c2=>[;...]):\n";
  for (const auto& m : pmh_presets())
    std::cout << "  " << m.name << " — " << m.description << "\n";
  std::cout << "\npolicies (--sched=<name,...>; deadline-aware ones admit "
               "EDF-over-jobs):\n";
  for (const auto& p : registered_schedulers())
    std::cout << "  " << p.name << (p.deadline_aware ? " [deadline-aware]" : "")
              << " — " << p.description << "\n";
  std::cout << "\ncache models (--cache=<name or "
               "cache:repl=,assoc=,line=,excl=,wb=,bw=>, with --misses):\n";
  for (const auto& c : registered_cache_repls())
    std::cout << "  " << c.name << " — " << c.description << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(
      args,
      {"trace", "arrivals", "workloads", "machines", "sched", "sigma",
       "alpha", "seed", "jobs", "misses", "cache", "json", "csv", "name",
       "smoke", "soak", "list", "trace-out", "progress"},
      "see the header of ndf_serve.cpp or --list");
  if (args.get("list", false)) {
    list_everything();
    return 0;
  }

  serve::ServeScenario s;
  const bool smoke = args.get("smoke", false);
  const bool soak = args.get("soak", false);
  NDF_CHECK_MSG(!(smoke && soak), "--smoke and --soak are exclusive");
  std::string arrivals_spec;
  if (smoke) {
    // Small fixed scenario CI can afford on every push: 24 poisson jobs
    // from 3 tenants over a 3-workload mix, one machine, FIFO vs EDF.
    s.name = "serve-smoke";
    arrivals_spec = "poisson:rate=0.00003,jobs=24,tenants=3,deadline=60000";
    s.mix = exp::parse_workload_list(
        "mm:n=32;gen:family=sp,depth=6,fan=3,seed=7;lcs:n=96");
    s.machines = {"flat:p=8,m1=192,c1=10"};
    s.policies = {"sb", "edf"};
  }
  if (soak) {
    // Nightly grid: a long multi-tenant burst with deadlines across two
    // machine shapes and every admission discipline — 2 machines × 2 σ ×
    // 4 policies = 16 cells of 360 heavyweight jobs each, sized so the
    // serial run takes whole seconds (the serve gate times it; a grid that
    // finishes in milliseconds measures thread startup, not the engine).
    s.name = "serve-soak";
    arrivals_spec =
        "poisson:rate=0.002,jobs=360,tenants=6,deadline=9000,seed=17";
    s.mix = exp::parse_workload_list(
        "mm:n=48;trs:n=48,np;gen:family=sp,depth=9,fan=4,work=32,cross=60,"
        "seed=11;gen:family=wavefront,n=48;gen:family=forkjoin,depth=48,"
        "fan=24");
    s.machines = {"flat16", "deep2x4"};
    s.policies = {"sb", "ws", "greedy", "edf"};
    s.sigmas = {1.0 / 3.0, 0.5};
  }

  s.name = args.get("name", s.name);
  if (args.has("workloads"))
    s.mix = exp::parse_workload_list(args.get("workloads", std::string()));
  if (args.has("machines"))
    s.machines = bench::split_specs(args.get("machines", std::string()));
  if (args.has("sched") || (!smoke && !soak))
    s.policies = parse_sched_list(args.get("sched", std::string("sb,edf")));
  if (args.has("sigma"))
    s.sigmas =
        bench::parse_double_list(args.get("sigma", std::string()), "sigma");
  s.alpha_prime = args.get("alpha", 1.0);
  s.base_seed = std::uint64_t(args.get("seed", 42LL));
  s.measure_misses = bench::misses_flag(args);
  if (args.has("cache"))
    s.cache_model = parse_cache_model(args.get("cache", std::string()));
  const std::size_t jobs = bench::jobs_flag(args);

  const std::string trace = args.get("trace", std::string());
  if (args.has("arrivals")) arrivals_spec = args.get("arrivals", std::string());
  NDF_CHECK_MSG(trace.empty() || arrivals_spec.empty(),
                "--trace and --arrivals are exclusive: the stream is either "
                "explicit or generated");
  NDF_CHECK_MSG(!trace.empty() || !arrivals_spec.empty(),
                "no job stream — pass --trace=<file>, --arrivals=<spec>, or "
                "--smoke (--list shows workloads/machines/policies)");
  if (!trace.empty()) {
    s.jobs = serve::load_trace(trace);
  } else {
    const serve::ArrivalSpec a = serve::parse_arrivals(arrivals_spec);
    if (a.kind == "closed")
      s.closed = a;  // the engine generates closed-loop arrivals
    else
      s.jobs = serve::expand_open_arrivals(a, s.mix);
  }
  NDF_CHECK_MSG(!s.machines.empty(),
                "no machines — pass --machines=... or --smoke "
                "(--list shows what exists)");

  // Outlives the sweep: the scenario only borrows the sink.
  obs::EventRecorder rec;
  const std::string trace_out = args.get("trace-out", std::string());
  if (!trace_out.empty()) s.trace_sink = &rec;
  s.progress = args.get("progress", false);

  serve::ServeSweep sweep(std::move(s), jobs);
  const auto& cells = sweep.run();

  std::size_t total_jobs = 0;
  for (const auto& c : cells) total_jobs += c.jobs.size();
  std::ostringstream title;
  title << "serve '" << sweep.scenario().name << "': " << cells.size()
        << " cells, " << total_jobs << " jobs served, "
        << sweep.condensations_built() << " condensations built";
  serve::summary_table(title.str(), cells).print(std::cout);

  const std::string json = args.get("json", std::string());
  if (!json.empty()) {
    std::ofstream os(json);
    NDF_CHECK_MSG(bool(os), "cannot write --json=" << json);
    serve::write_serve_json(os, sweep.scenario().name, cells);
  }
  const std::string csv = args.get("csv", std::string());
  if (!csv.empty()) {
    std::ofstream os(csv);
    NDF_CHECK_MSG(bool(os), "cannot write --csv=" << csv);
    serve::write_serve_csv(os, cells);
  }

  if (!trace_out.empty()) {
    obs::write_trace_file(trace_out, rec, sweep.scenario().name);
    // stderr: stdout must stay byte-identical with and without the flag
    // (the serve gate diffs it).
    std::fprintf(stderr, "trace: wrote %zu events to %s\n",
                 rec.events().size(), trace_out.c_str());
  }
  return 0;
}
