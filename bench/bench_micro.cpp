// E11 — google-benchmark microbenchmarks of the machinery itself: DRS
// elaboration throughput, work-stealing deque operations, executor
// overhead per strand, and analysis primitives.
#include <benchmark/benchmark.h>

#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/decompose.hpp"
#include "analysis/pcc.hpp"
#include "nd/drs.hpp"
#include "runtime/deque.hpp"
#include "runtime/executor.hpp"

namespace {

using namespace ndf;

void BM_ElaborateMM(benchmark::State& state) {
  SpawnTree t = make_mm_tree(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    StrandGraph g = elaborate(t);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.num_nodes()));
}
BENCHMARK(BM_ElaborateMM)->Arg(16)->Arg(32)->Arg(64);

void BM_ElaborateTRS(benchmark::State& state) {
  SpawnTree t = make_trs_tree(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    StrandGraph g = elaborate(t);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.num_nodes()));
}
BENCHMARK(BM_ElaborateTRS)->Arg(32)->Arg(64);

void BM_SpanLCS(benchmark::State& state) {
  SpawnTree t = make_lcs_tree(static_cast<std::size_t>(state.range(0)), 4);
  StrandGraph g = elaborate(t);
  for (auto _ : state) benchmark::DoNotOptimize(g.span());
}
BENCHMARK(BM_SpanLCS)->Arg(128)->Arg(256);

void BM_DequePushPop(benchmark::State& state) {
  WsDeque d(1 << 16);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) d.push(i);
    for (int i = 0; i < 1024; ++i) benchmark::DoNotOptimize(d.pop());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DequePushPop);

void BM_ExecutorOverheadPerStrand(benchmark::State& state) {
  // Structure-only MM: all scheduling, no kernel work.
  SpawnTree t = make_mm_tree(32, 4);
  StrandGraph g = elaborate(t);
  for (auto _ : state) {
    const ExecReport r =
        execute_parallel(g, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(r.strands);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.strand_count(t.root())));
}
BENCHMARK(BM_ExecutorOverheadPerStrand)->Arg(1)->Arg(4);

void BM_Decompose(benchmark::State& state) {
  SpawnTree t = make_trs_tree(128, 4);
  for (auto _ : state) {
    Decomposition d = decompose(t, 512.0);
    benchmark::DoNotOptimize(d.maximal.size());
  }
}
BENCHMARK(BM_Decompose);

void BM_Pcc(benchmark::State& state) {
  SpawnTree t = make_mm_tree(64, 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(parallel_cache_complexity(t, 768.0));
}
BENCHMARK(BM_Pcc);

}  // namespace

BENCHMARK_MAIN();
