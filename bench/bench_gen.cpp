// bench_gen — harness for the synthetic workload generator (src/gen/).
//
// Builds every requested workload spec (gen: or named), elaborates it, and
// prints one row per spec: structure (strands, edges, work, span,
// parallelism, wavefront width), the generated rule-table size, and the
// legality verdict (nd/validate + acyclicity + analysis/determinacy over
// the synthetic footprints). Exits non-zero if any spec fails legality —
// which makes this binary double as the generator's CI gate.
//
// Flags:
//   --workloads=<spec;spec;...>  any registry spec (default: a showcase of
//                                every gen family plus a random-sp spread)
//   --fuzz=<n>                   generate 2n workloads from n seeds (random
//                                sp + a structured family each), validate
//                                all, print a summary — the CI fuzz-smoke
//   --dump-dot=<path>            DOT of the first workload's strand DAG
//   --json=<path>                mirror the table (bench_common Output)
#include <iostream>

#include "bench_common.hpp"
#include "gen/gen.hpp"
#include "nd/stats.hpp"

using namespace ndf;

namespace {

const char* kShowcase =
    "gen:family=chain,n=64;"
    "gen:family=forkjoin,depth=8,fan=8;"
    "gen:family=diamond,depth=4,fan=6;"
    "gen:family=wavefront,n=24;"
    "gen:family=sp,depth=6,fan=3,seed=1;"
    "gen:family=sp,depth=8,fan=2,seed=2;"
    "gen:family=sp,depth=4,fan=6,seed=3,cross=60";

/// One table row; returns whether the spec passed every legality check.
bool add_row(Table& t, const exp::WorkloadSpec& spec) {
  const SpawnTree tree = exp::build_workload_tree(spec);
  const gen::GenReport rep = gen::check_generated(tree, spec.np);
  const DagStats st = compute_stats(elaborate(tree, {.np_mode = spec.np}));
  std::size_t rules = 0;
  for (FireType ty = 0; ty < FireType(tree.rules().num_types()); ++ty)
    rules += tree.rules().rules(ty).size();
  t.add_row({spec.label(), (long long)st.strands, (long long)st.edges,
             st.work, st.span, st.parallelism, (long long)st.max_level_width,
             (long long)rules, (long long)rep.conflicting_pairs,
             rep.ok() ? std::string("yes") : "NO: " + rep.message});
  return rep.ok();
}

/// The CI fuzz-smoke: n seeds, each yielding one random-sp spec (depth,
/// fan, work and cross-edge density all derived from the seed) plus one
/// structured-family spec with seed-derived sizes. Everything must pass
/// the full legality check.
bool fuzz(std::size_t n) {
  std::size_t built = 0;
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    gen::GenSpec sp;
    sp.family = "sp";
    sp.depth = 3 + seed % 5;
    sp.fan = 2 + seed % 4;
    sp.work = 16 + (seed * 7) % 80;
    sp.cross = (seed * 13) % 101;
    sp.seed = seed;

    gen::GenSpec fam;
    switch (seed % 4) {
      case 0:
        fam.family = "chain";
        fam.n = 1 + seed % 40;
        break;
      case 1:
        fam.family = "forkjoin";
        fam.depth = 1 + seed % 5;
        fam.fan = 1 + seed % 7;
        break;
      case 2:
        fam.family = "diamond";
        fam.depth = 1 + seed % 4;
        fam.fan = 1 + seed % 6;
        break;
      default:
        fam.family = "wavefront";
        fam.n = 1 + seed % 17;
        break;
    }

    for (const gen::GenSpec& g : {sp, fam}) {
      const SpawnTree tree = gen::generate(g);
      const gen::GenReport rep = gen::check_generated(tree);
      ++built;
      if (!rep.ok()) {
        std::cerr << "FUZZ FAIL: " << g.label() << ": " << rep.message
                  << "\n";
        return false;
      }
    }
  }
  std::cout << "fuzz: " << built << " generated workloads passed rule "
            << "validation, acyclicity and determinacy\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"workloads", "fuzz", "dump-dot", "json"},
                              "see the header of bench_gen.cpp");

  const long long fuzz_n = args.get("fuzz", 0LL);
  NDF_CHECK_MSG(fuzz_n >= 0, "--fuzz must be >= 0");
  if (fuzz_n > 0) return fuzz(std::size_t(fuzz_n)) ? 0 : 1;

  bench::Output out("gen", args);
  bench::heading("gen workload generator",
                 "Synthetic nested-dataflow workloads (src/gen/): structure "
                 "of each generated DAG and its legality verdict "
                 "(validate_rules + acyclic + determinacy).");

  const auto specs =
      exp::parse_workload_list(args.get("workloads", std::string(kShowcase)));
  NDF_CHECK_MSG(!specs.empty(), "no workloads — pass --workloads=...");

  bench::dump_dot_flag(args, specs.front());

  Table t("generated workloads");
  t.set_header({"workload", "strands", "edges", "work", "span", "par",
                "width", "rules", "conflicts", "legal"});
  bool all_ok = true;
  for (const exp::WorkloadSpec& s : specs) all_ok &= add_row(t, s);
  out.emit(t);
  if (!all_ok) {
    std::cerr << "bench_gen: at least one workload failed legality checks\n";
    return 1;
  }
  return 0;
}
