// E7 — SB scheduler bounds: Theorem 1 (misses at level j ≤ Q*(t;σMj)) and
// Theorem 3 / Eq. 22 (makespan within a modest factor of the perfectly
// balanced (T1 + Σ Q*(σMi)·Ci)/p when parallelism suffices).
//
// Flags: --sched=<policy> (default sb; ws/greedy show how far a
// non-space-bounded policy strays from the same bounds), --json=<path>.
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/pcc.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"
#include "sched/registry.hpp"
#include "sched/sb_scheduler.hpp"

using namespace ndf;

namespace {

template <typename Make>
void run(bench::Output& out, const std::string& policy,
         const std::string& name, Make make, std::size_t n, const Pmh& m) {
  SpawnTree tree = make(n, 4);
  StrandGraph g = elaborate(tree);
  SchedOptions opts;
  const SchedStats s = run_scheduler(policy, g, m, opts);
  const double ideal = sb_balanced_bound(tree, m, opts.sigma);

  Table t(name + " n=" + std::to_string(n) + " on " + m.to_string());
  t.set_header({"metric", "value", "bound", "ratio"});
  for (std::size_t l = 1; l <= m.num_cache_levels(); ++l) {
    const double q = parallel_cache_complexity(tree,
                                               opts.sigma * m.cache_size(l));
    t.add_row({std::string("misses L") + std::to_string(l), s.misses[l - 1],
               q, s.misses[l - 1] / q});
  }
  t.add_row({std::string("makespan"), s.makespan, ideal, s.makespan / ideal});
  t.add_row({std::string("utilization"), s.utilization, 1.0, s.utilization});
  out.emit(t);
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(args, {"sched", "json"},
                              "see the header of bench_sb_bounds.cpp");
  const std::string policy = bench::single_policy(args, "sb");
  bench::Output out("E7 sb-bounds/Thm 1+3", args);
  bench::heading("E7 sb-bounds/Thm 1+3",
                 "Theorem 1: level-j misses <= Q*(t;sigma*Mj). Eq. 22/Thm 3: "
                 "makespan within a constant factor vh of the balanced "
                 "bound when machine parallelism < alpha_max.");
  Pmh flat(PmhConfig::flat(8, 3 * 16 * 16, 10));
  Pmh deep(PmhConfig::two_tier(2, 4, 3 * 8 * 8, 3 * 32 * 32, 3, 30));
  run(out, policy, "MM(flat)",
      [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); }, 64,
      flat);
  run(out, policy, "TRS(flat)", make_trs_tree, 64, flat);
  run(out, policy, "LCS(flat)", make_lcs_tree, 256, flat);
  run(out, policy, "MM(2-tier)",
      [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); }, 64,
      deep);
  run(out, policy, "TRS(2-tier)", make_trs_tree, 64, deep);
  std::cout << "Expected shape: miss ratios <= 1 (Thm 1 holds); makespan "
               "ratio a small constant (the vh overhead).\n";
  return 0;
}
