// E6 — parallelizability αmax (Claims 2–3, Sec. 4): MM has
// αmax = 1 − log_M(1+c); the NP TRS drops to 1 − log_{min{N/M,M}}(1+c),
// strictly worse when N/M < M, while the ND TRS recovers MM-like αmax.
// We measure the Q̂α/Q* crossover on both elaborations of the same trees.
//
// Workloads come from the sweep subsystem's registry (src/exp/workload) so
// the grid here is the same spec strings ndf_sweep accepts; the analysis
// itself (αmax) has no scheduling component, so this wrapper expands the
// workload axis only.
#include "analysis/ecc.hpp"
#include "bench_common.hpp"
#include "exp/workload.hpp"
#include "nd/drs.hpp"

using namespace ndf;

namespace {

void sweep(const std::string& name, const std::string& algo,
           std::initializer_list<std::size_t> sizes, double M) {
  Table t(name + "  (alpha_max at M = " + std::to_string((long long)M) + ")");
  t.set_header({"n", "alpha_ND", "alpha_NP", "gap"});
  for (std::size_t n : sizes) {
    const exp::WorkloadSpec spec =
        exp::parse_workload(algo + ":n=" + std::to_string(n));
    SpawnTree tree = exp::build_workload_tree(spec);
    StrandGraph nd = elaborate(tree);
    StrandGraph np = elaborate(tree, {.np_mode = true});
    Decomposition d = decompose(tree, M);
    const double a_nd = parallelizability(tree, nd, d, 2.0);
    const double a_np = parallelizability(tree, np, d, 2.0);
    t.add_row({(long long)n, a_nd, a_np, a_nd - a_np});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::heading(
      "E6 parallelizability/Claims 2-3",
      "Claims 2-3: alpha_max(MM) ~ 1 - log_M(1+c); NP TRS loses "
      "parallelizability when N/M < M; ND TRS recovers it.");
  const double M = 3 * 8 * 8;
  sweep("MM", "mm", {32, 64, 128}, M);
  sweep("TRS", "trs", {32, 64, 128}, M);
  sweep("Cholesky", "cholesky", {32, 64, 128}, M);
  sweep("LCS", "lcs", {128, 256}, 32.0);
  std::cout << "Expected shape: alpha_ND >= alpha_NP everywhere; the gap is "
               "largest for TRS/Cholesky (the algorithms the NP model "
               "serializes), and MM shows little gap.\n";
  return 0;
}
