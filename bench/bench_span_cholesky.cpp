// E3 — Cholesky span: NP Θ(n log² n) vs ND Θ(n) (Sec. 3 Eqs. 10–12).
#include <cmath>

#include "algos/cholesky.hpp"
#include "bench_common.hpp"
#include "nd/drs.hpp"

using namespace ndf;

int main() {
  bench::heading("E3 span/Cholesky",
                 "Claim: T_inf(CHO) = Theta(n log^2 n) in NP vs Theta(n) in "
                 "ND (Eq. 12 solves to O(n)).");
  Table t("Cholesky span vs n");
  t.set_header({"n", "span_ND", "span_NP", "ND/n", "NP/(n log2^2 n)"});
  std::vector<double> ns, nds, nps;
  for (std::size_t n : {16, 32, 64, 128, 256}) {
    SpawnTree tree = make_cholesky_tree(n, 2);
    const double nd = elaborate(tree).span();
    const double np = elaborate(tree, {.np_mode = true}).span();
    const double l = std::log2(double(n));
    ns.push_back(double(n));
    nds.push_back(nd);
    nps.push_back(np);
    t.add_row({(long long)n, nd, np, nd / double(n), np / (double(n) * l * l)});
  }
  t.print(std::cout);
  bench::print_fit("ND span", ns, nds);
  bench::print_fit("NP span", ns, nps);
  std::cout << "Expected shape: ND exponent ~1.0; NP/(n log^2 n) roughly "
               "flat.\n";
  return 0;
}
