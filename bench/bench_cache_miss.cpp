// E14 — measured per-level misses vs the paper's Theorem 1 bound: run the
// occupancy-simulation layer (pmh/occupancy.hpp, always on here) over a
// kernels × σ × machines × policies grid and put the *measured* Q_i next
// to the *analytical* Q*(t; σ·Mi) from analysis/pcc, per cache level.
//
// This is the headline theory-vs-measurement experiment the simulator
// exists for: for every space-bounded (`sb`) run the bench CHECKS
// Q_i <= Q*(σMi) at every level and exits non-zero on any violation (the
// CI gate on Theorem 1), while `ws` rows show the bound failing without
// capacity reservations — stealing reloads scattered footprints past Q*.
//
// Flags:
//   --workloads=<spec;...>  default: all eight transcribed kernels at
//                           small n
//   --machines=<spec;...>   default: flat8;deep2x4
//   --sigma=<x,x,...>       default: 0.25,0.33...,0.5 (all swept values
//                           are gated for sb)
//   --sched=<name,...>      default: sb,ws,greedy,serial
//   --cache=<spec;...>      cache-model axis (pmh/cache_model.hpp): bare
//                           replacement names or full cache:repl=...,
//                           assoc=,line=,excl=,wb=,bw= specs; default the
//                           single ideal LRU model. The Theorem 1 CI gate
//                           applies only to default-model sb cells — rows
//                           under non-ideal models report where the bound
//                           survives or erodes, without failing the gate
//   --jobs=<n>              sweep workers (0 = hardware concurrency)
//   --json=<path>           mirror tables into BENCH_cache_miss.json
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "analysis/pcc.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "pmh/presets.hpp"

using namespace ndf;

namespace {

/// Q*(t; σM) per workload label, memoized — the grid revisits each
/// (workload, σ·M) pair once per machine sharing the profile and once per
/// policy.
class QStarCache {
 public:
  double get(const exp::WorkloadSpec& spec, double threshold) {
    const auto key = std::make_pair(spec.label(), threshold);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const auto t = trees_.find(spec.label());
    if (t == trees_.end())
      trees_.emplace(spec.label(), exp::build_workload_tree(spec));
    const double q =
        parallel_cache_complexity(trees_.at(spec.label()), threshold);
    memo_.emplace(key, q);
    return q;
  }

 private:
  std::map<std::string, SpawnTree> trees_;
  std::map<std::pair<std::string, double>, double> memo_;
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  bench::reject_unknown_flags(
      args,
      {"workloads", "machines", "sigma", "sched", "cache", "jobs", "json"},
      "see the header of bench_cache_miss.cpp");
  exp::Scenario s;
  s.name = "cache_miss";
  s.workloads = exp::parse_workload_list(args.get(
      "workloads",
      std::string("mm:n=32;trs:n=32;cholesky:n=32;lu:n=32;lcs:n=128;"
                  "gotoh:n=64;fw1d:n=16;fw2d:n=16")));
  s.machines = {"flat8", "deep2x4"};
  if (args.has("machines"))
    s.machines = bench::split_specs(args.get("machines", std::string()));
  s.policies = parse_sched_list(
      args.get("sched", std::string("sb,ws,greedy,serial")));
  s.sigmas = {0.25, 1.0 / 3.0, 0.5};
  if (args.has("sigma"))
    s.sigmas =
        bench::parse_double_list(args.get("sigma", std::string()), "sigma");
  s.measure_misses = true;  // the whole point of this bench
  if (args.has("cache"))
    s.cache_models = parse_cache_model_list(args.get("cache", std::string()));

  bench::Output out("E14 cache-miss/theorem1", args);
  bench::heading("E14 cache-miss/theorem1",
                 "Theorem 1, measured: simulated LRU occupancy counts the "
                 "level-i misses Q_i of each policy; space-bounded runs "
                 "must stay within Q*(t; sigma*Mi), work stealing need "
                 "not.");

  exp::Sweep sweep(s, bench::jobs_flag(args));
  const auto& runs = sweep.run();

  QStarCache qstar;
  bool any_model = false;
  for (const exp::RunPoint& r : runs)
    if (!r.cache.is_default()) any_model = true;
  // Per-model sb tallies: the Theorem 1 CI gate covers only the default
  // (ideal LRU) model; non-ideal models report where the bound survives or
  // erodes without failing the gate.
  std::size_t sb_cells = 0, sb_violations = 0, ws_exceeds = 0;
  std::map<std::string, std::pair<std::size_t, std::size_t>> model_sb;
  Table t("measured Q_i vs Q*(sigma*Mi), per cache level");
  {
    std::vector<std::string> header{"workload", "machine", "policy"};
    if (any_model) header.push_back("cache");
    for (const char* h : {"sigma", "level", "Q_i", "Q*", "Q_i/Q*", "within"})
      header.push_back(h);
    t.set_header(std::move(header));
  }
  for (const exp::RunPoint& r : runs) {
    const Pmh m = make_pmh(r.machine);
    for (std::size_t l = 1; l <= m.num_cache_levels(); ++l) {
      const double q = r.stats.measured_misses[l - 1];
      const double bound =
          qstar.get(r.workload, r.sigma * m.cache_size(l));
      const bool within = q <= bound;
      if (r.policy == "sb") {
        if (r.cache.is_default()) {
          ++sb_cells;
          if (!within) ++sb_violations;
        } else {
          auto& [cells, viols] = model_sb[r.cache.label()];
          ++cells;
          if (!within) ++viols;
        }
      }
      if (r.policy == "ws" && !within) ++ws_exceeds;
      std::vector<Cell> row{r.workload.label(), r.machine, r.policy};
      if (any_model) row.push_back(r.cache.label());
      row.push_back(r.sigma);
      row.push_back((long long)l);
      row.push_back(q);
      row.push_back(bound);
      row.push_back(q / std::max(1.0, bound));
      row.push_back(std::string(within ? "yes" : "NO"));
      t.add_row(std::move(row));
    }
  }
  out.emit(t);

  const auto swept = [&](const char* p) {
    return std::find(s.policies.begin(), s.policies.end(), p) !=
           s.policies.end();
  };
  if (swept("sb") && sb_cells > 0) {
    // "ideal LRU" qualifier only when other models share the grid — the
    // default-model output stays byte-identical to the pre-registry bench.
    std::cout << "sb: " << (sb_cells - sb_violations) << "/" << sb_cells
              << " level-cells within Q* (Theorem 1"
              << (any_model ? ", ideal LRU)" : ")");
    if (sb_violations) std::cout << " — " << sb_violations << " VIOLATIONS";
    std::cout << "\n";
  }
  // Non-ideal hardware models: report per model where sb's bound survives
  // and where it erodes. Informational — Theorem 1 assumes the ideal
  // cache, so these never fail the gate.
  for (const auto& [label, tally] : model_sb)
    std::cout << "sb under " << label << ": "
              << (tally.first - tally.second) << "/" << tally.first
              << " level-cells within Q* ("
              << (tally.second ? "bound erodes on this model"
                               : "bound survives this model")
              << ")\n";
  if (swept("ws"))
    std::cout << "ws: exceeded Q* on " << ws_exceeds
              << " level-cells (no capacity reservation, none expected to "
                 "hold)\n";
  if (sb_violations) {
    std::cerr << "FAIL: space-bounded measured misses exceeded the "
                 "Theorem 1 bound\n";
    return 1;
  }
  return 0;
}
