// Sequence alignment: LCS of two synthetic DNA sequences in the ND model
// (the paper's motivating dynamic-programming example, Fig. 1 / Sec. 3).
// Compares the ND and NP spans of the same program and runs the ND version
// on the multithreaded runtime.
#include <iostream>
#include <thread>

#include "algos/lcs.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

using namespace ndf;

int main() {
  const std::size_t n = 2048, base = 64;
  Rng rng(2026);
  std::vector<int> S(n), T(n);
  for (auto& x : S) x = int(rng.below(4));  // A,C,G,T
  // T: S with mutations, to make the LCS non-trivial.
  for (std::size_t i = 0; i < n; ++i)
    T[i] = rng.uniform() < 0.3 ? int(rng.below(4)) : S[i];

  Matrix<int> Xref(n + 1, n + 1, 0);
  const int expected = lcs_reference(S, T, Xref);

  SpawnTree t;
  const LcsTypes ty = LcsTypes::install(t);
  Matrix<int> X(n + 1, n + 1, 0);
  t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));

  StrandGraph nd = elaborate(t);
  StrandGraph np = elaborate(t, {.np_mode = true});
  std::cout << "LCS n=" << n << ", base " << base << "\n";
  std::cout << "  work " << nd.work() << ", ND span " << nd.span()
            << ", NP span " << np.span() << " (ratio "
            << np.span() / nd.span() << ")\n";

  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  const ExecReport r = execute_parallel(nd, hw);
  std::cout << "  runtime: " << r.strands << " strands, " << hw
            << " threads, " << r.seconds << "s, " << r.steals << " steals\n";
  std::cout << "  LCS length = " << X(n, n) << " (expected " << expected
            << ")\n";
  return X(n, n) == expected ? 0 : 1;
}
