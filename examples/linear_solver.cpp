// Dense SPD linear solver A·x = b built entirely from the paper's ND
// kernels: Cholesky factorization (Eq. 11) followed by two triangular
// solves (Eq. 4), all executed on the multithreaded ND runtime.
#include <cmath>
#include <iostream>
#include <thread>

#include "algos/cholesky.hpp"
#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

using namespace ndf;

int main() {
  const std::size_t n = 256, base = 32, nrhs = 64;
  Rng rng(7);

  // SPD system A = G·Gᵀ + n·I and random right-hand sides.
  Matrix<double> G(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) G(i, j) = rng.uniform(-1, 1);
  Matrix<double> A(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) A(i, j) += G(i, k) * G(j, k);
      if (i == j) A(i, j) += double(n);
    }
  Matrix<double> A0 = A;
  Matrix<double> B(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j) B(i, j) = rng.uniform(-1, 1);
  Matrix<double> X = B;

  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());

  // Factor: A = L·Lᵀ (in place, lower triangle).
  {
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_cholesky(t, ty, n, base, A.view()));
    StrandGraph g = elaborate(t);
    const ExecReport r = execute_parallel(g, hw);
    std::cout << "cholesky: span ND " << g.span() << " vs NP "
              << elaborate(t, {.np_mode = true}).span() << ", " << r.seconds
              << "s on " << hw << " threads\n";
  }
  // Solve L·Y = B.
  {
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_trs(t, ty, TrsSide::LeftLower, n, nrhs, base,
                         TrsViews{A.view(), X.view()}));
    execute_parallel(elaborate(t), hw);
  }
  // Solve Lᵀ·X = Y, i.e. Xᵀ·L = Yᵀ — use the right-variant on Xᵀ. We keep
  // X in place by solving column blocks: equivalently run RightLowerT on
  // the transpose; for clarity do a serial back-substitution here.
  for (std::size_t j = 0; j < nrhs; ++j)
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = X(ii, j);
      for (std::size_t k = ii + 1; k < n; ++k) acc -= A(k, ii) * X(k, j);
      X(ii, j) = acc / A(ii, ii);
    }

  // Verify ‖A0·X − B‖∞.
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j) {
      double acc = -B(i, j);
      for (std::size_t k = 0; k < n; ++k) acc += A0(i, k) * X(k, j);
      resid = std::max(resid, std::abs(acc));
    }
  std::cout << "solver residual (inf norm): " << resid << "\n";
  return resid < 1e-6 ? 0 : 1;
}
