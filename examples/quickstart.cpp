// Quickstart: the ND model in ~80 lines.
//
// 1. Build the paper's Fig. 3 program (MAIN = F ~FG~> G) by hand, inspect
//    its span under ND and NP semantics.
// 2. Build a real divide-and-conquer matrix multiply with the MM fire
//    construct, run it on the multithreaded runtime, and verify the result.
#include <iostream>

#include "algos/matmul.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

using namespace ndf;

int main() {
  // --- Part 1: hand-built fire construct (paper Fig. 3/4) ---------------
  SpawnTree t;
  const FireType fg = t.rules().add_type("FG");
  // +FG- = { +(1) ; -(1) }: only F's first subtask (A) gates G's first (C).
  t.rules().add_rule(fg, {1}, FireRules::kFull, {1});

  const NodeId A = t.strand(10, 1, "A");
  const NodeId B = t.strand(10, 1, "B");
  const NodeId C = t.strand(10, 1, "C");
  const NodeId D = t.strand(10, 1, "D");
  const NodeId F = t.seq({A, B}, 2, "F");
  const NodeId G = t.seq({C, D}, 2, "G");
  t.set_root(t.fire(fg, F, G, 4, "MAIN"));

  std::cout << "MAIN = (A;B) ~FG~> (C;D), all strands work 10\n";
  std::cout << "  ND span (max{A+B, A+C+D}): " << elaborate(t).span() << "\n";
  std::cout << "  NP span (A+B+C+D):        "
            << elaborate(t, {.np_mode = true}).span() << "\n\n";

  // --- Part 2: a real ND matrix multiply on the runtime ------------------
  const std::size_t n = 256, base = 32;
  Rng rng(1);
  Matrix<double> Am(n, n), Bm(n, n), Cm(n, n, 0.0), Cref(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      Am(i, j) = rng.uniform(-1, 1);
      Bm(i, j) = rng.uniform(-1, 1);
    }
  mm_reference(Am.view(), Bm.view(), Cref.view(), +1.0, false);

  SpawnTree mm;
  const LinalgTypes ty = LinalgTypes::install(mm);
  mm.set_root(build_mm(mm, ty, n, n, n, base, +1.0,
                       MmViews{Am.view(), Bm.view(), Cm.view(), false}));
  StrandGraph g = elaborate(mm);
  std::cout << "MM n=" << n << ": " << mm.num_nodes() << " spawn nodes, "
            << g.num_edges() << " DAG edges, work " << g.work() << ", span "
            << g.span() << "\n";

  const ExecReport r = execute_parallel(g, 4);
  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      err = std::max(err, std::abs(Cm(i, j) - Cref(i, j)));
  std::cout << "ran " << r.strands << " strands on 4 threads in " << r.seconds
            << "s (" << r.steals << " steals), max error " << err << "\n";
  return err < 1e-9 ? 0 : 1;
}
