// All-pairs shortest paths on a random weighted digraph via the
// divide-and-conquer Floyd-Warshall substrate (Sec. 3's "2D analog"),
// executed on the multithreaded runtime and verified against the classic
// triple loop.
#include <cmath>
#include <iostream>
#include <thread>

#include "algos/fw2d.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

using namespace ndf;

int main() {
  const std::size_t n = 256, base = 32;
  Rng rng(99);
  const double INF = 1e18;

  Matrix<double> D(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j)
        D(i, j) = 0.0;
      else if (rng.uniform() < 0.05)  // sparse edges
        D(i, j) = rng.uniform(1.0, 10.0);
      else
        D(i, j) = INF;
    }
  Matrix<double> Dref = D;
  fw2d_reference(Dref);

  SpawnTree t;
  t.set_root(build_fw2d_np(t, n, base, &D));
  StrandGraph g = elaborate(t);

  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  const ExecReport r = execute_parallel(g, hw);

  double err = 0.0;
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      err = std::max(err, std::abs(D(i, j) - Dref(i, j)));
      if (D(i, j) < INF / 2) ++reachable;
    }
  std::cout << "APSP n=" << n << ": " << r.strands << " strands on " << hw
            << " threads in " << r.seconds << "s\n";
  std::cout << "reachable pairs: " << reachable << " / " << n * n
            << ", max error vs reference: " << err << "\n";
  return err < 1e-9 ? 0 : 1;
}
