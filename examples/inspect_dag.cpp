// Inspect an algorithm's spawn tree and algorithm DAG: DOT export, DAG
// statistics and the wavefront (parallelism) profile, for the ND and NP
// semantics side by side.
//
//   ./inspect_dag --algo=lcs --n=64 --base=8 [--dot]
//                 [--sched=sb,ws,greedy,serial] [--p=8] [--M1=768]
//
// With --dot, prints the Graphviz sources (pipe into `dot -Tsvg`).
// With --sched, simulates the named registry policies on a flat PMH of
// --p processors with --M1-word caches and tabulates makespan and misses.
#include <iostream>

#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/lcs.hpp"
#include "algos/trs.hpp"
#include "nd/dot.hpp"
#include "nd/drs.hpp"
#include "nd/stats.hpp"
#include "sched/registry.hpp"
#include "support/args.hpp"
#include "support/table.hpp"

using namespace ndf;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string algo = args.get("algo", std::string("lcs"));
  const std::size_t n = std::size_t(args.get("n", 64LL));
  const std::size_t base = std::size_t(args.get("base", 8LL));

  SpawnTree tree = [&] {
    if (algo == "lcs") return make_lcs_tree(n, base);
    if (algo == "trs") return make_trs_tree(n, base);
    if (algo == "cho") return make_cholesky_tree(n, base);
    if (algo == "fw1d") return make_fw1d_tree(n, base);
    NDF_CHECK_MSG(false, "unknown --algo=" << algo
                                           << " (lcs|trs|cho|fw1d)");
    return make_lcs_tree(n, base);
  }();

  StrandGraph nd = elaborate(tree);
  StrandGraph np = elaborate(tree, {.np_mode = true});
  const DagStats snd = compute_stats(nd);
  const DagStats snp = compute_stats(np);

  std::cout << algo << " n=" << n << " base=" << base << ": "
            << tree.num_nodes() << " spawn nodes, " << snd.strands
            << " strands\n\n";
  Table t("ND vs NP");
  t.set_header({"metric", "ND", "NP"});
  t.add_row({std::string("edges"), (long long)snd.edges,
             (long long)snp.edges});
  t.add_row({std::string("span"), snd.span, snp.span});
  t.add_row({std::string("parallelism"), snd.parallelism, snp.parallelism});
  t.add_row({std::string("depth levels"), (long long)snd.depth_levels,
             (long long)snp.depth_levels});
  t.add_row({std::string("max wavefront"), (long long)snd.max_level_width,
             (long long)snp.max_level_width});
  t.print(std::cout);

  std::cout << "\nwavefront profile (strands ready per dependence depth):\n";
  const auto prof = parallelism_profile(nd);
  const auto prof_np = parallelism_profile(np);
  const std::size_t show = std::min<std::size_t>(prof.size(), 24);
  for (std::size_t d = 0; d < show; ++d) {
    std::cout << "  d" << d << "  ND " << std::string(prof[d], '#');
    if (d < prof_np.size())
      std::cout << "   NP " << std::string(prof_np[d], '+');
    std::cout << "\n";
  }
  if (prof.size() > show)
    std::cout << "  ... (" << prof.size() - show << " more levels)\n";

  const auto policies =
      parse_sched_list(args.get("sched", std::string("")));
  if (!policies.empty()) {
    Pmh m(PmhConfig::flat(std::size_t(args.get("p", 8LL)),
                          args.get("M1", 768.0), 10.0));
    Table st("simulated schedulers on " + m.to_string() +
             " (ND elaboration)");
    st.set_header({"policy", "makespan", "misses_L1", "utilization",
                   "anchors", "steals"});
    for (const std::string& p : policies) {
      const SchedStats s = run_scheduler(p, nd, m);
      st.add_row({p, s.makespan, s.misses[0], s.utilization,
                  (long long)s.anchors, (long long)s.steals});
    }
    std::cout << "\n";
    st.print(std::cout);
  }

  if (args.get("dot", false)) {
    std::cout << "\n--- spawn tree (DOT) ---\n" << to_dot(tree);
    std::cout << "\n--- algorithm DAG (DOT) ---\n" << to_dot(nd);
  }
  return 0;
}
