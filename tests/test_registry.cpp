// Tests of the scheduler-policy registry and cross-policy invariants of
// the shared simulation core:
//   R1  the four built-in policies are registered; unknown names throw;
//       parse_sched_list validates and deduplicates
//   R2  every registered policy conserves work and condenses the same
//       σM1-maximal atomic units on the same graph/σ
//   R3  sb, greedy and serial charge identical (schedule-independent)
//       miss totals; ws never charges fewer
//   R4  greedy (centralized Brent-style, Eq. 22 charge) lower-bounds ws up
//       to a small greedy-anomaly margin, and respects the executable
//       balance bound (total_work + miss_cost)/p — the Eq. (22) reference
//       with the actual condensed footprints
//   R5  serial is the determinism baseline: makespan is exactly
//       total_work + miss_cost and utilization is 1/p
//   R6  every policy is deterministic run-to-run
#include <gtest/gtest.h>

#include <functional>

#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "sched/registry.hpp"
#include "sched/sb_scheduler.hpp"

namespace ndf {
namespace {

struct RegistryCase {
  const char* name;
  std::function<SpawnTree()> make;
  double M1;
};

std::vector<RegistryCase> cases() {
  return {
      {"mm32", [] { return make_mm_tree(32, 4); }, 3 * 8 * 8.0},
      {"trs48", [] { return make_trs_tree(48, 4); }, 512.0},
      {"cho48", [] { return make_cholesky_tree(48, 4); }, 512.0},
      {"lcs192", [] { return make_lcs_tree(192, 4); }, 128.0},
  };
}

constexpr std::size_t kProcs = 8;

TEST(Registry, BuiltinsRegisteredAndUnknownNamesThrow) {  // R1
  for (const char* name : {"sb", "ws", "greedy", "serial"})
    EXPECT_TRUE(scheduler_registered(name)) << name;
  EXPECT_FALSE(scheduler_registered("nope"));
  EXPECT_GE(registered_schedulers().size(), 4u);
  SchedOptions o;
  EXPECT_THROW(make_scheduler("nope", o), CheckError);
  EXPECT_THROW(parse_sched_list("sb,nope"), CheckError);
  const auto list = parse_sched_list("ws,sb,ws");
  ASSERT_EQ(list.size(), 2u);  // deduplicated, order-preserving
  EXPECT_EQ(list[0], "ws");
  EXPECT_EQ(list[1], "sb");
}

TEST(Registry, UnknownPolicyErrorListsAvailableNames) {  // R1
  SchedOptions o;
  try {
    make_scheduler("nope", o);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scheduler 'nope'"), std::string::npos) << msg;
    for (const char* name : {"sb", "ws", "greedy", "serial"})
      EXPECT_NE(msg.find(name), std::string::npos) << name << ": " << msg;
  }
  try {
    parse_sched_list("sb,bogus");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scheduler 'bogus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("greedy"), std::string::npos) << msg;
  }
}

class RegistryProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  const RegistryCase& c() const {
    static const auto cs = cases();
    return cs[GetParam()];
  }
};

TEST_P(RegistryProperty, AllPoliciesConserveWorkAndUnits) {  // R2
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(kProcs, c().M1, 7));
  std::size_t units = 0;
  for (const SchedulerInfo& info : registered_schedulers()) {
    const SchedStats s = run_scheduler(info.name, g, m);
    EXPECT_DOUBLE_EQ(s.total_work, g.work()) << info.name;
    EXPECT_GT(s.atomic_units, 0u) << info.name;
    EXPECT_GT(s.makespan, 0.0) << info.name;
    ASSERT_EQ(s.misses.size(), m.num_cache_levels()) << info.name;
    if (units == 0)
      units = s.atomic_units;
    else
      EXPECT_EQ(s.atomic_units, units) << info.name;
  }
}

TEST_P(RegistryProperty, MissChargesConsistentAcrossPolicies) {  // R3
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(kProcs, c().M1, 7));
  const SchedStats sb = run_scheduler("sb", g, m);
  const SchedStats gr = run_scheduler("greedy", g, m);
  const SchedStats se = run_scheduler("serial", g, m);
  const SchedStats ws = run_scheduler("ws", g, m);
  for (std::size_t l = 0; l < m.num_cache_levels(); ++l) {
    // sb anchors every maximal task once; greedy/serial charge the same
    // condensed footprints directly.
    EXPECT_DOUBLE_EQ(sb.misses[l], gr.misses[l]);
    EXPECT_DOUBLE_EQ(sb.misses[l], se.misses[l]);
    EXPECT_GE(ws.misses[l], sb.misses[l] * 0.999);
  }
}

TEST_P(RegistryProperty, GreedyLowerBoundsWsAndRespectsBalance) {  // R4
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(kProcs, c().M1, 7));
  const SchedStats gr = run_scheduler("greedy", g, m);
  const SchedStats ws = run_scheduler("ws", g, m);
  // Ideal locality beats footprint-scattering stealing, up to a small
  // greedy-anomaly margin (nonclairvoyant FIFO order can locally lose).
  EXPECT_LE(gr.makespan, ws.makespan * 1.01);
  // Executable Eq. (22): perfect balance of work + distributed miss
  // latency is a hard lower bound...
  const double balance = (gr.total_work + gr.miss_cost) / double(kProcs);
  EXPECT_GE(gr.makespan, balance - 1e-6);
  // ...and it never exceeds the Q*-based analytical reference by more
  // than the Theorem-1 slack (actual condensed footprints <= Q*).
  EXPECT_LE(balance, sb_balanced_bound(t, m, SchedOptions{}.sigma) + 1e-6);
}

TEST_P(RegistryProperty, SerialIsTheDeterminismBaseline) {  // R5
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(kProcs, c().M1, 7));
  const SchedStats s = run_scheduler("serial", g, m);
  EXPECT_NEAR(s.makespan, s.total_work + s.miss_cost, 1e-6);
  EXPECT_NEAR(s.utilization, 1.0 / double(kProcs), 1e-9);
}

TEST_P(RegistryProperty, PoliciesAreDeterministicRunToRun) {  // R6
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(kProcs, c().M1, 7));
  for (const SchedulerInfo& info : registered_schedulers()) {
    const SchedStats a = run_scheduler(info.name, g, m);
    const SchedStats b = run_scheduler(info.name, g, m);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << info.name;
    EXPECT_DOUBLE_EQ(a.miss_cost, b.miss_cost) << info.name;
    EXPECT_EQ(a.steals, b.steals) << info.name;
    EXPECT_EQ(a.anchors, b.anchors) << info.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, RegistryProperty,
                         ::testing::Range<std::size_t>(0, cases().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           static const auto cs = cases();
                           return cs[i.param].name;
                         });

}  // namespace
}  // namespace ndf
