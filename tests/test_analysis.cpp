// Tests for M-maximal decomposition, parallel cache complexity Q*, the
// effective cache complexity Q̂α, and parallelizability estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/decompose.hpp"
#include "analysis/ecc.hpp"
#include "analysis/pcc.hpp"
#include "nd/drs.hpp"

namespace ndf {
namespace {

TEST(Decompose, CutsAtSizeThreshold) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 4.0);
  NodeId b = t.strand(1.0, 4.0);
  NodeId c = t.strand(1.0, 4.0);
  NodeId p = t.par({a, b}, 8.0);
  NodeId root = t.seq({p, c}, 12.0);
  t.set_root(root);

  // M = 9: p (size 8) and c (size 4) are maximal; root is glue.
  Decomposition d = decompose(t, 9.0);
  ASSERT_EQ(d.maximal.size(), 2u);
  EXPECT_EQ(d.maximal[0], p);
  EXPECT_EQ(d.maximal[1], c);
  EXPECT_EQ(d.glue.size(), 1u);
  EXPECT_TRUE(d.is_glue(root));
  EXPECT_EQ(d.owner[a], 0);
  EXPECT_EQ(d.owner[b], 0);
  EXPECT_EQ(d.owner[c], 1);

  // M large: the root itself is maximal.
  Decomposition dall = decompose(t, 100.0);
  ASSERT_EQ(dall.maximal.size(), 1u);
  EXPECT_EQ(dall.maximal[0], root);
  EXPECT_TRUE(dall.glue.empty());
}

TEST(Decompose, OversizedStrandBecomesMaximal) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 50.0);  // bigger than M
  NodeId b = t.strand(1.0, 2.0);
  t.set_root(t.seq({a, b}, 52.0));
  Decomposition d = decompose(t, 10.0);
  ASSERT_EQ(d.maximal.size(), 2u);
  EXPECT_EQ(d.maximal[0], a);
}

TEST(Pcc, SumsMaximalSizesPlusGlue) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 4.0);
  NodeId b = t.strand(1.0, 4.0);
  t.set_root(t.seq({a, b}, 12.0));
  // M=5: two maximal strands (4+4) + 1 glue node.
  EXPECT_DOUBLE_EQ(parallel_cache_complexity(t, 5.0), 8.0 + kGlueCost);
  // M=12: the root is maximal.
  EXPECT_DOUBLE_EQ(parallel_cache_complexity(t, 12.0), 12.0);
}

TEST(Pcc, MatmulScalesAsNCubedOverSqrtM) {
  // Claim 1: Q*(N;M) = O(N^1.5/M^0.5) with N = n² (i.e. n³/√M).
  const double M = 3 * 8 * 8;  // fits an 8×8 sub-multiply footprint
  const double q16 = parallel_cache_complexity(make_mm_tree(16, 4), M);
  const double q32 = parallel_cache_complexity(make_mm_tree(32, 4), M);
  const double q64 = parallel_cache_complexity(make_mm_tree(64, 4), M);
  EXPECT_NEAR(q32 / q16, 8.0, 1.0);  // n³ scaling at fixed M
  EXPECT_NEAR(q64 / q32, 8.0, 1.0);
  // At fixed n, quadrupling M should halve Q* (up to rounding of the cut).
  const double qm = parallel_cache_complexity(make_mm_tree(64, 4), 4 * M);
  EXPECT_NEAR(q64 / qm, 2.0, 0.6);
}

TEST(Pcc, LcsScalesAsNSquaredOverM) {
  // Claim 1: LCS has Q*(n;M) = O(n²/M) under the linear-space footprint.
  const double M = 64;
  const double q256 = parallel_cache_complexity(make_lcs_tree(256, 4), M);
  const double q512 = parallel_cache_complexity(make_lcs_tree(512, 4), M);
  EXPECT_NEAR(q512 / q256, 4.0, 0.5);  // n² scaling
  const double qm = parallel_cache_complexity(make_lcs_tree(512, 4), 2 * M);
  EXPECT_NEAR(q512 / qm, 2.0, 0.5);  // 1/M scaling
}

TEST(Ecc, WorkDominatedAtAlphaZero) {
  SpawnTree t = make_mm_tree(16, 4);
  StrandGraph g = elaborate(t);
  Decomposition d = decompose(t, 3.0 * 8 * 8);
  const double q_star = parallel_cache_complexity(t, d);
  EccResult r = effective_cache_complexity(t, g, d, 0.0);
  // At α = 0 every task has effective depth ~ its Q*, and the work term is
  // the whole Q*; ECC must be within a constant of Q*.
  EXPECT_GE(r.q_hat, q_star - d.glue.size() * kGlueCost);
  EXPECT_LE(r.q_hat, 2.0 * q_star);
}

TEST(Ecc, DepthTermGrowsWithAlpha) {
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Decomposition d = decompose(t, 64.0);
  const EccResult lo = effective_cache_complexity(t, g, d, 0.1);
  const EccResult hi = effective_cache_complexity(t, g, d, 1.2);
  // Normalized by s^α, the depth term can only become more dominant.
  EXPECT_GE(hi.depth_term / std::max(1.0, hi.work_term),
            lo.depth_term / std::max(1.0, lo.work_term));
}

TEST(Ecc, SerialChainIsDepthDominated) {
  // A pure serial chain of equal strands: the chain term must dominate for
  // any α > 0.
  SpawnTree t;
  std::vector<NodeId> ss;
  for (int i = 0; i < 8; ++i) ss.push_back(t.strand(1.0, 4.0));
  t.set_root(t.seq(std::move(ss), 32.0));
  StrandGraph g = elaborate(t);
  Decomposition d = decompose(t, 4.0);
  EccResult r = effective_cache_complexity(t, g, d, 1.0);
  EXPECT_DOUBLE_EQ(r.depth_term, 8.0);  // 8 tasks in a chain, ⌈4^0⌉ each
  EXPECT_GE(r.effective_depth, r.work_term);
}

TEST(Parallelizability, NdTrsBeatsNpTrs) {
  // Sec. 4: TRS loses parallelizability in the NP model; the ND model
  // recovers it. Compare αmax estimated on the same spawn tree under the
  // two elaborations.
  SpawnTree t = make_trs_tree(64, 4);
  StrandGraph nd = elaborate(t);
  StrandGraph np = elaborate(t, {.np_mode = true});
  Decomposition d = decompose(t, 96.0);
  const double a_nd = parallelizability(t, nd, d, 2.0);
  const double a_np = parallelizability(t, np, d, 2.0);
  EXPECT_GE(a_nd, a_np);
  EXPECT_GT(a_nd, 0.0);
}

TEST(MaximalDag, CondensationIsAcyclicAndConnectsChains) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 4.0);
  NodeId b = t.strand(1.0, 4.0);
  NodeId c = t.strand(1.0, 4.0);
  t.set_root(t.seq({a, b, c}, 12.0));
  StrandGraph g = elaborate(t);
  Decomposition d = decompose(t, 4.0);
  MaximalDag m = build_maximal_dag(g, d);
  EXPECT_EQ(m.num_maximal, 3u);
  const double chain = m.longest_chain({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(chain, 3.0);
}

}  // namespace
}  // namespace ndf
