// Unit tests for the support library: matrices, RNG, fitting, tables.
#include <gtest/gtest.h>

#include <cmath>

#include "support/fit.hpp"
#include "support/matrix.hpp"
#include "support/mem.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace ndf {
namespace {

TEST(Matrix, BasicAccess) {
  Matrix<double> m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(Matrix, ViewBlockAddressing) {
  Matrix<double> m(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = double(10 * i + j);
  auto v = m.view();
  auto b = v.block(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 23.0);
  b(0, 1) = -1.0;
  EXPECT_DOUBLE_EQ(m(1, 3), -1.0);
}

TEST(Matrix, QuadrantsOfEvenMatrix) {
  Matrix<double> m(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = double(10 * i + j);
  auto v = m.view();
  EXPECT_DOUBLE_EQ(v.quadrant(0, 0)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(v.quadrant(0, 1)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(v.quadrant(1, 0)(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(v.quadrant(1, 1)(1, 1), 33.0);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix<double> m(4, 4);
  EXPECT_THROW(m.view().block(2, 2, 3, 3), CheckError);
}

TEST(MemSegment, OverlapDetection) {
  MemSegment a{100, 200}, b{150, 250}, c{200, 300};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // half-open ranges touch but don't overlap
}

TEST(MemSegment, ViewSegmentsRespectStride) {
  Matrix<double> m(4, 4);
  auto left = m.view().block(0, 0, 4, 2);
  auto right = m.view().block(0, 2, 4, 2);
  EXPECT_FALSE(segments_overlap(segments_of(left), segments_of(right)));
  auto mid = m.view().block(0, 1, 4, 2);
  EXPECT_TRUE(segments_overlap(segments_of(left), segments_of(mid)));
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng r(123);
  double sum = 0;
  const int N = 20000;
  for (int i = 0; i < N; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / N, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Fit, RecoversLinearCoefficients) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 2.0);
  }
  auto f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, LogLogRecoversExponent) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 10; ++i) {
    const double x = std::pow(2.0, i);
    xs.push_back(x);
    ys.push_back(5.0 * x * std::sqrt(x));  // exponent 1.5
  }
  auto f = fit_loglog(xs, ys);
  EXPECT_NEAR(f.slope, 1.5, 1e-9);
}

TEST(Fit, RejectsDegenerateInput) {
  std::vector<double> xs{1.0, 1.0}, ys{2.0, 3.0};
  EXPECT_THROW(fit_linear(xs, ys), CheckError);
  std::vector<double> neg{-1.0, 2.0};
  EXPECT_THROW(fit_loglog(neg, ys), CheckError);
}

TEST(Table, RendersAlignedRowsAndCsv) {
  Table t("demo");
  t.set_header({"n", "value"});
  t.add_row({(long long)8, 3.25});
  t.add_row({(long long)16, std::string("x")});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "n,value\n8,3.25\n16,x\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({(long long)1}), CheckError);
}

}  // namespace
}  // namespace ndf
