// Tests for the PMH machine model's index arithmetic and the named-preset
// machine parser the sweep subsystem selects machines with.
#include <gtest/gtest.h>

#include "pmh/machine.hpp"
#include "pmh/presets.hpp"

namespace ndf {
namespace {

TEST(Pmh, FlatMachineShape) {
  Pmh m(PmhConfig::flat(8, 1024, 10));
  EXPECT_EQ(m.num_cache_levels(), 1u);
  EXPECT_EQ(m.num_processors(), 8u);
  EXPECT_EQ(m.num_caches(1), 8u);  // one private cache per processor
  EXPECT_DOUBLE_EQ(m.cache_size(1), 1024);
  EXPECT_DOUBLE_EQ(m.miss_cost(1), 10);
  EXPECT_EQ(m.cache_above(5, 1), 5u);
}

TEST(Pmh, TwoTierShapeAndAncestors) {
  // 4 sockets × 8 cores.
  Pmh m(PmhConfig::two_tier(4, 8, 256, 8192, 3, 30));
  EXPECT_EQ(m.num_cache_levels(), 2u);
  EXPECT_EQ(m.num_processors(), 32u);
  EXPECT_EQ(m.num_caches(2), 4u);
  EXPECT_EQ(m.num_caches(1), 32u);
  EXPECT_EQ(m.procs_per_cache(1), 1u);
  EXPECT_EQ(m.procs_per_cache(2), 8u);
  EXPECT_EQ(m.cache_above(0, 2), 0u);
  EXPECT_EQ(m.cache_above(7, 2), 0u);
  EXPECT_EQ(m.cache_above(8, 2), 1u);
  EXPECT_EQ(m.cache_above(31, 2), 3u);
  EXPECT_EQ(m.cache_above(13, 1), 13u);
}

TEST(Pmh, LcaLevels) {
  Pmh m(PmhConfig::two_tier(2, 4, 64, 1024, 1, 10));
  EXPECT_EQ(m.lca_level(0, 0), 0u);
  EXPECT_EQ(m.lca_level(0, 1), 2u);   // same socket, different L1
  EXPECT_EQ(m.lca_level(0, 4), 3u);   // different sockets → memory
}

TEST(Pmh, RejectsDecreasingCacheSizes) {
  PmhConfig cfg;
  cfg.levels.push_back(LevelSpec{1024, 2, 1});
  cfg.levels.push_back(LevelSpec{64, 2, 10});  // smaller above — invalid
  EXPECT_THROW(Pmh{cfg}, CheckError);
}

TEST(Pmh, ToStringMentionsShape) {
  Pmh m(PmhConfig::flat(4, 100, 5));
  const std::string s = m.to_string();
  EXPECT_NE(s.find("p=4"), std::string::npos);
}

TEST(PmhPresets, ParametricSpecsParse) {
  const Pmh flat = make_pmh("flat:p=4,m1=100,c1=5");
  EXPECT_EQ(flat.num_cache_levels(), 1u);
  EXPECT_EQ(flat.num_processors(), 4u);
  EXPECT_DOUBLE_EQ(flat.cache_size(1), 100);
  EXPECT_DOUBLE_EQ(flat.miss_cost(1), 5);

  const Pmh two = make_pmh("twotier:s=2,c=4,m1=64,m2=1024,c1=1,c2=10");
  EXPECT_EQ(two.num_cache_levels(), 2u);
  EXPECT_EQ(two.num_processors(), 8u);
  EXPECT_DOUBLE_EQ(two.cache_size(1), 64);
  EXPECT_DOUBLE_EQ(two.cache_size(2), 1024);
  EXPECT_DOUBLE_EQ(two.miss_cost(2), 10);

  // Omitted keys take the family defaults.
  const Pmh dflt = make_pmh("flat:p=2");
  EXPECT_EQ(dflt.num_processors(), 2u);
  EXPECT_DOUBLE_EQ(dflt.cache_size(1), 768);
}

TEST(PmhPresets, NamedPresetsAllConstruct) {
  const auto presets = pmh_presets();
  EXPECT_GE(presets.size(), 5u);
  for (const PmhPresetInfo& info : presets) {
    const Pmh m = make_pmh(info.name);
    EXPECT_GT(m.num_processors(), 0u) << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
  // Spot-check the ones the benches rely on.
  EXPECT_EQ(make_pmh("flat16").num_processors(), 16u);
  EXPECT_EQ(make_pmh("deep4x4").num_processors(), 16u);
  EXPECT_EQ(make_pmh("deep2x4").num_cache_levels(), 2u);
}

TEST(PmhPresets, BadSpecsThrowListingWhatExists) {
  try {
    make_pmh("nope");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown machine preset 'nope'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("flat16"), std::string::npos) << msg;
  }
  EXPECT_THROW(make_pmh("mystery:p=1"), CheckError);  // unknown family
  EXPECT_THROW(make_pmh("flat:zz=1"), CheckError);    // unknown key
  EXPECT_THROW(make_pmh("flat:p=abc"), CheckError);   // not a number
  EXPECT_THROW(make_pmh("flat:p"), CheckError);       // no value
  EXPECT_THROW(make_pmh("flat:p=-2"), CheckError);    // negative count
  EXPECT_THROW(make_pmh("flat:p=4.5"), CheckError);   // fractional count
  EXPECT_THROW(make_pmh("flat:p=0"), CheckError);     // zero count
  EXPECT_THROW(make_pmh("twotier:s=2.5"), CheckError);
  EXPECT_THROW(make_pmh("flat:m1=0"), CheckError);    // degenerate size
  EXPECT_THROW(make_pmh("flat:m1=-64"), CheckError);
  EXPECT_THROW(make_pmh("flat:c1=-1"), CheckError);   // negative cost
  EXPECT_THROW(make_pmh("twotier:m2=0"), CheckError);
  EXPECT_THROW(make_pmh("flat:p=1e20"), CheckError);  // > size_t range
}

}  // namespace
}  // namespace ndf
