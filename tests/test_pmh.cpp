// Tests for the PMH machine model's index arithmetic.
#include <gtest/gtest.h>

#include "pmh/machine.hpp"

namespace ndf {
namespace {

TEST(Pmh, FlatMachineShape) {
  Pmh m(PmhConfig::flat(8, 1024, 10));
  EXPECT_EQ(m.num_cache_levels(), 1u);
  EXPECT_EQ(m.num_processors(), 8u);
  EXPECT_EQ(m.num_caches(1), 8u);  // one private cache per processor
  EXPECT_DOUBLE_EQ(m.cache_size(1), 1024);
  EXPECT_DOUBLE_EQ(m.miss_cost(1), 10);
  EXPECT_EQ(m.cache_above(5, 1), 5u);
}

TEST(Pmh, TwoTierShapeAndAncestors) {
  // 4 sockets × 8 cores.
  Pmh m(PmhConfig::two_tier(4, 8, 256, 8192, 3, 30));
  EXPECT_EQ(m.num_cache_levels(), 2u);
  EXPECT_EQ(m.num_processors(), 32u);
  EXPECT_EQ(m.num_caches(2), 4u);
  EXPECT_EQ(m.num_caches(1), 32u);
  EXPECT_EQ(m.procs_per_cache(1), 1u);
  EXPECT_EQ(m.procs_per_cache(2), 8u);
  EXPECT_EQ(m.cache_above(0, 2), 0u);
  EXPECT_EQ(m.cache_above(7, 2), 0u);
  EXPECT_EQ(m.cache_above(8, 2), 1u);
  EXPECT_EQ(m.cache_above(31, 2), 3u);
  EXPECT_EQ(m.cache_above(13, 1), 13u);
}

TEST(Pmh, LcaLevels) {
  Pmh m(PmhConfig::two_tier(2, 4, 64, 1024, 1, 10));
  EXPECT_EQ(m.lca_level(0, 0), 0u);
  EXPECT_EQ(m.lca_level(0, 1), 2u);   // same socket, different L1
  EXPECT_EQ(m.lca_level(0, 4), 3u);   // different sockets → memory
}

TEST(Pmh, RejectsDecreasingCacheSizes) {
  PmhConfig cfg;
  cfg.levels.push_back(LevelSpec{1024, 2, 1});
  cfg.levels.push_back(LevelSpec{64, 2, 10});  // smaller above — invalid
  EXPECT_THROW(Pmh{cfg}, CheckError);
}

TEST(Pmh, ToStringMentionsShape) {
  Pmh m(PmhConfig::flat(4, 100, 5));
  const std::string s = m.to_string();
  EXPECT_NE(s.find("p=4"), std::string::npos);
}

}  // namespace
}  // namespace ndf
