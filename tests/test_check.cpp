// Tests for the invariant-checking layer itself.
#include <gtest/gtest.h>

#include <string>

#include "support/check.hpp"

namespace ndf {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(NDF_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(NDF_CHECK_MSG(true, "unused"));
}

TEST(Check, FailureCarriesExpressionAndLocation) {
  try {
    NDF_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, MessageFormattingStreamsValues) {
  try {
    const int n = 41;
    NDF_CHECK_MSG(n == 42, "expected 42, got " << n);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("expected 42, got 41"),
              std::string::npos);
  }
}

TEST(Check, IsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(NDF_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace ndf
