// Tests of the space-bounded and work-stealing scheduler simulators:
// completion, work conservation, Theorem 1 miss bounds, monotone speedup,
// and the ND-vs-NP load-balance gap the schedulers are supposed to expose.
#include <gtest/gtest.h>

#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/pcc.hpp"
#include "nd/drs.hpp"
#include "sched/sb_scheduler.hpp"
#include "sched/ws_scheduler.hpp"

namespace ndf {
namespace {

TEST(SbScheduler, SerialMachineMatchesTotalDuration) {
  SpawnTree t = make_mm_tree(16, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(1, 3.0 * 8 * 8 * 3, 10));
  SchedOptions opts;
  const SchedStats s = run_sb_scheduler(g, m, opts);
  // One processor: makespan = work + all distributed miss latency.
  EXPECT_NEAR(s.makespan, s.total_work + s.miss_cost, 1e-6);
  EXPECT_DOUBLE_EQ(s.total_work, g.work());
  EXPECT_NEAR(s.utilization, 1.0, 1e-9);
}

TEST(SbScheduler, MissesMatchTheorem1Bound) {
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 512, 10));
  SchedOptions opts;
  const SchedStats s = run_sb_scheduler(g, m, opts);
  // Theorem 1: misses at level j <= Q*(t; σMj). Our accounting charges
  // exactly the anchored footprints, so this holds with the glue slack.
  const double q = parallel_cache_complexity(t, opts.sigma * 512);
  EXPECT_LE(s.misses[0], q);
  EXPECT_GT(s.misses[0], 0.0);
}

TEST(SbScheduler, SpeedupIsMonotoneAndBounded) {
  SpawnTree t = make_lcs_tree(128, 4);
  StrandGraph g = elaborate(t);
  double prev = 0.0;
  double t1 = 0.0;
  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    Pmh m(PmhConfig::flat(p, 256, 5));
    const SchedStats s = run_sb_scheduler(g, m);
    if (p == 1) t1 = s.makespan;
    const double speedup = t1 / s.makespan;
    EXPECT_GE(speedup, prev * 0.999);  // monotone (allowing fp noise)
    EXPECT_LE(speedup, double(p) + 1e-9);
    prev = speedup;
  }
  EXPECT_GT(prev, 2.0);  // 8 processors must beat 2x on a 128 LCS
}

TEST(SbScheduler, NdBeatsNpOnTrs) {
  // The extra readiness from partial dependencies must shorten the
  // simulated makespan (this is the paper's central scheduling claim).
  SpawnTree t = make_trs_tree(64, 4);
  StrandGraph nd = elaborate(t);
  StrandGraph np = elaborate(t, {.np_mode = true});
  Pmh m(PmhConfig::flat(16, 1024, 10));
  const double ms_nd = run_sb_scheduler(nd, m).makespan;
  const double ms_np = run_sb_scheduler(np, m).makespan;
  EXPECT_LT(ms_nd, ms_np);
}

TEST(SbScheduler, RespectsBalancedLowerBound) {
  SpawnTree t = make_mm_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(8, 3 * 16 * 16, 10));
  const SchedStats s = run_sb_scheduler(g, m);
  // Makespan can't beat perfect balance of work alone.
  EXPECT_GE(s.makespan * 8.0, s.total_work - 1e-6);
}

TEST(SbScheduler, TwoTierMachineCompletes) {
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::two_tier(2, 4, 256, 4096, 2, 20));
  const SchedStats s = run_sb_scheduler(g, m);
  EXPECT_GT(s.makespan, 0.0);
  ASSERT_EQ(s.misses.size(), 2u);
  EXPECT_GT(s.misses[1], 0.0);
  const double q2 = parallel_cache_complexity(t, 4096.0 / 3.0);
  EXPECT_LE(s.misses[1], q2);
}

TEST(SbScheduler, ChargeMissesOffGivesPureWorkMakespanOnOneProc) {
  SpawnTree t = make_mm_tree(8, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(1, 256, 100));
  SchedOptions opts;
  opts.charge_misses = false;
  const SchedStats s = run_sb_scheduler(g, m, opts);
  EXPECT_NEAR(s.makespan, g.work(), 1e-9);
}

TEST(WsScheduler, CompletesAndConservesWork) {
  SpawnTree t = make_lcs_tree(64, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 256, 5));
  const SchedStats s = run_ws_scheduler(g, m);
  EXPECT_DOUBLE_EQ(s.total_work, g.work());
  EXPECT_GT(s.makespan, 0.0);
  EXPECT_GT(s.atomic_units, 0u);
}

TEST(WsScheduler, SbHasNoMoreMissesThanWs) {
  // The anchoring property preserves locality; random stealing scatters
  // tasks and reloads footprints (the [47,48] observation).
  SpawnTree t = make_mm_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(8, 3 * 16 * 16, 10));
  const SchedStats sb = run_sb_scheduler(g, m);
  const SchedStats ws = run_ws_scheduler(g, m);
  EXPECT_LE(sb.misses[0], ws.misses[0] * 1.001);
}

TEST(WsScheduler, DeterministicForFixedSeed) {
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 512, 5));
  SchedOptions o;
  o.seed = 7;
  const SchedStats a = run_ws_scheduler(g, m, o);
  const SchedStats b = run_ws_scheduler(g, m, o);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.steals, b.steals);
}

}  // namespace
}  // namespace ndf
