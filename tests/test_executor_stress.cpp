// Stress tests of the real-thread executor: randomized seq/par/fire spawn
// trees whose strands record execution counts and happens-before
// timestamps; under heavy thread counts every strand must run exactly
// once and every dependence edge must be respected.
#include <gtest/gtest.h>

#include <atomic>

#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace ndf {
namespace {

struct Recorder {
  std::atomic<std::uint64_t> clock{0};
  // Per strand: execution count and (start, end) logical timestamps.
  std::vector<std::atomic<int>> runs;
  std::vector<std::uint64_t> start, end;

  explicit Recorder(std::size_t n) : runs(n), start(n), end(n) {}
};

/// Builds a random tree of depth `depth`; returns node and registers
/// strand indices in order.
NodeId random_tree(SpawnTree& t, Rng& rng, Recorder& rec,
                   std::vector<FireType>& types, int depth,
                   std::size_t& next_strand) {
  if (depth == 0 || rng.uniform() < 0.25) {
    const std::size_t ix = next_strand++;
    NDF_CHECK(ix < rec.runs.size());
    Recorder* r = &rec;
    return t.strand(1.0, 1.0, "s" + std::to_string(ix), [r, ix] {
      r->start[ix] = r->clock.fetch_add(1);
      r->runs[ix].fetch_add(1);
      r->end[ix] = r->clock.fetch_add(1);
    });
  }
  const double kind = rng.uniform();
  NodeId a = random_tree(t, rng, rec, types, depth - 1, next_strand);
  NodeId b = random_tree(t, rng, rec, types, depth - 1, next_strand);
  if (kind < 0.35) return t.seq({a, b}, 2.0);
  if (kind < 0.7) return t.par({a, b}, 2.0);
  // Fire with a randomly chosen registered type.
  return t.fire(types[rng.below(types.size())], a, b, 2.0);
}

struct StressCase {
  std::uint64_t seed;
  std::size_t threads;
};

class ExecutorStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ExecutorStress, EveryStrandOnceAndOrdered) {
  const auto [seed, threads] = GetParam();
  Rng rng(seed);
  SpawnTree t;
  // A few fire types: one full-ish, one sparse, one empty.
  std::vector<FireType> types;
  const FireType full = t.rules().add_type("FULLISH");
  t.rules().add_rule(full, {1}, FireRules::kFull, {1});
  t.rules().add_rule(full, {2}, FireRules::kFull, {1});
  t.rules().add_rule(full, {2}, FireRules::kFull, {2});
  const FireType sparse = t.rules().add_type("SPARSE");
  t.rules().add_rule(sparse, {1}, sparse, {1});
  const FireType none = t.rules().add_type("NONE");
  types = {full, sparse, none};

  Recorder rec(1 << 12);
  std::size_t next = 0;
  t.set_root(random_tree(t, rng, rec, types, 9, next));
  // Ensure the root is composite (random_tree may return a lone strand).
  if (t.node(t.root()).kind == Kind::Strand) {
    GTEST_SKIP() << "degenerate single-strand tree";
  }

  StrandGraph g = elaborate(t);
  const ExecReport r = execute_parallel(g, threads);
  EXPECT_EQ(r.strands, next);
  for (std::size_t i = 0; i < next; ++i)
    EXPECT_EQ(rec.runs[i].load(), 1) << "strand " << i;

  // Happens-before: for every task-level arrow, all source-subtree strands
  // end before any sink-subtree strand starts.
  auto strand_ix = [&](NodeId n) {
    return std::stoul(t.node(n).label.substr(1));
  };
  for (const TaskArrow& a : g.arrows()) {
    std::uint64_t src_end = 0, dst_start = ~0ULL;
    for (NodeId s : t.strands_under(a.from))
      src_end = std::max(src_end, rec.end[strand_ix(s)]);
    for (NodeId s : t.strands_under(a.to))
      dst_start = std::min(dst_start, rec.start[strand_ix(s)]);
    EXPECT_LT(src_end, dst_start)
        << "arrow " << a.from << "->" << a.to << " violated";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ExecutorStress,
    ::testing::Values(StressCase{1, 2}, StressCase{2, 4}, StressCase{3, 4},
                      StressCase{4, 8}, StressCase{5, 8}, StressCase{6, 3},
                      StressCase{7, 4}, StressCase{8, 8}),
    [](const ::testing::TestParamInfo<StressCase>& i) {
      return "seed" + std::to_string(i.param.seed) + "t" +
             std::to_string(i.param.threads);
    });

TEST(ExecutorStressExtra, RepeatedLargeParallelRuns) {
  // A wide, shallow tree exercised repeatedly to shake out deque races.
  for (int rep = 0; rep < 10; ++rep) {
    SpawnTree t;
    std::atomic<int> count{0};
    std::vector<NodeId> leaves;
    for (int i = 0; i < 512; ++i)
      leaves.push_back(t.strand(1, 1, "", [&count] { count.fetch_add(1); }));
    // Binary par tree.
    while (leaves.size() > 1) {
      std::vector<NodeId> next_lvl;
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
        next_lvl.push_back(t.par({leaves[i], leaves[i + 1]}, 2.0));
      if (leaves.size() % 2) next_lvl.push_back(leaves.back());
      leaves.swap(next_lvl);
    }
    t.set_root(leaves[0]);
    execute_parallel(elaborate(t), 8);
    ASSERT_EQ(count.load(), 512) << "rep " << rep;
  }
}

}  // namespace
}  // namespace ndf
