// Stress tests of the real-thread executor: randomized seq/par/fire spawn
// trees whose strands record execution counts and happens-before
// timestamps; under heavy thread counts every strand must run exactly
// once and every dependence edge must be respected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "nd/drs.hpp"
#include "pmh/presets.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace ndf {
namespace {

struct Recorder {
  std::atomic<std::uint64_t> clock{0};
  // Per strand: execution count and (start, end) logical timestamps.
  std::vector<std::atomic<int>> runs;
  std::vector<std::uint64_t> start, end;

  explicit Recorder(std::size_t n) : runs(n), start(n), end(n) {}
};

/// Builds a random tree of depth `depth`; returns node and registers
/// strand indices in order.
NodeId random_tree(SpawnTree& t, Rng& rng, Recorder& rec,
                   std::vector<FireType>& types, int depth,
                   std::size_t& next_strand) {
  if (depth == 0 || rng.uniform() < 0.25) {
    const std::size_t ix = next_strand++;
    NDF_CHECK(ix < rec.runs.size());
    Recorder* r = &rec;
    return t.strand(1.0, 1.0, "s" + std::to_string(ix), [r, ix] {
      r->start[ix] = r->clock.fetch_add(1);
      r->runs[ix].fetch_add(1);
      r->end[ix] = r->clock.fetch_add(1);
    });
  }
  const double kind = rng.uniform();
  NodeId a = random_tree(t, rng, rec, types, depth - 1, next_strand);
  NodeId b = random_tree(t, rng, rec, types, depth - 1, next_strand);
  if (kind < 0.35) return t.seq({a, b}, 2.0);
  if (kind < 0.7) return t.par({a, b}, 2.0);
  // Fire with a randomly chosen registered type.
  return t.fire(types[rng.below(types.size())], a, b, 2.0);
}

struct StressCase {
  std::uint64_t seed;
  std::size_t threads;
};

class ExecutorStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ExecutorStress, EveryStrandOnceAndOrdered) {
  const auto [seed, threads] = GetParam();
  Rng rng(seed);
  SpawnTree t;
  // A few fire types: one full-ish, one sparse, one empty.
  std::vector<FireType> types;
  const FireType full = t.rules().add_type("FULLISH");
  t.rules().add_rule(full, {1}, FireRules::kFull, {1});
  t.rules().add_rule(full, {2}, FireRules::kFull, {1});
  t.rules().add_rule(full, {2}, FireRules::kFull, {2});
  const FireType sparse = t.rules().add_type("SPARSE");
  t.rules().add_rule(sparse, {1}, sparse, {1});
  const FireType none = t.rules().add_type("NONE");
  types = {full, sparse, none};

  Recorder rec(1 << 12);
  std::size_t next = 0;
  t.set_root(random_tree(t, rng, rec, types, 9, next));
  // Ensure the root is composite (random_tree may return a lone strand).
  if (t.node(t.root()).kind == Kind::Strand) {
    GTEST_SKIP() << "degenerate single-strand tree";
  }

  StrandGraph g = elaborate(t);
  const ExecReport r = execute_parallel(g, threads);
  EXPECT_EQ(r.strands, next);
  for (std::size_t i = 0; i < next; ++i)
    EXPECT_EQ(rec.runs[i].load(), 1) << "strand " << i;

  // Happens-before: for every task-level arrow, all source-subtree strands
  // end before any sink-subtree strand starts.
  auto strand_ix = [&](NodeId n) {
    return std::stoul(t.node(n).label.substr(1));
  };
  for (const TaskArrow& a : g.arrows()) {
    std::uint64_t src_end = 0, dst_start = ~0ULL;
    for (NodeId s : t.strands_under(a.from))
      src_end = std::max(src_end, rec.end[strand_ix(s)]);
    for (NodeId s : t.strands_under(a.to))
      dst_start = std::min(dst_start, rec.start[strand_ix(s)]);
    EXPECT_LT(src_end, dst_start)
        << "arrow " << a.from << "->" << a.to << " violated";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ExecutorStress,
    ::testing::Values(StressCase{1, 2}, StressCase{2, 4}, StressCase{3, 4},
                      StressCase{4, 8}, StressCase{5, 8}, StressCase{6, 3},
                      StressCase{7, 4}, StressCase{8, 8}),
    [](const ::testing::TestParamInfo<StressCase>& i) {
      return "seed" + std::to_string(i.param.seed) + "t" +
             std::to_string(i.param.threads);
    });

// ------------------------------------------------------- chaos scheduling
//
// Fuzz the executor's schedule space: random trees, random thread counts,
// random modes (ws / sb over random machine presets), with chaos delays
// injected before and after every strand body so steal interleavings vary
// wildly between iterations. Every perturbation derives deterministically
// from the iteration's chaos seed, and every failure prints a one-line
// reproduction recipe. NDF_CHAOS_ITERS scales the loop: the sanitizer CI
// jobs run the short default, nightly cranks it up.

std::size_t chaos_iters() {
  if (const char* e = std::getenv("NDF_CHAOS_ITERS")) {
    const long v = std::atol(e);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 6;
}

TEST(ExecutorChaos, FuzzedSchedulesStayCorrect) {
  const Pmh machines[] = {make_pmh("flat8"), make_pmh("deep2x4")};
  const std::size_t iters = chaos_iters();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t master = 0xC4A05ULL * (iter + 1);
    Rng rng(master);
    SpawnTree t;
    std::vector<FireType> types;
    const FireType full = t.rules().add_type("FULLISH");
    t.rules().add_rule(full, {1}, FireRules::kFull, {1});
    t.rules().add_rule(full, {2}, FireRules::kFull, {1});
    const FireType sparse = t.rules().add_type("SPARSE");
    t.rules().add_rule(sparse, {1}, sparse, {1});
    types = {full, sparse};

    Recorder rec(1 << 12);
    std::size_t next = 0;
    t.set_root(random_tree(t, rng, rec, types, 8, next));
    if (t.node(t.root()).kind == Kind::Strand) continue;

    ExecOptions opts;
    opts.threads = 2 + rng.below(7);  // 2..8
    opts.seed = rng();           // steal-order fuzz
    opts.chaos.enabled = true;
    opts.chaos.seed = rng();     // strand-delay fuzz
    opts.chaos.max_delay_spins = 1u << (4 + rng.below(6));  // 16..512
    const bool sb = rng.uniform() < 0.5;
    if (sb) {
      opts.mode = ExecMode::Sb;
      opts.machine = &machines[rng.below(2)];
    }
    // The full recipe: reconstructing `master` regenerates the tree and
    // every option above, so this line alone reproduces the schedule.
    const std::string recipe =
        "NDF_CHAOS repro: iter=" + std::to_string(iter) +
        " master_seed=" + std::to_string(master) +
        " threads=" + std::to_string(opts.threads) +
        " mode=" + (sb ? std::string("sb") : std::string("ws")) +
        " exec_seed=" + std::to_string(opts.seed) +
        " chaos_seed=" + std::to_string(opts.chaos.seed) +
        " max_delay_spins=" + std::to_string(opts.chaos.max_delay_spins);

    StrandGraph g = elaborate(t);
    const ExecReport r = execute(g, opts);
    ASSERT_EQ(r.strands, next) << recipe;
    for (std::size_t i = 0; i < next; ++i)
      ASSERT_EQ(rec.runs[i].load(), 1) << "strand " << i << "\n" << recipe;
    auto strand_ix = [&](NodeId n) {
      return std::stoul(t.node(n).label.substr(1));
    };
    for (const TaskArrow& a : g.arrows()) {
      std::uint64_t src_end = 0, dst_start = ~0ULL;
      for (NodeId s : t.strands_under(a.from))
        src_end = std::max(src_end, rec.end[strand_ix(s)]);
      for (NodeId s : t.strands_under(a.to))
        dst_start = std::min(dst_start, rec.start[strand_ix(s)]);
      ASSERT_LT(src_end, dst_start)
          << "arrow " << a.from << "->" << a.to << " violated\n" << recipe;
    }
  }
}

TEST(ExecutorChaos, SameSeedSameStealCounts) {
  // Chaos perturbations are a pure function of (chaos seed, strand id), and
  // single-worker runs have no steal nondeterminism — so a 1-thread chaos
  // run must be bitwise repeatable in its report, and a multi-thread run
  // must stay correct when repeated with identical seeds.
  Rng rng(99);
  SpawnTree t;
  std::vector<FireType> types;
  const FireType sparse = t.rules().add_type("SPARSE");
  t.rules().add_rule(sparse, {1}, sparse, {1});
  types = {sparse};
  Recorder rec(1 << 12);
  std::size_t next = 0;
  t.set_root(random_tree(t, rng, rec, types, 8, next));
  if (t.node(t.root()).kind == Kind::Strand)
    GTEST_SKIP() << "degenerate single-strand tree";
  StrandGraph g = elaborate(t);

  ExecOptions opts;
  opts.threads = 1;
  opts.chaos.enabled = true;
  opts.chaos.seed = 7;
  const ExecReport a = execute(g, opts);
  const ExecReport b = execute(g, opts);
  EXPECT_EQ(a.strands, b.strands);
  EXPECT_EQ(a.steals, 0u);
  EXPECT_EQ(b.steals, 0u);
}

TEST(ExecutorStressExtra, RepeatedLargeParallelRuns) {
  // A wide, shallow tree exercised repeatedly to shake out deque races.
  for (int rep = 0; rep < 10; ++rep) {
    SpawnTree t;
    std::atomic<int> count{0};
    std::vector<NodeId> leaves;
    for (int i = 0; i < 512; ++i)
      leaves.push_back(t.strand(1, 1, "", [&count] { count.fetch_add(1); }));
    // Binary par tree.
    while (leaves.size() > 1) {
      std::vector<NodeId> next_lvl;
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
        next_lvl.push_back(t.par({leaves[i], leaves[i + 1]}, 2.0));
      if (leaves.size() % 2) next_lvl.push_back(leaves.back());
      leaves.swap(next_lvl);
    }
    t.set_root(leaves[0]);
    execute_parallel(elaborate(t), 8);
    ASSERT_EQ(count.load(), 512) << "rep " << rep;
  }
}

}  // namespace
}  // namespace ndf
