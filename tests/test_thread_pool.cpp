// Tests of the reusable thread pool (src/support/thread_pool.hpp):
//   P1  construction/size, zero-worker rejection, default_jobs sanity
//   P2  FIFO ordering: one worker makes the pool a strict serial executor
//   P3  results and exceptions travel through futures; a throwing task
//       does not poison the pool or unwind a worker
//   P4  destruction drains the queue — every queued task runs exactly once
//   P5  many tasks across many workers all run exactly once (wait_all)
//   P6  parallel_for_chunks partitions [0, n) into contiguous ranges that
//       cover every index exactly once, clamps chunk counts, and rethrows
//       a chunk's failure after the others finished
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace ndf {
namespace {

TEST(ThreadPool, SizeAndZeroWorkersRejected) {  // P1
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_THROW(ThreadPool(0), CheckError);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {  // P2
  std::vector<int> order;
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
      futs.push_back(pool.submit([i, &order] { order.push_back(i); }));
    wait_all(futs);
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, FuturesCarryResults) {  // P3
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesWithoutPoisoningThePool) {  // P3
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survived; the pool still runs work after the throw.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, WaitAllRethrowsFirstFailureInSubmissionOrder) {  // P3
  ThreadPool pool(2);
  std::vector<std::future<void>> futs;
  futs.push_back(pool.submit([] {}));
  futs.push_back(pool.submit([] { throw std::invalid_argument("second"); }));
  futs.push_back(pool.submit([] { throw std::runtime_error("third"); }));
  try {
    wait_all(futs);
    FAIL() << "expected the first stored exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "second");
  }
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {  // P4
  std::atomic<int> ran{0};
  {
    // One slow worker guarantees tasks are still queued when the
    // destructor runs; drain semantics say they all execute anyway.
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i)
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ParallelForChunksCoversEveryIndexOnce) {  // P6
  ThreadPool pool(4);
  for (const std::size_t n : {1u, 7u, 100u, 1000u}) {
    for (const std::size_t chunks : {1u, 3u, 16u, 2000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      std::atomic<std::size_t> ranges{0};
      parallel_for_chunks(pool, n, chunks,
                          [&](std::size_t b, std::size_t e) {
                            EXPECT_LT(b, e);
                            ranges.fetch_add(1, std::memory_order_relaxed);
                            for (std::size_t i = b; i < e; ++i)
                              hits[i].fetch_add(1, std::memory_order_relaxed);
                          });
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " chunks=" << chunks
                                     << " i=" << i;
      // Chunk counts are clamped to [1, n], never oversplit into empties.
      EXPECT_EQ(ranges.load(), std::min(std::max<std::size_t>(chunks, 1), n));
    }
  }
  // n == 0 is a no-op, not a division by zero.
  parallel_for_chunks(pool, 0, 4, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForChunksRethrowsAfterSiblingsFinish) {  // P6
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for_chunks(pool, 100, 10, [&](std::size_t b, std::size_t) {
      if (b == 0) throw std::runtime_error("chunk zero failed");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the chunk's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk zero failed");
  }
  // wait_all semantics: every sibling chunk ran to completion before the
  // rethrow handed control back.
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPool, WorkerStatsAccountForEveryTask) {
  ThreadPool pool(3);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 60; ++i)
    futs.push_back(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }));
  wait_all(futs);
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 3u);
  std::size_t tasks = 0;
  for (const auto& w : stats) {
    tasks += w.tasks;
    EXPECT_GE(w.busy_s, 0.0);
    if (w.tasks > 0) {
      EXPECT_GT(w.busy_s, 0.0);
    }
  }
  EXPECT_EQ(tasks, 60u);
}

TEST(ThreadPool, ManyTasksAcrossManyWorkersRunExactlyOnce) {  // P5
  std::atomic<int> ran{0};
  ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  futs.reserve(500);
  for (int i = 0; i < 500; ++i)
    futs.push_back(pool.submit(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  wait_all(futs);
  EXPECT_EQ(ran.load(), 500);
}

}  // namespace
}  // namespace ndf
