// Tests for the observability subsystem (src/obs/):
//   O1  metrics: nearest_rank matches the legacy inline percentile formula;
//       Log2Histogram bucket edges, zero bucket, the exact ≤ p < 2·exact
//       percentile bound, merge, and JSON emission; registry determinism
//   O2  recorder: the event stream's unit trace is element-identical to a
//       legacy SchedOptions::trace capture of the SAME run; event counts
//       match the run's stats; queue waits are causally ordered
//   O3  tracing is observational: sweep and serve emitter output is
//       byte-identical with a sink attached and without, at --jobs=1 and 4,
//       and the recorded stream itself is identical at every worker count
//   O4  cache events: per-level kMiss words sum to the run's measured Q_i
//   O5  exporters: a golden Chrome-trace fixture from a synthetic recorder;
//       structural checks on a real run's export; CSV row count
//   O6  serve reports carry the `metrics` histograms
//   O7  progress meter: heartbeat lines on an explicit stream, silent when
//       disabled
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "algos/lcs.hpp"
#include "algos/trs.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "nd/drs.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/recorder.hpp"
#include "sched/registry.hpp"
#include "sched/trace.hpp"
#include "serve/engine.hpp"
#include "serve/report.hpp"

namespace ndf {
namespace {

// ---------------------------------------------------------------- O1 ----

/// The formula that lived inline in src/serve/engine.cpp before the shared
/// implementation existed — the equivalence oracle.
double legacy_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double n = double(sorted.size());
  const std::size_t rank = std::size_t(std::max(1.0, std::ceil(q * n)));
  return sorted[std::min(rank, sorted.size()) - 1];
}

TEST(Metrics, NearestRankMatchesLegacyFormula) {  // O1
  std::vector<double> xs;
  for (int i = 1; i <= 137; ++i) xs.push_back(double(i * i % 97) + 0.5);
  std::sort(xs.begin(), xs.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(obs::nearest_rank(xs, q), legacy_percentile(xs, q)) << q;
  EXPECT_DOUBLE_EQ(obs::nearest_rank({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::nearest_rank({7.0}, 0.5), 7.0);
}

TEST(Metrics, Log2HistogramBucketEdgesAreInclusive) {  // O1
  obs::Log2Histogram h;
  // 8 = 2^3 sits exactly on a bucket edge: it belongs to bucket e=3
  // ((4, 8]), so the quantized percentile is exact for powers of two.
  h.record(8.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(4), 0u);
  // 8 + ε crosses into (8, 16].
  obs::Log2Histogram h2;
  h2.record(8.0001);
  EXPECT_DOUBLE_EQ(h2.percentile(1.0), 16.0);
}

TEST(Metrics, Log2HistogramZeroBucketAndStats) {  // O1
  obs::Log2Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty
  h.record(0.0);
  h.record(-3.0);
  h.record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.zero_count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0 / 3.0);
  // Ranks 1 and 2 fall in the zero bucket, rank 3 in (2, 4].
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(Metrics, HistogramPercentileWithinTwoOfExact) {  // O1
  // Deterministic pseudo-random positive samples across many magnitudes.
  std::vector<double> xs;
  std::uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = double(state >> 11) / double(1ULL << 53);
    xs.push_back(std::ldexp(0.5 + u, int(state % 40) - 20));
  }
  obs::Log2Histogram h;
  for (double x : xs) h.record(x);
  std::sort(xs.begin(), xs.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = obs::nearest_rank(xs, q);
    const double approx = h.percentile(q);
    EXPECT_GE(approx, exact) << q;
    EXPECT_LT(approx, 2.0 * exact) << q;
  }
}

TEST(Metrics, HistogramMerge) {  // O1
  obs::Log2Histogram a, b;
  a.record(1.0);
  a.record(100.0);
  b.record(0.0);
  b.record(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.zero_count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.sum(), 104.0);
}

TEST(Metrics, RegistryJsonIsDeterministic) {  // O1
  obs::MetricsRegistry r;
  r.add("zeta", 2.0);
  r.add("alpha");
  r.histogram("lat").record(2.0);
  std::ostringstream os;
  r.write_json(os);
  // Counters first, then histograms, each sorted by name.
  EXPECT_EQ(os.str(),
            "{\"alpha\": 1, \"zeta\": 2, \"lat\": "
            "{\"count\": 1, \"zero\": 0, \"min\": 2, \"max\": 2, "
            "\"mean\": 2, \"buckets\": [{\"le\": 2, \"n\": 1}]}}");
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(obs::MetricsRegistry().empty());
}

// ---------------------------------------------------------------- O2 ----

TEST(Recorder, UnitTraceIsIdenticalToLegacyCapture) {  // O2
  SpawnTree t = make_lcs_tree(128, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 256, 5));
  Trace legacy;
  obs::EventRecorder rec;
  SchedOptions opts;
  opts.trace = &legacy;  // both captures attached to the SAME run
  opts.sink = &rec;
  const SchedStats s = run_scheduler("sb", g, m, opts);

  EXPECT_EQ(rec.count(obs::Event::Kind::kUnit), s.atomic_units);
  EXPECT_EQ(rec.count(obs::Event::Kind::kWait), s.atomic_units);
  const Trace from_events = rec.unit_trace();
  ASSERT_EQ(from_events.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_events[i].start, legacy[i].start) << i;
    EXPECT_DOUBLE_EQ(from_events[i].end, legacy[i].end) << i;
    EXPECT_EQ(from_events[i].proc, legacy[i].proc) << i;
    EXPECT_EQ(from_events[i].unit_root, legacy[i].unit_root) << i;
  }
  std::string msg;
  EXPECT_TRUE(validate_trace(from_events, m.num_processors(), &msg)) << msg;
}

TEST(Recorder, QueueWaitsAreCausal) {  // O2
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 512, 5));
  obs::EventRecorder rec;
  SchedOptions opts;
  opts.sink = &rec;
  run_scheduler("ws", g, m, opts);
  for (const obs::Event& e : rec.events()) {
    if (e.kind != obs::Event::Kind::kWait) continue;
    EXPECT_LE(e.t0, e.t1);  // ready at or before dispatch
    EXPECT_GE(e.t0, 0.0);
  }
}

TEST(Recorder, OffsetSinkShiftsAllTimestamps) {  // O2
  obs::EventRecorder rec;
  obs::OffsetSink off(&rec, 100.0);
  off.on_unit(1.0, 2.0, 0, 5, 9);
  off.on_queue_wait(0.5, 1.0, 0, 5);
  off.on_cache(obs::CacheEvent::kMiss, 1.5, 1, 0, 7, 64.0, 64.0);
  off.on_job(obs::JobEvent::kComplete, 2.0, 3, 0, "");
  ASSERT_EQ(rec.events().size(), 4u);
  EXPECT_DOUBLE_EQ(rec.events()[0].t0, 101.0);
  EXPECT_DOUBLE_EQ(rec.events()[0].t1, 102.0);
  EXPECT_DOUBLE_EQ(rec.events()[1].t0, 100.5);
  EXPECT_DOUBLE_EQ(rec.events()[2].t0, 101.5);
  EXPECT_DOUBLE_EQ(rec.events()[3].t0, 102.0);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.count(obs::Event::Kind::kUnit), 0u);
}

// ---------------------------------------------------------------- O4 ----

TEST(Recorder, MissWordsSumToMeasuredMisses) {  // O4
  SpawnTree t = make_lcs_tree(128, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 96, 5));
  obs::EventRecorder rec;
  SchedOptions opts;
  opts.measure_misses = true;
  opts.sink = &rec;
  const SchedStats s = run_scheduler("ws", g, m, opts);
  ASSERT_FALSE(s.measured_misses.empty());
  EXPECT_GT(rec.count(obs::Event::Kind::kCache), 0u);
  // Events carry 1-based levels; stats.measured_misses[l] is level l+1.
  std::vector<double> by_level(s.measured_misses.size(), 0.0);
  for (const obs::Event& e : rec.events()) {
    if (e.kind != obs::Event::Kind::kCache) continue;
    if (obs::CacheEvent(e.sub) != obs::CacheEvent::kMiss) continue;
    ASSERT_GE(e.c, 1);
    ASSERT_LE(std::size_t(e.c), by_level.size());
    by_level[std::size_t(e.c) - 1] += e.words;
  }
  for (std::size_t l = 0; l < by_level.size(); ++l)
    EXPECT_DOUBLE_EQ(by_level[l], s.measured_misses[l]) << "L" << (l + 1);
}

TEST(Recorder, SinkAloneDoesNotChangeStatsOrReportMisses) {  // O3
  SpawnTree t = make_lcs_tree(128, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 96, 5));
  SchedOptions plain;
  const SchedStats base = run_scheduler("ws", g, m, plain);
  obs::EventRecorder rec;
  SchedOptions traced;
  traced.sink = &rec;
  const SchedStats s = run_scheduler("ws", g, m, traced);
  // The sink turns the occupancy simulation on (cache events flow) but the
  // measured-Q stats stay suppressed, so outputs are unchanged.
  EXPECT_GT(rec.count(obs::Event::Kind::kCache), 0u);
  EXPECT_TRUE(s.measured_misses.empty());
  EXPECT_DOUBLE_EQ(s.makespan, base.makespan);
  EXPECT_DOUBLE_EQ(s.utilization, base.utilization);
  EXPECT_DOUBLE_EQ(s.miss_cost, base.miss_cost);
}

// ---------------------------------------------------------------- O3 ----

std::string emit_sweep(const std::vector<exp::RunPoint>& runs) {
  std::ostringstream os;
  exp::results_table("t", runs).print(os);
  exp::write_sweep_json(os, "t", runs);
  exp::write_sweep_csv(os, runs);
  return os.str();
}

exp::Scenario obs_sweep_scenario() {
  exp::Scenario s;
  s.name = "obs";
  s.workloads = exp::parse_workload_list("mm:n=32;lcs:n=96");
  s.machines = {"flat8", "deep2x4"};
  s.policies = {"sb", "ws", "greedy"};
  s.sigmas = {1.0 / 3.0, 0.5};
  s.repeats = 2;
  return s;
}

TEST(Sweep, OutputByteIdenticalWithTracingOn) {  // O3
  const exp::Scenario plain = obs_sweep_scenario();
  exp::Sweep base(plain, 1);
  const std::string golden = emit_sweep(base.run());

  std::string first_csv;
  for (const std::size_t jobs : {1u, 4u}) {
    obs::EventRecorder rec;
    exp::Scenario s = obs_sweep_scenario();
    s.trace_sink = &rec;
    exp::Sweep sweep(s, jobs);
    EXPECT_EQ(emit_sweep(sweep.run()), golden) << jobs << " jobs";
    // Cell 0 really was traced: its full unit timeline is in the stream.
    EXPECT_EQ(rec.count(obs::Event::Kind::kUnit),
              sweep.results()[0].stats.atomic_units)
        << jobs << " jobs";
    EXPECT_GT(rec.count(obs::Event::Kind::kCache), 0u) << jobs << " jobs";
    // The recorded stream itself is identical at every worker count
    // (compare the full CSV rendering — every field of every event).
    std::ostringstream csv;
    obs::write_events_csv(csv, rec);
    if (first_csv.empty())
      first_csv = csv.str();
    else
      EXPECT_EQ(csv.str(), first_csv);
  }
}

serve::ServeScenario obs_serve_scenario() {
  serve::ServeScenario s;
  s.name = "obs-serve";
  const serve::ArrivalSpec spec = serve::parse_arrivals(
      "poisson:rate=0.0005,jobs=10,tenants=3,deadline=40000");
  s.mix = exp::parse_workload_list("mm:n=32;gen:family=sp,depth=5,fan=3,seed=3");
  s.jobs = serve::expand_open_arrivals(spec, s.mix);
  s.machines = {"flat16"};
  s.policies = {"sb", "edf"};
  return s;
}

std::string emit_serve(const std::vector<serve::ServeCell>& cells) {
  std::ostringstream os;
  serve::summary_table("t", cells).print(os);
  serve::write_serve_json(os, "t", cells);
  serve::write_serve_csv(os, cells);
  return os.str();
}

TEST(Serve, OutputByteIdenticalWithTracingOn) {  // O3, O6
  serve::ServeSweep base(obs_serve_scenario(), 1);
  const std::string golden = emit_serve(base.run());

  for (const std::size_t jobs : {1u, 2u}) {
    obs::EventRecorder rec;
    serve::ServeScenario s = obs_serve_scenario();
    s.trace_sink = &rec;
    serve::ServeSweep sweep(s, jobs);
    const auto& cells = sweep.run();
    EXPECT_EQ(emit_serve(cells), golden) << jobs << " jobs";
    // Cell 0's stream: every job contributes at least arrival + admit +
    // complete, and its simulation events ride along.
    EXPECT_GE(rec.count(obs::Event::Kind::kJob), 3 * cells[0].jobs.size())
        << jobs << " jobs";
    EXPECT_GT(rec.count(obs::Event::Kind::kUnit), 0u) << jobs << " jobs";
    EXPECT_GT(rec.count(obs::Event::Kind::kCache), 0u) << jobs << " jobs";
    // Job events are on the global service axis: the last completion's
    // timestamp equals the cell horizon.
    double last_complete = -1.0;
    for (const obs::Event& e : rec.events())
      if (e.kind == obs::Event::Kind::kJob &&
          obs::JobEvent(e.sub) == obs::JobEvent::kComplete)
        last_complete = std::max(last_complete, e.t0);
    EXPECT_DOUBLE_EQ(last_complete, cells[0].summary.horizon)
        << jobs << " jobs";
  }
}

TEST(Serve, JsonCarriesMetricsHistograms) {  // O6
  serve::ServeSweep sweep(obs_serve_scenario(), 1);
  const auto& cells = sweep.run();
  std::ostringstream os;
  serve::write_serve_json(os, "m", cells);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"latency\": {\"count\": "), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\": {\"count\": "), std::string::npos);

  // The histogram agrees with the exact summary stats it rides next to.
  const serve::ServeSummary& sum = cells[0].summary;
  const auto& lat = sum.metrics.histograms().at("latency");
  EXPECT_EQ(lat.count(), sum.completed);
  EXPECT_DOUBLE_EQ(lat.max(), sum.latency_max);
  const double p99 = lat.percentile(0.99);
  EXPECT_GE(p99, sum.latency_p99);
  EXPECT_LT(p99, 2.0 * sum.latency_p99);
}

TEST(Serve, EmptyStreamStillReportsMetricsKey) {  // O6
  serve::ServeScenario s;
  s.machines = {"flat16"};
  s.policies = {"sb"};
  serve::ServeSweep sweep(s, 1);
  const auto& cells = sweep.run();
  std::ostringstream os;
  serve::write_serve_json(os, "empty", cells);
  EXPECT_NE(os.str().find("\"latency\": {\"count\": 0"), std::string::npos);
}

// ---------------------------------------------------------------- O5 ----

TEST(ChromeTrace, GoldenFixture) {  // O5
  obs::EventRecorder rec;
  rec.on_unit(0.0, 2.0, 0, 0, 5);
  rec.on_queue_wait(0.0, 2.0, 1, 1);
  rec.on_cache(obs::CacheEvent::kMiss, 1.0, 1, 0, 42, 64.0, 64.0);
  rec.on_cache(obs::CacheEvent::kHit, 1.25, 1, 0, 42, 64.0, 64.0);  // elided
  rec.on_job(obs::JobEvent::kArrival, 0.0, 7, 3, "acme");
  rec.on_job(obs::JobEvent::kAdmit, 1.5, 7, 3, "mm:n=32");
  rec.on_job(obs::JobEvent::kComplete, 4.0, 7, 3, "");
  std::ostringstream os;
  obs::write_chrome_trace(os, rec, "golden");
  const std::string expected =
      "{\"otherData\": {\"name\": \"golden\", "
      "\"generator\": \"ndf --trace-out\"},\n"
      "\"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
      "\"args\": {\"name\": \"processors\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, "
      "\"args\": {\"name\": \"proc 0\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 1, "
      "\"args\": {\"name\": \"proc 1\"}},\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"caches\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"L1 cache 0\"}},\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
      "\"args\": {\"name\": \"service\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 2, \"tid\": 3, "
      "\"args\": {\"name\": \"acme\"}},\n"
      "  {\"name\": \"u0\", \"cat\": \"unit\", \"ph\": \"X\", \"ts\": 0, "
      "\"dur\": 2, \"pid\": 0, \"tid\": 0, "
      "\"args\": {\"unit\": 0, \"root\": 5}},\n"
      "  {\"name\": \"wait u1\", \"cat\": \"queue\", \"ph\": \"X\", "
      "\"ts\": 0, \"dur\": 2, \"pid\": 0, \"tid\": 1, "
      "\"args\": {\"unit\": 1}},\n"
      "  {\"name\": \"miss t42\", \"cat\": \"cache\", \"ph\": \"i\", "
      "\"s\": \"t\", \"ts\": 1, \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"task\": 42, \"words\": 64}},\n"
      "  {\"name\": \"used L1 c0\", \"ph\": \"C\", \"ts\": 1, \"pid\": 1, "
      "\"args\": {\"words\": 64}},\n"
      "  {\"name\": \"arrive j7\", \"cat\": \"job\", \"ph\": \"i\", "
      "\"s\": \"t\", \"ts\": 0, \"pid\": 2, \"tid\": 3, "
      "\"args\": {\"job\": 7}},\n"
      "  {\"name\": \"wait j7\", \"cat\": \"job\", \"ph\": \"X\", \"ts\": 0, "
      "\"dur\": 1.5, \"pid\": 2, \"tid\": 3, \"args\": {\"job\": 7}},\n"
      "  {\"name\": \"j7 mm:n=32\", \"cat\": \"job\", \"ph\": \"X\", "
      "\"ts\": 1.5, \"dur\": 2.5, \"pid\": 2, \"tid\": 3, "
      "\"args\": {\"job\": 7}},\n"
      "  {\"name\": \"ready-queue\", \"ph\": \"C\", \"ts\": 0, \"pid\": 0, "
      "\"args\": {\"units\": 1}},\n"
      "  {\"name\": \"ready-queue\", \"ph\": \"C\", \"ts\": 2, \"pid\": 0, "
      "\"args\": {\"units\": 0}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ChromeTrace, RealRunExportIsStructurallySound) {  // O5
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 512, 5));
  obs::EventRecorder rec;
  SchedOptions opts;
  opts.sink = &rec;
  run_scheduler("sb", g, m, opts);
  std::ostringstream os;
  obs::write_chrome_trace(os, rec, "real");
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"processors\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"ready-queue\""), std::string::npos);
}

TEST(ChromeTrace, CsvExportHasOneRowPerEvent) {  // O5
  obs::EventRecorder rec;
  rec.on_unit(0.0, 1.0, 0, 0, 1);
  rec.on_queue_wait(0.0, 0.0, 0, 0);
  rec.on_cache(obs::CacheEvent::kHit, 0.5, 1, 0, 9, 8.0, 8.0);  // CSV keeps hits
  rec.on_job(obs::JobEvent::kArrival, 0.0, 1, 0, "ten");
  std::ostringstream os;
  obs::write_events_csv(os, rec);
  const std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);  // header + 4 rows
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "kind,sub,t0,t1,a,b,c,words,value,label");
  EXPECT_NE(csv.find("cache,hit,"), std::string::npos);
  EXPECT_NE(csv.find(",ten\n"), std::string::npos);
}

// ---------------------------------------------------------------- O7 ----

TEST(Progress, MeterWritesHeartbeats) {  // O7
  std::ostringstream os;
  obs::ProgressMeter meter(true, "run", &os, 0.0);
  meter.begin_phase("cells", 4);
  meter.tick();
  meter.tick(3);
  meter.finish();
  const std::string out = os.str();
  EXPECT_NE(out.find("progress[run]: cells 0/4"), std::string::npos);
  EXPECT_NE(out.find("progress[run]: cells 4/4"), std::string::npos);
  EXPECT_NE(out.find("done in"), std::string::npos);
}

TEST(Progress, DisabledMeterIsSilent) {  // O7
  std::ostringstream os;
  obs::ProgressMeter meter(false, "run", &os, 0.0);
  meter.begin_phase("cells", 2);
  meter.tick(2);
  meter.finish();
  EXPECT_TRUE(os.str().empty());
  obs::ProgressMeter dflt;  // default-constructed: every call a no-op
  dflt.begin_phase("x", 1);
  dflt.tick();
  dflt.finish();
}

}  // namespace
}  // namespace ndf
