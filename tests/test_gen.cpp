// Tests of the synthetic workload generator (src/gen/):
//   G1  property matrix: every generated graph across a seed × family ×
//       size grid (150+ graphs) passes validate_rules, elaborates to an
//       acyclic DAG, and check_determinacy finds every footprint conflict
//       ordered — with conflicts actually present (the oracle is live)
//   G2  determinism: identical specs are bit-identical — tree structure,
//       rule tables, synthetic footprints (counter-based, never real
//       pointers) and elaborated-DAG numbers all reproduce exactly
//   G3  seeds matter: different sp seeds give different graphs
//   G4  structured families hit their corner shapes exactly (chain span ==
//       work, forkjoin/diamond widths, wavefront span == (2n-1)·work)
//   G5  spec parsing: defaults, label round-trips, loud unknown-family /
//       inapplicable-key / bad-value failures
//   G6  scheduling: serial-policy makespan equals total work (misses off)
//       for every family, and gen workloads flow through the whole sweep
//       engine with jobs=1 / jobs=4 output byte-identical
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "gen/families.hpp"
#include "gen/gen.hpp"
#include "nd/dot.hpp"
#include "nd/drs.hpp"
#include "nd/stats.hpp"
#include "nd/validate.hpp"
#include "pmh/presets.hpp"
#include "sched/registry.hpp"

namespace ndf {
namespace {

gen::GenSpec sp_spec(std::uint64_t seed, std::size_t depth, std::size_t fan,
                     std::size_t cross = 30) {
  gen::GenSpec g;
  g.family = "sp";
  g.seed = seed;
  g.depth = depth;
  g.fan = fan;
  g.cross = cross;
  return g;
}

/// Asserts one generated tree is fully legal; returns its report.
gen::GenReport expect_legal(const gen::GenSpec& spec) {
  const SpawnTree tree = gen::generate(spec);
  EXPECT_TRUE(validate_rules(tree.rules()).empty()) << spec.label();
  const gen::GenReport rep = gen::check_generated(tree);
  EXPECT_TRUE(rep.ok()) << spec.label() << ": " << rep.message;
  EXPECT_GE(tree.strand_count(tree.root()), 1u) << spec.label();
  EXPECT_GT(tree.work_of(tree.root()), 0.0) << spec.label();
  // The np elaboration of the same tree must be legal too (fires become
  // full dependencies — a superset of the ND orderings).
  const gen::GenReport np = gen::check_generated(tree, /*np_mode=*/true);
  EXPECT_TRUE(np.ok()) << spec.label() << " (np): " << np.message;
  return rep;
}

TEST(Gen, PropertyMatrixAllLegal) {  // G1
  std::size_t graphs = 0;
  std::size_t with_conflicts = 0;

  // Random series-parallel: 25 seeds × 3 depths × 2 fans = 150 graphs.
  for (std::uint64_t seed = 0; seed < 25; ++seed)
    for (std::size_t depth : {3u, 5u, 7u})
      for (std::size_t fan : {2u, 4u}) {
        const gen::GenReport rep =
            expect_legal(sp_spec(seed, depth, fan, (seed * 17) % 101));
        ++graphs;
        if (rep.conflicting_pairs > 0) ++with_conflicts;
      }

  // Structured families across sizes.
  for (std::size_t n : {1u, 2u, 5u, 32u}) {
    gen::GenSpec c;
    c.family = "chain";
    c.n = n;
    expect_legal(c);
    gen::GenSpec w;
    w.family = "wavefront";
    w.n = n;
    expect_legal(w);
    graphs += 2;
  }
  for (std::size_t depth : {1u, 3u, 6u})
    for (std::size_t fan : {1u, 2u, 7u}) {
      gen::GenSpec f;
      f.family = "forkjoin";
      f.depth = depth;
      f.fan = fan;
      expect_legal(f);
      gen::GenSpec d;
      d.family = "diamond";
      d.depth = depth;
      d.fan = fan;
      expect_legal(d);
      graphs += 2;
    }

  EXPECT_GE(graphs, 150u);
  // The determinacy oracle is live: most random graphs declare conflicts
  // that the checker had to prove ordered, not vacuously pass.
  EXPECT_GT(with_conflicts, graphs / 2);
}

// Everything observable about a generated workload, serialized. Two
// generations of the same spec must produce equal strings — including the
// synthetic footprint addresses, which is what guarantees bit-identical
// behavior across *processes* (nothing depends on ASLR or static state).
std::string fingerprint(const gen::GenSpec& spec) {
  const SpawnTree tree = gen::generate(spec);
  std::ostringstream os;
  os << to_dot(tree);
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    const SpawnNode& node = tree.node(n);
    os << n << ':' << node.work << '/' << node.size;
    for (const MemSegment& s : node.reads) os << " r" << s.lo << '-' << s.hi;
    for (const MemSegment& s : node.writes) os << " w" << s.lo << '-' << s.hi;
    os << '\n';
  }
  for (FireType t = 0; t < FireType(tree.rules().num_types()); ++t) {
    os << tree.rules().name(t);
    for (const FireRule& r : tree.rules().rules(t))
      os << ' ' << r.src.to_string() << '>' << r.inner << '>'
         << r.dst.to_string();
    os << '\n';
  }
  const StrandGraph g = elaborate(tree);
  os << g.num_vertices() << ' ' << g.num_edges() << ' ' << g.work() << ' '
     << g.span();
  return os.str();
}

TEST(Gen, IdenticalSpecsAreBitIdentical) {  // G2
  for (const char* label :
       {"gen:family=sp,depth=7,fan=4,seed=9,cross=70",
        "gen:family=wavefront,n=9", "gen:family=diamond,depth=3,fan=5"}) {
    exp::WorkloadSpec w = exp::parse_workload(label);
    ASSERT_TRUE(w.gen) << label;
    EXPECT_EQ(fingerprint(*w.gen), fingerprint(*w.gen)) << label;
  }
}

TEST(Gen, SeedsChangeTheGraph) {  // G3
  EXPECT_NE(fingerprint(sp_spec(1, 6, 3)), fingerprint(sp_spec(2, 6, 3)));
  EXPECT_NE(fingerprint(sp_spec(1, 6, 3)), fingerprint(sp_spec(1, 6, 4)));
}

TEST(Gen, StructuredFamiliesHitCornerShapes) {  // G4
  const double W = 64.0;  // the default work

  // chain: zero parallelism, span == work.
  const SpawnTree chain = gen::make_chain_tree(10, W);
  const StrandGraph cg = elaborate(chain);
  EXPECT_DOUBLE_EQ(cg.span(), cg.work());
  EXPECT_DOUBLE_EQ(cg.work(), 10 * W);

  // forkjoin: width == fan, span == depth·work.
  const SpawnTree fj = gen::make_forkjoin_tree(5, 8, W);
  const DagStats fs = compute_stats(elaborate(fj));
  EXPECT_EQ(fs.max_level_width, 8u);
  EXPECT_DOUBLE_EQ(fs.span, 5 * W);
  EXPECT_DOUBLE_EQ(fs.work, 5 * 8 * W);

  // diamond: width == fan, span == 3·depth·work (src, middle, sink each).
  const SpawnTree dia = gen::make_diamond_tree(4, 6, W);
  const DagStats ds = compute_stats(elaborate(dia));
  EXPECT_EQ(ds.max_level_width, 6u);
  EXPECT_DOUBLE_EQ(ds.span, 4 * 3 * W);

  // wavefront: n² strands, width == n, span == (2n-1)·work — the
  // anti-diagonal frontier the per-column fire rules exist to expose.
  const SpawnTree wf = gen::make_wavefront_tree(12, W);
  const DagStats ws = compute_stats(elaborate(wf));
  EXPECT_EQ(ws.strands, 144u);
  EXPECT_EQ(ws.max_level_width, 12u);
  EXPECT_DOUBLE_EQ(ws.span, 23 * W);
  // The np elision serializes the whole grid.
  EXPECT_DOUBLE_EQ(compute_stats(elaborate(wf, {.np_mode = true})).span,
                   144 * W);
}

TEST(Gen, SpecParsingDefaultsAndRoundTrip) {  // G5
  exp::WorkloadSpec w = exp::parse_workload("gen:family=sp");
  ASSERT_TRUE(w.gen);
  EXPECT_EQ(w.algo, "gen");
  EXPECT_EQ(w.gen->family, "sp");
  EXPECT_EQ(w.gen->depth, 6u);
  EXPECT_EQ(w.gen->fan, 3u);
  EXPECT_EQ(w.gen->seed, 1u);
  EXPECT_EQ(w.label(), "gen:family=sp");

  w = exp::parse_workload("gen:family=sp,depth=8,fan=4,seed=7");
  EXPECT_EQ(w.gen->depth, 8u);
  EXPECT_EQ(w.gen->fan, 4u);
  EXPECT_EQ(w.gen->seed, 7u);
  EXPECT_EQ(w.label(), "gen:family=sp,depth=8,fan=4,seed=7");
  EXPECT_EQ(exp::parse_workload(w.label()).label(), w.label());

  // Key order in the spec does not matter; the label is canonical.
  EXPECT_EQ(exp::parse_workload("gen:seed=7,fan=4,family=sp,depth=8").label(),
            "gen:family=sp,depth=8,fan=4,seed=7");

  // np is a workload-level flag and round-trips too.
  w = exp::parse_workload("gen:family=wavefront,n=8,np");
  EXPECT_TRUE(w.np);
  EXPECT_EQ(w.label(), "gen:family=wavefront,n=8,np");
  EXPECT_EQ(exp::parse_workload(w.label()).label(), w.label());

  // Mixed lists parse.
  const auto list =
      exp::parse_workload_list("mm:n=8;gen:family=chain,n=4;trs:n=8,np");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1].algo, "gen");
  EXPECT_EQ(list[1].gen->family, "chain");
}

TEST(Gen, BadSpecsFailLoudly) {  // G5
  try {
    exp::parse_workload("gen:family=bogus,n=4");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown gen family 'bogus'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("wavefront"), std::string::npos) << msg;  // listed
  }
  try {
    exp::parse_workload("gen:family=chain,fan=3");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does not accept parameter 'fan'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("n=16, work=64"), std::string::npos) << msg;  // listed
  }
  EXPECT_THROW(exp::parse_workload("gen:family=sp,depth=abc"), CheckError);
  EXPECT_THROW(exp::parse_workload("gen:family=sp,seed=-1"), CheckError);
  EXPECT_THROW(exp::parse_workload("gen:family=sp,seed=+7"), CheckError);
  // Overflow must fail loudly, not saturate to 2^64-1.
  EXPECT_THROW(
      exp::parse_workload("gen:family=sp,seed=99999999999999999999999"),
      CheckError);
  EXPECT_THROW(exp::parse_workload("gen:family=sp,depth=4,depth=5"),
               CheckError);
  // Out-of-range values are rejected at generation (also for specs built
  // past the parser).
  gen::GenSpec g;
  g.family = "sp";
  g.fan = 1;
  EXPECT_THROW(gen::generate(g), CheckError);
  g = gen::GenSpec{};
  g.family = "wavefront";
  g.n = 4000;
  EXPECT_THROW(gen::generate(g), CheckError);
  g = gen::GenSpec{};
  g.family = "sp";
  g.depth = 12;
  g.fan = 32;  // fan^depth explodes
  EXPECT_THROW(gen::generate(g), CheckError);
}

TEST(Gen, SerialMakespanEqualsTotalWork) {  // G6
  for (const char* label :
       {"gen:family=sp,depth=6,fan=3,seed=5", "gen:family=chain,n=20",
        "gen:family=forkjoin,depth=4,fan=4", "gen:family=diamond,depth=3",
        "gen:family=wavefront,n=8"}) {
    const exp::Workload w(exp::parse_workload(label));
    const Pmh m = make_pmh("flat8");
    SchedOptions o;
    o.charge_misses = false;
    const SchedStats s = run_scheduler("serial", w.graph(), m, o);
    EXPECT_DOUBLE_EQ(s.makespan, w.graph().work()) << label;
    EXPECT_DOUBLE_EQ(s.total_work, w.graph().work()) << label;
  }
}

TEST(Gen, SweepOutputByteIdenticalAcrossJobs) {  // G6
  exp::Scenario s;
  s.name = "gen";
  s.workloads = exp::parse_workload_list(
      "gen:family=sp,depth=6,fan=3,seed=7;gen:family=wavefront,n=10");
  s.machines = {"flat8", "deep2x4"};
  s.policies = {"sb", "ws", "greedy", "serial"};
  s.sigmas = {0.25, 0.5};
  s.repeats = 2;

  const auto emit = [](const std::vector<exp::RunPoint>& runs) {
    std::ostringstream os;
    exp::results_table("gen", runs).print(os);
    exp::write_sweep_json(os, "gen", runs);
    exp::write_sweep_csv(os, runs);
    return os.str();
  };

  exp::Sweep serial(s, 1);
  const std::string golden = emit(serial.run());
  exp::Sweep parallel(s, 4);
  EXPECT_EQ(emit(parallel.run()), golden);
  EXPECT_EQ(parallel.condensations_built(), serial.condensations_built());
}

}  // namespace
}  // namespace ndf
