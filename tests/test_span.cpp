// Span (T∞) claims of Sec. 3, verified by measuring the critical path of
// the elaborated DAGs and fitting growth exponents:
//   LCS:      NP Θ(n log n) → ND Θ(n)
//   TRS:      NP Θ(n log n) → ND Θ(n)
//   Cholesky: NP Θ(n log² n) → ND Θ(n)
//   1D FW:    NP Θ(n log n) → ND Θ(n)
#include <gtest/gtest.h>

#include <cmath>

#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/lcs.hpp"
#include "algos/lu.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "support/fit.hpp"

namespace ndf {
namespace {

struct SpanSeries {
  std::vector<double> ns, nd, np;
};

template <typename MakeTree>
SpanSeries measure(MakeTree make, std::initializer_list<std::size_t> sizes,
                   std::size_t base) {
  SpanSeries s;
  for (std::size_t n : sizes) {
    SpawnTree t = make(n, base);
    s.ns.push_back(double(n));
    s.nd.push_back(elaborate(t).span());
    s.np.push_back(elaborate(t, {.np_mode = true}).span());
  }
  return s;
}

/// Spans normalized by n must be bounded (Θ(n)) for the ND series and
/// clearly growing for the NP series when the paper claims a log gap.
void expect_linear_vs_superlinear(const SpanSeries& s, double nd_ratio_tol) {
  const auto nd_ratio = ratio(s.nd, s.ns);
  const auto np_ratio = ratio(s.np, s.ns);
  // ND: span/n approaches a constant — last two doublings change it little.
  const double nd_growth = nd_ratio.back() / nd_ratio[nd_ratio.size() - 2];
  EXPECT_LT(nd_growth, nd_ratio_tol);
  // NP: span/n keeps growing by roughly an additive constant per doubling.
  const double np_growth = np_ratio.back() / np_ratio[np_ratio.size() - 2];
  EXPECT_GT(np_growth, nd_growth);
  // And NP is strictly worse in absolute terms at the largest size.
  EXPECT_GT(s.np.back(), 1.2 * s.nd.back());
}

TEST(Span, LcsNdLinearNpSuperlinear) {
  const auto s = measure(make_lcs_tree, {64, 128, 256, 512}, 2);
  expect_linear_vs_superlinear(s, 1.15);
  // Fitted exponent of the ND span is ~1 (Θ(n)).
  EXPECT_NEAR(fit_loglog(s.ns, s.nd).slope, 1.0, 0.1);
  EXPECT_GT(fit_loglog(s.ns, s.np).slope, 1.05);
}

TEST(Span, TrsNdLinearNpSuperlinear) {
  const auto s = measure(make_trs_tree, {16, 32, 64, 128}, 2);
  expect_linear_vs_superlinear(s, 1.25);
  EXPECT_NEAR(fit_loglog(s.ns, s.nd).slope, 1.0, 0.15);
}

TEST(Span, CholeskyNdLinear) {
  const auto s = measure(make_cholesky_tree, {16, 32, 64, 128}, 2);
  expect_linear_vs_superlinear(s, 1.25);
  EXPECT_NEAR(fit_loglog(s.ns, s.nd).slope, 1.0, 0.2);
}

TEST(Span, Fw1dNdLinearNpSuperlinear) {
  const auto s = measure(make_fw1d_tree, {64, 128, 256, 512}, 2);
  expect_linear_vs_superlinear(s, 1.15);
  EXPECT_NEAR(fit_loglog(s.ns, s.nd).slope, 1.0, 0.1);
}

TEST(Span, MatmulNdAtMostNp) {
  const auto s = measure(
      [](std::size_t n, std::size_t b) { return make_mm_tree(n, b); },
      {8, 16, 32, 64}, 2);
  for (std::size_t i = 0; i < s.ns.size(); ++i) EXPECT_LE(s.nd[i], s.np[i]);
  // MM span is Θ(n) in both models (the fire construct refines the k-split
  // barrier but the leaf chain already has length Θ(n/b)).
  EXPECT_NEAR(fit_loglog(s.ns, s.nd).slope, 1.0, 0.15);
}

TEST(Span, LuNdGainsOneLogFactor) {
  const auto s = measure(make_lu_tree, {16, 32, 64, 128}, 4);
  // ND LU is O(n log n) (pivoting keeps one log); NP is O(n log² n)-ish.
  for (std::size_t i = 0; i < s.ns.size(); ++i) EXPECT_LE(s.nd[i], s.np[i]);
  EXPECT_GT(s.np.back() / s.nd.back(), 1.1);
  // Exponent stays near 1 plus a log-factor drift (≈1.4 at these sizes);
  // the span normalized by n·log n must be flattening.
  const double slope = fit_loglog(s.ns, s.nd).slope;
  EXPECT_GT(slope, 0.95);
  EXPECT_LT(slope, 1.5);
  std::vector<double> norm;
  for (std::size_t i = 0; i < s.ns.size(); ++i)
    norm.push_back(s.nd[i] / (s.ns[i] * std::log2(s.ns[i])));
  const double growth = norm.back() / norm[norm.size() - 2];
  EXPECT_LT(growth, 1.12);
}

TEST(Span, SpanNeverExceedsWorkAndIsPositive) {
  for (std::size_t n : {16u, 32u}) {
    SpawnTree t = make_trs_tree(n, 4);
    StrandGraph g = elaborate(t);
    EXPECT_GT(g.span(), 0.0);
    EXPECT_LE(g.span(), g.work());
  }
}

}  // namespace
}  // namespace ndf
