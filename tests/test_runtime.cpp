// Real-thread runtime tests: WsDeque protocol tests (pop-vs-steal races,
// wraparound, kAbort retry, overflow), and the differential property suite
// — for every transcribed kernel and a seeded batch of generated graphs,
// native execution must run each strand exactly once and respect every DAG
// edge (epoch-stamp oracle, runtime/oracle.hpp), match the serial
// reference bit-for-bit on real data, and in sb mode confine every strand
// to its anchor group.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "exp/workload.hpp"
#include "nd/drs.hpp"
#include "pmh/presets.hpp"
#include "runtime/deque.hpp"
#include "runtime/executor.hpp"
#include "runtime/oracle.hpp"
#include "runtime/workbody.hpp"
#include "support/rng.hpp"

namespace ndf {
namespace {

Matrix<double> random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix<double> m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

// ------------------------------------------------------------------ deque

TEST(WsDequeTest, LifoOwnerFifoThief) {
  WsDeque d(16);
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal(), 1);   // thief takes the oldest
  EXPECT_EQ(d.pop(), 3);     // owner takes the newest
  EXPECT_EQ(d.pop(), 2);
  EXPECT_EQ(d.pop(), WsDeque::kEmpty);
  EXPECT_TRUE(d.empty());
}

TEST(WsDequeTest, WraparoundPastCapacity) {
  // Cycle far more elements through the ring than it can hold at once:
  // top/bottom grow monotonically, so every slot index wraps many times.
  WsDeque d(4);  // rounds up to a 64-slot ring, 63 usable
  const std::size_t cap = d.capacity();
  std::int32_t next = 0, want_pop = -1;
  long long pushed_sum = 0, taken_sum = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (std::size_t i = 0; i < cap; ++i) {
      d.push(next);
      pushed_sum += next++;
    }
    // Alternate drain ends: steals see FIFO order, pops LIFO.
    for (std::size_t i = 0; i < cap / 2; ++i) {
      const std::int32_t v = d.steal();
      ASSERT_GE(v, 0);
      taken_sum += v;
    }
    while ((want_pop = d.pop()) != WsDeque::kEmpty) taken_sum += want_pop;
    ASSERT_TRUE(d.empty());
  }
  EXPECT_EQ(pushed_sum, taken_sum);
}

TEST(WsDequeTest, OverflowCheckFailsLoudly) {
  WsDeque d(4);
  for (std::size_t i = 0; i < d.capacity(); ++i)
    d.push(static_cast<std::int32_t>(i));
  // One more would clobber the slot a lagging thief may still read.
  EXPECT_THROW(d.push(12345), CheckError);
}

TEST(WsDequeTest, SoleThiefNeverAborts) {
  // kAbort means "lost a CAS race against another thief or the owner's
  // last-element pop"; with a single sequential thief and idle owner it
  // must never surface.
  WsDeque d(128);
  for (int i = 0; i < 100; ++i) d.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.steal(), i);
  EXPECT_EQ(d.steal(), WsDeque::kEmpty);
}

TEST(WsDequeTest, LastElementPopVsStealRace) {
  // One element, owner pop racing one thief steal, many rounds: exactly
  // one side must win each round, and a loser must see kEmpty/kAbort.
  const int kRounds = 4000;
  WsDeque d(4);
  std::atomic<int> round{-1};
  std::atomic<int> wins{0};
  std::atomic<bool> stop{false};
  std::atomic<int> aborts{0};
  std::thread thief([&] {
    int seen = -1;
    while (!stop.load()) {
      const int r = round.load(std::memory_order_acquire);
      if (r == seen) continue;
      seen = r;
      std::int32_t v = d.steal();
      while (v == WsDeque::kAbort) {
        // Retry semantics: an abort may be retried and must eventually
        // resolve to the element or empty.
        ++aborts;
        v = d.steal();
      }
      if (v >= 0) {
        EXPECT_EQ(v, r);
        wins.fetch_add(1);
      }
    }
  });
  for (int r = 0; r < kRounds; ++r) {
    d.push(r);
    round.store(r, std::memory_order_release);
    std::int32_t v = d.pop();
    if (v >= 0) {
      EXPECT_EQ(v, r);
      wins.fetch_add(1);
    }
    // Whoever lost must find the deque empty; spin until the winner's
    // CAS landed so the next round starts clean.
    while (!d.empty()) std::this_thread::yield();
  }
  stop.store(true);
  thief.join();
  EXPECT_EQ(wins.load(), kRounds);
}

TEST(WsDequeTest, ManyThievesHammerOneOwner) {
  // The TSan-facing protocol test: several thieves hammer one owner that
  // interleaves pushes and pops; every job is taken exactly once.
  const int N = 30000;
  const int kThieves = 7;
  WsDeque d(N + 1);
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};
  std::atomic<bool> done_pushing{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (taken.load() < N) {
        const std::int32_t v = d.steal();
        if (v >= 0) {
          sum += v;
          ++taken;
        } else if (v == WsDeque::kEmpty && done_pushing.load() &&
                   d.empty()) {
          if (taken.load() >= N) break;
        }
      }
    });
  }
  for (int i = 1; i <= N; ++i) {
    d.push(i);
    if (i % 3 == 0) {
      const std::int32_t v = d.pop();
      if (v >= 0) {
        sum += v;
        ++taken;
      }
    }
  }
  done_pushing.store(true);
  while (taken.load() < N) {
    const std::int32_t v = d.pop();
    if (v >= 0) {
      sum += v;
      ++taken;
    }
  }
  for (auto& t : thieves) t.join();
  EXPECT_EQ(taken.load(), N);
  EXPECT_EQ(sum.load(), (long long)N * (N + 1) / 2);
}

TEST(WsDequeTest, ConcurrentStealsLoseNothing) {
  const int N = 20000;
  WsDeque d(N + 1);
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};
  for (int i = 1; i <= N; ++i) d.push(i);
  auto thief = [&] {
    while (taken.load() < N) {
      const std::int32_t v = d.steal();
      if (v >= 0) {
        sum += v;
        ++taken;
      } else if (v == WsDeque::kEmpty && d.empty()) {
        break;
      }
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);
  // Owner pops concurrently.
  while (taken.load() < N) {
    const std::int32_t v = d.pop();
    if (v >= 0) {
      sum += v;
      ++taken;
    } else if (d.empty()) {
      break;
    }
  }
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(taken.load(), N);
  EXPECT_EQ(sum.load(), (long long)N * (N + 1) / 2);
}

// ----------------------------------------------- differential oracle suite

/// Every kernel the paper transcribes, at test-sized n, plus a seeded
/// batch of generated graphs from four families. Parsed by the workload
/// registry, so these specs stay in sync with ndf_sweep's.
const char* const kDifferentialSpecs[] = {
    "mm:n=16",
    "trs:n=16",
    "cholesky:n=16",
    "lu:n=16",
    "lcs:n=32",
    "gotoh:n=24",
    "fw1d:n=16",
    "fw2d:n=16",
    "gen:family=sp,depth=7,fan=4,seed=1",
    "gen:family=sp,depth=6,fan=5,seed=2",
    "gen:family=forkjoin,depth=4,fan=4",
    "gen:family=diamond,depth=4,fan=5",
    "gen:family=wavefront,n=8",
    "gen:family=chain,n=64",
};

class NativeDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(NativeDifferential, ExactlyOnceAndEdgeOrderedAcrossThreadCounts) {
  const exp::WorkloadSpec spec = exp::parse_workload(GetParam());
  SpawnTree tree = exp::build_workload_tree(spec);
  ExecutionOracle oracle(tree);
  const StrandGraph g = elaborate(tree, {.np_mode = spec.np});
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    oracle.reset();
    ExecOptions opts;
    opts.threads = threads;
    const ExecReport r = execute(g, opts);
    EXPECT_EQ(r.strands, oracle.num_strands());
    const auto violations = oracle.verify(g);
    for (const std::string& v : violations)
      ADD_FAILURE() << GetParam() << " @ " << threads << " threads: " << v;
    // Per-worker accounting must partition the strand count exactly.
    ASSERT_EQ(r.workers.size(), threads);
    std::size_t strands = 0, steals = 0;
    for (const WorkerReport& w : r.workers) {
      strands += w.strands;
      steals += w.steals;
    }
    EXPECT_EQ(strands, r.strands);
    EXPECT_EQ(steals, r.steals);
  }
}

TEST_P(NativeDifferential, SbModeConfinesStrandsToAnchorGroups) {
  const exp::WorkloadSpec spec = exp::parse_workload(GetParam());
  SpawnTree tree = exp::build_workload_tree(spec);
  ExecutionOracle oracle(tree);
  const StrandGraph g = elaborate(tree, {.np_mode = spec.np});
  const Pmh machine = make_pmh("deep2x4");
  for (std::size_t threads : {2ul, 8ul}) {
    oracle.reset();
    ExecOptions opts;
    opts.threads = threads;
    opts.mode = ExecMode::Sb;
    opts.machine = &machine;
    const ExecReport r = execute(g, opts);
    const auto violations = oracle.verify(g);
    for (const std::string& v : violations)
      ADD_FAILURE() << GetParam() << " sb @ " << threads
                    << " threads: " << v;
    // The plan is deterministic, so recomputing it gives the ranges the
    // executor enforced; every strand must have run inside its range.
    const AnchorPlan plan =
        plan_anchors(tree, machine, opts.sigma, threads);
    EXPECT_EQ(r.anchors, plan.anchors);
    for (NodeId s : tree.strands_under(tree.root())) {
      const std::size_t w = oracle.worker(s);
      ASSERT_NE(w, static_cast<std::size_t>(-1));
      const AnchorPlan::Range range = plan.strand_group[s];
      EXPECT_TRUE(w >= range.begin && w < range.end)
          << GetParam() << " strand " << s << " ran on worker " << w
          << " outside anchor group [" << range.begin << ", " << range.end
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, NativeDifferential,
                         ::testing::ValuesIn(kDifferentialSpecs),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

// --------------------------------------------- bit-identical data outputs

TEST(NativeDifferentialData, MatmulBitIdenticalAcrossRunsAndThreadCounts) {
  // The determinacy claim on real silicon: the DAG serializes every
  // accumulation onto C, so repeated parallel runs at any thread count
  // produce byte-identical doubles — not merely close ones — and they
  // match the serial elision byte for byte.
  const std::size_t n = 32, base = 8;
  Matrix<double> A = random_matrix(n, n, 11), B = random_matrix(n, n, 12);

  const auto run_once = [&](std::size_t threads) {
    Matrix<double> C(n, n, 0.0);
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_mm(t, ty, n, n, n, base, +1.0,
                        MmViews{A.view(), B.view(), C.view(), false}));
    const StrandGraph g = elaborate(t);
    if (threads == 0)
      execute_serial(g);
    else
      execute_parallel(g, threads);
    return C;
  };

  const Matrix<double> ref = run_once(0);
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    for (int rep = 0; rep < 2; ++rep) {
      const Matrix<double> C = run_once(threads);
      EXPECT_EQ(std::memcmp(&C(0, 0), &ref(0, 0),
                            n * n * sizeof(double)),
                0)
          << "threads " << threads << " rep " << rep;
    }
  }
}

TEST(NativeDifferentialData, TrsBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 32, base = 8;
  Matrix<double> T = random_matrix(n, n, 13);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) T(i, j) = 0.0;
    T(i, i) = 2.0 + std::abs(T(i, i));
  }
  const Matrix<double> B0 = random_matrix(n, n, 14);

  const auto run_once = [&](std::size_t threads) {
    Matrix<double> X = B0;
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_trs(t, ty, TrsSide::LeftLower, n, n, base,
                         TrsViews{T.view(), X.view()}));
    const StrandGraph g = elaborate(t);
    if (threads == 0)
      execute_serial(g);
    else
      execute_parallel(g, threads);
    return X;
  };

  const Matrix<double> ref = run_once(0);
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    const Matrix<double> X = run_once(threads);
    EXPECT_EQ(
        std::memcmp(&X(0, 0), &ref(0, 0), n * n * sizeof(double)), 0)
        << "threads " << threads;
  }
}

// ------------------------------------------------------- legacy behaviors

TEST(Executor, ParallelMatmulMatchesSerial) {
  const std::size_t n = 64, base = 8;
  Matrix<double> A = random_matrix(n, n, 1), B = random_matrix(n, n, 2);
  Matrix<double> C(n, n, 0.0), Cref(n, n, 0.0);
  mm_reference(A.view(), B.view(), Cref.view(), +1.0, false);

  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) C(i, j) = 0.0;
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_mm(t, ty, n, n, n, base, +1.0,
                        MmViews{A.view(), B.view(), C.view(), false}));
    StrandGraph g = elaborate(t);
    const ExecReport r = execute_parallel(g, 4);
    EXPECT_EQ(r.strands, t.strand_count(t.root()));
    double d = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        d = std::max(d, std::abs(C(i, j) - Cref(i, j)));
    EXPECT_LT(d, 1e-9);
  }
}

TEST(Executor, ParallelLcsRepeatedRunsAreDeterministic) {
  const std::size_t n = 128, base = 8;
  Rng rng(5);
  std::vector<int> S(n), T(n);
  for (auto& x : S) x = int(rng.below(4));
  for (auto& x : T) x = int(rng.below(4));
  Matrix<int> Xref(n + 1, n + 1, 0);
  const int ref = lcs_reference(S, T, Xref);

  for (int rep = 0; rep < 5; ++rep) {
    Matrix<int> X(n + 1, n + 1, 0);
    SpawnTree t;
    const LcsTypes ty = LcsTypes::install(t);
    t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));
    execute_parallel(elaborate(t), 8);
    ASSERT_EQ(X(n, n), ref) << "rep " << rep;
  }
}

TEST(Executor, SingleThreadDegradesToSerial) {
  const std::size_t n = 32;
  Matrix<double> A = random_matrix(n, n, 7);
  Matrix<double> S(n, n, 0.0), Sref(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) S(i, j) += A(i, k) * A(j, k);
      if (i == j) S(i, j) += double(n);
      Sref(i, j) = S(i, j);
    }
  cholesky_reference(Sref.view());

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_cholesky(t, ty, n, 4, S.view()));
  execute_parallel(elaborate(t), 1);
  double d = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      d = std::max(d, std::abs(S(i, j) - Sref(i, j)));
  EXPECT_LT(d, 1e-8);
}

TEST(Executor, StructureOnlyGraphRuns) {
  SpawnTree t = make_mm_tree(16, 4);
  StrandGraph g = elaborate(t);
  const ExecReport r = execute_parallel(g, 2);
  EXPECT_EQ(r.strands, t.strand_count(t.root()));
}

TEST(Executor, SbModeNeedsMachine) {
  SpawnTree t = make_mm_tree(16, 4);
  StrandGraph g = elaborate(t);
  ExecOptions opts;
  opts.threads = 2;
  opts.mode = ExecMode::Sb;
  EXPECT_THROW(execute(g, opts), CheckError);
}

TEST(Executor, SpinBodiesAttachOnlyWhereMissing) {
  SpawnTree t = make_mm_tree(16, 4);  // structure-only: all bodies missing
  const std::size_t total = t.strand_count(t.root());
  std::atomic<int> ran{0};
  const NodeId some = t.strands_under(t.root())[0];
  t.node(some).body = [&ran] { ran.fetch_add(1); };
  EXPECT_EQ(attach_spin_bodies(t, 1.0), total - 1);
  EXPECT_EQ(attach_spin_bodies(t, 1.0), 0u);  // all covered now
  execute_parallel(elaborate(t), 2);
  EXPECT_EQ(ran.load(), 1);  // pre-existing body survived
}

}  // namespace
}  // namespace ndf
