// Real-thread runtime tests: the work-stealing executor must produce the
// same results as the serial reference under concurrency, across repeated
// runs (schedule fuzzing), for every algorithm kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "runtime/deque.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

#include <thread>

namespace ndf {
namespace {

Matrix<double> random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix<double> m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(WsDequeTest, LifoOwnerFifoThief) {
  WsDeque d(16);
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal(), 1);   // thief takes the oldest
  EXPECT_EQ(d.pop(), 3);     // owner takes the newest
  EXPECT_EQ(d.pop(), 2);
  EXPECT_EQ(d.pop(), WsDeque::kEmpty);
  EXPECT_TRUE(d.empty());
}

TEST(WsDequeTest, ConcurrentStealsLoseNothing) {
  const int N = 20000;
  WsDeque d(N + 1);
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};
  for (int i = 1; i <= N; ++i) d.push(i);
  auto thief = [&] {
    while (taken.load() < N) {
      const std::int32_t v = d.steal();
      if (v >= 0) {
        sum += v;
        ++taken;
      } else if (v == WsDeque::kEmpty && d.empty()) {
        break;
      }
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);
  // Owner pops concurrently.
  while (taken.load() < N) {
    const std::int32_t v = d.pop();
    if (v >= 0) {
      sum += v;
      ++taken;
    } else if (d.empty()) {
      break;
    }
  }
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(taken.load(), N);
  EXPECT_EQ(sum.load(), (long long)N * (N + 1) / 2);
}

TEST(Executor, ParallelMatmulMatchesSerial) {
  const std::size_t n = 64, base = 8;
  Matrix<double> A = random_matrix(n, n, 1), B = random_matrix(n, n, 2);
  Matrix<double> C(n, n, 0.0), Cref(n, n, 0.0);
  mm_reference(A.view(), B.view(), Cref.view(), +1.0, false);

  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) C(i, j) = 0.0;
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_mm(t, ty, n, n, n, base, +1.0,
                        MmViews{A.view(), B.view(), C.view(), false}));
    StrandGraph g = elaborate(t);
    const ExecReport r = execute_parallel(g, 4);
    EXPECT_EQ(r.strands, t.strand_count(t.root()));
    double d = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        d = std::max(d, std::abs(C(i, j) - Cref(i, j)));
    EXPECT_LT(d, 1e-9);
  }
}

TEST(Executor, ParallelTrsMatchesReference) {
  const std::size_t n = 64, base = 8;
  Matrix<double> T = random_matrix(n, n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) T(i, j) = 0.0;
    T(i, i) = 2.0 + std::abs(T(i, i));
  }
  Matrix<double> B = random_matrix(n, n, 4);
  Matrix<double> Xref = B;
  trs_reference(TrsSide::LeftLower, T.view(), Xref.view());

  Matrix<double> X = B;
  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_trs(t, ty, TrsSide::LeftLower, n, n, base,
                       TrsViews{T.view(), X.view()}));
  execute_parallel(elaborate(t), 4);
  double d = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      d = std::max(d, std::abs(X(i, j) - Xref(i, j)));
  EXPECT_LT(d, 1e-8);
}

TEST(Executor, ParallelLcsRepeatedRunsAreDeterministic) {
  const std::size_t n = 128, base = 8;
  Rng rng(5);
  std::vector<int> S(n), T(n);
  for (auto& x : S) x = int(rng.below(4));
  for (auto& x : T) x = int(rng.below(4));
  Matrix<int> Xref(n + 1, n + 1, 0);
  const int ref = lcs_reference(S, T, Xref);

  for (int rep = 0; rep < 5; ++rep) {
    Matrix<int> X(n + 1, n + 1, 0);
    SpawnTree t;
    const LcsTypes ty = LcsTypes::install(t);
    t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));
    execute_parallel(elaborate(t), 8);
    ASSERT_EQ(X(n, n), ref) << "rep " << rep;
  }
}

TEST(Executor, SingleThreadDegradesToSerial) {
  const std::size_t n = 32;
  Matrix<double> A = random_matrix(n, n, 7);
  Matrix<double> Aref = A;
  // SPD-ify.
  Matrix<double> S(n, n, 0.0), Sref(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) S(i, j) += A(i, k) * A(j, k);
      if (i == j) S(i, j) += double(n);
      Sref(i, j) = S(i, j);
    }
  cholesky_reference(Sref.view());

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_cholesky(t, ty, n, 4, S.view()));
  execute_parallel(elaborate(t), 1);
  double d = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      d = std::max(d, std::abs(S(i, j) - Sref(i, j)));
  EXPECT_LT(d, 1e-8);
  (void)Aref;
}

TEST(Executor, StructureOnlyGraphRuns) {
  SpawnTree t = make_mm_tree(16, 4);
  StrandGraph g = elaborate(t);
  const ExecReport r = execute_parallel(g, 2);
  EXPECT_EQ(r.strands, t.strand_count(t.root()));
}

}  // namespace
}  // namespace ndf
