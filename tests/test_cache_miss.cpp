// Tests of the simulated cache-miss accounting (pmh/occupancy.hpp and its
// SimCore/exp integration):
//   Q1  CacheOccupancy LRU semantics: hits, reloads after eviction,
//       pinned footprints never evicted, unpin frees unloaded reservations
//   Q2  measurement is observational: every legacy stat is bit-identical
//       with measure_misses on and off, for all four policies
//   Q3  Theorem 1, measured: sb's measured Q_i <= Q*(t; sigma*Mi) on
//       transcribed kernels across machines and all swept sigma, and
//       measured misses never exceed the charged (anchor-once) model
//   Q4  ws exceeds Q* where stealing scatters footprints across the
//       shared level-2 cache — the comparison sb exists to win
//   Q5  measured counters are deterministic (rerun-identical) and
//       byte-identical between --jobs=1 and --jobs=4 sweeps
//   Q6  report emitters with miss columns: golden JSON/CSV fixtures, and
//       the no-measurement path emits the legacy documents byte for byte
//   Q7  rejection paths name the offending spec string verbatim
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/pcc.hpp"
#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "pmh/occupancy.hpp"
#include "pmh/presets.hpp"
#include "sched/registry.hpp"

namespace ndf {
namespace {

TEST(Occupancy, LruHitsMissesAndEviction) {  // Q1
  // One processor under one 100-word cache.
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m);

  EXPECT_DOUBLE_EQ(occ.touch(1, 0, /*task=*/0, 40.0), 40.0);  // cold
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 0.0);            // hit
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 50.0), 50.0);           // cold, fits
  EXPECT_DOUBLE_EQ(occ.misses(1), 90.0);

  // 40 + 50 + 20 > 100: loading task 2 evicts the LRU entry (task 0).
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 2, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 50.0), 0.0);   // survived
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 40.0);  // reload (evicts 2)
  EXPECT_DOUBLE_EQ(occ.misses(1), 150.0);
}

TEST(Occupancy, PinnedFootprintsAreNeverEvicted) {  // Q1
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m);

  occ.pin(1, 0, 0, 60.0);
  EXPECT_DOUBLE_EQ(occ.misses(1), 0.0);  // reservation costs nothing yet
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 60.0), 60.0);  // first use loads

  // LRU pressure cycles other footprints; the pinned one survives it all.
  for (int t = 1; t <= 5; ++t) occ.touch(1, 0, t, 30.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 60.0), 0.0);  // still resident

  occ.unpin(1, 0, 0);
  for (int t = 1; t <= 5; ++t) occ.touch(1, 0, t, 30.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 60.0), 60.0);  // now evictable

  // A reservation that is never used frees its capacity on unpin.
  CacheOccupancy occ2(m);
  occ2.pin(1, 0, 7, 80.0);
  occ2.unpin(1, 0, 7);
  occ2.touch(1, 0, 8, 90.0);
  EXPECT_DOUBLE_EQ(occ2.touch(1, 0, 8, 90.0), 0.0);  // 90 fits: 7 is gone
  EXPECT_DOUBLE_EQ(occ2.misses(1), 90.0);
}

void expect_legacy_stats_identical(const SchedStats& a, const SchedStats& b,
                                   const std::string& who) {
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << who;
  EXPECT_DOUBLE_EQ(a.total_work, b.total_work) << who;
  EXPECT_DOUBLE_EQ(a.miss_cost, b.miss_cost) << who;
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization) << who;
  EXPECT_EQ(a.atomic_units, b.atomic_units) << who;
  EXPECT_EQ(a.anchors, b.anchors) << who;
  EXPECT_EQ(a.steals, b.steals) << who;
  ASSERT_EQ(a.misses.size(), b.misses.size()) << who;
  for (std::size_t l = 0; l < a.misses.size(); ++l)
    EXPECT_DOUBLE_EQ(a.misses[l], b.misses[l]) << who << " L" << (l + 1);
}

TEST(Measurement, IsPurelyObservational) {  // Q2
  const exp::Workload w(exp::parse_workload("mm:n=32"));
  const Pmh m = make_pmh("deep2x4");
  for (const char* name : {"sb", "ws", "greedy", "serial"}) {
    SchedOptions off, on;
    on.measure_misses = true;
    const SchedStats a = run_scheduler(name, w.graph(), m, off);
    const SchedStats b = run_scheduler(name, w.graph(), m, on);
    expect_legacy_stats_identical(a, b, name);
    EXPECT_TRUE(a.measured_misses.empty()) << name;
    EXPECT_DOUBLE_EQ(a.comm_cost, 0.0) << name;
    ASSERT_EQ(b.measured_misses.size(), m.num_cache_levels()) << name;
    EXPECT_GT(b.comm_cost, 0.0) << name;
  }
}

TEST(Theorem1, SbMeasuredMissesStayWithinQStar) {  // Q3
  // All eight transcribed kernels — the acceptance bar is "every kernel,
  // every swept sigma", not a convenient subset.
  for (const char* spec :
       {"mm:n=32", "trs:n=32", "cholesky:n=32", "lu:n=32", "lcs:n=128",
        "gotoh:n=64", "fw1d:n=16", "fw2d:n=16"}) {
    const exp::Workload w(exp::parse_workload(spec));
    for (const char* machine : {"flat8", "deep2x4"}) {
      const Pmh m = make_pmh(machine);
      for (const double sigma : {0.25, 1.0 / 3.0, 0.5}) {
        SchedOptions o;
        o.sigma = sigma;
        o.measure_misses = true;
        const SchedStats s = run_scheduler("sb", w.graph(), m, o);
        ASSERT_EQ(s.measured_misses.size(), m.num_cache_levels());
        for (std::size_t l = 1; l <= m.num_cache_levels(); ++l) {
          const double qstar = parallel_cache_complexity(
              w.tree(), sigma * m.cache_size(l));
          EXPECT_LE(s.measured_misses[l - 1], qstar)
              << spec << " on " << machine << " sigma " << sigma << " L"
              << l;
          // Pinning makes measured <= the charged anchor-once model too.
          EXPECT_LE(s.measured_misses[l - 1], s.misses[l - 1])
              << spec << " on " << machine << " sigma " << sigma << " L"
              << l;
        }
      }
    }
  }
}

TEST(Theorem1, WsExceedsQStarWhenStealingScatters) {  // Q4
  const exp::Workload w(exp::parse_workload("mm:n=32"));
  const Pmh m = make_pmh("deep2x4");
  SchedOptions o;
  o.measure_misses = true;
  const SchedStats s = run_scheduler("ws", w.graph(), m, o);
  const double qstar2 =
      parallel_cache_complexity(w.tree(), o.sigma * m.cache_size(2));
  // Random stealing drags L2-task footprints across both sockets; the
  // level-2 reloads land well past the space-bounded bound.
  EXPECT_GT(s.measured_misses[1], qstar2);
}

TEST(Measurement, DeterministicAndJobsInvariant) {  // Q5
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=16;trs:n=16");
  s.machines = {"flat:p=4,m1=768,c1=10", "deep2x4"};
  s.policies = {"sb", "ws", "greedy", "serial"};
  s.sigmas = {0.25, 0.5};
  s.measure_misses = true;

  const auto emit = [](const std::vector<exp::RunPoint>& runs) {
    std::ostringstream os;
    exp::results_table("q", runs).print(os);
    exp::write_sweep_json(os, "q", runs);
    exp::write_sweep_csv(os, runs);
    return os.str();
  };

  exp::Sweep serial_sweep(s, 1);
  const std::string golden = emit(serial_sweep.run());
  EXPECT_NE(golden.find("comm_cost"), std::string::npos);
  EXPECT_NE(golden.find("measured_misses"), std::string::npos);

  exp::Sweep rerun(s, 1);
  EXPECT_EQ(emit(rerun.run()), golden);  // rerun-identical

  exp::Sweep parallel_sweep(s, 4);
  EXPECT_EQ(emit(parallel_sweep.run()), golden);  // --jobs invariant
}

// Hand-built run points with round integer values: the emitter fixtures
// below are exact byte-level goldens, independent of any simulation.
std::vector<exp::RunPoint> fixture_runs(bool measured) {
  exp::RunPoint r;
  r.workload = exp::parse_workload("mm:n=8");
  r.machine = "flat:p=2,m1=768,c1=10";
  r.machine_desc = "PMH[p=2, L1: 2x M=768 C=10]";
  r.policy = "serial";
  r.sigma = 0.5;
  r.alpha_prime = 1;
  r.repeat = 0;
  r.seed = 42;
  r.stats.makespan = 100;
  r.stats.total_work = 80;
  r.stats.miss_cost = 20;
  r.stats.utilization = 0.5;
  r.stats.atomic_units = 4;
  r.stats.anchors = 0;
  r.stats.steals = 0;
  r.stats.misses = {2};
  if (measured) {
    r.stats.measured_misses = {3};
    r.stats.comm_cost = 30;
  }
  return {r};
}

TEST(Report, GoldenJsonWithAndWithoutMissColumns) {  // Q6
  std::ostringstream os;
  exp::write_sweep_json(os, "golden", fixture_runs(true));
  EXPECT_EQ(os.str(),
            "{\n  \"sweep\": \"golden\",\n  \"runs\": [\n"
            "    {\"workload\": \"mm:n=8\", \"algo\": \"mm\", \"n\": 8, "
            "\"base\": 4, \"np\": false, "
            "\"machine\": \"flat:p=2,m1=768,c1=10\", "
            "\"machine_desc\": \"PMH[p=2, L1: 2x M=768 C=10]\", "
            "\"policy\": \"serial\", \"sigma\": 0.5, \"alpha_prime\": 1, "
            "\"repeat\": 0, \"seed\": 42, "
            "\"stats\": {\"makespan\": 100, \"total_work\": 80, "
            "\"miss_cost\": 20, \"utilization\": 0.5, \"atomic_units\": 4, "
            "\"anchors\": 0, \"steals\": 0, \"misses\": [2], "
            "\"comm_cost\": 30, \"measured_misses\": [3]}}\n  ]\n}\n");

  // Without measurement the legacy document comes out byte for byte — no
  // empty arrays, no null comm_cost.
  std::ostringstream legacy;
  exp::write_sweep_json(legacy, "golden", fixture_runs(false));
  EXPECT_EQ(legacy.str(),
            "{\n  \"sweep\": \"golden\",\n  \"runs\": [\n"
            "    {\"workload\": \"mm:n=8\", \"algo\": \"mm\", \"n\": 8, "
            "\"base\": 4, \"np\": false, "
            "\"machine\": \"flat:p=2,m1=768,c1=10\", "
            "\"machine_desc\": \"PMH[p=2, L1: 2x M=768 C=10]\", "
            "\"policy\": \"serial\", \"sigma\": 0.5, \"alpha_prime\": 1, "
            "\"repeat\": 0, \"seed\": 42, "
            "\"stats\": {\"makespan\": 100, \"total_work\": 80, "
            "\"miss_cost\": 20, \"utilization\": 0.5, \"atomic_units\": 4, "
            "\"anchors\": 0, \"steals\": 0, \"misses\": [2]}}\n  ]\n}\n");
}

TEST(Report, GoldenCsvWithAndWithoutMissColumns) {  // Q6
  std::ostringstream os;
  exp::write_sweep_csv(os, fixture_runs(true));
  EXPECT_EQ(os.str(),
            "workload,algo,n,base,np,machine,policy,sigma,alpha_prime,"
            "repeat,seed,makespan,total_work,miss_cost,utilization,"
            "atomic_units,anchors,steals,misses_l1,comm_cost,q_l1\n"
            "mm:n=8,mm,8,4,0,\"flat:p=2,m1=768,c1=10\",serial,0.5,1,0,42,"
            "100,80,20,0.5,4,0,0,2,30,3\n");

  std::ostringstream legacy;
  exp::write_sweep_csv(legacy, fixture_runs(false));
  EXPECT_EQ(legacy.str(),
            "workload,algo,n,base,np,machine,policy,sigma,alpha_prime,"
            "repeat,seed,makespan,total_work,miss_cost,utilization,"
            "atomic_units,anchors,steals,misses_l1\n"
            "mm:n=8,mm,8,4,0,\"flat:p=2,m1=768,c1=10\",serial,0.5,1,0,42,"
            "100,80,20,0.5,4,0,0,2\n");
}

TEST(Report, TableGrowsMeasuredColumnsOnlyWhenMeasured) {  // Q6
  const Table with = exp::results_table("t", fixture_runs(true));
  std::ostringstream on;
  with.print(on);
  EXPECT_NE(on.str().find("comm_cost"), std::string::npos);
  EXPECT_NE(on.str().find("Q_L1"), std::string::npos);

  const Table without = exp::results_table("t", fixture_runs(false));
  std::ostringstream off;
  without.print(off);
  EXPECT_EQ(off.str().find("comm_cost"), std::string::npos);
  EXPECT_EQ(off.str().find("Q_L1"), std::string::npos);
}

TEST(Rejections, NameTheOffendingSpecVerbatim) {  // Q7
  const auto expect_contains = [](const std::function<void()>& fn,
                                  const std::string& needle) {
    try {
      fn();
      FAIL() << "expected CheckError containing: " << needle;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  // Machine specs: unknown key, non-numeric value, and bad counts/sizes
  // all name the full spec, not just the parameter.
  expect_contains([] { parse_pmh("flat:bogus=1"); }, "'flat:bogus=1'");
  expect_contains([] { parse_pmh("flat:p=abc"); }, "'flat:p=abc'");
  expect_contains([] { parse_pmh("flat:p=-2"); }, "'flat:p=-2'");
  expect_contains([] { parse_pmh("flat:m1=0"); }, "'flat:m1=0'");
  expect_contains([] { parse_pmh("twotier:c1=-5"); }, "'twotier:c1=-5'");
  // Workload specs injected past the parser still identify themselves.
  expect_contains(
      [] {
        exp::build_workload_tree(
            exp::WorkloadSpec{"nope", 8, 4, false, {}});
      },
      "'nope:n=8'");
  expect_contains(
      [] {
        exp::build_workload_tree(exp::WorkloadSpec{"mm", 0, 4, false, {}});
      },
      "'mm:n=0'");
}

}  // namespace
}  // namespace ndf
