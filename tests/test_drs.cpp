// Tests of the DAG Rewriting System: the paper's Fig. 3/4 running example,
// fire-rule refinement, NP lowering, and work/span computation.
#include <gtest/gtest.h>

#include "algos/matmul.hpp"
#include "nd/drs.hpp"

namespace ndf {
namespace {

/// Builds the paper's MAIN example (Fig. 3/4): MAIN = F ~FG~> G with
/// F = A ; B, G = C ; D, and fire rule +FG- = { +(1) ; -(1) } (A before C).
struct MainExample {
  SpawnTree t;
  NodeId A, B, C, D, F, G, root;

  explicit MainExample(double wa = 1, double wb = 1, double wc = 1,
                       double wd = 1) {
    const FireType fg = t.rules().add_type("FG");
    t.rules().add_rule(fg, {1}, FireRules::kFull, {1});
    A = t.strand(wa, 1.0, "A");
    B = t.strand(wb, 1.0, "B");
    C = t.strand(wc, 1.0, "C");
    D = t.strand(wd, 1.0, "D");
    F = t.seq({A, B}, 2.0, "F");
    G = t.seq({C, D}, 2.0, "G");
    root = t.fire(fg, F, G, 4.0, "MAIN");
    t.set_root(root);
  }
};

TEST(Drs, MainExampleSpanIsMaxOfTwoChains) {
  // T∞ = max{A+B, A+C+D} (Sec. 2 work-span analysis of Fig. 3).
  {
    MainExample ex(1, 10, 1, 1);  // A+B = 11 dominates
    EXPECT_DOUBLE_EQ(elaborate(ex.t).span(), 11.0);
  }
  {
    MainExample ex(1, 1, 10, 10);  // A+C+D = 21 dominates
    EXPECT_DOUBLE_EQ(elaborate(ex.t).span(), 21.0);
  }
  MainExample ex;
  EXPECT_DOUBLE_EQ(elaborate(ex.t).work(), 4.0);
}

TEST(Drs, MainExampleNpLoweringSerializesFAndG) {
  MainExample ex(1, 1, 1, 1);
  EXPECT_DOUBLE_EQ(elaborate(ex.t, {.np_mode = true}).span(), 4.0);
  EXPECT_DOUBLE_EQ(elaborate(ex.t).span(), 3.0);  // A;C;D
}

TEST(Drs, MainExampleEdgeSetIsExact) {
  MainExample ex;
  StrandGraph g = elaborate(ex.t);
  // The fire rule adds exactly one task-level arrow A -> C, and the two
  // seq nodes add A -> B and C -> D.
  ASSERT_EQ(g.arrows().size(), 3u);
  bool saw_ac = false;
  for (const TaskArrow& a : g.arrows())
    if (a.from == ex.A && a.to == ex.C) saw_ac = true;
  EXPECT_TRUE(saw_ac);
}

TEST(Drs, EmptyFireTypeBehavesLikeParallel) {
  SpawnTree t;
  const FireType none = t.rules().add_type("NONE");  // no rules
  NodeId a = t.strand(5.0, 1.0);
  NodeId b = t.strand(7.0, 1.0);
  t.set_root(t.fire(none, a, b, 2.0));
  EXPECT_DOUBLE_EQ(elaborate(t).span(), 7.0);  // max, not sum
}

TEST(Drs, NamedTypeBetweenStrandsIsFullDependency) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  t.rules().add_rule(ty, {1}, ty, {1});
  NodeId a = t.strand(5.0, 1.0);
  NodeId b = t.strand(7.0, 1.0);
  t.set_root(t.fire(ty, a, b, 2.0));
  EXPECT_DOUBLE_EQ(elaborate(t).span(), 12.0);
}

TEST(Drs, SeqAndParComposeSpansClassically) {
  SpawnTree t;
  NodeId a = t.strand(2.0, 1.0);
  NodeId b = t.strand(3.0, 1.0);
  NodeId c = t.strand(4.0, 1.0);
  t.set_root(t.seq({t.par({a, b}), c}, 3.0));
  StrandGraph g = elaborate(t);
  EXPECT_DOUBLE_EQ(g.work(), 9.0);
  EXPECT_DOUBLE_EQ(g.span(), 7.0);  // max(2,3) + 4
}

TEST(Drs, MatmulWorkIsCubicAndGraphAcyclic) {
  SpawnTree t = make_mm_tree(16, 4);
  StrandGraph g = elaborate(t);
  EXPECT_DOUBLE_EQ(g.work(), 2.0 * 16 * 16 * 16);
  EXPECT_NO_THROW(g.topological_order());
  // ND span below NP span, both at least the leaf critical path.
  const double nd = g.span();
  const double np = elaborate(t, {.np_mode = true}).span();
  EXPECT_LE(nd, np);
}

TEST(Drs, MatmulNpSpanMatchesRecurrence) {
  // NP MM: T(n) = 2T(n/2) + O(1) with T(base) = 2·base³, so span scales
  // linearly in n/base.
  SpawnTree t8 = make_mm_tree(8, 4);
  SpawnTree t32 = make_mm_tree(32, 4);
  const double s8 = elaborate(t8, {.np_mode = true}).span();
  const double s32 = elaborate(t32, {.np_mode = true}).span();
  EXPECT_NEAR(s32 / s8, 4.0, 0.5);  // doubling n twice doubles span twice
}

TEST(Drs, DetachedNodesAreIgnored) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 1.0);
  NodeId b = t.strand(2.0, 1.0);
  t.strand(100.0, 1.0);  // never composed
  t.set_root(t.seq({a, b}, 1.0));
  EXPECT_DOUBLE_EQ(elaborate(t).work(), 3.0);
}

}  // namespace
}  // namespace ndf
