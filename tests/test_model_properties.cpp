// Cross-algorithm property tests of the model itself, parameterized over
// every algorithm family and a sweep of sizes:
//   P1  work is identical under ND and NP elaboration (only ordering moves)
//   P2  ND span never exceeds NP span (removing artificial dependencies
//       cannot lengthen the critical path)
//   P3  span is at least the heaviest strand and at most the work
//   P4  elaboration is deterministic (same edge multiset both times)
//   P5  Q* is composition-independent and monotone non-increasing in M
//   P6  Q̂α is monotone non-decreasing in α (up to ceiling slack) and
//       bounded below by Q*-minus-glue at α = 0
//   P7  M-maximal decompositions are nested across increasing M and cover
//       every strand exactly once
//   P8  left-to-right DFS of the spawn tree is a valid serial schedule
//       (every recorded arrow points forward in DFS order)
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/fw2d.hpp"
#include "algos/gotoh.hpp"
#include "algos/lcs.hpp"
#include "algos/lu.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/decompose.hpp"
#include "analysis/ecc.hpp"
#include "analysis/pcc.hpp"
#include "nd/drs.hpp"

namespace ndf {
namespace {

struct AlgoCase {
  const char* name;
  std::function<SpawnTree(std::size_t, std::size_t)> make;
  std::size_t n;
  std::size_t base;
};

std::vector<AlgoCase> all_cases() {
  std::vector<AlgoCase> cs;
  for (std::size_t n : {16u, 24u, 32u}) {
    cs.push_back({"mm", [](std::size_t n_, std::size_t b) {
                    return make_mm_tree(n_, b);
                  },
                  n, 4});
    cs.push_back({"trs", make_trs_tree, n, 4});
    cs.push_back({"cho", make_cholesky_tree, n, 4});
    cs.push_back({"lu", make_lu_tree, n, 4});
    cs.push_back({"fw2d", make_fw2d_tree, n, 4});
  }
  for (std::size_t n : {32u, 64u, 96u}) {
    cs.push_back({"lcs", make_lcs_tree, n, 4});
    cs.push_back({"gotoh", make_gotoh_tree, n, 4});
    cs.push_back({"fw1d", make_fw1d_tree, n, 4});
  }
  return cs;
}

class ModelProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  const AlgoCase& c() const {
    static const std::vector<AlgoCase> cs = all_cases();
    return cs[GetParam()];
  }
};

TEST_P(ModelProperty, WorkInvariantUnderElaborationMode) {  // P1
  SpawnTree t = c().make(c().n, c().base);
  EXPECT_DOUBLE_EQ(elaborate(t).work(),
                   elaborate(t, {.np_mode = true}).work());
  EXPECT_DOUBLE_EQ(elaborate(t).work(), t.work_of(t.root()));
}

TEST_P(ModelProperty, NdSpanAtMostNpSpan) {  // P2
  SpawnTree t = c().make(c().n, c().base);
  EXPECT_LE(elaborate(t).span(),
            elaborate(t, {.np_mode = true}).span() + 1e-9);
}

TEST_P(ModelProperty, SpanBounds) {  // P3
  SpawnTree t = c().make(c().n, c().base);
  StrandGraph g = elaborate(t);
  double heaviest = 0.0;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    if (t.node(n).kind == Kind::Strand && t.in_subtree(n, t.root()))
      heaviest = std::max(heaviest, t.node(n).work);
  EXPECT_GE(g.span(), heaviest);
  EXPECT_LE(g.span(), g.work() + 1e-9);
}

TEST_P(ModelProperty, ElaborationIsDeterministic) {  // P4
  SpawnTree t = c().make(c().n, c().base);
  StrandGraph a = elaborate(t);
  StrandGraph b = elaborate(t);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.arrows().size(), b.arrows().size());
  EXPECT_DOUBLE_EQ(a.span(), b.span());
}

TEST_P(ModelProperty, PccMonotoneInM) {  // P5
  SpawnTree t = c().make(c().n, c().base);
  double prev = 1e300;
  for (double M : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    const double q = parallel_cache_complexity(t, M);
    EXPECT_LE(q, prev * 1.01)
        << c().name << ": Q* rose from M smaller to M=" << M;
    EXPECT_GT(q, 0.0);
    prev = q;
  }
}

TEST_P(ModelProperty, EccQhatMonotoneInAlpha) {  // P6
  SpawnTree t = c().make(c().n, c().base);
  StrandGraph g = elaborate(t);
  Decomposition d = decompose(t, 64.0);
  const double q_star = parallel_cache_complexity(t, d);
  double prev = 0.0;
  for (double a : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const EccResult r = effective_cache_complexity(t, g, d, a);
    // Q̂α = ⌈·⌉·s^α: the underlying quantity is non-decreasing in α; the
    // ceiling introduces at most one s^α of slack in each term.
    EXPECT_GE(r.q_hat, prev * 0.90 - 1e-9) << "alpha=" << a;
    prev = std::max(prev, r.q_hat);
    EXPECT_GE(r.q_hat + 1e-9,
              q_star - double(d.glue.size()) * kGlueCost);
  }
}

TEST_P(ModelProperty, DecompositionsNestAndCover) {  // P7
  SpawnTree t = c().make(c().n, c().base);
  const Decomposition fine = decompose(t, 32.0);
  const Decomposition coarse = decompose(t, 512.0);
  // Cover: every strand owned exactly once at each granularity.
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.node(n).kind != Kind::Strand || !t.in_subtree(n, t.root()))
      continue;
    ASSERT_GE(fine.owner[n], 0);
    ASSERT_GE(coarse.owner[n], 0);
  }
  // Nesting: two strands in the same fine task share their coarse task.
  for (std::size_t i = 0; i < fine.maximal.size(); ++i) {
    const auto strands = t.strands_under(fine.maximal[i]);
    for (NodeId s : strands)
      EXPECT_EQ(coarse.owner[s], coarse.owner[strands[0]]);
  }
  EXPECT_LE(coarse.maximal.size(), fine.maximal.size());
}

TEST_P(ModelProperty, DfsOrderIsValidSerialSchedule) {  // P8
  SpawnTree t = c().make(c().n, c().base);
  StrandGraph g = elaborate(t);
  // DFS position of every node.
  std::vector<std::size_t> pos(t.num_nodes(), 0);
  std::size_t counter = 0;
  std::vector<NodeId> stack{t.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    pos[n] = counter++;
    const auto& ch = t.node(n).children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  for (const TaskArrow& a : g.arrows())
    EXPECT_LT(pos[a.from], pos[a.to])
        << c().name << ": arrow " << a.from << "->" << a.to
        << " points backwards in DFS order";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, ModelProperty,
    ::testing::Range<std::size_t>(0, all_cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      static const std::vector<AlgoCase> cs = all_cases();
      return std::string(cs[info.param].name) + "_n" +
             std::to_string(cs[info.param].n);
    });

}  // namespace
}  // namespace ndf
