// Determinacy property tests: for every algorithm, any two strands with
// conflicting declared footprints must be ordered by a dependence path in
// the elaborated DAG. This validates the fire-rule tables themselves —
// a missing or wrong rule shows up as an unordered conflicting pair.
#include <gtest/gtest.h>

#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/fw2d.hpp"
#include "algos/lcs.hpp"
#include "algos/lu.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/determinacy.hpp"
#include "nd/drs.hpp"
#include "support/rng.hpp"

namespace ndf {
namespace {

struct SizeCase {
  std::size_t n;
  std::size_t base;
};

class Determinacy : public ::testing::TestWithParam<SizeCase> {};

TEST_P(Determinacy, Matmul) {
  const auto [n, base] = GetParam();
  Matrix<double> A(n, n, 1.0), B(n, n, 1.0), C(n, n, 0.0);
  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_mm(t, ty, n, n, n, base, 1.0,
                      MmViews{A.view(), B.view(), C.view(), false}));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_GT(rep.conflicting_pairs, 0u);
}

TEST_P(Determinacy, TrsBothSides) {
  const auto [n, base] = GetParam();
  for (TrsSide side : {TrsSide::LeftLower, TrsSide::RightLowerT}) {
    Matrix<double> T(n, n, 1.0), B(n, n, 1.0);
    SpawnTree t;
    const LinalgTypes ty = LinalgTypes::install(t);
    t.set_root(build_trs(t, ty, side, n, n, base,
                         TrsViews{T.view(), B.view()}));
    const auto rep = check_determinacy(elaborate(t));
    EXPECT_TRUE(rep.ok) << rep.message;
    EXPECT_GT(rep.conflicting_pairs, 0u);
  }
}

TEST_P(Determinacy, Cholesky) {
  const auto [n, base] = GetParam();
  Matrix<double> A(n, n, 1.0);
  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_cholesky(t, ty, n, base, A.view()));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST_P(Determinacy, Lu) {
  const auto [n, base] = GetParam();
  Matrix<double> A(n, n, 1.0);
  std::vector<int> ipiv;
  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_lu(t, ty, n, base, LuViews{A.view(), &ipiv}));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST_P(Determinacy, Lcs) {
  const auto [n, base] = GetParam();
  std::vector<int> S(n, 0), T(n, 1);
  Matrix<int> X(n + 1, n + 1, 0);
  SpawnTree t;
  const LcsTypes ty = LcsTypes::install(t);
  t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_GT(rep.conflicting_pairs, 0u);
}

TEST_P(Determinacy, Fw1d) {
  const auto [n, base] = GetParam();
  Matrix<double> D(n + 1, n + 1, 0.0);
  SpawnTree t;
  const Fw1dTypes ty = Fw1dTypes::install(t);
  t.set_root(build_fw1d(t, ty, n, base, &D));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST_P(Determinacy, Fw2dNp) {
  const auto [n, base] = GetParam();
  Matrix<double> D(n, n, 1.0);
  SpawnTree t;
  t.set_root(build_fw2d_np(t, n, base, &D));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Determinacy,
    ::testing::Values(SizeCase{8, 2}, SizeCase{16, 4}, SizeCase{12, 3},
                      SizeCase{16, 2}),
    [](const ::testing::TestParamInfo<SizeCase>& info) {
      return "n" + std::to_string(info.param.n) + "b" +
             std::to_string(info.param.base);
    });

/// A deliberately broken rule table must be caught: drop LCS's vertical
/// rules and observe an unordered conflicting pair.
TEST(DeterminacyNegative, MissingRuleIsDetected) {
  const std::size_t n = 8, base = 2;
  std::vector<int> S(n, 0), T(n, 1);
  Matrix<int> X(n + 1, n + 1, 0);
  SpawnTree t;
  FireRules& R = t.rules();
  LcsTypes ty;
  ty.HV = R.add_type("HV");
  ty.VH = R.add_type("VH");
  ty.H = R.add_type("H");
  ty.V = R.add_type("V");
  // Only horizontal dependencies — vertical ones are "forgotten".
  R.add_rule(ty.HV, {}, ty.H, {1});
  R.add_rule(ty.VH, {2, 2}, ty.H, {});
  R.add_rule(ty.H, {1, 2, 1}, ty.H, {1, 1});
  R.add_rule(ty.H, {2}, ty.H, {1, 2, 2});
  R.add_rule(ty.V, {1, 2, 2}, ty.V, {1, 1});
  R.add_rule(ty.V, {2}, ty.V, {1, 2, 1});
  t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.message.empty());
}

}  // namespace
}  // namespace ndf
