// Tests of the experiment-sweep subsystem (src/exp/):
//   X1  workload spec parsing: defaults, round-trip labels, loud failures
//   X2  scenario grid expansion: size, deterministic order, validation
//   X3  the Sweep runner builds each workload's condensation exactly once
//       per σ × cache profile (counter-verified) and its stats are
//       bit-identical to fresh-build SimCore runs for all four policies
//   X4  SimCore on a shared CondensedDag == SimCore building its own, bit
//       for bit, and incompatible dag/machine/σ pairings are rejected;
//       one reset()-reused core matches fresh cores across dags, machines
//       and all four policies (occupancy layer included)
//   X5  the repeat axis varies only the seed, deterministically
//   X6  the consolidated JSON/CSV emitters produce well-formed output
//   X7  the parallel engine: a mid-size grid at --jobs=1/2/8 produces
//       byte-identical table/JSON/CSV output (with and without measured
//       misses) and the same condensation count, the condensation plan
//       matches the serial cache walk, and phase times account for the run
//   X8  parallel failures surface as the same loud CheckErrors serial ones
//       do, without poisoning the Sweep into a fake empty success — a
//       failed run reports zero condensations and retries from scratch
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"

namespace ndf {
namespace {

const char* kAllPolicies[] = {"sb", "ws", "greedy", "serial"};

void expect_stats_bit_identical(const SchedStats& a, const SchedStats& b,
                                const std::string& who) {
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << who;
  EXPECT_DOUBLE_EQ(a.total_work, b.total_work) << who;
  EXPECT_DOUBLE_EQ(a.miss_cost, b.miss_cost) << who;
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization) << who;
  EXPECT_EQ(a.atomic_units, b.atomic_units) << who;
  EXPECT_EQ(a.anchors, b.anchors) << who;
  EXPECT_EQ(a.steals, b.steals) << who;
  ASSERT_EQ(a.misses.size(), b.misses.size()) << who;
  for (std::size_t l = 0; l < a.misses.size(); ++l)
    EXPECT_DOUBLE_EQ(a.misses[l], b.misses[l]) << who << " L" << (l + 1);
  EXPECT_DOUBLE_EQ(a.comm_cost, b.comm_cost) << who;
  ASSERT_EQ(a.measured_misses.size(), b.measured_misses.size()) << who;
  for (std::size_t l = 0; l < a.measured_misses.size(); ++l)
    EXPECT_DOUBLE_EQ(a.measured_misses[l], b.measured_misses[l])
        << who << " measured L" << (l + 1);
}

TEST(Workload, ParseSpecDefaultsAndRoundTrip) {  // X1
  exp::WorkloadSpec w = exp::parse_workload("mm");
  EXPECT_EQ(w.algo, "mm");
  EXPECT_EQ(w.n, 64u);  // the registry default
  EXPECT_EQ(w.base, 4u);
  EXPECT_FALSE(w.np);
  EXPECT_EQ(w.label(), "mm:n=64");

  w = exp::parse_workload("trs:n=48,base=8,np");
  EXPECT_EQ(w.algo, "trs");
  EXPECT_EQ(w.n, 48u);
  EXPECT_EQ(w.base, 8u);
  EXPECT_TRUE(w.np);
  EXPECT_EQ(w.label(), "trs:n=48,base=8,np");
  // Labels round-trip through the parser.
  const exp::WorkloadSpec again = exp::parse_workload(w.label());
  EXPECT_EQ(again.label(), w.label());

  const auto list = exp::parse_workload_list("mm:n=8;lcs:n=32,np");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].algo, "mm");
  EXPECT_TRUE(list[1].np);
  EXPECT_TRUE(exp::parse_workload_list("").empty());
}

TEST(Workload, BadSpecsFailLoudlyListingRegistry) {  // X1
  try {
    exp::parse_workload("nope:n=4");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload 'nope'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mm"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cholesky"), std::string::npos) << msg;
  }
  EXPECT_THROW(exp::parse_workload("mm:n=-3"), CheckError);
  EXPECT_THROW(exp::parse_workload("mm:n=abc"), CheckError);
  EXPECT_GE(exp::registered_workloads().size(), 8u);

  // A typo'd algo name is reported as such even when its parameters are
  // malformed too (the name is validated before the items).
  try {
    exp::parse_workload("bogus:zzz");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown workload 'bogus'"),
              std::string::npos)
        << e.what();
  }

  // Unknown keys name the accepted ones; duplicate keys (a typo that would
  // otherwise silently take the last value) are rejected loudly too.
  try {
    exp::parse_workload("mm:bogus=1");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload parameter 'bogus'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("valid: n, base, np"), std::string::npos) << msg;
  }
  try {
    exp::parse_workload("mm:n=4,n=8");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate workload parameter 'n'"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(exp::parse_workload("mm:np,np"), CheckError);
  EXPECT_THROW(exp::parse_workload("mm:np=1,np"), CheckError);
  EXPECT_THROW(exp::parse_workload("gen:family=sp,seed=1,seed=2"),
               CheckError);
}

TEST(Workload, GenSpecsAreFirstClass) {  // X1
  // "gen:" specs ride the same parser/registry path as named algos; the
  // generator itself is covered by tests/test_gen.cpp.
  const exp::WorkloadSpec g =
      exp::parse_workload("gen:family=sp,depth=5,fan=4,seed=3");
  ASSERT_TRUE(g.gen);
  EXPECT_EQ(g.algo, "gen");
  EXPECT_EQ(g.label(), "gen:family=sp,depth=5,fan=4,seed=3");
  EXPECT_EQ(exp::parse_workload(g.label()).label(), g.label());

  exp::Workload w(g);
  EXPECT_GT(w.graph().num_vertices(), 0u);
  EXPECT_GT(w.tree().work_of(w.tree().root()), 0.0);
}

TEST(Workload, BuildsTreeAndGraph) {  // X1
  exp::Workload w(exp::parse_workload("mm:n=8"));
  EXPECT_GT(w.tree().work_of(w.tree().root()), 0.0);
  EXPECT_GT(w.graph().num_vertices(), 0u);
  // np changes the elaboration, not the tree.
  exp::Workload np(exp::parse_workload("trs:n=16,np"));
  exp::Workload nd(exp::parse_workload("trs:n=16"));
  EXPECT_EQ(np.graph().num_vertices(), nd.graph().num_vertices());
  EXPECT_GE(np.graph().span(), nd.graph().span());
}

exp::Scenario small_scenario() {
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=8;trs:n=8");
  s.machines = {"flat:p=2,m1=768,c1=10", "deep2x4"};
  s.policies = {"sb", "ws", "greedy"};
  s.sigmas = {0.25, 0.5};
  s.alpha_primes = {0.5, 1.0};
  s.repeats = 2;
  return s;
}

TEST(Scenario, GridSizeAndExpansionOrder) {  // X2
  const exp::Scenario s = small_scenario();
  // 2 workloads × 2 σ × 2 machines × 2 α' × 3 policies × 2 repeats.
  EXPECT_EQ(exp::grid_size(s), 96u);
  const auto g = exp::expand_grid(s);
  ASSERT_EQ(g.size(), 96u);
  // Innermost axis is repeat, then policy, α', machine, σ; workload-major.
  EXPECT_EQ(g[0].repeat, 0u);
  EXPECT_EQ(g[1].repeat, 1u);
  EXPECT_EQ(g[1].policy, 0u);
  EXPECT_EQ(g[2].policy, 1u);
  EXPECT_EQ(g[6].alpha, 1u);
  EXPECT_EQ(g[12].machine, 1u);
  EXPECT_EQ(g[24].sigma, 1u);
  EXPECT_EQ(g[47].workload, 0u);
  EXPECT_EQ(g[48].workload, 1u);
  EXPECT_EQ(g[95].workload, 1u);
  EXPECT_EQ(g[95].sigma, 1u);
  EXPECT_EQ(g[95].repeat, 1u);
  // Expansion is deterministic.
  EXPECT_EQ(exp::expand_grid(s).size(), g.size());
}

TEST(Scenario, ValidationRejectsBadAxes) {  // X2
  exp::Scenario s;
  EXPECT_THROW(exp::validate(s), CheckError);  // no workloads
  s = small_scenario();
  EXPECT_NO_THROW(exp::validate(s));
  s.policies = {"bogus"};
  EXPECT_THROW(exp::validate(s), CheckError);
  s = small_scenario();
  s.sigmas = {1.5};
  EXPECT_THROW(exp::validate(s), CheckError);
  s = small_scenario();
  s.alpha_primes = {0.0};
  EXPECT_THROW(exp::validate(s), CheckError);
  s = small_scenario();
  s.alpha_primes = {-1.0};
  EXPECT_THROW(exp::validate(s), CheckError);
  s = small_scenario();
  s.repeats = 0;
  EXPECT_THROW(exp::validate(s), CheckError);
  s = small_scenario();
  s.machines.clear();
  EXPECT_THROW(exp::validate(s), CheckError);
  s = small_scenario();
  s.machines = {"bogus-machine"};
  EXPECT_THROW(exp::validate(s), CheckError);  // specs parse at validation
}

TEST(Sweep, FailedRunDoesNotPoisonIntoEmptySuccess) {  // X2
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=8");
  s.machines = {"bogus-machine"};
  s.policies = {"sb"};
  exp::Sweep sweep(s);
  EXPECT_THROW(sweep.run(), CheckError);
  EXPECT_THROW(sweep.run(), CheckError);  // still throws, no silent empty
  EXPECT_TRUE(sweep.results().empty());
}

TEST(Sweep, BuildsCondensationOncePerSigmaAndMatchesFreshRuns) {  // X3
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=32");
  s.machines = {"flat8"};
  s.policies = {"sb", "ws", "greedy", "serial"};
  exp::Sweep sweep(s);

  const std::size_t before = CondensedDag::total_builds();
  const auto& runs = sweep.run();
  // The acceptance invariant: 1 workload × 1 σ → exactly one condensation
  // for all four policies.
  EXPECT_EQ(CondensedDag::total_builds(), before + 1);
  EXPECT_EQ(sweep.condensations_built(), 1u);
  ASSERT_EQ(runs.size(), 4u);

  // Fresh-build SimCore (the historical per-run path) must agree bit for
  // bit with the shared-condensation sweep, for every policy.
  exp::Workload w(s.workloads[0]);
  const Pmh m = make_pmh("flat8");
  for (const exp::RunPoint& r : runs) {
    SchedOptions o;
    o.seed = r.seed;
    const SchedStats fresh = run_scheduler(r.policy, w.graph(), m, o);
    expect_stats_bit_identical(r.stats, fresh, r.policy);
  }
}

TEST(Sweep, CondensationCountIsSigmaTimesCacheProfiles) {  // X3
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=32");
  // Three machines, one cache profile (M1=768): p never forces a rebuild.
  s.machines = {"flat:p=2,m1=768,c1=10", "flat:p=8,m1=768,c1=10", "flat16"};
  s.policies = {"sb", "serial"};
  s.sigmas = {0.25, 0.5};
  exp::Sweep sweep(s);
  const auto& runs = sweep.run();
  EXPECT_EQ(runs.size(), 12u);
  EXPECT_EQ(sweep.condensations_built(), 2u);  // one per σ, shared by all

  // A machine with a different profile forces one more per σ.
  exp::Scenario s2 = s;
  s2.machines.push_back("deep2x4");
  exp::Sweep sweep2(s2);
  sweep2.run();
  EXPECT_EQ(sweep2.condensations_built(), 4u);
}

TEST(CondensedDag, SharedDagMatchesOwnedBitIdentically) {  // X4
  exp::Workload w(exp::parse_workload("trs:n=32"));
  const Pmh m = make_pmh("deep2x4");
  SchedOptions o;
  const CondensedDag dag(w.graph(), level_cache_sizes(m), o.sigma);
  EXPECT_EQ(dag.num_levels(), 2u);
  EXPECT_GT(dag.num_units(), 0u);
  EXPECT_DOUBLE_EQ(dag.total_work(), w.graph().work());

  for (const char* name : kAllPolicies) {
    const auto policy = make_scheduler(name, o);
    SimCore shared(dag, m, o);
    const SchedStats a = shared.run(*policy);
    const SchedStats b = run_scheduler(name, w.graph(), m, o);
    expect_stats_bit_identical(a, b, name);
  }

  // Incompatible pairings are rejected loudly.
  const Pmh flat = make_pmh("flat8");
  EXPECT_THROW(SimCore(dag, flat, o), CheckError);
  SchedOptions other_sigma;
  other_sigma.sigma = 0.5;
  EXPECT_THROW(SimCore(dag, m, other_sigma), CheckError);
  EXPECT_FALSE(dag.compatible_with(m, 0.5));
  EXPECT_TRUE(dag.compatible_with(m, o.sigma));
}

TEST(SimCore, ResetReusedCoreMatchesFreshAcrossPolicies) {  // X4
  // One core cycled through reset() across dags, machines, σ values and
  // all four policies (with the occupancy layer on, so its reuse path is
  // covered too) must match a freshly constructed core bit for bit — the
  // invariant that lets sweep chunks reuse one core per worker.
  exp::Workload mm(exp::parse_workload("mm:n=16"));
  exp::Workload trs(exp::parse_workload("trs:n=16"));
  const Pmh deep = make_pmh("deep2x4");
  const Pmh flat = make_pmh("flat8");
  SchedOptions third;
  SchedOptions half;
  half.sigma = 0.5;
  half.measure_misses = true;
  struct Binding {
    const exp::Workload* w;
    const Pmh* m;
    SchedOptions o;
  };
  const Binding bindings[] = {{&mm, &deep, third},
                              {&mm, &deep, half},
                              {&trs, &flat, third},
                              {&mm, &flat, half},
                              {&trs, &deep, third}};

  std::vector<std::unique_ptr<CondensedDag>> dags;
  std::unique_ptr<SimCore> reused;
  for (const Binding& bind : bindings) {
    dags.push_back(std::make_unique<CondensedDag>(
        bind.w->graph(), level_cache_sizes(*bind.m), bind.o.sigma));
    const CondensedDag& dag = *dags.back();
    for (const char* name : kAllPolicies) {
      SchedOptions o = bind.o;
      o.seed = 7;  // exercise a non-default ws seed through reset too
      if (reused)
        reused->reset(dag, *bind.m, o);
      else
        reused = std::make_unique<SimCore>(dag, *bind.m, o);
      const auto pol_a = make_scheduler(name, o);
      const SchedStats a = reused->run(*pol_a);
      SimCore fresh(dag, *bind.m, o);
      const auto pol_b = make_scheduler(name, o);
      expect_stats_bit_identical(a, fresh.run(*pol_b), name);
    }
  }
  // reset() re-checks compatibility like the constructor does.
  EXPECT_THROW(reused->reset(*dags.front(), flat, third), CheckError);
}

TEST(Sweep, RepeatAxisVariesSeedDeterministically) {  // X5
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=32");
  s.machines = {"flat8"};
  s.policies = {"ws"};
  s.repeats = 3;
  s.base_seed = 7;
  exp::Sweep sweep(s);
  const auto& runs = sweep.run();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].seed, 7u);
  EXPECT_EQ(runs[1].seed, 8u);
  EXPECT_EQ(runs[2].seed, 9u);

  // Rerunning the same scenario reproduces every point exactly.
  exp::Sweep again(s);
  const auto& runs2 = again.run();
  for (std::size_t i = 0; i < runs.size(); ++i)
    expect_stats_bit_identical(runs[i].stats, runs2[i].stats,
                               "repeat " + std::to_string(i));
}

// All three emitters rendered into one string — the byte-level artifact
// the parallel/serial equivalence tests (and the CI gate) compare.
std::string emit_everything(const std::vector<exp::RunPoint>& runs) {
  std::ostringstream os;
  exp::results_table("stress", runs).print(os);
  exp::write_sweep_json(os, "stress", runs);
  exp::write_sweep_csv(os, runs);
  return os.str();
}

TEST(Sweep, ParallelOutputIsByteIdenticalToSerial) {  // X7
  // A mid-size grid exercising every axis: 2 workloads × 2 σ × 2 machines
  // (distinct cache profiles) × 2 α' × 3 policies × 2 repeats = 96 cells,
  // 8 condensations.
  const exp::Scenario s = small_scenario();

  exp::Sweep serial(s, 1);
  const std::string golden = emit_everything(serial.run());

  for (const std::size_t jobs : {2u, 8u}) {
    exp::Sweep parallel(s, jobs);
    const auto& runs = parallel.run();
    ASSERT_EQ(runs.size(), serial.results().size()) << jobs << " jobs";
    EXPECT_EQ(parallel.condensations_built(), serial.condensations_built())
        << jobs << " jobs";
    EXPECT_EQ(emit_everything(runs), golden) << jobs << " jobs";
  }
}

TEST(Sweep, ParallelOutputIsByteIdenticalToSerialWithMisses) {  // X7
  // Same identity, with the measured LRU occupancy layer on: the extra
  // comm_cost / Q_L<i> columns ride through the chunked dispatch (and the
  // reused cores' occupancy reset) byte-identically too.
  exp::Scenario s = small_scenario();
  s.measure_misses = true;
  s.policies = {"sb", "ws", "greedy", "serial"};

  exp::Sweep serial(s, 1);
  const std::string golden = emit_everything(serial.run());

  for (const std::size_t jobs : {2u, 8u}) {
    exp::Sweep parallel(s, jobs);
    const auto& runs = parallel.run();
    ASSERT_EQ(runs.size(), serial.results().size()) << jobs << " jobs";
    EXPECT_EQ(emit_everything(runs), golden) << jobs << " jobs";
  }
}

TEST(Sweep, PhaseTimesAccountForACompletedRun) {  // X7
  const exp::Scenario s = small_scenario();
  for (const std::size_t jobs : {1u, 4u}) {
    exp::Sweep sweep(s, jobs);
    EXPECT_EQ(sweep.phase_times().cell_execution, 0.0) << jobs << " jobs";
    sweep.run();
    const exp::PhaseTimes& pt = sweep.phase_times();
    EXPECT_GE(pt.workload_build, 0.0) << jobs << " jobs";
    EXPECT_GE(pt.condensation, 0.0) << jobs << " jobs";
    // 96 simulated cells cannot take literally zero wall-clock.
    EXPECT_GT(pt.cell_execution, 0.0) << jobs << " jobs";
  }
}

TEST(Sweep, ParallelBuildsEachCondensationExactlyOnce) {  // X7
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=32");
  // Three machines, one cache profile: p never forces a rebuild.
  s.machines = {"flat:p=2,m1=768,c1=10", "flat:p=8,m1=768,c1=10", "flat16"};
  s.policies = {"sb", "ws", "greedy", "serial"};
  s.sigmas = {0.25, 0.5};
  exp::Sweep sweep(s, 4);
  const std::size_t before = CondensedDag::total_builds();
  const auto& runs = sweep.run();
  EXPECT_EQ(runs.size(), 24u);
  // One per σ, shared by all machines and policies — the same count the
  // serial runner's rolling cache reports.
  EXPECT_EQ(CondensedDag::total_builds(), before + 2);
  EXPECT_EQ(sweep.condensations_built(), 2u);
}

TEST(Scenario, CondensationPlanMatchesSerialCacheWalk) {  // X7
  const exp::Scenario s = small_scenario();
  std::vector<Pmh> machines;
  for (const std::string& spec : s.machines)
    machines.push_back(make_pmh(spec));
  const auto grid = exp::expand_grid(s);
  const exp::CondensationPlan plan =
      exp::plan_condensations(s, grid, machines);
  // 2 workloads × 2 σ × 2 distinct profiles.
  EXPECT_EQ(plan.keys.size(), 8u);
  ASSERT_EQ(plan.cell.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const exp::CondensationPlan::Key& k = plan.keys[plan.cell[i]];
    EXPECT_EQ(k.workload, grid[i].workload);
    EXPECT_EQ(k.sigma, grid[i].sigma);
    EXPECT_EQ(k.sizes, level_cache_sizes(machines[grid[i].machine]));
  }
  // Keys appear in first-use grid order, so the serial walk and the plan
  // agree not just on the count but on the build sequence.
  std::size_t seen = 0;
  for (const std::size_t c : plan.cell)
    if (c == seen) ++seen;
  EXPECT_EQ(seen, plan.keys.size());
}

TEST(Sweep, WorkerFailureSurfacesLoudlyAndDoesNotPoison) {  // X8
  // A workload spec injected past the parser (validate() deliberately does
  // not re-check specs) so the failure happens inside a worker task during
  // the parallel build fan-out — not on the main thread before the pool
  // exists. wait_all must surface it as the same loud CheckError, after
  // every sibling task has finished with the shared state.
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=8");
  s.workloads.push_back(exp::WorkloadSpec{"not-a-workload", 8, 4, false, {}});
  s.machines = {"flat8"};
  s.policies = {"sb", "serial"};
  exp::Sweep sweep(s, 4);
  try {
    sweep.run();
    FAIL() << "expected CheckError from the worker";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown workload 'not-a-workload'"),
              std::string::npos)
        << e.what();
  }
  // A failed run leaves the object fully reset — in particular the
  // condensation count must not be left at the plan size with no results
  // behind it — and a retry starts from scratch: it throws the same way
  // instead of returning a fake empty success.
  EXPECT_EQ(sweep.condensations_built(), 0u);
  EXPECT_THROW(sweep.run(), CheckError);  // still throws, no silent empty
  EXPECT_TRUE(sweep.results().empty());
  EXPECT_EQ(sweep.condensations_built(), 0u);

  // Same failure on the serial path: identical post-throw state.
  exp::Sweep serial(s, 1);
  EXPECT_THROW(serial.run(), CheckError);
  EXPECT_THROW(serial.run(), CheckError);
  EXPECT_TRUE(serial.results().empty());
  EXPECT_EQ(serial.condensations_built(), 0u);
}

TEST(Report, EmittersProduceWellFormedOutput) {  // X6
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=8");
  s.machines = {"flat:p=2,m1=768,c1=10"};
  s.policies = {"sb", "serial"};
  exp::Sweep sweep(s);
  const auto& runs = sweep.run();

  std::ostringstream json;
  exp::write_sweep_json(json, "unit", runs);
  const std::string j = json.str();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.substr(j.size() - 2), "}\n");
  EXPECT_NE(j.find("\"sweep\": \"unit\""), std::string::npos);
  EXPECT_NE(j.find("\"runs\": ["), std::string::npos);
  EXPECT_NE(j.find("\"makespan\": "), std::string::npos);
  EXPECT_NE(j.find("\"policy\": \"serial\""), std::string::npos);

  std::ostringstream csv;
  exp::write_sweep_csv(csv, runs);
  const std::string c = csv.str();
  // Header + one line per run; the comma-bearing machine spec is quoted.
  EXPECT_EQ(std::count(c.begin(), c.end(), '\n'), (long)runs.size() + 1);
  EXPECT_NE(c.find("workload,algo,n,"), std::string::npos);
  EXPECT_NE(c.find("\"flat:p=2,m1=768,c1=10\""), std::string::npos);

  const Table t = exp::results_table("unit", runs);
  EXPECT_EQ(t.num_rows(), runs.size());
}

}  // namespace
}  // namespace ndf
