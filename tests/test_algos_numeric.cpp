// Numerical correctness of every algorithm: the elaborated ND DAG, executed
// serially in a topological order of the algorithm DAG, must reproduce the
// serial reference result. Parameterized over problem size (including odd,
// non-power-of-two sizes) and base case.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/fw2d.hpp"
#include "algos/lcs.hpp"
#include "algos/lu.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace ndf {
namespace {

Matrix<double> random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix<double> m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

/// Random well-conditioned lower-triangular matrix.
Matrix<double> random_lower(std::size_t n, std::uint64_t seed) {
  Matrix<double> m = random_matrix(n, n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) m(i, j) = 0.0;
    m(i, i) = 2.0 + std::abs(m(i, i));  // keep it far from singular
  }
  return m;
}

/// Random symmetric positive-definite matrix (AAᵀ + n·I).
Matrix<double> random_spd(std::size_t n, std::uint64_t seed) {
  Matrix<double> a = random_matrix(n, n, seed);
  Matrix<double> s(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) s(i, j) += a(i, k) * a(j, k);
      if (i == j) s(i, j) += double(n);
    }
  return s;
}

double max_abs_diff(const Matrix<double>& a, const Matrix<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

double max_abs_diff_lower(const Matrix<double>& a, const Matrix<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j <= i; ++j)
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

struct SizeCase {
  std::size_t n;
  std::size_t base;
};

class AlgoNumeric : public ::testing::TestWithParam<SizeCase> {};

TEST_P(AlgoNumeric, MatmulMatchesReference) {
  const auto [n, base] = GetParam();
  Matrix<double> A = random_matrix(n, n, 1), B = random_matrix(n, n, 2);
  Matrix<double> C = random_matrix(n, n, 3), Cref = C;

  mm_reference(A.view(), B.view(), Cref.view(), +1.0, false);

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_mm(t, ty, n, n, n, base, +1.0,
                      MmViews{A.view(), B.view(), C.view(), false}));
  execute_serial(elaborate(t));
  EXPECT_LT(max_abs_diff(C, Cref), 1e-9);
}

TEST_P(AlgoNumeric, MatmulTransposedBMatchesReference) {
  const auto [n, base] = GetParam();
  Matrix<double> A = random_matrix(n, n, 4), B = random_matrix(n, n, 5);
  Matrix<double> C = random_matrix(n, n, 6), Cref = C;
  mm_reference(A.view(), B.view(), Cref.view(), -1.0, true);

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_mm(t, ty, n, n, n, base, -1.0,
                      MmViews{A.view(), B.view(), C.view(), true}));
  execute_serial(elaborate(t));
  EXPECT_LT(max_abs_diff(C, Cref), 1e-9);
}

TEST_P(AlgoNumeric, TrsLeftLowerSolves) {
  const auto [n, base] = GetParam();
  Matrix<double> T = random_lower(n, 7);
  Matrix<double> B = random_matrix(n, n, 8), X = B;

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_trs(t, ty, TrsSide::LeftLower, n, n, base,
                       TrsViews{T.view(), X.view()}));
  execute_serial(elaborate(t));

  // Verify T·X = B directly.
  Matrix<double> R = B;
  mm_reference(T.view(), X.view(), R.view(), -1.0, false);
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) resid = std::max(resid, std::abs(R(i, j)));
  EXPECT_LT(resid, 1e-9);
}

TEST_P(AlgoNumeric, TrsRightLowerTSolves) {
  const auto [n, base] = GetParam();
  Matrix<double> L = random_lower(n, 9);
  Matrix<double> B = random_matrix(n, n, 10), X = B;

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_trs(t, ty, TrsSide::RightLowerT, n, n, base,
                       TrsViews{L.view(), X.view()}));
  execute_serial(elaborate(t));

  // Verify X·Lᵀ = B.
  Matrix<double> R = B;
  mm_reference(X.view(), L.view(), R.view(), -1.0, true);
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) resid = std::max(resid, std::abs(R(i, j)));
  EXPECT_LT(resid, 1e-9);
}

TEST_P(AlgoNumeric, CholeskyMatchesReference) {
  const auto [n, base] = GetParam();
  Matrix<double> A = random_spd(n, 11), Aref = A;
  cholesky_reference(Aref.view());

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_cholesky(t, ty, n, base, A.view()));
  execute_serial(elaborate(t));
  EXPECT_LT(max_abs_diff_lower(A, Aref), 1e-8);
}

TEST_P(AlgoNumeric, LuReconstructsPA) {
  const auto [n, base] = GetParam();
  Matrix<double> A0 = random_matrix(n, n, 12);
  Matrix<double> A = A0;
  std::vector<int> ipiv;

  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_lu(t, ty, n, base, LuViews{A.view(), &ipiv}));
  execute_serial(elaborate(t));

  // P·A0 (apply recorded swaps in order), then compare to L·U.
  Matrix<double> PA = A0;
  apply_pivots(PA.view(), ipiv, 0, n, 0, n);
  Matrix<double> LU(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const std::size_t kmax = std::min(i, j);  // L unit-lower, U upper
      for (std::size_t k = 0; k < kmax; ++k) acc += A(i, k) * A(k, j);
      if (i <= j)
        acc += A(i, j);  // L(i,i) = 1
      else
        acc += A(i, j) * A(j, j);
      LU(i, j) = acc;
    }
  EXPECT_LT(max_abs_diff(PA, LU), 1e-9);
}

TEST_P(AlgoNumeric, LcsMatchesReference) {
  const auto [n, base] = GetParam();
  Rng rng(13);
  std::vector<int> S(n), T(n);
  for (auto& x : S) x = int(rng.below(4));
  for (auto& x : T) x = int(rng.below(4));

  Matrix<int> Xref(n + 1, n + 1, 0);
  const int ref = lcs_reference(S, T, Xref);

  Matrix<int> X(n + 1, n + 1, 0);
  SpawnTree t;
  const LcsTypes ty = LcsTypes::install(t);
  t.set_root(build_lcs(t, ty, n, base, LcsViews{&S, &T, &X}));
  execute_serial(elaborate(t));
  EXPECT_EQ(X(n, n), ref);
  for (std::size_t i = 0; i <= n; ++i)
    for (std::size_t j = 0; j <= n; ++j) EXPECT_EQ(X(i, j), Xref(i, j));
}

TEST_P(AlgoNumeric, Fw1dMatchesReference) {
  const auto [n, base] = GetParam();
  Rng rng(14);
  Matrix<double> D(n + 1, n + 1, 0.0), Dref(n + 1, n + 1, 0.0);
  for (std::size_t j = 0; j <= n; ++j) D(0, j) = Dref(0, j) = rng.uniform(0, 8);

  fw1d_reference(Dref);

  SpawnTree t;
  const Fw1dTypes ty = Fw1dTypes::install(t);
  t.set_root(build_fw1d(t, ty, n, base, &D));
  execute_serial(elaborate(t));
  EXPECT_LT(max_abs_diff(D, Dref), 1e-12);
}

TEST_P(AlgoNumeric, Fw2dMatchesReference) {
  const auto [n, base] = GetParam();
  Rng rng(15);
  Matrix<double> D(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      D(i, j) = i == j ? 0.0 : rng.uniform(1.0, 10.0);
  Matrix<double> Dref = D;
  fw2d_reference(Dref);

  SpawnTree t;
  t.set_root(build_fw2d_np(t, n, base, &D));
  execute_serial(elaborate(t));
  EXPECT_LT(max_abs_diff(D, Dref), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AlgoNumeric,
    ::testing::Values(SizeCase{4, 2}, SizeCase{8, 2}, SizeCase{8, 4},
                      SizeCase{16, 4}, SizeCase{16, 8}, SizeCase{24, 4},
                      SizeCase{17, 3}, SizeCase{32, 8}),
    [](const ::testing::TestParamInfo<SizeCase>& info) {
      return "n" + std::to_string(info.param.n) + "b" +
             std::to_string(info.param.base);
    });

}  // namespace
}  // namespace ndf
