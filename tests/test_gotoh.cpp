// Affine-gap alignment (Gotoh): numeric equivalence with the serial
// reference, determinacy of the reused LCS fire types over the three-table
// footprint, ND span optimality, and runtime execution.
#include <gtest/gtest.h>

#include "algos/gotoh.hpp"
#include "analysis/determinacy.hpp"
#include "nd/drs.hpp"
#include "runtime/executor.hpp"
#include "support/fit.hpp"
#include "support/rng.hpp"

namespace ndf {
namespace {

struct Fixture {
  std::vector<int> S, T;
  Matrix<double> M, E, F;
  GotohParams params;

  explicit Fixture(std::size_t n, std::uint64_t seed = 11)
      : M(n + 1, n + 1, 0.0), E(n + 1, n + 1, 0.0), F(n + 1, n + 1, 0.0) {
    Rng rng(seed);
    S.resize(n);
    T.resize(n);
    for (auto& x : S) x = int(rng.below(4));
    for (std::size_t i = 0; i < n; ++i)
      T[i] = rng.uniform() < 0.25 ? int(rng.below(4)) : S[i];
  }
};

class GotohSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GotohSizes, NdExecutionMatchesReference) {
  const std::size_t n = GetParam(), base = 4;
  Fixture ref(n), nd(n);
  const double expected =
      gotoh_reference(ref.S, ref.T, ref.params, ref.M, ref.E, ref.F);

  gotoh_init_borders(nd.params, nd.M, nd.E, nd.F);
  SpawnTree t;
  const LcsTypes ty = LcsTypes::install(t);
  t.set_root(build_gotoh(t, ty, n, base,
                         GotohViews{&nd.S, &nd.T, &nd.M, &nd.E, &nd.F,
                                    nd.params}));
  execute_serial(elaborate(t));
  const double got = std::max({nd.M(n, n), nd.E(n, n), nd.F(n, n)});
  EXPECT_NEAR(got, expected, 1e-9);
  for (std::size_t i = 0; i <= n; ++i)
    for (std::size_t j = 0; j <= n; ++j)
      EXPECT_NEAR(nd.M(i, j), ref.M(i, j), 1e-9);
}

TEST_P(GotohSizes, Determinacy) {
  const std::size_t n = GetParam();
  Fixture f(n);
  gotoh_init_borders(f.params, f.M, f.E, f.F);
  SpawnTree t;
  const LcsTypes ty = LcsTypes::install(t);
  t.set_root(build_gotoh(t, ty, n, 2,
                         GotohViews{&f.S, &f.T, &f.M, &f.E, &f.F, f.params}));
  const auto rep = check_determinacy(elaborate(t));
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_GT(rep.conflicting_pairs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GotohSizes,
                         ::testing::Values(4, 8, 12, 16, 17),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(Gotoh, NdSpanLinearNpSuperlinear) {
  std::vector<double> ns, nd, np;
  for (std::size_t n : {64, 128, 256, 512}) {
    SpawnTree t = make_gotoh_tree(n, 2);
    ns.push_back(double(n));
    nd.push_back(elaborate(t).span());
    np.push_back(elaborate(t, {.np_mode = true}).span());
  }
  EXPECT_NEAR(fit_loglog(ns, nd).slope, 1.0, 0.1);
  EXPECT_GT(fit_loglog(ns, np).slope, 1.05);
}

TEST(Gotoh, ParallelRuntimeMatchesReference) {
  const std::size_t n = 128, base = 16;
  Fixture ref(n), nd(n);
  const double expected =
      gotoh_reference(ref.S, ref.T, ref.params, ref.M, ref.E, ref.F);
  gotoh_init_borders(nd.params, nd.M, nd.E, nd.F);
  SpawnTree t;
  const LcsTypes ty = LcsTypes::install(t);
  t.set_root(build_gotoh(t, ty, n, base,
                         GotohViews{&nd.S, &nd.T, &nd.M, &nd.E, &nd.F,
                                    nd.params}));
  execute_parallel(elaborate(t), 4);
  EXPECT_NEAR(std::max({nd.M(n, n), nd.E(n, n), nd.F(n, n)}), expected,
              1e-9);
}

TEST(Gotoh, IdenticalSequencesScoreAllMatches) {
  const std::size_t n = 32;
  std::vector<int> S(n, 1), T(n, 1);
  GotohParams p;
  Matrix<double> M(n + 1, n + 1), E(n + 1, n + 1), F(n + 1, n + 1);
  const double score = gotoh_reference(S, T, p, M, E, F);
  EXPECT_DOUBLE_EQ(score, p.match * double(n));
}

}  // namespace
}  // namespace ndf
