// Tests of the open-arrivals service mode (src/serve/):
//   V1  arrival-spec parsing: round-trip labels, loud failures that name
//       the full offending spec verbatim (unknown kind/key, duplicates,
//       missing required keys, out-of-range values)
//   V2  trace parsing: comments/blanks, (arrival, input-order) sorting,
//       deadlines; malformed lines fail loudly with file:line and the
//       offending text verbatim
//   V3  poisson expansion is a pure function of (spec, mix); closed specs
//       and empty mixes are rejected
//   V4  the edf policy: registered, flagged deadline-aware, and its batch
//       (single-DAG) stats are bit-identical to greedy's — the unit-level
//       discipline is the same; only service-mode admission differs
//   V5  service semantics: a single-job stream equals the batch makespan
//       (latency = service when it arrives at time 0), simultaneous
//       arrivals tie-break by submission index under FIFO and by deadline
//       under EDF, and an empty stream is an idle service (zeros,
//       fairness 1), not an error
//   V6  determinism: the full grid at --jobs=1 and --jobs=4 produces
//       byte-identical table/JSON/CSV output (measured and unmeasured),
//       and a rerun with the same seed reproduces it
//   V7  per-job measured Q_i (--misses): tenant namespacing means another
//       tenant's identical job measures exactly the same cold misses,
//       per-job deltas sum to the cell totals, and a tenant's repeat job
//       benefits from its own warm lines
//   V8  scenario validation: unknown policies, stream conflicts and
//       out-of-range parameters fail loudly
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "exp/workload.hpp"
#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"
#include "sched/sim_core.hpp"
#include "serve/engine.hpp"
#include "serve/report.hpp"
#include "support/check.hpp"

namespace ndf {
namespace {

using serve::ArrivalSpec;
using serve::JobSpec;
using serve::ServeCell;
using serve::ServeScenario;
using serve::ServeSweep;

/// The error message a callable throws (empty = it did not throw): every
/// loud-failure test asserts on the message content, not just the throw.
template <typename Fn>
std::string check_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  return std::string();
}

TEST(Arrivals, SpecRoundTripAndDefaults) {  // V1
  ArrivalSpec a = serve::parse_arrivals("poisson:rate=0.5,jobs=10");
  EXPECT_EQ(a.kind, "poisson");
  EXPECT_DOUBLE_EQ(a.rate, 0.5);
  EXPECT_EQ(a.jobs, 10u);
  EXPECT_EQ(a.tenants, 1u);
  EXPECT_EQ(a.seed, 42u);
  EXPECT_EQ(a.label(), "poisson:rate=0.5,jobs=10");

  a = serve::parse_arrivals(
      "poisson:rate=2,jobs=8,tenants=3,deadline=50,seed=7");
  EXPECT_EQ(a.tenants, 3u);
  EXPECT_DOUBLE_EQ(a.deadline, 50.0);
  EXPECT_EQ(a.seed, 7u);
  EXPECT_EQ(serve::parse_arrivals(a.label()).label(), a.label());

  a = serve::parse_arrivals("closed:clients=4,jobs=6,think=100");
  EXPECT_EQ(a.kind, "closed");
  EXPECT_EQ(a.clients, 4u);
  EXPECT_DOUBLE_EQ(a.think, 100.0);
  EXPECT_EQ(serve::parse_arrivals(a.label()).label(), a.label());
}

TEST(Arrivals, LoudFailuresNameTheFullSpec) {  // V1
  // Every rejection must quote the complete offending spec verbatim, so a
  // failure in a sweep over many streams is attributable at a glance.
  const char* bad[] = {
      "uniform:rate=1,jobs=4",          // unknown kind
      "poisson:rate=1,jobs=4,foo=1",    // unknown key
      "poisson:rate=1,rate=2,jobs=4",   // duplicate key
      "poisson:rate=1",                 // missing jobs
      "poisson:jobs=4",                 // missing rate
      "closed:jobs=4",                  // missing clients
      "poisson:rate=-1,jobs=4",         // out of range
      "poisson:rate=abc,jobs=4",        // not a number
      "closed:clients=4,jobs=4,rate=1"  // poisson-only key on closed
  };
  for (const char* spec : bad) {
    const std::string msg =
        check_error_of([&] { serve::parse_arrivals(spec); });
    ASSERT_FALSE(msg.empty()) << spec;
    EXPECT_NE(msg.find(std::string("'") + spec + "'"), std::string::npos)
        << "message for '" << spec << "' does not name it: " << msg;
  }
}

TEST(Arrivals, TraceParsingSortsAndKeepsInputOrderOnTies) {  // V2
  std::istringstream in(
      "# a comment line\n"
      "100 bob lcs:n=96\n"
      "\n"
      "0 alice mm:n=32 deadline=500\n"
      "100 carol mm:n=32\n");
  const std::vector<JobSpec> jobs = serve::parse_trace(in, "test");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].tenant, "alice");
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  EXPECT_TRUE(jobs[0].has_deadline());
  EXPECT_DOUBLE_EQ(jobs[0].deadline, 500.0);
  // Equal arrivals keep input order: bob (submitted first) before carol.
  EXPECT_EQ(jobs[1].tenant, "bob");
  EXPECT_EQ(jobs[2].tenant, "carol");
  EXPECT_FALSE(jobs[1].has_deadline());
  // `index` is the submission (input) order, not the sorted position.
  EXPECT_EQ(jobs[0].index, 1u);
  EXPECT_EQ(jobs[1].index, 0u);
}

TEST(Arrivals, TraceRejectionsNameLineAndText) {  // V2
  struct Case {
    const char* line;
    const char* expect;  // must appear in the message
  };
  const Case cases[] = {
      {"abc alice mm:n=32", "'abc'"},
      {"5 alice", "want '<arrival> <tenant> <workload-spec>"},
      {"5 alice nope:n=4", "unknown workload 'nope'"},
      {"5 alice mm:n=32 deadline=2", "deadline"},  // before arrival
      {"5 alice mm:n=32 extra", "unexpected token 'extra'"},
  };
  for (const Case& c : cases) {
    std::istringstream in(c.line);
    const std::string msg =
        check_error_of([&] { serve::parse_trace(in, "t.trace"); });
    ASSERT_FALSE(msg.empty()) << c.line;
    EXPECT_NE(msg.find("t.trace:1"), std::string::npos)
        << "no file:line for '" << c.line << "': " << msg;
    EXPECT_NE(msg.find(c.expect), std::string::npos)
        << "message for '" << c.line << "': " << msg;
  }
}

TEST(Arrivals, PoissonExpansionIsDeterministic) {  // V3
  const ArrivalSpec spec =
      serve::parse_arrivals("poisson:rate=0.01,jobs=16,tenants=3,deadline=99");
  const auto mix = exp::parse_workload_list("mm:n=32;lcs:n=96");
  const auto a = serve::expand_open_arrivals(spec, mix);
  const auto b = serve::expand_open_arrivals(spec, mix);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].workload.label(), b[i].workload.label()) << i;
    EXPECT_DOUBLE_EQ(a[i].deadline, a[i].arrival + 99.0) << i;
    if (i) EXPECT_GT(a[i].arrival, a[i - 1].arrival) << i;
  }
  // Round-robin dealing over tenants and the mix.
  EXPECT_EQ(a[0].tenant, "t0");
  EXPECT_EQ(a[4].tenant, "t1");
  EXPECT_EQ(a[1].workload.label(), "lcs:n=96");

  EXPECT_FALSE(check_error_of([&] {
                 serve::expand_open_arrivals(
                     serve::parse_arrivals("closed:clients=2,jobs=4"), mix);
               }).empty());
  EXPECT_FALSE(
      check_error_of([&] { serve::expand_open_arrivals(spec, {}); }).empty());
}

TEST(EdfPolicy, RegisteredAndDeadlineAware) {  // V4
  EXPECT_TRUE(scheduler_registered("edf"));
  EXPECT_TRUE(scheduler_deadline_aware("edf"));
  EXPECT_FALSE(scheduler_deadline_aware("sb"));
  EXPECT_FALSE(scheduler_deadline_aware("greedy"));
  const std::string msg =
      check_error_of([] { scheduler_deadline_aware("nope"); });
  EXPECT_NE(msg.find("nope"), std::string::npos) << msg;
  bool listed = false;
  for (const auto& info : registered_schedulers())
    if (info.name == "edf") listed = info.deadline_aware;
  EXPECT_TRUE(listed);
}

TEST(EdfPolicy, BatchStatsBitIdenticalToGreedy) {  // V4
  // In batch mode edf has nothing to order by deadline; its unit-level
  // discipline is greedy's, by construction — verified bit for bit so the
  // policy is safe to include in ordinary sweeps.
  const exp::Workload w(exp::parse_workload("gen:family=sp,depth=6,fan=3,"
                                            "seed=7"));
  for (const char* machine : {"flat16", "deep2x4"}) {
    const Pmh m = make_pmh(machine);
    SchedOptions opts;
    opts.measure_misses = true;
    SimCore core(w.graph(), m, opts);
    const auto edf = make_scheduler("edf", opts);
    const SchedStats a = core.run(*edf);
    SimCore fresh(w.graph(), m, opts);
    const auto greedy = make_scheduler("greedy", opts);
    const SchedStats b = fresh.run(*greedy);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << machine;
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization) << machine;
    EXPECT_DOUBLE_EQ(a.miss_cost, b.miss_cost) << machine;
    ASSERT_EQ(a.measured_misses.size(), b.measured_misses.size()) << machine;
    for (std::size_t l = 0; l < a.measured_misses.size(); ++l)
      EXPECT_DOUBLE_EQ(a.measured_misses[l], b.measured_misses[l])
          << machine << " L" << (l + 1);
  }
}

ServeScenario trace_scenario(const std::string& trace,
                             const std::string& policy) {
  std::istringstream in(trace);
  ServeScenario s;
  s.jobs = serve::parse_trace(in, "test");
  s.machines = {"flat16"};
  s.policies = {policy};
  return s;
}

TEST(ServeEngine, SingleJobEqualsBatchMakespan) {  // V5
  ServeScenario s = trace_scenario("0 solo mm:n=32\n", "sb");
  ServeSweep sweep(s, 1);
  const std::vector<ServeCell>& cells = sweep.run();
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].jobs.size(), 1u);
  const serve::JobRecord& rec = cells[0].jobs[0];

  // The same (workload, machine, σ, policy) as a batch run.
  const exp::Workload w(exp::parse_workload("mm:n=32"));
  const Pmh m = make_pmh("flat16");
  SimCore core(w.graph(), m, SchedOptions{});
  const auto sb = make_scheduler("sb", SchedOptions{});
  const SchedStats batch = core.run(*sb);

  EXPECT_DOUBLE_EQ(rec.service, batch.makespan);
  EXPECT_DOUBLE_EQ(rec.start, 0.0);
  // Arrived at 0 into an idle machine: latency is pure service time.
  EXPECT_DOUBLE_EQ(rec.latency, batch.makespan);
  EXPECT_DOUBLE_EQ(rec.utilization, batch.utilization);
  EXPECT_DOUBLE_EQ(cells[0].summary.horizon, batch.makespan);
  EXPECT_DOUBLE_EQ(cells[0].summary.throughput, 1.0 / batch.makespan);
  EXPECT_EQ(cells[0].summary.tenants, 1u);
  EXPECT_DOUBLE_EQ(cells[0].summary.fairness, 1.0);
}

TEST(ServeEngine, EmptyStreamIsAnIdleService) {  // V5
  ServeScenario s;
  s.machines = {"flat16"};
  s.policies = {"sb", "edf"};
  ServeSweep sweep(s, 1);
  const auto& cells = sweep.run();
  ASSERT_EQ(cells.size(), 2u);
  for (const ServeCell& c : cells) {
    EXPECT_TRUE(c.jobs.empty());
    EXPECT_EQ(c.summary.completed, 0u);
    EXPECT_DOUBLE_EQ(c.summary.throughput, 0.0);
    EXPECT_DOUBLE_EQ(c.summary.fairness, 1.0);
  }
  // The emitters accept the empty stream too.
  std::ostringstream json, csv;
  serve::write_serve_json(json, "empty", cells);
  serve::write_serve_csv(csv, cells);
  EXPECT_NE(json.str().find("\"completed\": 0"), std::string::npos);
}

TEST(ServeEngine, SimultaneousArrivalsTieBreak) {  // V5
  // Three jobs all arrive at time 0. FIFO admission must follow the
  // submission index; EDF admission must follow the absolute deadline,
  // with the index breaking the remaining tie.
  const std::string trace =
      "0 a mm:n=32 deadline=900000\n"
      "0 b lcs:n=96 deadline=500000\n"
      "0 c mm:n=32 deadline=900000\n";
  {
    ServeSweep sweep(trace_scenario(trace, "sb"), 1);
    const auto& cells = sweep.run();
    ASSERT_EQ(cells[0].jobs.size(), 3u);
    EXPECT_EQ(cells[0].jobs[0].job.tenant, "a");
    EXPECT_EQ(cells[0].jobs[1].job.tenant, "b");
    EXPECT_EQ(cells[0].jobs[2].job.tenant, "c");
  }
  {
    ServeSweep sweep(trace_scenario(trace, "edf"), 1);
    const auto& cells = sweep.run();
    ASSERT_EQ(cells[0].jobs.size(), 3u);
    EXPECT_EQ(cells[0].jobs[0].job.tenant, "b");  // earliest deadline
    EXPECT_EQ(cells[0].jobs[1].job.tenant, "a");  // tie: index order
    EXPECT_EQ(cells[0].jobs[2].job.tenant, "c");
  }
  // Without deadlines EDF degenerates to FIFO (+inf sorts last, index
  // breaks the tie) — the admission orders must agree exactly.
  const std::string plain = "0 a mm:n=32\n0 b lcs:n=96\n0 c mm:n=32\n";
  ServeSweep fifo_sweep(trace_scenario(plain, "greedy"), 1);
  ServeSweep edf_sweep(trace_scenario(plain, "edf"), 1);
  const auto& fifo = fifo_sweep.run();
  const auto& edf = edf_sweep.run();
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(fifo[0].jobs[j].job.tenant, edf[0].jobs[j].job.tenant) << j;
    EXPECT_DOUBLE_EQ(fifo[0].jobs[j].completion, edf[0].jobs[j].completion)
        << j;
  }
}

/// Everything ndf_serve emits for a scenario, as one string — the byte-
/// identity oracle (mirrors test_exp's emit_everything).
std::string emit_everything(ServeSweep& sweep) {
  const auto& cells = sweep.run();
  std::ostringstream os;
  serve::summary_table("t", cells).print(os);
  serve::write_serve_json(os, sweep.scenario().name, cells);
  serve::write_serve_csv(os, cells);
  return os.str();
}

TEST(ServeEngine, ByteIdenticalAcrossJobsAndReruns) {  // V6
  for (const bool misses : {false, true}) {
    ServeScenario s;
    s.name = "det";
    const ArrivalSpec spec = serve::parse_arrivals(
        "poisson:rate=0.0005,jobs=12,tenants=3,deadline=50000");
    s.mix = exp::parse_workload_list(
        "mm:n=32;gen:family=sp,depth=5,fan=3,seed=3");
    s.jobs = serve::expand_open_arrivals(spec, s.mix);
    s.machines = {"flat16", "deep2x4"};
    s.policies = {"sb", "ws", "edf"};
    s.sigmas = {1.0 / 3.0, 0.5};
    s.measure_misses = misses;

    ServeSweep serial(s, 1), parallel(s, 4), rerun(s, 4);
    const std::string a = emit_everything(serial);
    EXPECT_EQ(a, emit_everything(parallel)) << "misses=" << misses;
    EXPECT_EQ(a, emit_everything(rerun)) << "misses=" << misses;
    EXPECT_EQ(serial.condensations_built(), parallel.condensations_built());
    // 2 workloads × 2 σ × 2 distinct cache profiles.
    EXPECT_EQ(serial.condensations_built(), 8u);
  }
}

TEST(ServeEngine, ClosedLoopIsDeterministic) {  // V6
  ServeScenario s;
  s.closed = serve::parse_arrivals("closed:clients=3,jobs=3,think=500");
  s.mix = exp::parse_workload_list("mm:n=32;lcs:n=96");
  s.machines = {"flat16"};
  s.policies = {"sb", "edf"};
  ServeSweep serial(s, 1), parallel(s, 4);
  const std::string a = emit_everything(serial);
  EXPECT_EQ(a, emit_everything(parallel));
  ASSERT_EQ(serial.results()[0].jobs.size(), 9u);
  // Symmetric clients over the same rotation: perfectly fair service.
  EXPECT_EQ(serial.results()[0].summary.tenants, 3u);
}

TEST(ServeEngine, PerJobMeasuredMissAttribution) {  // V7
  // t0 runs the workload cold, repeats it over its own warm lines, then t1
  // runs the identical workload — cold again, because its footprint keys
  // live in a different namespace no matter what is resident.
  ServeScenario s = trace_scenario(
      "0 t0 mm:n=32\n"
      "1 t0 mm:n=32\n"
      "2 t1 mm:n=32\n",
      "sb");
  s.measure_misses = true;
  ServeSweep sweep(s, 1);
  const auto& cells = sweep.run();
  ASSERT_EQ(cells[0].jobs.size(), 3u);
  const auto& j0 = cells[0].jobs[0];
  const auto& j1 = cells[0].jobs[1];
  const auto& j2 = cells[0].jobs[2];
  ASSERT_FALSE(j0.measured_misses.empty());
  ASSERT_EQ(j1.measured_misses.size(), j0.measured_misses.size());

  double q0 = 0.0, q1 = 0.0, q2 = 0.0;
  for (std::size_t l = 0; l < j0.measured_misses.size(); ++l) {
    // Tenant namespacing: t1 can never hit t0's lines, so its first job
    // measures exactly the cold-start misses j0 did — even though it runs
    // against caches full of t0's data (those lines are all older than any
    // of t1's, so LRU evicts them first and t1's own reuse is unchanged).
    EXPECT_DOUBLE_EQ(j2.measured_misses[l], j0.measured_misses[l]) << l;
    q0 += j0.measured_misses[l];
    q1 += j1.measured_misses[l];
    q2 += j2.measured_misses[l];
  }
  // t0's immediate repeat reuses whatever of its own footprint is still
  // resident — strictly fewer misses than its cold start (on flat16 the
  // mm:n=32 footprint is fully resident, so the repeat can be miss-free).
  EXPECT_LT(q1, q0);
  EXPECT_GT(q0, 0.0);

  // Per-job deltas partition the cell totals exactly.
  const auto& total = cells[0].summary.measured_misses;
  ASSERT_EQ(total.size(), j0.measured_misses.size());
  for (std::size_t l = 0; l < total.size(); ++l)
    EXPECT_DOUBLE_EQ(total[l], j0.measured_misses[l] +
                                   j1.measured_misses[l] +
                                   j2.measured_misses[l])
        << l;
  EXPECT_DOUBLE_EQ(cells[0].summary.comm_cost,
                   j0.comm_cost + j1.comm_cost + j2.comm_cost);
}

TEST(ServeEngine, ValidationIsLoud) {  // V8
  ServeScenario s = trace_scenario("0 a mm:n=32\n", "sb");
  s.policies = {"nope"};
  EXPECT_NE(check_error_of([&] { ServeSweep(s, 1).run(); }).find("nope"),
            std::string::npos);

  s = trace_scenario("0 a mm:n=32\n", "sb");
  s.closed = serve::parse_arrivals("closed:clients=2,jobs=2");
  s.mix = exp::parse_workload_list("mm:n=32");
  EXPECT_NE(check_error_of([&] { ServeSweep(s, 1).run(); })
                .find("both an explicit job stream"),
            std::string::npos);

  ServeScenario closed_no_mix;
  closed_no_mix.machines = {"flat16"};
  closed_no_mix.policies = {"sb"};
  closed_no_mix.closed = serve::parse_arrivals("closed:clients=2,jobs=2");
  EXPECT_NE(check_error_of([&] { ServeSweep(closed_no_mix, 1).run(); })
                .find("non-empty workload mix"),
            std::string::npos);

  s = trace_scenario("0 a mm:n=32\n", "sb");
  s.sigmas = {1.5};
  EXPECT_NE(check_error_of([&] { ServeSweep(s, 1).run(); })
                .find("outside (0, 1)"),
            std::string::npos);
}

}  // namespace
}  // namespace ndf
