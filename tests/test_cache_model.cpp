// Tests of the pluggable cache-model subsystem (pmh/cache_model.hpp):
//   C1  spec parsing: bare-name shorthand, full cache:key=value specs,
//       label() round-trips, list parsing dedups
//   C2  rejection paths name the full offending spec verbatim — duplicate
//       keys, unknown keys, unknown policies/families, bad values
//   C3  the registry: builtins present and sorted, duplicate registration
//       refused, unknown lookup names what is registered
//   C4  replacement semantics that distinguish the builtins: FIFO ignores
//       re-touches, clock grants second chances, aging favors referenced
//       entries over load order; every builtin honors pinning
//   C5  a registered policy that cannot honor pinning is diagnosed loudly
//       (pin() names the model) — the sb policy's reservations are either
//       honored or refused, never silently dropped
//   C6  model parameters: line quantization, set associativity with
//       conflict misses, write-back and contention accounting, exclusive
//       levels suppressing outer traffic on inner hits
//   C7  the default model is byte-identical to the pre-registry LRU output
//       and a non-default cache axis stays --jobs invariant
//   C8  emitters under a non-default model: golden table/JSON/CSV fixtures
//       with the cache column and write-back/contention keys
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "exp/report.hpp"
#include "exp/sweep.hpp"
#include "pmh/cache_model.hpp"
#include "pmh/occupancy.hpp"
#include "pmh/presets.hpp"
#include "sched/registry.hpp"
#include "sched/sim_core.hpp"

namespace ndf {
namespace {

void expect_throws_containing(const std::function<void()>& fn,
                              const std::string& needle) {
  try {
    fn();
    FAIL() << "expected CheckError containing: " << needle;
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(CacheModelSpec, ParseAndLabelRoundTrip) {  // C1
  const CacheModelSpec dflt;
  EXPECT_TRUE(dflt.is_default());
  EXPECT_EQ(dflt.label(), "lru");

  // Bare-name shorthand.
  const CacheModelSpec bare = parse_cache_model("clock");
  EXPECT_EQ(bare.repl, "clock");
  EXPECT_FALSE(bare.is_default());
  EXPECT_EQ(bare.label(), "clock");
  EXPECT_EQ(parse_cache_model(bare.label()), bare);

  // Full parametric spec, every key: the label echoes it and re-parses.
  const std::string full = "cache:repl=fifo,assoc=8,line=64,excl=1,wb=1,bw=0.25";
  const CacheModelSpec s = parse_cache_model(full);
  EXPECT_EQ(s.repl, "fifo");
  EXPECT_EQ(s.assoc, 8u);
  EXPECT_DOUBLE_EQ(s.line, 64.0);
  EXPECT_TRUE(s.exclusive);
  EXPECT_DOUBLE_EQ(s.wb, 1.0);
  EXPECT_DOUBLE_EQ(s.bw, 0.25);
  EXPECT_EQ(s.label(), full);
  EXPECT_EQ(parse_cache_model(s.label()), s);

  // assoc without an explicit line: the effective line defaults to 64.
  const CacheModelSpec a = parse_cache_model("cache:assoc=4");
  EXPECT_DOUBLE_EQ(a.effective_line(), 64.0);
  EXPECT_DOUBLE_EQ(dflt.effective_line(), 0.0);  // fully associative: none

  // List parsing: ';'-separated, duplicates (by value) collapse.
  const auto list = parse_cache_model_list("lru;clock;cache:repl=clock;fifo");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].label(), "lru");
  EXPECT_EQ(list[1].label(), "clock");
  EXPECT_EQ(list[2].label(), "fifo");
}

TEST(CacheModelSpec, RejectionsNameTheSpecVerbatim) {  // C2
  expect_throws_containing([] { parse_cache_model("plumbus"); },
                           "'plumbus'");
  expect_throws_containing([] { parse_cache_model("dish:repl=lru"); },
                           "'dish:repl=lru'");
  expect_throws_containing(
      [] { parse_cache_model("cache:repl=lru,repl=fifo"); },
      "duplicate cache parameter 'repl' in 'cache:repl=lru,repl=fifo'");
  expect_throws_containing(
      [] { parse_cache_model("cache:sets=4"); },
      "unknown cache parameter 'sets' in 'cache:sets=4'");
  expect_throws_containing([] { parse_cache_model("cache:repl=mru"); },
                           "'cache:repl=mru'");
  expect_throws_containing([] { parse_cache_model("cache:assoc=1.5"); },
                           "'cache:assoc=1.5'");
  expect_throws_containing([] { parse_cache_model("cache:line=-2"); },
                           "'cache:line=-2'");
  expect_throws_containing([] { parse_cache_model("cache:excl=2"); },
                           "'cache:excl=2'");
  expect_throws_containing([] { parse_cache_model("cache:wb=abc"); },
                           "'cache:wb=abc'");
  expect_throws_containing([] { parse_cache_model("cache:bw"); },
                           "'cache:bw'");
}

TEST(CacheModelRegistry, BuiltinsAndLookups) {  // C3
  for (const char* name : {"lru", "fifo", "clock", "aging"})
    EXPECT_TRUE(cache_repl_registered(name)) << name;
  EXPECT_FALSE(cache_repl_registered("mru"));

  // Sorted, described, and at least the four builtins.
  const auto infos = registered_cache_repls();
  EXPECT_GE(infos.size(), 4u);
  for (std::size_t i = 1; i < infos.size(); ++i)
    EXPECT_LT(infos[i - 1].name, infos[i].name);
  for (const auto& info : infos) EXPECT_FALSE(info.description.empty());

  // Re-registering a taken name is refused (first registration wins).
  EXPECT_FALSE(register_cache_repl("lru", "impostor", [] {
    return make_cache_repl("fifo");
  }));

  expect_throws_containing([] { (void)make_cache_repl("mru"); },
                           "unknown replacement policy 'mru'");
}

TEST(CacheModelSemantics, FifoIgnoresReTouches) {  // C4
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("fifo"));
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 40.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 0.0);  // hit, but no refresh
  // Pressure: FIFO evicts the *oldest load* (task 0) even though it was
  // touched after task 1 — LRU would evict task 1 here.
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 2, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 50.0), 0.0);   // survived
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 40.0);  // reload
}

TEST(CacheModelSemantics, ClockGrantsSecondChancesInHandOrder) {  // C4
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("clock"));
  occ.touch(1, 0, 0, 40.0);  // A, referenced
  occ.touch(1, 0, 1, 40.0);  // B, referenced
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 0.0);  // re-reference A
  // Pressure: the sweep clears both referenced bits (second chance), wraps,
  // and evicts the first unreferenced entry under the hand — A, despite its
  // recent touch. LRU would have evicted B.
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 2, 40.0), 40.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 40.0), 0.0);   // B survived
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 40.0);  // A was the victim
}

TEST(CacheModelSemantics, AgingFavorsReferencedOverLoadOrder) {  // C4
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("aging"));
  occ.touch(1, 0, 0, 40.0);                          // A
  occ.touch(1, 0, 1, 40.0);                          // B
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 2, 40.0), 40.0);  // tick: evicts A
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 40.0), 0.0);   // re-reference B
  // Next tick: B's age gets a fresh MSB from its reference, C's decays —
  // the *newer but unreferenced* C is evicted. FIFO would evict B.
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 3, 40.0), 40.0);
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 40.0), 0.0);   // B survived
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 2, 40.0), 40.0);  // C was the victim
}

TEST(CacheModelSemantics, EveryBuiltinHonorsPinning) {  // C4
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  for (const auto& info : registered_cache_repls()) {
    if (!make_cache_repl(info.name)->honors_pinning()) continue;
    CacheModelSpec spec;
    spec.repl = info.name;
    CacheOccupancy occ(m, spec);
    occ.pin(1, 0, 0, 60.0);
    EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 60.0), 60.0) << info.name;
    for (int t = 1; t <= 8; ++t) occ.touch(1, 0, t, 30.0);
    EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 60.0), 0.0)
        << info.name << ": pinned footprint was evicted";
  }
}

/// A policy that declares itself unable to honor reservations: random
/// replacement has no way to promise a pinned entry survives.
class NoPinRepl final : public ReplacementPolicy {
 public:
  const char* name() const override { return "nopin"; }
  bool honors_pinning() const override { return false; }
  void touched(CacheEntry& e, std::uint64_t now) override { e.last_use = now; }
  std::size_t victim(std::vector<CacheEntry>& entries,
                     std::size_t& hand) override {
    (void)hand;
    return entries.empty() ? 0 : 0;
  }
};

TEST(CacheModelSemantics, PinRefusalIsDiagnosedNamingTheModel) {  // C5
  register_cache_repl("nopin", "random-like; cannot protect reservations",
                      [] { return std::make_unique<NoPinRepl>(); });
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("nopin"));
  // Unpinned traffic works fine...
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 40.0), 40.0);
  // ...but an sb-style reservation is refused loudly, naming the model.
  expect_throws_containing([&] { occ.pin(1, 0, 1, 20.0); }, "'nopin'");

  // End to end: the sb policy's first anchor hits the same diagnosis.
  const exp::Workload w(exp::parse_workload("mm:n=16"));
  const Pmh deep = make_pmh("deep2x4");
  SchedOptions o;
  o.measure_misses = true;
  o.cache_model = parse_cache_model("nopin");
  expect_throws_containing(
      [&] { (void)run_scheduler("sb", w.graph(), deep, o); }, "'nopin'");
  // Reservation-free schedulers run fine under the same model.
  EXPECT_GT(run_scheduler("ws", w.graph(), deep, o).comm_cost, 0.0);
}

TEST(CacheModelParams, LineQuantizationRoundsChargesUp) {  // C6
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("cache:line=32"));
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 33.0), 64.0);  // 2 lines
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 1, 1.0), 32.0);   // never less than one
  EXPECT_DOUBLE_EQ(occ.misses(1), 96.0);
}

TEST(CacheModelParams, AssociativityCausesConflictMisses) {  // C6
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  // assoc=1 at line=50 splits the 100-word cache into two 50-word sets;
  // tasks 0 and 2 collide in set 0 while set 1 sits empty.
  CacheOccupancy occ(m, parse_cache_model("cache:assoc=1,line=50"));
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 30.0), 50.0);  // set 0
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 2, 30.0), 50.0);  // conflict: evicts 0
  EXPECT_DOUBLE_EQ(occ.touch(1, 0, 0, 30.0), 50.0);  // reload
  // The default fully-associative model fits all three footprints.
  CacheOccupancy ideal(m);
  ideal.touch(1, 0, 0, 30.0);
  ideal.touch(1, 0, 2, 30.0);
  EXPECT_DOUBLE_EQ(ideal.touch(1, 0, 0, 30.0), 0.0);
}

TEST(CacheModelParams, WriteBackChargesResidentEvictionsOnly) {  // C6
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("cache:wb=0.5"));
  occ.touch(1, 0, 0, 60.0);
  ASSERT_EQ(occ.level_writebacks().size(), 1u);
  EXPECT_DOUBLE_EQ(occ.level_writebacks()[0], 0.0);
  occ.touch(1, 0, 1, 60.0);  // evicts the resident 60-word footprint
  EXPECT_DOUBLE_EQ(occ.level_writebacks()[0], 30.0);  // wb · size
  // Dropping a never-loaded reservation moves nothing.
  occ.pin(1, 0, 2, 40.0);
  occ.unpin(1, 0, 2);
  EXPECT_DOUBLE_EQ(occ.level_writebacks()[0], 30.0);
}

TEST(CacheModelParams, ContentionScalesWithSharers) {  // C6
  const Pmh m(PmhConfig::flat(1, 100.0, 1.0));
  CacheOccupancy occ(m, parse_cache_model("cache:bw=0.5"));
  occ.touch(1, 0, 0, 40.0, /*sharers=*/2);
  ASSERT_EQ(occ.level_contention().size(), 1u);
  EXPECT_DOUBLE_EQ(occ.level_contention()[0], 40.0);  // bw · 2 · 40
  occ.touch(1, 0, 0, 40.0, 3);  // hit: no contention charge
  EXPECT_DOUBLE_EQ(occ.level_contention()[0], 40.0);
  occ.touch(1, 0, 1, 40.0, 0);  // miss with no sharers: none either
  EXPECT_DOUBLE_EQ(occ.level_contention()[0], 40.0);
}

/// LRU that counts its reference updates — how the exclusive-levels test
/// observes which touches SimCore actually forwards to the hierarchy.
class SpyLruRepl final : public ReplacementPolicy {
 public:
  static std::uint64_t touches;
  const char* name() const override { return "spylru"; }
  void touched(CacheEntry& e, std::uint64_t now) override {
    ++touches;
    e.last_use = now;
  }
  std::size_t victim(std::vector<CacheEntry>& entries,
                     std::size_t& hand) override {
    (void)hand;
    std::size_t v = entries.size();
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (!entries[i].pinned &&
          (v == entries.size() || entries[i].last_use < entries[v].last_use))
        v = i;
    return v;
  }
};
std::uint64_t SpyLruRepl::touches = 0;

/// Runs the same tiny job twice on one SimCore with keep_occupancy, the
/// serve-mode pattern: the second job re-touches footprints the first left
/// warm. Returns the cumulative stats after the warm rerun.
SchedStats run_twice_warm(const CacheModelSpec& model, const Pmh& m,
                          const CondensedDag& dag) {
  SchedOptions o;
  o.measure_misses = true;
  o.keep_occupancy = true;
  o.cache_model = model;
  SimCore core(dag, m, o);
  const auto cold = make_scheduler("serial", o);
  core.run(*cold);
  core.reset(dag, m, o);
  const auto warm = make_scheduler("serial", o);
  return core.run(*warm);
}

TEST(CacheModelParams, ExclusiveLevelsSkipOuterTouchesOnInnerHits) {
  // C6: an inclusive hierarchy touches every level for every unit;
  // exclusive semantics stop at the first hit, so a warm rerun (the serve
  // mode's keep_occupancy pattern — within one run every unit's innermost
  // footprint is cold by construction) drives L1 hits that suppress the
  // outer touches entirely. The spy counter observes the suppressed
  // traffic; the miss totals stay identical because the skipped touches
  // would all have been hits (docs/cache-models.md).
  register_cache_repl("spylru", "test spy: LRU that counts touches",
                      [] { return std::make_unique<SpyLruRepl>(); });
  // One socket whose L1 holds the whole workload: the rerun hits at L1.
  const Pmh m = make_pmh("twotier:s=1,c=1,m1=768,m2=3072,c1=3,c2=30");
  const exp::Workload w(exp::parse_workload("mm:n=8"));
  const CondensedDag dag(w.graph(), level_cache_sizes(m), 1.0 / 3.0);

  SpyLruRepl::touches = 0;
  const SchedStats a = run_twice_warm(parse_cache_model("spylru"), m, dag);
  const std::uint64_t inclusive_touches = SpyLruRepl::touches;
  SpyLruRepl::touches = 0;
  const SchedStats b = run_twice_warm(
      parse_cache_model("cache:repl=spylru,excl=1"), m, dag);
  const std::uint64_t exclusive_touches = SpyLruRepl::touches;

  EXPECT_LT(exclusive_touches, inclusive_touches);
  ASSERT_EQ(a.measured_misses.size(), b.measured_misses.size());
  for (std::size_t l = 0; l < a.measured_misses.size(); ++l)
    EXPECT_DOUBLE_EQ(b.measured_misses[l], a.measured_misses[l]) << l;
}

TEST(CacheModelDefault, ExplicitLruAxisIsByteIdenticalToImplicit) {  // C7
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=16;trs:n=16");
  s.machines = {"flat:p=4,m1=768,c1=10", "deep2x4"};
  s.policies = {"sb", "ws", "greedy", "serial"};
  s.sigmas = {0.25, 0.5};
  s.measure_misses = true;

  const auto emit = [](const std::vector<exp::RunPoint>& runs) {
    std::ostringstream os;
    exp::results_table("c", runs).print(os);
    exp::write_sweep_json(os, "c", runs);
    exp::write_sweep_csv(os, runs);
    return os.str();
  };

  exp::Sweep implicit(s, 1);
  const std::string golden = emit(implicit.run());
  // The default axis never surfaces in the output.
  EXPECT_EQ(golden.find("cache"), std::string::npos);

  exp::Scenario s2 = s;
  s2.cache_models = parse_cache_model_list("lru");
  exp::Sweep explicit_lru(s2, 1);
  EXPECT_EQ(emit(explicit_lru.run()), golden);
}

TEST(CacheModelAxis, SweepsModelsAndStaysJobsInvariant) {  // C7
  exp::Scenario s;
  s.workloads = exp::parse_workload_list("mm:n=16");
  s.machines = {"deep2x4"};
  s.policies = {"sb", "ws"};
  s.measure_misses = true;
  s.cache_models =
      parse_cache_model_list("lru;clock;cache:repl=fifo,wb=1,bw=0.5");

  const auto emit = [](const std::vector<exp::RunPoint>& runs) {
    std::ostringstream os;
    exp::results_table("c", runs).print(os);
    exp::write_sweep_json(os, "c", runs);
    exp::write_sweep_csv(os, runs);
    return os.str();
  };

  exp::Sweep serial_sweep(s, 1);
  const auto& runs = serial_sweep.run();
  // The axis multiplies cells, not condensations (scenario.hpp).
  EXPECT_EQ(runs.size(), 2u * 3u);
  EXPECT_EQ(serial_sweep.condensations_built(), 1u);
  const std::string golden = emit(runs);
  EXPECT_NE(golden.find("cache:repl=fifo,wb=1,bw=0.5"), std::string::npos);
  EXPECT_NE(golden.find("measured_writebacks"), std::string::npos);
  EXPECT_NE(golden.find("contention_cost"), std::string::npos);

  exp::Sweep parallel_sweep(s, 4);
  EXPECT_EQ(emit(parallel_sweep.run()), golden);  // --jobs invariant

  // Unknown models are rejected at validation, naming the label.
  exp::Scenario bad = s;
  bad.cache_models[1].repl = "mru";
  expect_throws_containing([&] { exp::Sweep(bad, 1).run(); }, "'mru'");
}

// Hand-built run point with round integer values under a non-default
// model: the emitter fixtures below are exact byte-level goldens.
std::vector<exp::RunPoint> model_fixture_runs() {
  exp::RunPoint r;
  r.workload = exp::parse_workload("mm:n=8");
  r.machine = "flat:p=2,m1=768,c1=10";
  r.machine_desc = "PMH[p=2, L1: 2x M=768 C=10]";
  r.policy = "serial";
  r.cache = parse_cache_model("cache:repl=clock,wb=1,bw=0.5");
  r.sigma = 0.5;
  r.alpha_prime = 1;
  r.repeat = 0;
  r.seed = 42;
  r.stats.makespan = 100;
  r.stats.total_work = 80;
  r.stats.miss_cost = 20;
  r.stats.utilization = 0.5;
  r.stats.atomic_units = 4;
  r.stats.anchors = 0;
  r.stats.steals = 0;
  r.stats.misses = {2};
  r.stats.measured_misses = {3};
  r.stats.measured_writebacks = {4};
  r.stats.comm_cost = 75;
  r.stats.contention_cost = 5;
  return {r};
}

TEST(CacheModelReport, GoldenJsonWithModelColumns) {  // C8
  std::ostringstream os;
  exp::write_sweep_json(os, "golden", model_fixture_runs());
  EXPECT_EQ(os.str(),
            "{\n  \"sweep\": \"golden\",\n  \"runs\": [\n"
            "    {\"workload\": \"mm:n=8\", \"algo\": \"mm\", \"n\": 8, "
            "\"base\": 4, \"np\": false, "
            "\"machine\": \"flat:p=2,m1=768,c1=10\", "
            "\"machine_desc\": \"PMH[p=2, L1: 2x M=768 C=10]\", "
            "\"policy\": \"serial\", "
            "\"cache\": \"cache:repl=clock,wb=1,bw=0.5\", "
            "\"sigma\": 0.5, \"alpha_prime\": 1, "
            "\"repeat\": 0, \"seed\": 42, "
            "\"stats\": {\"makespan\": 100, \"total_work\": 80, "
            "\"miss_cost\": 20, \"utilization\": 0.5, \"atomic_units\": 4, "
            "\"anchors\": 0, \"steals\": 0, \"misses\": [2], "
            "\"comm_cost\": 75, \"measured_misses\": [3], "
            "\"measured_writebacks\": [4], \"contention_cost\": 5}}"
            "\n  ]\n}\n");
}

TEST(CacheModelReport, GoldenCsvWithModelColumns) {  // C8
  std::ostringstream os;
  exp::write_sweep_csv(os, model_fixture_runs());
  EXPECT_EQ(os.str(),
            "workload,algo,n,base,np,machine,policy,cache,sigma,alpha_prime,"
            "repeat,seed,makespan,total_work,miss_cost,utilization,"
            "atomic_units,anchors,steals,misses_l1,comm_cost,q_l1,wb_l1\n"
            "mm:n=8,mm,8,4,0,\"flat:p=2,m1=768,c1=10\",serial,"
            "\"cache:repl=clock,wb=1,bw=0.5\",0.5,1,0,42,"
            "100,80,20,0.5,4,0,0,2,75,3,4\n");
}

TEST(CacheModelReport, TableGrowsModelColumnsOnlyWhenNonDefault) {  // C8
  const Table with = exp::results_table("t", model_fixture_runs());
  std::ostringstream on;
  with.print(on);
  EXPECT_NE(on.str().find("cache"), std::string::npos);
  EXPECT_NE(on.str().find("cache:repl=clock,wb=1,bw=0.5"),
            std::string::npos);
  EXPECT_NE(on.str().find("WB_L1"), std::string::npos);

  // A default-model run shows neither column.
  auto runs = model_fixture_runs();
  runs[0].cache = CacheModelSpec{};
  runs[0].stats.measured_writebacks.clear();
  const Table without = exp::results_table("t", runs);
  std::ostringstream off;
  without.print(off);
  EXPECT_EQ(off.str().find("cache"), std::string::npos);
  EXPECT_EQ(off.str().find("WB_L1"), std::string::npos);
}

}  // namespace
}  // namespace ndf
