// Focused tests of the DRS semantics at its edge cases: multilevel
// pedigrees, recursion termination against strands, rewrite memoization,
// the algebra identities of Sec. 2 ("; and ‖ are special cases of the fire
// construct"), and failure modes (non-productive rules, cycles).
#include <gtest/gtest.h>

#include "nd/drs.hpp"
#include "nd/spawn_tree.hpp"

namespace ndf {
namespace {

/// Two-level chain: root = (a ; b) ~T~> (c ; d) with a multilevel rule.
TEST(FireSemantics, MultilevelPedigreeTargetsDeepSubtask) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  // +(1) T -> -(2): from the source's first child to the sink's second.
  t.rules().add_rule(ty, {1}, FireRules::kFull, {2});
  NodeId a = t.strand(7, 1, "a");
  NodeId b = t.strand(1, 1, "b");
  NodeId c = t.strand(1, 1, "c");
  NodeId d = t.strand(9, 1, "d");
  t.set_root(t.fire(ty, t.seq({a, b}), t.seq({c, d}), 4));
  StrandGraph g = elaborate(t);
  // Expected arrows: a->b, c->d (seq) and a->d (fire).
  ASSERT_EQ(g.arrows().size(), 3u);
  // Span: max{a+b, c+d, a+d} = max{8, 10, 16} = 16.
  EXPECT_DOUBLE_EQ(g.span(), 16.0);
}

TEST(FireSemantics, SeqViaFullFireTypeEqualsSeq) {
  // "the binary ; and ‖ constructs are special cases of the fire
  // construct" (Sec. 2): composing with kFull equals a seq node.
  SpawnTree t1, t2;
  auto build = [](SpawnTree& t, bool use_fire) {
    NodeId a = t.strand(3, 1), b = t.strand(5, 1);
    t.set_root(use_fire ? t.fire(FireRules::kFull, a, b, 2)
                        : t.seq({a, b}, 2));
  };
  build(t1, true);
  build(t2, false);
  EXPECT_DOUBLE_EQ(elaborate(t1).span(), elaborate(t2).span());
  EXPECT_DOUBLE_EQ(elaborate(t1).span(), 8.0);
}

TEST(FireSemantics, ParViaEmptyFireTypeEqualsPar) {
  SpawnTree t;
  NodeId a = t.strand(3, 1), b = t.strand(5, 1);
  t.set_root(t.fire(FireRules::kEmpty, a, b, 2));
  EXPECT_DOUBLE_EQ(elaborate(t).span(), 5.0);
  EXPECT_DOUBLE_EQ(elaborate(t).work(), 8.0);
}

TEST(FireSemantics, RecursionTerminationOneSidedStrand) {
  // Source is a strand, sink is composite: rules keep descending the sink
  // side only, and each resolved endpoint gets a full dependency.
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  t.rules().add_rule(ty, {1, 1}, ty, {1});
  t.rules().add_rule(ty, {1, 1}, ty, {2});
  NodeId src = t.strand(10, 1, "src");
  NodeId c = t.strand(2, 1), d = t.strand(3, 1);
  t.set_root(t.fire(ty, src, t.par({c, d}), 3));
  StrandGraph g = elaborate(t);
  // src gates both sink leaves: span = 10 + max(2,3).
  EXPECT_DOUBLE_EQ(g.span(), 13.0);
}

TEST(FireSemantics, MemoizationDeduplicatesArrows) {
  // Two rules that resolve to the same (src, dst) pair must add one edge.
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  t.rules().add_rule(ty, {1}, FireRules::kFull, {1});
  t.rules().add_rule(ty, {1, 1}, FireRules::kFull, {1, 1});  // same leaves
  NodeId a = t.strand(1, 1), b = t.strand(1, 1);
  t.set_root(t.fire(ty, t.par({a, t.strand(1, 1)}),
                    t.par({b, t.strand(1, 1)}), 4));
  StrandGraph g = elaborate(t);
  std::size_t ab_edges = 0;
  for (const TaskArrow& arrow : g.arrows())
    if (arrow.from == a && arrow.to == b) ++ab_edges;
  EXPECT_EQ(ab_edges, 1u);
}

TEST(FireSemantics, NonProductiveRuleIsRejectedAtElaboration) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("BAD");
  t.rules().add_rule(ty, {}, ty, {});  // same nodes, same type: no progress
  NodeId a = t.strand(1, 1), b = t.strand(1, 1);
  t.set_root(t.fire(ty, t.par({a, t.strand(1, 1)}),
                    t.par({b, t.strand(1, 1)}), 4));
  EXPECT_THROW(elaborate(t), CheckError);
}

TEST(FireSemantics, EmptyPedigreeTypeChangeIsAllowed) {
  // The Cholesky-style union: a rule that only changes type is fine as
  // long as the chain of such rules terminates.
  SpawnTree t;
  const FireType u = t.rules().add_type("U");
  const FireType v = t.rules().add_type("V");
  t.rules().add_rule(u, {}, v, {});
  t.rules().add_rule(v, {1}, FireRules::kFull, {1});
  NodeId a = t.strand(4, 1), b = t.strand(6, 1);
  t.set_root(t.fire(u, t.par({a, t.strand(1, 1)}),
                    t.par({b, t.strand(1, 1)}), 4));
  StrandGraph g = elaborate(t);
  EXPECT_DOUBLE_EQ(g.span(), 10.0);  // a -> b chain
}

TEST(FireSemantics, NpModeTurnsEveryFireIntoBarrier) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  t.rules().add_rule(ty, {1}, FireRules::kFull, {1});
  NodeId a = t.strand(1, 1), b = t.strand(100, 1);
  NodeId c = t.strand(1, 1), d = t.strand(1, 1);
  t.set_root(t.fire(ty, t.par({a, b}), t.par({c, d}), 4));
  EXPECT_DOUBLE_EQ(elaborate(t).span(), 100.0);  // b free of the sink
  EXPECT_DOUBLE_EQ(elaborate(t, {.np_mode = true}).span(), 101.0);
}

TEST(FireSemantics, DeepPedigreePastLeafStopsAtLeaf) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  // Pedigree deeper than the tree: (1)(1)(1)(1) over depth-1 children.
  t.rules().add_rule(ty, {1, 1, 1, 1}, FireRules::kFull, {2});
  NodeId a = t.strand(5, 1), b = t.strand(1, 1);
  NodeId c = t.strand(1, 1), d = t.strand(4, 1);
  t.set_root(t.fire(ty, t.seq({a, b}), t.seq({c, d}), 4));
  // descend(source, 1111) stops at strand a; arrow a -> d.
  EXPECT_DOUBLE_EQ(elaborate(t).span(), 9.0);
}

TEST(FireSemantics, NarySeqAndParInsideFire) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  t.rules().add_rule(ty, {3}, FireRules::kFull, {1});
  NodeId a = t.strand(1, 1), b = t.strand(1, 1), c = t.strand(7, 1);
  NodeId x = t.strand(2, 1), y = t.strand(1, 1), z = t.strand(1, 1);
  t.set_root(t.fire(ty, t.par({a, b, c}), t.par({x, y, z}), 6));
  // Only c gates x: span = c + x = 9.
  EXPECT_DOUBLE_EQ(elaborate(t).span(), 9.0);
}

TEST(FireSemantics, PedigreeIndexOutOfRangeThrows) {
  SpawnTree t;
  const FireType ty = t.rules().add_type("T");
  t.rules().add_rule(ty, {3}, FireRules::kFull, {1});  // source has 2 kids
  NodeId a = t.strand(1, 1), b = t.strand(1, 1);
  t.set_root(t.fire(ty, t.par({a, t.strand(1, 1)}),
                    t.par({b, t.strand(1, 1)}), 4));
  EXPECT_THROW(elaborate(t), CheckError);
}

}  // namespace
}  // namespace ndf
