// Tests for scheduler traces, CLI args and summary statistics.
#include <gtest/gtest.h>

#include "algos/lcs.hpp"
#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "sched/sb_scheduler.hpp"
#include "sched/trace.hpp"
#include "sched/ws_scheduler.hpp"
#include "support/args.hpp"
#include "support/summary.hpp"

namespace ndf {
namespace {

TEST(TraceTest, SbTraceIsValidAndCoversAllUnits) {
  SpawnTree t = make_lcs_tree(128, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 256, 5));
  Trace trace;
  SchedOptions opts;
  opts.trace = &trace;
  const SchedStats s = run_sb_scheduler(g, m, opts);
  EXPECT_EQ(trace.size(), s.atomic_units);
  std::string msg;
  EXPECT_TRUE(validate_trace(trace, m.num_processors(), &msg)) << msg;
  for (const TraceEvent& e : trace) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_LE(e.end, s.makespan + 1e-9);
  }
}

TEST(TraceTest, WsTraceIsValid) {
  SpawnTree t = make_trs_tree(32, 4);
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, 512, 5));
  Trace trace;
  SchedOptions opts;
  opts.trace = &trace;
  const SchedStats s = run_ws_scheduler(g, m, opts);
  EXPECT_EQ(trace.size(), s.atomic_units);
  std::string msg;
  EXPECT_TRUE(validate_trace(trace, m.num_processors(), &msg)) << msg;
}

TEST(TraceTest, UtilizationTimelineIntegratesToBusyFraction) {
  Trace trace;
  trace.push_back({0.0, 10.0, 0, 0});
  trace.push_back({5.0, 10.0, 1, 1});
  const auto tl = utilization_timeline(trace, 2, 10.0, 10);
  ASSERT_EQ(tl.size(), 10u);
  EXPECT_NEAR(tl[0], 0.5, 1e-12);  // only proc 0 busy
  EXPECT_NEAR(tl[9], 1.0, 1e-12);  // both busy
  double avg = 0;
  for (double x : tl) avg += x;
  EXPECT_NEAR(avg / 10.0, 15.0 / 20.0, 1e-12);
}

TEST(TraceTest, ValidateCatchesOverlap) {
  Trace trace;
  trace.push_back({0.0, 10.0, 0, 0});
  trace.push_back({5.0, 8.0, 0, 1});  // same proc, overlapping
  std::string msg;
  EXPECT_FALSE(validate_trace(trace, 1, &msg));
  EXPECT_FALSE(msg.empty());
}

TEST(TraceTest, ValidateCatchesEndBeforeStart) {
  Trace trace;
  trace.push_back({10.0, 4.0, 0, 0});  // runs backwards
  std::string msg;
  EXPECT_FALSE(validate_trace(trace, 1, &msg));
  EXPECT_EQ(msg, "malformed trace event");
}

TEST(TraceTest, ValidateCatchesOutOfRangeProcessor) {
  Trace trace;
  trace.push_back({0.0, 1.0, 4, 0});  // proc 4 on a 4-processor machine
  std::string msg;
  EXPECT_FALSE(validate_trace(trace, 4, &msg));
  EXPECT_EQ(msg, "malformed trace event");
  // The same event is fine on a machine that has the processor.
  EXPECT_TRUE(validate_trace(trace, 5, &msg));
}

TEST(TraceTest, BackToBackUnitsOnOneProcessorAreValid) {
  Trace trace;
  trace.push_back({0.0, 5.0, 0, 0});
  trace.push_back({5.0, 9.0, 0, 1});  // touching intervals don't overlap
  std::string msg;
  EXPECT_TRUE(validate_trace(trace, 1, &msg)) << msg;
}

TEST(ArgsTest, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--n=128", "--sigma=0.25", "--verbose",
                        "--mode=fast"};
  Args a(5, argv);
  EXPECT_EQ(a.get("n", 0LL), 128);
  EXPECT_DOUBLE_EQ(a.get("sigma", 0.0), 0.25);
  EXPECT_TRUE(a.get("verbose", false));
  EXPECT_EQ(a.get("mode", std::string("slow")), "fast");
  EXPECT_EQ(a.get("missing", 7LL), 7);
  EXPECT_TRUE(a.has("n"));
  EXPECT_FALSE(a.has("m"));
}

TEST(ArgsTest, RejectsMalformedInput) {
  {
    const char* argv[] = {"prog", "positional"};
    EXPECT_THROW(Args(2, argv), CheckError);
  }
  {
    const char* argv[] = {"prog", "--n=abc"};
    Args a(2, argv);
    EXPECT_THROW(a.get("n", 0LL), CheckError);
  }
  {
    const char* argv[] = {"prog", "--flag=maybe"};
    Args a(2, argv);
    EXPECT_THROW(a.get("flag", false), CheckError);
  }
}

TEST(SummaryTest, ComputesOrderStatistics) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(SummaryTest, EvenCountMedianAveragesMiddlePair) {
  const std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
  EXPECT_THROW(summarize({}), CheckError);
}

}  // namespace
}  // namespace ndf
