// Direct tests of the StrandGraph API: topological order, longest-path
// distances, cycle detection, and the enter/exit vertex encoding.
#include <gtest/gtest.h>

#include <algorithm>

#include "algos/trs.hpp"
#include "nd/drs.hpp"
#include "nd/graph.hpp"

namespace ndf {
namespace {

SpawnTree diamond() {
  // a ; (b ‖ c) ; d
  SpawnTree t;
  NodeId a = t.strand(1, 1, "a");
  NodeId b = t.strand(2, 1, "b");
  NodeId c = t.strand(3, 1, "c");
  NodeId d = t.strand(4, 1, "d");
  t.set_root(t.seq({a, t.par({b, c}), d}, 4));
  return t;
}

TEST(Graph, VertexEncodingRoundTrips) {
  SpawnTree t = diamond();
  StrandGraph g = elaborate(t);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(g.owner(g.enter(n)), n);
    EXPECT_EQ(g.owner(g.exit(n)), n);
    EXPECT_FALSE(g.is_exit(g.enter(n)));
    EXPECT_TRUE(g.is_exit(g.exit(n)));
  }
}

TEST(Graph, TopologicalOrderRespectsEveryEdge) {
  SpawnTree t = make_trs_tree(16, 4);
  StrandGraph g = elaborate(t);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), g.num_vertices());
  std::vector<std::size_t> pos(g.num_vertices());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId w : g.successors(v)) EXPECT_LT(pos[v], pos[w]);
}

TEST(Graph, LongestPathToIsMonotoneAlongEdges) {
  SpawnTree t = diamond();
  StrandGraph g = elaborate(t);
  const auto dist = g.longest_path_to();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId w : g.successors(v))
      EXPECT_LE(dist[v], dist[w]) << v << "->" << w;
  // The sink exit carries the span.
  const double span = *std::max_element(dist.begin(), dist.end());
  EXPECT_DOUBLE_EQ(span, g.span());
  EXPECT_DOUBLE_EQ(span, 1 + 3 + 4);
}

TEST(Graph, CycleIsDetected) {
  SpawnTree t = diamond();
  StrandGraph g = elaborate(t);
  // Manufacture a back edge: exit(root) -> enter(root).
  g.add_edge(g.exit(t.root()), g.enter(t.root()));
  EXPECT_THROW(g.topological_order(), CheckError);
  EXPECT_THROW(g.span(), CheckError);
}

TEST(Graph, EdgeAndWeightAccounting) {
  SpawnTree t = diamond();
  StrandGraph g = elaborate(t);
  // 4 strands: enter->exit each (4), tree edges 2 per child of each
  // composite (root: 3 children => 6; par: 2 children => 4), seq arrows 2.
  EXPECT_EQ(g.num_edges(), 4u + 6u + 4u + 2u);
  EXPECT_DOUBLE_EQ(g.work(), 10.0);
  EXPECT_EQ(g.in_degree(g.enter(t.root())), 0u);
}

TEST(Graph, ArrowsRecordSeqAndFireOnly) {
  SpawnTree t = diamond();
  StrandGraph g = elaborate(t);
  // Two seq arrows: a -> par, par -> d.
  ASSERT_EQ(g.arrows().size(), 2u);
  EXPECT_EQ(g.arrows()[0].from, 0u);  // strand a is node 0
}

}  // namespace
}  // namespace ndf
