// Scheduler-simulator property tests across algorithms and machines:
//   S1  SB miss counts are independent of the processor count (anchoring
//       is decomposition-driven, not schedule-driven)
//   S2  SB makespan is monotone non-increasing in p and speedup ≤ p
//   S3  SB misses at level j never exceed Q*(t; σMj) (Theorem 1)
//   S4  SB traces are overlap-free and integrate to the utilization stat
//   S5  ND makespan ≤ NP makespan up to a small greedy-scheduling
//       anomaly margin (relaxing constraints can locally mislead a greedy
//       nonclairvoyant scheduler, but never beyond the vh-factor regime)
//   S6  WS makespan is invariant for a fixed seed and bounded below by
//       perfect balance; WS ≥ SB on multi-level miss counts
#include <gtest/gtest.h>

#include <functional>

#include "algos/cholesky.hpp"
#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "analysis/pcc.hpp"
#include "nd/drs.hpp"
#include "sched/sb_scheduler.hpp"
#include "sched/ws_scheduler.hpp"

namespace ndf {
namespace {

struct SchedCase {
  const char* name;
  std::function<SpawnTree()> make;
  double M1;
};

std::vector<SchedCase> cases() {
  return {
      {"mm32", [] { return make_mm_tree(32, 4); }, 3 * 8 * 8.0},
      {"trs48", [] { return make_trs_tree(48, 4); }, 512.0},
      {"cho48", [] { return make_cholesky_tree(48, 4); }, 512.0},
      {"lcs192", [] { return make_lcs_tree(192, 4); }, 128.0},
  };
}

class SchedProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  const SchedCase& c() const {
    static const auto cs = cases();
    return cs[GetParam()];
  }
};

TEST_P(SchedProperty, MissesIndependentOfProcessorCount) {  // S1
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  std::vector<double> first;
  for (std::size_t p : {1u, 3u, 8u}) {
    Pmh m(PmhConfig::flat(p, c().M1, 7));
    const SchedStats s = run_sb_scheduler(g, m);
    if (first.empty())
      first = s.misses;
    else
      EXPECT_DOUBLE_EQ(s.misses[0], first[0]) << "p=" << p;
  }
}

TEST_P(SchedProperty, MakespanMonotoneAndSpeedupBounded) {  // S2
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  double t1 = 0.0, prev = 1e300;
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    Pmh m(PmhConfig::flat(p, c().M1, 7));
    const double ms = run_sb_scheduler(g, m).makespan;
    if (p == 1) t1 = ms;
    EXPECT_LE(ms, prev * 1.0001) << c().name << " p=" << p;
    EXPECT_LE(t1 / ms, double(p) + 1e-9);
    prev = ms;
  }
}

TEST_P(SchedProperty, Theorem1MissBound) {  // S3
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  SchedOptions o;
  for (double M1 : {c().M1, 4.0 * c().M1}) {
    Pmh m(PmhConfig::flat(4, M1, 7));
    const SchedStats s = run_sb_scheduler(g, m, o);
    EXPECT_LE(s.misses[0], parallel_cache_complexity(t, o.sigma * M1));
  }
}

TEST_P(SchedProperty, TraceConsistentWithStats) {  // S4
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(4, c().M1, 7));
  Trace trace;
  SchedOptions o;
  o.trace = &trace;
  const SchedStats s = run_sb_scheduler(g, m, o);
  std::string msg;
  ASSERT_TRUE(validate_trace(trace, m.num_processors(), &msg)) << msg;
  double busy = 0.0;
  for (const TraceEvent& e : trace) busy += e.end - e.start;
  EXPECT_NEAR(busy / (s.makespan * double(m.num_processors())),
              s.utilization, 1e-9);
}

TEST_P(SchedProperty, NdMakespanAtMostNpUpToAnomalies) {  // S5
  SpawnTree t = c().make();
  StrandGraph nd = elaborate(t);
  StrandGraph np = elaborate(t, {.np_mode = true});
  Pmh m(PmhConfig::flat(8, c().M1, 7));
  // 10% margin: MM has no span gap and greedy anchoring order can differ
  // slightly; the algorithms with genuine gaps (TRS/CHO/LCS) win outright.
  EXPECT_LE(run_sb_scheduler(nd, m).makespan,
            run_sb_scheduler(np, m).makespan * 1.10);
}

TEST_P(SchedProperty, WsDeterministicAndBalanceBounded) {  // S6
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::flat(8, c().M1, 7));
  SchedOptions o;
  o.seed = 123;
  const SchedStats a = run_ws_scheduler(g, m, o);
  const SchedStats b = run_ws_scheduler(g, m, o);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_GE(a.makespan * 8.0, a.total_work - 1e-6);
  // Different seeds: still complete, same total work.
  o.seed = 9999;
  const SchedStats d = run_ws_scheduler(g, m, o);
  EXPECT_DOUBLE_EQ(d.total_work, a.total_work);
}

TEST_P(SchedProperty, TwoTierWsNeverBeatsSbOnUpperLevelMisses) {
  SpawnTree t = c().make();
  StrandGraph g = elaborate(t);
  Pmh m(PmhConfig::two_tier(2, 4, c().M1 / 4.0, 4.0 * c().M1, 3, 30));
  const SchedStats sb = run_sb_scheduler(g, m);
  const SchedStats ws = run_ws_scheduler(g, m);
  EXPECT_LE(sb.misses[1], ws.misses[1] * 1.0001) << c().name;
}

INSTANTIATE_TEST_SUITE_P(AllCases, SchedProperty,
                         ::testing::Range<std::size_t>(0, cases().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           static const auto cs = cases();
                           return cs[i.param].name;
                         });

}  // namespace
}  // namespace ndf
