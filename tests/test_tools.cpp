// Tests for the tooling layer: DOT export, DAG statistics and parallelism
// profiles, static fire-rule validation, and the NP-lowering transform.
#include <gtest/gtest.h>

#include "algos/lcs.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"
#include "nd/dot.hpp"
#include "nd/drs.hpp"
#include "nd/lower.hpp"
#include "nd/stats.hpp"
#include "nd/validate.hpp"

namespace ndf {
namespace {

TEST(Dot, SpawnTreeMentionsConstructsAndStrands) {
  SpawnTree t;
  const FireType fg = t.rules().add_type("FG");
  t.rules().add_rule(fg, {1}, FireRules::kFull, {1});
  NodeId a = t.strand(1, 1, "alpha");
  NodeId b = t.strand(1, 1, "beta");
  t.set_root(t.fire(fg, a, b, 2));
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("~FG~>"), std::string::npos);
  EXPECT_NE(dot.find("digraph spawn_tree"), std::string::npos);
}

TEST(Dot, DagExportContainsArrows) {
  SpawnTree t = make_mm_tree(8, 4);
  StrandGraph g = elaborate(t);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph algorithm_dag"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, DagExportGuardsAgainstHugeGraphs) {
  SpawnTree t = make_mm_tree(32, 2);
  StrandGraph g = elaborate(t);
  EXPECT_THROW(to_dot(g, 16), CheckError);
}

TEST(Stats, ParallelismProfileOfSerialChain) {
  SpawnTree t;
  std::vector<NodeId> ss;
  for (int i = 0; i < 5; ++i) ss.push_back(t.strand(1, 1));
  t.set_root(t.seq(std::move(ss), 5));
  const auto prof = parallelism_profile(elaborate(t));
  ASSERT_EQ(prof.size(), 5u);
  for (std::size_t w : prof) EXPECT_EQ(w, 1u);
}

TEST(Stats, ParallelismProfileOfParBlock) {
  SpawnTree t;
  std::vector<NodeId> ss;
  for (int i = 0; i < 6; ++i) ss.push_back(t.strand(1, 1));
  t.set_root(t.par(std::move(ss), 6));
  const auto prof = parallelism_profile(elaborate(t));
  ASSERT_EQ(prof.size(), 1u);
  EXPECT_EQ(prof[0], 6u);
}

TEST(Stats, LcsNdProfileIsWiderThanNp) {
  SpawnTree t = make_lcs_tree(64, 4);
  const DagStats nd = compute_stats(elaborate(t));
  const DagStats np = compute_stats(elaborate(t, {.np_mode = true}));
  EXPECT_EQ(nd.strands, np.strands);
  EXPECT_DOUBLE_EQ(nd.work, np.work);
  EXPECT_GT(nd.parallelism, np.parallelism);
  EXPECT_LE(nd.depth_levels, np.depth_levels);
  EXPECT_GE(nd.max_level_width, np.max_level_width);
}

TEST(Stats, CountsMatchTree) {
  SpawnTree t = make_mm_tree(16, 4);
  const DagStats s = compute_stats(elaborate(t));
  EXPECT_EQ(s.strands, t.strand_count(t.root()));
  EXPECT_DOUBLE_EQ(s.work, 2.0 * 16 * 16 * 16);
  EXPECT_GT(s.edges, s.strands);  // structural edges alone exceed strands
}

TEST(Validate, AcceptsAllShippedRuleTables) {
  {
    SpawnTree t;
    LinalgTypes::install(t);
    EXPECT_TRUE(validate_rules(t.rules()).empty());
  }
  {
    SpawnTree t;
    LcsTypes::install(t);
    EXPECT_TRUE(validate_rules(t.rules()).empty());
  }
}

TEST(Validate, FlagsNonProductiveSelfRule) {
  FireRules r;
  const FireType a = r.add_type("A");
  r.add_rule(a, {}, a, {});
  const auto issues = validate_rules(r);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].type, a);
}

TEST(Validate, FlagsEmptyPedigreeCycle) {
  FireRules r;
  const FireType a = r.add_type("A");
  const FireType b = r.add_type("B");
  r.add_rule(a, {}, b, {});
  r.add_rule(b, {}, a, {});
  EXPECT_FALSE(validate_rules(r).empty());
}

TEST(Validate, AcceptsEmptyPedigreeDag) {
  FireRules r;
  const FireType a = r.add_type("A");
  const FireType b = r.add_type("B");
  r.add_rule(a, {}, b, {});         // a -> b, no cycle
  r.add_rule(b, {1}, b, {1});       // productive
  EXPECT_TRUE(validate_rules(r).empty());
}

TEST(Lower, LoweredTreeMatchesNpElaboration) {
  for (std::size_t n : {16u, 32u}) {
    SpawnTree t = make_trs_tree(n, 4);
    SpawnTree np = lower_to_np(t);
    // No fire nodes remain.
    for (NodeId i = 0; i < np.num_nodes(); ++i)
      EXPECT_NE(np.node(i).kind, Kind::Fire);
    const double lowered = elaborate(np).span();
    const double np_mode = elaborate(t, {.np_mode = true}).span();
    EXPECT_DOUBLE_EQ(lowered, np_mode);
    EXPECT_DOUBLE_EQ(elaborate(np).work(), elaborate(t).work());
  }
}

TEST(Lower, PreservesKernelsAndFootprints) {
  Matrix<double> A(8, 8, 1.0), B(8, 8, 1.0), C(8, 8, 0.0), Cref(8, 8, 0.0);
  mm_reference(A.view(), B.view(), Cref.view(), 1.0, false);
  SpawnTree t;
  const LinalgTypes ty = LinalgTypes::install(t);
  t.set_root(build_mm(t, ty, 8, 8, 8, 4, 1.0,
                      MmViews{A.view(), B.view(), C.view(), false}));
  SpawnTree np = lower_to_np(t);
  // Execute the lowered tree serially; kernels must have been carried over.
  std::size_t bodies = 0;
  for (NodeId i = 0; i < np.num_nodes(); ++i)
    if (np.node(i).kind == Kind::Strand && np.node(i).body) {
      np.node(i).body();
      ++bodies;
    }
  EXPECT_EQ(bodies, t.strand_count(t.root()));
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(C(i, j), Cref(i, j), 1e-9);
}

}  // namespace
}  // namespace ndf
