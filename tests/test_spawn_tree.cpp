// Unit tests for spawn-tree construction, pedigrees and size inheritance.
#include <gtest/gtest.h>

#include "nd/spawn_tree.hpp"

namespace ndf {
namespace {

TEST(Pedigree, ToStringMatchesPaperNotation) {
  Pedigree p{2, 1};
  EXPECT_EQ(p.to_string(), "(2)(1)");
  EXPECT_EQ(p.depth(), 2u);
  EXPECT_TRUE(Pedigree{}.empty());
}

TEST(FireRules, BuiltinsAndRegistration) {
  FireRules r;
  EXPECT_EQ(r.name(FireRules::kFull), "FULL");
  EXPECT_EQ(r.name(FireRules::kEmpty), "EMPTY");
  const FireType mm = r.add_type("MM");
  r.add_rule(mm, {1}, mm, {1});
  EXPECT_EQ(r.rules(mm).size(), 1u);
  EXPECT_TRUE(r.rules(FireRules::kFull).empty());
  EXPECT_THROW(r.add_rule(FireRules::kFull, {1}, mm, {1}), CheckError);
}

TEST(SpawnTree, ComposesAndCountsWork) {
  SpawnTree t;
  NodeId a = t.strand(3.0, 1.0, "a");
  NodeId b = t.strand(4.0, 1.0, "b");
  NodeId c = t.strand(5.0, 1.0, "c");
  NodeId s = t.seq({a, b}, 2.0);
  NodeId root = t.par({s, c}, 3.0);
  t.set_root(root);
  EXPECT_DOUBLE_EQ(t.work_of(root), 12.0);
  EXPECT_EQ(t.strand_count(root), 3u);
  EXPECT_EQ(t.node(a).parent, s);
  EXPECT_EQ(t.node(s).parent, root);
}

TEST(SpawnTree, SizeInheritsFromLowestAnnotatedAncestor) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 2.0);
  NodeId b = t.strand(1.0, 3.0);
  NodeId p = t.par({a, b});      // unannotated
  NodeId q = t.seq({p, t.strand(1.0, 1.0)}, 10.0);
  t.set_root(q);
  EXPECT_DOUBLE_EQ(t.size_of(a), 2.0);
  EXPECT_DOUBLE_EQ(t.size_of(p), 10.0);  // inherited from q
  EXPECT_DOUBLE_EQ(t.size_of(q), 10.0);
}

TEST(SpawnTree, DescendFollowsPedigreeAndStopsAtStrands) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 1.0, "a");
  NodeId b = t.strand(1.0, 1.0, "b");
  NodeId c = t.strand(1.0, 1.0, "c");
  NodeId inner = t.par({a, b});
  NodeId root = t.seq({inner, c}, 1.0);
  t.set_root(root);
  EXPECT_EQ(t.descend(root, {1, 2}), b);
  EXPECT_EQ(t.descend(root, {2}), c);
  // Descending past a strand stops at the strand.
  EXPECT_EQ(t.descend(root, {2, 1, 1}), c);
  EXPECT_THROW(t.descend(root, {3}), CheckError);
}

TEST(SpawnTree, InSubtreeAndStrandsUnder) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 1.0);
  NodeId b = t.strand(1.0, 1.0);
  NodeId c = t.strand(1.0, 1.0);
  NodeId p = t.par({a, b});
  NodeId root = t.seq({p, c}, 1.0);
  t.set_root(root);
  EXPECT_TRUE(t.in_subtree(a, p));
  EXPECT_TRUE(t.in_subtree(a, root));
  EXPECT_FALSE(t.in_subtree(c, p));
  const auto strands = t.strands_under(root);
  ASSERT_EQ(strands.size(), 3u);
  EXPECT_EQ(strands[0], a);
  EXPECT_EQ(strands[1], b);
  EXPECT_EQ(strands[2], c);
}

TEST(SpawnTree, FireNodeIsBinaryWithValidType) {
  SpawnTree t;
  const FireType mm = t.rules().add_type("MM");
  NodeId a = t.strand(1.0, 1.0);
  NodeId b = t.strand(1.0, 1.0);
  NodeId f = t.fire(mm, a, b, 2.0);
  t.set_root(f);
  EXPECT_EQ(t.node(f).children.size(), 2u);
  EXPECT_EQ(t.node(f).fire_type, mm);
  EXPECT_THROW(t.fire(99, a, b), CheckError);
}

TEST(SpawnTree, RootMustHaveNoParent) {
  SpawnTree t;
  NodeId a = t.strand(1.0, 1.0);
  NodeId b = t.strand(1.0, 1.0);
  NodeId s = t.seq({a, b}, 1.0);
  EXPECT_THROW(t.set_root(a), CheckError);
  t.set_root(s);
  EXPECT_EQ(t.root(), s);
}

}  // namespace
}  // namespace ndf
