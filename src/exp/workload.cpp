#include "exp/workload.hpp"

#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "algos/cholesky.hpp"
#include "algos/fw1d.hpp"
#include "algos/fw2d.hpp"
#include "algos/gotoh.hpp"
#include "algos/lcs.hpp"
#include "algos/lu.hpp"
#include "algos/matmul.hpp"
#include "algos/trs.hpp"

namespace ndf::exp {

namespace {

struct Builder {
  std::string description;
  std::size_t default_n;
  std::function<SpawnTree(std::size_t, std::size_t)> make;
};

const std::map<std::string, Builder>& builders() {
  static const std::map<std::string, Builder> t = {
      {"mm", {"blocked matrix multiply", 64, make_mm_tree}},
      {"trs", {"triangular solve", 64, make_trs_tree}},
      {"cholesky", {"Cholesky factorization", 64, make_cholesky_tree}},
      {"lu", {"LU factorization", 64, make_lu_tree}},
      {"lcs", {"longest common subsequence", 256, make_lcs_tree}},
      {"gotoh", {"Gotoh affine-gap alignment", 128, make_gotoh_tree}},
      {"fw1d", {"Floyd-Warshall, 1-D decomposition", 64, make_fw1d_tree}},
      {"fw2d", {"Floyd-Warshall, 2-D decomposition", 64, make_fw2d_tree}},
  };
  return t;
}

std::string known_workloads() {
  std::string s;
  for (const auto& [name, b] : builders()) {
    if (!s.empty()) s += ", ";
    s += name;
  }
  return s;
}

std::size_t parse_size(const std::string& spec, const std::string& key,
                       const std::string& val) {
  char* end = nullptr;
  const long long v = std::strtoll(val.c_str(), &end, 10);
  NDF_CHECK_MSG(end && *end == '\0' && !val.empty() && v > 0,
                "workload parameter '" << key << "' in '" << spec
                                       << "' is not a positive integer: "
                                       << val);
  return std::size_t(v);
}

}  // namespace

std::string WorkloadSpec::label() const {
  if (algo == "gen") {
    NDF_CHECK_MSG(gen, "gen workload spec has no generator parameters");
    std::string s = gen->label();
    if (np) s += ",np";
    return s;
  }
  std::ostringstream os;
  os << algo << ":n=" << n;
  if (base != 4) os << ",base=" << base;
  if (np) os << ",np";
  return os.str();
}

std::vector<WorkloadInfo> registered_workloads() {
  std::vector<WorkloadInfo> out;
  for (const auto& [name, b] : builders())
    out.push_back({name, b.description, b.default_n});
  return out;  // std::map iterates sorted by name
}

WorkloadSpec parse_workload(const std::string& spec) {
  WorkloadSpec w;
  const auto colon = spec.find(':');
  w.algo = spec.substr(0, colon);

  // Validate the algo name first, so a typo'd name is reported as such
  // even when its parameters are malformed too.
  const auto algo_it = builders().find(w.algo);
  NDF_CHECK_MSG(w.algo == "gen" || algo_it != builders().end(),
                "unknown workload '" << w.algo << "' in '" << spec
                                     << "' (registered: " << known_workloads()
                                     << ", or gen:family=...)");

  // One pass over the parameter items: `np` flags are consumed here (they
  // apply to every workload kind), everything else is collected as
  // key=value pairs. Duplicates are rejected loudly for both kinds — a
  // spec like "mm:n=4,n=8" silently taking the last value is exactly the
  // kind of typo that produces a plausible-looking wrong sweep.
  std::vector<std::pair<std::string, std::string>> kv;
  std::set<std::string> seen;
  const auto claim = [&](const std::string& key) {
    NDF_CHECK_MSG(seen.insert(key).second,
                  "duplicate workload parameter '" << key << "' in '" << spec
                                                   << "'");
  };
  if (colon != std::string::npos) {
    std::stringstream ss(spec.substr(colon + 1));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      if (item == "np") {
        claim("np");
        w.np = true;
        continue;
      }
      const auto eq = item.find('=');
      NDF_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "bad workload parameter '" << item << "' in '" << spec
                                               << "' (want key=value or np)");
      const std::string key = item.substr(0, eq);
      const std::string val = item.substr(eq + 1);
      claim(key);
      if (key == "np") {
        NDF_CHECK_MSG(val == "0" || val == "1",
                      "workload parameter np in '" << spec << "' must be 0/1");
        w.np = val == "1";
      } else {
        kv.emplace_back(key, val);
      }
    }
  }

  if (w.algo == "gen") {
    w.gen = gen::parse_gen_params(kv, spec);
    // Surface the size parameter in the n column of tables/JSON/CSV for
    // families that have one (chain, wavefront); 0 means not applicable.
    if (gen::family_accepts(w.gen->family, "n")) w.n = w.gen->n;
    return w;
  }

  w.n = algo_it->second.default_n;
  for (const auto& [key, val] : kv) {
    if (key == "n") {
      w.n = parse_size(spec, key, val);
    } else if (key == "base") {
      w.base = parse_size(spec, key, val);
    } else {
      NDF_CHECK_MSG(false, "unknown workload parameter '"
                               << key << "' in '" << spec
                               << "' (valid: n, base, np)");
    }
  }
  return w;
}

std::vector<WorkloadSpec> parse_workload_list(const std::string& specs) {
  std::vector<WorkloadSpec> out;
  std::stringstream ss(specs);
  std::string item;
  while (std::getline(ss, item, ';'))
    if (!item.empty()) out.push_back(parse_workload(item));
  return out;
}

SpawnTree build_workload_tree(const WorkloadSpec& spec) {
  if (spec.algo == "gen") {
    NDF_CHECK_MSG(spec.gen, "gen workload spec has no generator parameters");
    return gen::generate(*spec.gen);
  }
  const auto it = builders().find(spec.algo);
  // Name the full spec, not just the algo key: specs injected past the
  // parser (tests, programmatic sweeps) must still be identifiable in the
  // rejection they trigger.
  NDF_CHECK_MSG(it != builders().end(),
                "unknown workload '" << spec.algo << "' in '" << spec.label()
                                     << "' (registered: " << known_workloads()
                                     << ")");
  NDF_CHECK_MSG(spec.n > 0,
                "workload spec '" << spec.label() << "' needs n > 0");
  return it->second.make(spec.n, spec.base);
}

Workload::Workload(WorkloadSpec spec)
    : spec_(std::move(spec)),
      tree_(std::make_unique<SpawnTree>(build_workload_tree(spec_))),
      graph_(std::make_unique<StrandGraph>(
          elaborate(*tree_, {.np_mode = spec_.np}))) {}

}  // namespace ndf::exp
