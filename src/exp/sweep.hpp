// The sweep runner: expands a Scenario's grid and executes every point,
// sharing one CondensedDag across everything that can share it — all
// policies, repeats, α' values and machines with the same cache-size
// profile reuse the condensation built for their (workload, σ). The
// pre-split code rebuilt it inside every run; on a 4-policy × 7-machine
// scaling sweep that was 28 elaborations+decompositions instead of 1.
//
// condensations_built() exposes the actual build count so tests can assert
// the reuse invariant ("exactly once per workload × σ × cache profile").
#pragma once

#include <cstddef>

#include "exp/scenario.hpp"

namespace ndf::exp {

class Sweep {
 public:
  explicit Sweep(Scenario s) : scenario_(std::move(s)) {}

  /// Expands and executes the grid (first call; later calls return the
  /// cached results). Points are emitted in expand_grid order.
  const std::vector<RunPoint>& run();

  const Scenario& scenario() const { return scenario_; }
  /// Results so far (empty before run()).
  const std::vector<RunPoint>& results() const { return results_; }
  /// Number of CondensedDags this sweep built (== distinct
  /// workload × σ × cache-size-profile combinations touched).
  std::size_t condensations_built() const { return condensations_; }

 private:
  Scenario scenario_;
  std::vector<RunPoint> results_;
  std::size_t condensations_ = 0;
  bool ran_ = false;
};

}  // namespace ndf::exp
