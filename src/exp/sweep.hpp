// The sweep runner: expands a Scenario's grid and executes every point,
// sharing one CondensedDag across everything that can share it — all
// policies, repeats, α' values and machines with the same cache-size
// profile reuse the condensation built for their (workload, σ). The
// pre-split code rebuilt it inside every run; on a 4-policy × 7-machine
// scaling sweep that was 28 elaborations+decompositions instead of 1.
//
// Grid cells are independent once their condensation exists, so the runner
// executes them on a thread pool (support/thread_pool.hpp): shared
// condensations are built concurrently first, then cells fan out with all
// per-run state (SimCore, policy, stats) worker-local, and each result is
// written into its grid slot — the result vector is in expand_grid order
// regardless of completion order, so emitter output is byte-identical to
// the serial runner's. `jobs == 1` bypasses the pool entirely and runs the
// legacy serial loop (also the path with the smallest memory footprint:
// it keeps at most one workload's dags alive, where the parallel engine
// holds every workload and condensation the grid needs at once).
//
// condensations_built() exposes the actual build count so tests can assert
// the reuse invariant ("exactly once per workload × σ × cache profile") —
// both execution paths must report the same number.
#pragma once

#include <cstddef>

#include "exp/scenario.hpp"

namespace ndf::exp {

class Sweep {
 public:
  /// `jobs` is the worker count for grid execution: 0 (the default) means
  /// one worker per hardware thread, 1 forces the legacy serial path, and
  /// any value is clamped to the grid size so tiny sweeps don't spawn
  /// threads they cannot feed.
  explicit Sweep(Scenario s, std::size_t jobs = 0)
      : scenario_(std::move(s)), jobs_(jobs) {}

  /// Expands and executes the grid (first call; later calls return the
  /// cached results). Points are emitted in expand_grid order.
  const std::vector<RunPoint>& run();

  const Scenario& scenario() const { return scenario_; }
  /// Results so far (empty before run()).
  const std::vector<RunPoint>& results() const { return results_; }
  /// Number of CondensedDags this sweep built (== distinct
  /// workload × σ × cache-size-profile combinations touched).
  std::size_t condensations_built() const { return condensations_; }
  /// The worker count requested at construction (0 = auto).
  std::size_t jobs() const { return jobs_; }

 private:
  void run_serial(const std::vector<Pmh>& machines,
                  const std::vector<GridPoint>& grid);
  void run_parallel(std::size_t jobs, const std::vector<Pmh>& machines,
                    const std::vector<GridPoint>& grid);

  Scenario scenario_;
  std::size_t jobs_ = 0;
  std::vector<RunPoint> results_;
  std::size_t condensations_ = 0;
  bool ran_ = false;
};

}  // namespace ndf::exp
