// The sweep runner: expands a Scenario's grid and executes every point,
// sharing one CondensedDag across everything that can share it — all
// policies, repeats, α' values and machines with the same cache-size
// profile reuse the condensation built for their (workload, σ). The
// pre-split code rebuilt it inside every run; on a 4-policy × 7-machine
// scaling sweep that was 28 elaborations+decompositions instead of 1.
//
// Grid cells are independent once their condensation exists, so the runner
// executes them on a thread pool (support/thread_pool.hpp): shared
// condensations are built concurrently first, then cells fan out in
// *chunks* — contiguous grid ranges, a few per worker — rather than one
// pool task per cell. Each chunk runs its cells through one reused SimCore
// (reset() per cell keeps every arena's capacity), so per-cell cost is the
// simulation itself, not allocation churn; expansion order makes cells
// sharing a (condensation, machine) contiguous, so the core's cached
// duration table is recomputed once per binding, not once per cell. Each
// cell writes only its own pre-sized, cache-line-padded result slot, so
// the merged vector is in expand_grid order regardless of completion order
// and emitter output is byte-identical at every `--jobs` value. `jobs == 1`
// bypasses the pool and runs the serial loop (also the path with the
// smallest memory footprint: it keeps at most one workload's dags alive,
// where the parallel engine holds every workload and condensation the grid
// needs at once); the serial loop reuses one core the same way within each
// (workload, σ) segment.
//
// condensations_built() exposes the actual build count so tests can assert
// the reuse invariant ("exactly once per workload × σ × cache profile") —
// both execution paths must report the same number. A run that throws
// leaves the object fully reset (no results, zero condensations) and a
// later run() retries from scratch.
#pragma once

#include <cstddef>

#include "exp/scenario.hpp"
#include "support/thread_pool.hpp"

namespace ndf::exp {

/// Wall-clock seconds spent in each phase of a sweep, for `--phase-times`
/// style reporting. On the parallel path these are the barrier-to-barrier
/// phase times; on the serial path each activity's time is accumulated as
/// the rolling loop interleaves them. Emission happens outside Sweep, so
/// its time is the caller's to measure.
struct PhaseTimes {
  double workload_build = 0.0;  ///< elaborating workload graphs
  double condensation = 0.0;    ///< building CondensedDags
  double cell_execution = 0.0;  ///< simulating grid cells
};

class Sweep {
 public:
  /// `jobs` is the worker count for grid execution: 0 (the default) means
  /// one worker per hardware thread, 1 forces the legacy serial path, and
  /// any value is clamped to the grid size so tiny sweeps don't spawn
  /// threads they cannot feed.
  explicit Sweep(Scenario s, std::size_t jobs = 0)
      : scenario_(std::move(s)), jobs_(jobs) {}

  /// Expands and executes the grid (first call; later calls return the
  /// cached results). Points are emitted in expand_grid order.
  const std::vector<RunPoint>& run();

  const Scenario& scenario() const { return scenario_; }
  /// Results so far (empty before run()).
  const std::vector<RunPoint>& results() const { return results_; }
  /// Number of CondensedDags this sweep built (== distinct
  /// workload × σ × cache-size-profile combinations touched). Zero until
  /// a run completes — a failed run does not report a partial count.
  std::size_t condensations_built() const { return condensations_; }
  /// Per-phase wall-clock of the completed run (zeros before/without one).
  const PhaseTimes& phase_times() const { return phase_times_; }
  /// Per-worker busy/idle accounting of the completed run's thread pool
  /// (empty before a run, and on the serial path — there are no workers).
  const std::vector<ThreadPool::WorkerStats>& worker_stats() const {
    return worker_stats_;
  }
  /// The worker count requested at construction (0 = auto).
  std::size_t jobs() const { return jobs_; }

 private:
  void run_serial(const std::vector<Pmh>& machines,
                  const std::vector<GridPoint>& grid);
  void run_parallel(std::size_t jobs, const std::vector<Pmh>& machines,
                    const std::vector<GridPoint>& grid);

  Scenario scenario_;
  std::size_t jobs_ = 0;
  std::vector<RunPoint> results_;
  std::size_t condensations_ = 0;
  PhaseTimes phase_times_;
  std::vector<ThreadPool::WorkerStats> worker_stats_;
  bool ran_ = false;
};

}  // namespace ndf::exp
