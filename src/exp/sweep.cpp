#include "exp/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "obs/progress.hpp"
#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"
#include "sched/sim_core.hpp"
#include "support/thread_pool.hpp"

namespace ndf::exp {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Coordinates + stats for one executed cell — identical fields on both
/// execution paths so they cannot drift apart.
RunPoint make_run_point(const Scenario& s, const GridPoint& g, const Pmh& m,
                        const SchedOptions& opts) {
  RunPoint pt;
  pt.workload = s.workloads[g.workload];
  pt.machine = s.machines[g.machine];
  pt.machine_desc = m.to_string();
  pt.policy = s.policies[g.policy];
  pt.cache = s.cache_models[g.cache];
  pt.sigma = opts.sigma;
  pt.alpha_prime = opts.alpha_prime;
  pt.repeat = g.repeat;
  pt.seed = opts.seed;
  return pt;
}

/// One grid cell's result, padded to a cache line so concurrent writers of
/// adjacent cells never share a line (the RunPoint header alone straddles
/// fewer lines than its heap payload, but the slot boundary is what the
/// writers contend on).
struct alignas(64) ResultSlot {
  RunPoint pt;
};

/// Executes grid cell i through `core`, constructing it on first use and
/// reset()-rebinding it afterwards — the shared per-cell body of the serial
/// loop and every parallel chunk. `sink` (non-null for grid cell 0 only —
/// the scenario's trace_sink) records the cell's event stream.
RunPoint run_cell(const Scenario& s, const GridPoint& g, const Pmh& m,
                  const CondensedDag& dag, std::unique_ptr<SimCore>& core,
                  obs::TraceSink* sink) {
  SchedOptions opts = point_options(s, g);
  opts.sink = sink;
  const auto policy = make_scheduler(s.policies[g.policy], opts);
  if (core)
    core->reset(dag, m, opts);
  else
    core = std::make_unique<SimCore>(dag, m, opts);
  RunPoint pt = make_run_point(s, g, m, opts);
  pt.stats = core->run(*policy);
  return pt;
}

}  // namespace

const std::vector<RunPoint>& Sweep::run() {
  if (ran_) return results_;
  // A retry after a mid-grid throw starts from scratch, not from the
  // partial results the failed attempt accumulated.
  results_.clear();
  condensations_ = 0;
  phase_times_ = {};
  worker_stats_.clear();
  validate(scenario_);

  std::vector<Pmh> machines;
  machines.reserve(scenario_.machines.size());
  for (const std::string& spec : scenario_.machines)
    machines.push_back(make_pmh(spec));

  const std::vector<GridPoint> grid = expand_grid(scenario_);
  const std::size_t jobs =
      std::min(jobs_ == 0 ? ThreadPool::default_jobs() : jobs_,
               std::max<std::size_t>(grid.size(), 1));
  try {
    if (jobs <= 1)
      run_serial(machines, grid);
    else
      run_parallel(jobs, machines, grid);
  } catch (...) {
    // A failed run must leave the object exactly as if run() was never
    // called: no partial results, no partial (or full-plan) condensation
    // count for callers to mistake for a completed sweep.
    results_.clear();
    condensations_ = 0;
    phase_times_ = {};
    worker_stats_.clear();
    throw;
  }

  // Only a completed grid counts as run: a throw above (bad scenario, bad
  // machine spec, a failure inside a worker) must not poison this object
  // into returning a partial or empty result set as if the sweep succeeded.
  ran_ = true;
  return results_;
}

void Sweep::run_serial(const std::vector<Pmh>& machines,
                       const std::vector<GridPoint>& grid) {
  results_.reserve(grid.size());

  // Condensation cache for the current (workload, σ): one entry per
  // distinct cache-size profile among the machines. The grid is expanded
  // workload-major then σ, so the cache resets exactly when the key
  // changes and never holds more than one workload's dags.
  std::unique_ptr<Workload> workload;
  std::size_t cur_w = std::size_t(-1), cur_s = std::size_t(-1);
  std::vector<std::pair<std::vector<double>, std::unique_ptr<CondensedDag>>>
      dags;
  // One SimCore reused (reset() per cell) across the segment sharing the
  // dag cache. It dies with the cache: freed dags could be reallocated at
  // the same address, which would fool the core's pointer-keyed duration
  // table into serving a stale entry.
  std::unique_ptr<SimCore> core;

  obs::ProgressMeter progress(scenario_.progress, scenario_.name);
  progress.begin_phase("cells", grid.size());
  std::size_t cell_index = 0;
  for (const GridPoint& g : grid) {
    if (g.workload != cur_w) {
      // Drop the core, then the cached dags, BEFORE the workload they
      // point into dies.
      core.reset();
      dags.clear();
      const double t0 = now_s();
      workload = std::make_unique<Workload>(scenario_.workloads[g.workload]);
      phase_times_.workload_build += now_s() - t0;
      cur_w = g.workload;
      cur_s = std::size_t(-1);
    }
    if (g.sigma != cur_s) {
      core.reset();
      dags.clear();
      cur_s = g.sigma;
    }
    const Pmh& m = machines[g.machine];
    std::vector<double> sizes = level_cache_sizes(m);
    const CondensedDag* dag = nullptr;
    for (const auto& [key, d] : dags)
      if (key == sizes) {
        dag = d.get();
        break;
      }
    if (!dag) {
      const double t0 = now_s();
      dags.emplace_back(sizes,
                        std::make_unique<CondensedDag>(
                            workload->graph(), sizes,
                            scenario_.sigmas[g.sigma]));
      phase_times_.condensation += now_s() - t0;
      dag = dags.back().second.get();
      ++condensations_;
    }

    const double t0 = now_s();
    results_.push_back(
        run_cell(scenario_, g, m, *dag, core,
                 cell_index == 0 ? scenario_.trace_sink : nullptr));
    phase_times_.cell_execution += now_s() - t0;
    ++cell_index;
    progress.tick();
  }
  progress.finish();
}

void Sweep::run_parallel(std::size_t jobs, const std::vector<Pmh>& machines,
                         const std::vector<GridPoint>& grid) {
  const CondensationPlan plan = plan_condensations(scenario_, grid, machines);

  // Shared immutable inputs of the fan-out. Built into slots pre-sized in
  // deterministic plan order; each slot is written by exactly one task.
  std::vector<std::unique_ptr<Workload>> workloads(scenario_.workloads.size());
  std::vector<std::unique_ptr<CondensedDag>> dags(plan.keys.size());
  std::vector<ResultSlot> results(grid.size());

  // Declared after everything the tasks touch: if a phase throws, the
  // pool's destructor drains and joins before any of the data above is
  // torn down. The progress meter outlives the pool's tasks the same way.
  obs::ProgressMeter progress(scenario_.progress, scenario_.name);
  ThreadPool pool(jobs);

  // Phase 1: build each workload the grid references exactly once
  // (elaboration is expensive; distinct workloads are independent).
  double t0 = now_s();
  {
    std::vector<char> used(scenario_.workloads.size(), 0);
    for (const CondensationPlan::Key& k : plan.keys) used[k.workload] = 1;
    std::size_t n_used = 0;
    for (char u : used) n_used += std::size_t(u);
    progress.begin_phase("workloads", n_used);
    std::vector<std::future<void>> futs;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      if (!used[w]) continue;
      futs.push_back(pool.submit([this, w, &workloads, &progress] {
        workloads[w] = std::make_unique<Workload>(scenario_.workloads[w]);
        progress.tick();
      }));
    }
    wait_all(futs);
    progress.finish();
  }
  phase_times_.workload_build = now_s() - t0;

  // Phase 2: build each distinct workload × σ × cache-profile condensation
  // exactly once — the same invariant the serial path's rolling cache
  // enforces, here made explicit by the plan. The dags then fan out below
  // as shared immutable inputs.
  t0 = now_s();
  {
    progress.begin_phase("condensations", plan.keys.size());
    std::vector<std::future<void>> futs;
    futs.reserve(plan.keys.size());
    for (std::size_t k = 0; k < plan.keys.size(); ++k) {
      futs.push_back(
          pool.submit([this, k, &plan, &workloads, &dags, &progress] {
            const CondensationPlan::Key& key = plan.keys[k];
            dags[k] = std::make_unique<CondensedDag>(
                workloads[key.workload]->graph(), key.sizes,
                scenario_.sigmas[key.sigma]);
            progress.tick();
          }));
    }
    wait_all(futs);
    progress.finish();
  }
  phase_times_.condensation = now_s() - t0;

  // Phase 3: execute the grid in contiguous chunks, a few per worker — a
  // chunk's cells cycle through ONE SimCore (reset() per cell), so all
  // per-run arenas and the (condensation, machine)-keyed duration table
  // amortize over the chunk instead of being rebuilt per cell. Expansion
  // order keeps cells that share a condensation contiguous, so chunk
  // boundaries, not cells, are where the core rebinds to a new dag. Each
  // cell writes only its own padded slot; the merged vector is in
  // expand_grid order and emitter output is byte-identical to the serial
  // runner's at any --jobs value.
  t0 = now_s();
  progress.begin_phase("cells", grid.size());
  parallel_for_chunks(
      pool, grid.size(), 4 * jobs,
      [this, &grid, &plan, &machines, &dags, &results,
       &progress](std::size_t b, std::size_t e) {
        std::unique_ptr<SimCore> core;
        for (std::size_t i = b; i < e; ++i) {
          const GridPoint& g = grid[i];
          // Cell 0 (one cell, one worker) carries the scenario's trace
          // sink; the sink needs no locking because no other cell emits.
          results[i].pt =
              run_cell(scenario_, g, machines[g.machine],
                       *dags[plan.cell[i]], core,
                       i == 0 ? scenario_.trace_sink : nullptr);
          progress.tick();
        }
      });
  progress.finish();
  phase_times_.cell_execution = now_s() - t0;

  results_.reserve(results.size());
  for (ResultSlot& s : results) results_.push_back(std::move(s.pt));
  // Reported only now: a throw in any phase above leaves the count at the
  // zero run() started from, never at plan size with no results behind it.
  condensations_ = plan.keys.size();
  worker_stats_ = pool.worker_stats();
}

}  // namespace ndf::exp
