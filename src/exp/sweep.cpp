#include "exp/sweep.hpp"

#include <memory>
#include <utility>

#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"

namespace ndf::exp {

const std::vector<RunPoint>& Sweep::run() {
  if (ran_) return results_;
  // A retry after a mid-grid throw starts from scratch, not from the
  // partial results the failed attempt accumulated.
  results_.clear();
  condensations_ = 0;
  validate(scenario_);

  std::vector<Pmh> machines;
  machines.reserve(scenario_.machines.size());
  for (const std::string& spec : scenario_.machines)
    machines.push_back(make_pmh(spec));

  results_.reserve(grid_size(scenario_));
  const std::vector<GridPoint> grid = expand_grid(scenario_);

  // Condensation cache for the current (workload, σ): one entry per
  // distinct cache-size profile among the machines. The grid is expanded
  // workload-major then σ, so the cache resets exactly when the key
  // changes and never holds more than one workload's dags.
  std::unique_ptr<Workload> workload;
  std::size_t cur_w = std::size_t(-1), cur_s = std::size_t(-1);
  std::vector<std::pair<std::vector<double>, std::unique_ptr<CondensedDag>>>
      dags;

  for (const GridPoint& g : grid) {
    if (g.workload != cur_w) {
      // Drop the cached dags BEFORE the workload they point into dies.
      dags.clear();
      workload = std::make_unique<Workload>(scenario_.workloads[g.workload]);
      cur_w = g.workload;
      cur_s = std::size_t(-1);
    }
    if (g.sigma != cur_s) {
      dags.clear();
      cur_s = g.sigma;
    }
    const Pmh& m = machines[g.machine];
    std::vector<double> sizes = level_cache_sizes(m);
    const CondensedDag* dag = nullptr;
    for (const auto& [key, d] : dags)
      if (key == sizes) {
        dag = d.get();
        break;
      }
    if (!dag) {
      dags.emplace_back(sizes,
                        std::make_unique<CondensedDag>(
                            workload->graph(), sizes,
                            scenario_.sigmas[g.sigma]));
      dag = dags.back().second.get();
      ++condensations_;
    }

    const SchedOptions opts = point_options(scenario_, g);
    const auto policy = make_scheduler(scenario_.policies[g.policy], opts);
    SimCore core(*dag, m, opts);

    RunPoint pt;
    pt.workload = scenario_.workloads[g.workload];
    pt.machine = scenario_.machines[g.machine];
    pt.machine_desc = m.to_string();
    pt.policy = scenario_.policies[g.policy];
    pt.sigma = opts.sigma;
    pt.alpha_prime = opts.alpha_prime;
    pt.repeat = g.repeat;
    pt.seed = opts.seed;
    pt.stats = core.run(*policy);
    results_.push_back(std::move(pt));
  }
  // Only a completed grid counts as run: a throw above (bad scenario, bad
  // machine spec) must not poison this object into returning a partial or
  // empty result set as if the sweep succeeded.
  ran_ = true;
  return results_;
}

}  // namespace ndf::exp
