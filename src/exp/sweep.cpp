#include "exp/sweep.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"
#include "support/thread_pool.hpp"

namespace ndf::exp {

namespace {

/// Coordinates + stats for one executed cell — identical fields on both
/// execution paths so they cannot drift apart.
RunPoint make_run_point(const Scenario& s, const GridPoint& g, const Pmh& m,
                        const SchedOptions& opts) {
  RunPoint pt;
  pt.workload = s.workloads[g.workload];
  pt.machine = s.machines[g.machine];
  pt.machine_desc = m.to_string();
  pt.policy = s.policies[g.policy];
  pt.sigma = opts.sigma;
  pt.alpha_prime = opts.alpha_prime;
  pt.repeat = g.repeat;
  pt.seed = opts.seed;
  return pt;
}

}  // namespace

const std::vector<RunPoint>& Sweep::run() {
  if (ran_) return results_;
  // A retry after a mid-grid throw starts from scratch, not from the
  // partial results the failed attempt accumulated.
  results_.clear();
  condensations_ = 0;
  validate(scenario_);

  std::vector<Pmh> machines;
  machines.reserve(scenario_.machines.size());
  for (const std::string& spec : scenario_.machines)
    machines.push_back(make_pmh(spec));

  const std::vector<GridPoint> grid = expand_grid(scenario_);
  const std::size_t jobs =
      std::min(jobs_ == 0 ? ThreadPool::default_jobs() : jobs_,
               std::max<std::size_t>(grid.size(), 1));
  if (jobs <= 1)
    run_serial(machines, grid);
  else
    run_parallel(jobs, machines, grid);

  // Only a completed grid counts as run: a throw above (bad scenario, bad
  // machine spec, a failure inside a worker) must not poison this object
  // into returning a partial or empty result set as if the sweep succeeded.
  ran_ = true;
  return results_;
}

void Sweep::run_serial(const std::vector<Pmh>& machines,
                       const std::vector<GridPoint>& grid) {
  results_.reserve(grid.size());

  // Condensation cache for the current (workload, σ): one entry per
  // distinct cache-size profile among the machines. The grid is expanded
  // workload-major then σ, so the cache resets exactly when the key
  // changes and never holds more than one workload's dags.
  std::unique_ptr<Workload> workload;
  std::size_t cur_w = std::size_t(-1), cur_s = std::size_t(-1);
  std::vector<std::pair<std::vector<double>, std::unique_ptr<CondensedDag>>>
      dags;

  for (const GridPoint& g : grid) {
    if (g.workload != cur_w) {
      // Drop the cached dags BEFORE the workload they point into dies.
      dags.clear();
      workload = std::make_unique<Workload>(scenario_.workloads[g.workload]);
      cur_w = g.workload;
      cur_s = std::size_t(-1);
    }
    if (g.sigma != cur_s) {
      dags.clear();
      cur_s = g.sigma;
    }
    const Pmh& m = machines[g.machine];
    std::vector<double> sizes = level_cache_sizes(m);
    const CondensedDag* dag = nullptr;
    for (const auto& [key, d] : dags)
      if (key == sizes) {
        dag = d.get();
        break;
      }
    if (!dag) {
      dags.emplace_back(sizes,
                        std::make_unique<CondensedDag>(
                            workload->graph(), sizes,
                            scenario_.sigmas[g.sigma]));
      dag = dags.back().second.get();
      ++condensations_;
    }

    const SchedOptions opts = point_options(scenario_, g);
    const auto policy = make_scheduler(scenario_.policies[g.policy], opts);
    SimCore core(*dag, m, opts);

    RunPoint pt = make_run_point(scenario_, g, m, opts);
    pt.stats = core.run(*policy);
    results_.push_back(std::move(pt));
  }
}

void Sweep::run_parallel(std::size_t jobs, const std::vector<Pmh>& machines,
                         const std::vector<GridPoint>& grid) {
  const CondensationPlan plan = plan_condensations(scenario_, grid, machines);

  // Shared immutable inputs of the fan-out. Built into slots pre-sized in
  // deterministic plan order; each slot is written by exactly one task.
  std::vector<std::unique_ptr<Workload>> workloads(scenario_.workloads.size());
  std::vector<std::unique_ptr<CondensedDag>> dags(plan.keys.size());
  std::vector<RunPoint> results(grid.size());

  // Declared after everything the tasks touch: if a phase throws, the
  // pool's destructor drains and joins before any of the data above is
  // torn down.
  ThreadPool pool(jobs);

  // Phase 1: build each workload the grid references exactly once
  // (elaboration is expensive; distinct workloads are independent).
  {
    std::vector<char> used(scenario_.workloads.size(), 0);
    for (const CondensationPlan::Key& k : plan.keys) used[k.workload] = 1;
    std::vector<std::future<void>> futs;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      if (!used[w]) continue;
      futs.push_back(pool.submit([this, w, &workloads] {
        workloads[w] = std::make_unique<Workload>(scenario_.workloads[w]);
      }));
    }
    wait_all(futs);
  }

  // Phase 2: build each distinct workload × σ × cache-profile condensation
  // exactly once — the same invariant the serial path's rolling cache
  // enforces, here made explicit by the plan. The dags then fan out below
  // as shared immutable inputs.
  {
    std::vector<std::future<void>> futs;
    futs.reserve(plan.keys.size());
    for (std::size_t k = 0; k < plan.keys.size(); ++k) {
      futs.push_back(pool.submit([this, k, &plan, &workloads, &dags] {
        const CondensationPlan::Key& key = plan.keys[k];
        dags[k] = std::make_unique<CondensedDag>(
            workloads[key.workload]->graph(), key.sizes,
            scenario_.sigmas[key.sigma]);
      }));
    }
    wait_all(futs);
  }
  condensations_ = plan.keys.size();

  // Phase 3: execute every grid cell. All mutable state (SimCore, policy,
  // stats) is worker-local; each task writes only its own grid slot, so
  // the merged vector is in expand_grid order and emitter output is
  // byte-identical to the serial runner's.
  {
    std::vector<std::future<void>> futs;
    futs.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      futs.push_back(
          pool.submit([this, i, &grid, &plan, &machines, &dags, &results] {
            const GridPoint& g = grid[i];
            const Pmh& m = machines[g.machine];
            const SchedOptions opts = point_options(scenario_, g);
            const auto policy =
                make_scheduler(scenario_.policies[g.policy], opts);
            SimCore core(*dags[plan.cell[i]], m, opts);
            RunPoint pt = make_run_point(scenario_, g, m, opts);
            pt.stats = core.run(*policy);
            results[i] = std::move(pt);
          }));
    }
    wait_all(futs);
  }

  results_ = std::move(results);
}

}  // namespace ndf::exp
