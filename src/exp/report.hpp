// Consolidated sweep emitters: one stdout table, one JSON document, one
// CSV — regardless of how many axes the scenario swept. The JSON is the
// machine-readable trajectory artifact CI validates and uploads
// (`ndf_sweep --smoke --json=...`); the CSV is the flat form for
// spreadsheet/pandas post-processing.
#pragma once

#include <iosfwd>

#include "exp/scenario.hpp"
#include "support/table.hpp"

namespace ndf::exp {

/// Flat results table: one row per run point, miss columns padded to the
/// deepest machine in the result set. Sweeps that simulated occupancy
/// (Scenario::measure_misses) additionally get `comm_cost` and `Q_L<i>`
/// measured-miss columns; without measurement the table is unchanged.
Table results_table(const std::string& title,
                    const std::vector<RunPoint>& runs);

/// {"sweep": <name>, "runs": [{workload, machine, policy, sigma, ...,
/// stats: {...}}, ...]} with round-trippable doubles. Measured runs carry
/// "comm_cost" and "measured_misses" in their stats object; unmeasured
/// runs emit the legacy document byte for byte (docs/metrics.md maps
/// every key to its paper quantity).
void write_sweep_json(std::ostream& os, const std::string& name,
                      const std::vector<RunPoint>& runs);

/// One header row + one row per run point; misses padded like the table,
/// with `comm_cost`/`q_l<i>` columns appended exactly when measured.
void write_sweep_csv(std::ostream& os, const std::vector<RunPoint>& runs);

// Shared emitter plumbing, reused by the service-mode emitters
// (src/serve/report.cpp) so every JSON/CSV artifact escapes and formats
// identically.
namespace detail {

/// Escapes quotes, backslashes and control characters for a JSON string.
std::string json_escape(const std::string& s);

/// Writes a round-trippable double; non-finite values become null (JSON
/// has no inf/nan).
void write_number(std::ostream& os, double d);

/// RFC-4180 quoting — specs contain commas ("flat:p=8,m1=192").
std::string csv_field(const std::string& s);

}  // namespace detail

}  // namespace ndf::exp
