// Declarative sweep description: the full experiment grid
//
//   workloads × sigmas × machines × cache models × alpha' × policies ×
//   repeats
//
// and its deterministic expansion order. The order is chosen so that
// everything sharing one condensation (a workload at a σ, across machines
// with the same cache-size profile, all cache models, all policies, all
// repeats) is contiguous — the Sweep runner walks the expansion linearly
// and builds each CondensedDag exactly once. Cache models are deliberately
// *absent* from the condensation dedup key: a condensation depends only on
// the cache-size profile, so sweeping replacement policies multiplies the
// grid without multiplying the dags.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/workload.hpp"
#include "sched/sim_core.hpp"

namespace ndf {
class Pmh;
}

namespace ndf::exp {

struct Scenario {
  std::string name = "sweep";
  std::vector<WorkloadSpec> workloads;
  std::vector<std::string> machines;  ///< pmh specs (pmh/presets.hpp)
  std::vector<std::string> policies;  ///< registry names (sched/registry.hpp)
  std::vector<double> sigmas{1.0 / 3.0};
  std::vector<double> alpha_primes{1.0};
  std::size_t repeats = 1;        ///< seed axis: seeds base_seed..+repeats-1
  std::uint64_t base_seed = 42;   ///< seed of repeat 0
  bool charge_misses = true;
  /// Simulate cache occupancy in every run and report measured Q_i /
  /// comm_cost (extra columns in every emitter). Off by default: legacy
  /// sweep output stays byte-identical unless asked for (`--misses`).
  bool measure_misses = false;
  /// Cache-model axis for the measured occupancy (`--cache=` specs,
  /// pmh/cache_model.hpp). Defaults to the single ideal LRU model, which
  /// keeps grid size, expansion order and emitter output byte-identical
  /// to a scenario without the axis. Only meaningful with measure_misses.
  std::vector<CacheModelSpec> cache_models{CacheModelSpec{}};
  double steal_cost = 0.0;
  /// Structured tracing (`--trace-out`): the sink attached to grid cell 0
  /// — and only cell 0; a grid-wide trace would interleave cells — on both
  /// execution paths. Observational only: results and emitter output stay
  /// byte-identical (CI-gated). Not owned.
  obs::TraceSink* trace_sink = nullptr;
  /// `--progress`: stderr heartbeat (phase, cells done/total, ETA) while
  /// the sweep runs. stdout emitters are unaffected.
  bool progress = false;
};

/// One grid point, as indices into the scenario's axes (repeat is the
/// 0-based repeat number).
struct GridPoint {
  std::size_t workload = 0;
  std::size_t sigma = 0;
  std::size_t machine = 0;
  std::size_t cache = 0;  ///< index into scenario.cache_models
  std::size_t alpha = 0;
  std::size_t policy = 0;
  std::size_t repeat = 0;
};

/// |workloads| · |sigmas| · |machines| · |cache_models| · |alpha_primes| ·
/// |policies| · repeats.
std::size_t grid_size(const Scenario& s);

/// Expands the grid in condensation-friendly order: workload-major, then
/// sigma, machine, cache model, alpha', policy, repeat (innermost).
std::vector<GridPoint> expand_grid(const Scenario& s);

/// Checks every axis is non-empty, every policy name is registered, and
/// every cache model names a registered replacement policy. (Workload and
/// machine specs are validated by their parsers when the scenario is built
/// from strings.) Throws CheckError otherwise.
void validate(const Scenario& s);

/// Scheduler options for one grid point.
SchedOptions point_options(const Scenario& s, const GridPoint& g);

/// The condensations a grid needs, computed up front: one key per distinct
/// workload × σ × cache-size profile (in first-use grid order — the same
/// set the serial runner's rolling cache builds lazily), plus each grid
/// cell's index into them. The parallel sweep engine builds `keys` once,
/// concurrently, then fans the cells out against the shared immutable dags;
/// `keys.size()` is the build count both runners must agree on.
struct CondensationPlan {
  struct Key {
    std::size_t workload = 0;         ///< index into scenario.workloads
    std::size_t sigma = 0;            ///< index into scenario.sigmas
    std::vector<double> sizes;        ///< level_cache_sizes of the machine
  };
  std::vector<Key> keys;
  std::vector<std::size_t> cell;      ///< cell[i] = key index of grid[i]
};

/// `machines[j]` must be the built Pmh of `s.machines[j]`; `grid` must be
/// expand_grid(s) (indices are trusted, not re-validated).
CondensationPlan plan_condensations(const Scenario& s,
                                    const std::vector<GridPoint>& grid,
                                    const std::vector<Pmh>& machines);

/// One executed grid point: the resolved coordinates plus the run's stats.
struct RunPoint {
  WorkloadSpec workload;
  std::string machine;       ///< the spec string the scenario named
  std::string machine_desc;  ///< Pmh::to_string() of the built machine
  std::string policy;
  CacheModelSpec cache;      ///< cache model the run measured under
  double sigma = 1.0 / 3.0;
  double alpha_prime = 1.0;
  std::size_t repeat = 0;
  std::uint64_t seed = 42;
  SchedStats stats;
};

}  // namespace ndf::exp
