// Named workload registry and spec parser for the sweep subsystem: every
// algorithm builder from src/algos/ is addressable by string, the way
// policies and machines are. A spec is
//
//   <algo>[:n=<size>[,base=<base>][,np]]      e.g. "mm:n=64", "trs:n=48,np"
//
// or a synthetic one from the generator subsystem (src/gen/):
//
//   gen:family=<f>[,key=value...][,np]        e.g. "gen:family=sp,depth=8,
//                                                   fan=4,seed=7"
//
// `np` selects the nested-parallel elaboration (the paper's comparison
// baseline) instead of the nested-dataflow one. Unknown algos, unknown or
// inapplicable keys, and duplicate keys all fail loudly, listing what is
// accepted. Specs round-trip through WorkloadSpec::label(), which is the
// key used in sweep tables and JSON.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gen/gen.hpp"
#include "nd/drs.hpp"
#include "nd/spawn_tree.hpp"

namespace ndf::exp {

struct WorkloadSpec {
  std::string algo;      ///< registry key ("mm", ..., or "gen")
  std::size_t n = 0;     ///< problem size (0 = the algo's default)
  std::size_t base = 4;  ///< base-case size
  bool np = false;       ///< nested-parallel elaboration instead of ND

  /// Generator parameters; set exactly when algo == "gen".
  std::optional<gen::GenSpec> gen;

  /// Canonical spec string, e.g. "mm:n=64", "trs:n=48,np" or
  /// "gen:family=sp,depth=8,fan=4,seed=7" (defaults are not printed;
  /// base only when it differs from 4).
  std::string label() const;
};

struct WorkloadInfo {
  std::string name;
  std::string description;
  std::size_t default_n;
};

/// All registered workloads, sorted by name.
std::vector<WorkloadInfo> registered_workloads();

/// Parses one spec; throws CheckError on unknown algos (listing the
/// registered names) or malformed parameters. Fills the algo's default n
/// when the spec omits it.
WorkloadSpec parse_workload(const std::string& spec);

/// Parses a semicolon-separated spec list ("mm:n=64;trs:n=48,np").
/// Empty input yields an empty list.
std::vector<WorkloadSpec> parse_workload_list(const std::string& specs);

/// Builds just the spawn tree of a spec (for analysis-only consumers).
SpawnTree build_workload_tree(const WorkloadSpec& spec);

/// A built workload: the spawn tree and its elaborated strand DAG, with
/// the tree ownership the graph's internal pointer requires.
class Workload {
 public:
  explicit Workload(WorkloadSpec spec);

  const WorkloadSpec& spec() const { return spec_; }
  const SpawnTree& tree() const { return *tree_; }
  const StrandGraph& graph() const { return *graph_; }

 private:
  WorkloadSpec spec_;
  std::unique_ptr<SpawnTree> tree_;
  std::unique_ptr<StrandGraph> graph_;
};

}  // namespace ndf::exp
