#include "exp/scenario.hpp"

#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"

namespace ndf::exp {

std::size_t grid_size(const Scenario& s) {
  return s.workloads.size() * s.sigmas.size() * s.machines.size() *
         s.cache_models.size() * s.alpha_primes.size() * s.policies.size() *
         s.repeats;
}

std::vector<GridPoint> expand_grid(const Scenario& s) {
  std::vector<GridPoint> out;
  out.reserve(grid_size(s));
  for (std::size_t w = 0; w < s.workloads.size(); ++w)
    for (std::size_t g = 0; g < s.sigmas.size(); ++g)
      for (std::size_t m = 0; m < s.machines.size(); ++m)
        for (std::size_t c = 0; c < s.cache_models.size(); ++c)
          for (std::size_t a = 0; a < s.alpha_primes.size(); ++a)
            for (std::size_t p = 0; p < s.policies.size(); ++p)
              for (std::size_t r = 0; r < s.repeats; ++r)
                out.push_back({w, g, m, c, a, p, r});
  return out;
}

void validate(const Scenario& s) {
  NDF_CHECK_MSG(!s.workloads.empty(), "scenario '" << s.name
                                                   << "' has no workloads");
  NDF_CHECK_MSG(!s.machines.empty(), "scenario '" << s.name
                                                  << "' has no machines");
  NDF_CHECK_MSG(!s.policies.empty(), "scenario '" << s.name
                                                  << "' has no policies");
  NDF_CHECK_MSG(!s.sigmas.empty(), "scenario '" << s.name
                                                << "' has no sigma values");
  NDF_CHECK_MSG(!s.alpha_primes.empty(),
                "scenario '" << s.name << "' has no alpha' values");
  NDF_CHECK_MSG(s.repeats >= 1, "scenario '" << s.name
                                             << "' needs repeats >= 1");
  for (const std::string& p : s.policies)
    NDF_CHECK_MSG(scheduler_registered(p),
                  "scenario '" << s.name << "' names unknown policy '" << p
                               << "'");
  NDF_CHECK_MSG(!s.cache_models.empty(),
                "scenario '" << s.name << "' has no cache models");
  for (const CacheModelSpec& cm : s.cache_models)
    NDF_CHECK_MSG(cache_repl_registered(cm.repl),
                  "scenario '" << s.name
                               << "' names unknown cache replacement policy '"
                               << cm.repl << "' (in '" << cm.label() << "')");
  // Machine specs fail here, at validation time, with the parser's message
  // (unknown preset/family/key) rather than mid-construction.
  for (const std::string& spec : s.machines) (void)parse_pmh(spec);
  for (double sigma : s.sigmas)
    NDF_CHECK_MSG(sigma > 0.0 && sigma < 1.0,
                  "scenario '" << s.name << "' has sigma " << sigma
                               << " outside (0, 1)");
  // α' = min{αmax, 1} with αmax in (0, 1): outside (0, 1] the allocation
  // g(S) = f·(3S/M)^α' degenerates (α'=0 pins it, α'<0 explodes).
  for (double a : s.alpha_primes)
    NDF_CHECK_MSG(a > 0.0 && a <= 1.0, "scenario '" << s.name
                                                    << "' has alpha' " << a
                                                    << " outside (0, 1]");
}

CondensationPlan plan_condensations(const Scenario& s,
                                    const std::vector<GridPoint>& grid,
                                    const std::vector<Pmh>& machines) {
  NDF_CHECK_MSG(machines.size() == s.machines.size(),
                "plan_condensations: machines were not built from the "
                "scenario's machine list");
  // Dedupe machine cache profiles to small integer ids once, so the walk
  // over the grid below compares integers, not vector<double>s.
  std::vector<std::vector<double>> profiles;
  std::vector<std::size_t> machine_profile(machines.size());
  for (std::size_t m = 0; m < machines.size(); ++m) {
    std::vector<double> sizes = level_cache_sizes(machines[m]);
    std::size_t p = 0;
    while (p < profiles.size() && profiles[p] != sizes) ++p;
    if (p == profiles.size()) profiles.push_back(std::move(sizes));
    machine_profile[m] = p;
  }

  // Dense (workload, σ, profile) → key-index memo: one O(1) lookup per
  // cell keeps planning linear in the grid even when repeats/α'/policies
  // multiply the cell count far past the key count.
  constexpr std::size_t kNone = std::size_t(-1);
  const std::size_t S = s.sigmas.size(), P = profiles.size();
  std::vector<std::size_t> memo(s.workloads.size() * S * P, kNone);

  CondensationPlan plan;
  plan.cell.reserve(grid.size());
  for (const GridPoint& g : grid) {
    const std::size_t p = machine_profile[g.machine];
    std::size_t& k = memo[(g.workload * S + g.sigma) * P + p];
    if (k == kNone) {
      k = plan.keys.size();
      plan.keys.push_back({g.workload, g.sigma, profiles[p]});
    }
    plan.cell.push_back(k);
  }
  return plan;
}

SchedOptions point_options(const Scenario& s, const GridPoint& g) {
  SchedOptions o;
  o.sigma = s.sigmas[g.sigma];
  o.alpha_prime = s.alpha_primes[g.alpha];
  o.charge_misses = s.charge_misses;
  o.measure_misses = s.measure_misses;
  o.cache_model = s.cache_models[g.cache];
  o.steal_cost = s.steal_cost;
  o.seed = s.base_seed + g.repeat;
  return o;
}

}  // namespace ndf::exp
