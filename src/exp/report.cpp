#include "exp/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <ostream>

namespace ndf::exp {

namespace {

std::size_t max_levels(const std::vector<RunPoint>& runs) {
  std::size_t L = 0;
  for (const RunPoint& r : runs) L = std::max(L, r.stats.misses.size());
  return L;
}

/// Deepest measured-miss vector in the result set: 0 when nothing in the
/// sweep simulated occupancy, in which case no measured column is emitted
/// anywhere and the output is byte-identical to the pre-measurement
/// emitters (the `--misses`-off compatibility guarantee).
std::size_t max_measured_levels(const std::vector<RunPoint>& runs) {
  std::size_t L = 0;
  for (const RunPoint& r : runs)
    L = std::max(L, r.stats.measured_misses.size());
  return L;
}

/// Whether any run measured under a non-default cache model. Gate for the
/// `cache` column/key: an all-default sweep (including every legacy sweep,
/// with or without --misses) emits byte-identical output to the
/// pre-registry emitters.
bool any_cache_model(const std::vector<RunPoint>& runs) {
  for (const RunPoint& r : runs)
    if (!r.cache.is_default()) return true;
  return false;
}

/// Deepest write-back vector (non-empty only for wb > 0 models), gating the
/// write-back columns the same way measured_misses gates the Q columns.
std::size_t max_writeback_levels(const std::vector<RunPoint>& runs) {
  std::size_t L = 0;
  for (const RunPoint& r : runs)
    L = std::max(L, r.stats.measured_writebacks.size());
  return L;
}

}  // namespace

namespace detail {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_number(std::ostream& os, double d) {
  if (std::isfinite(d))
    os << d;
  else
    os << "null";  // JSON has no inf/nan
}

/// RFC-4180 quoting — machine specs contain commas ("flat:p=8,m1=192").
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace detail

namespace {
using detail::csv_field;
using detail::json_escape;
using detail::write_number;
}  // namespace

Table results_table(const std::string& title,
                    const std::vector<RunPoint>& runs) {
  const std::size_t L = max_levels(runs);
  const std::size_t Q = max_measured_levels(runs);
  const bool C = any_cache_model(runs);
  const std::size_t W = max_writeback_levels(runs);
  Table t(title);
  std::vector<std::string> header{"workload", "machine", "policy", "sigma",
                                  "alpha'",   "rep",     "makespan",
                                  "miss_cost", "util"};
  if (C) header.insert(header.begin() + 3, "cache");
  for (std::size_t l = 1; l <= L; ++l)
    header.push_back("misses_L" + std::to_string(l));
  header.push_back("anchors");
  header.push_back("steals");
  // Measured-occupancy columns, only when the sweep measured anything
  // (docs/metrics.md maps them to the paper's Q_i and communication cost).
  if (Q > 0) {
    header.push_back("comm_cost");
    for (std::size_t l = 1; l <= Q; ++l)
      header.push_back("Q_L" + std::to_string(l));
  }
  // Write-back columns, only when some model billed eviction traffic.
  for (std::size_t l = 1; l <= W; ++l)
    header.push_back("WB_L" + std::to_string(l));
  t.set_header(std::move(header));
  for (const RunPoint& r : runs) {
    std::vector<Cell> row;
    row.reserve(12 + L + (Q > 0 ? Q + 1 : 0) + W);
    row.push_back(r.workload.label());
    row.push_back(r.machine);
    row.push_back(r.policy);
    if (C) row.push_back(r.cache.label());
    row.push_back(r.sigma);
    row.push_back(r.alpha_prime);
    row.push_back((long long)r.repeat);
    row.push_back(r.stats.makespan);
    row.push_back(r.stats.miss_cost);
    row.push_back(r.stats.utilization);
    for (std::size_t l = 0; l < L; ++l)
      if (l < r.stats.misses.size())
        row.push_back(r.stats.misses[l]);
      else
        row.push_back(std::string("-"));
    row.push_back((long long)r.stats.anchors);
    row.push_back((long long)r.stats.steals);
    if (Q > 0) {
      if (r.stats.measured_misses.empty())
        row.push_back(std::string("-"));
      else
        row.push_back(r.stats.comm_cost);
      for (std::size_t l = 0; l < Q; ++l)
        if (l < r.stats.measured_misses.size())
          row.push_back(r.stats.measured_misses[l]);
        else
          row.push_back(std::string("-"));
    }
    for (std::size_t l = 0; l < W; ++l)
      if (l < r.stats.measured_writebacks.size())
        row.push_back(r.stats.measured_writebacks[l]);
      else
        row.push_back(std::string("-"));
    t.add_row(std::move(row));
  }
  return t;
}

void write_sweep_json(std::ostream& os, const std::string& name,
                      const std::vector<RunPoint>& runs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"sweep\": \"" << json_escape(name) << "\",\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunPoint& r = runs[i];
    os << (i ? ",\n" : "\n") << "    {\"workload\": \""
       << json_escape(r.workload.label()) << "\", \"algo\": \""
       << json_escape(r.workload.algo) << "\", \"n\": " << r.workload.n
       << ", \"base\": " << r.workload.base
       << ", \"np\": " << (r.workload.np ? "true" : "false")
       << ", \"machine\": \"" << json_escape(r.machine)
       << "\", \"machine_desc\": \"" << json_escape(r.machine_desc)
       << "\", \"policy\": \"" << json_escape(r.policy) << "\"";
    // Cache-model key only for non-default models: all-default documents
    // (every legacy sweep) stay byte-identical.
    if (!r.cache.is_default())
      os << ", \"cache\": \"" << json_escape(r.cache.label()) << "\"";
    os << ", \"sigma\": ";
    write_number(os, r.sigma);
    os << ", \"alpha_prime\": ";
    write_number(os, r.alpha_prime);
    os << ", \"repeat\": " << r.repeat << ", \"seed\": " << r.seed
       << ", \"stats\": {\"makespan\": ";
    write_number(os, r.stats.makespan);
    os << ", \"total_work\": ";
    write_number(os, r.stats.total_work);
    os << ", \"miss_cost\": ";
    write_number(os, r.stats.miss_cost);
    os << ", \"utilization\": ";
    write_number(os, r.stats.utilization);
    os << ", \"atomic_units\": " << r.stats.atomic_units
       << ", \"anchors\": " << r.stats.anchors
       << ", \"steals\": " << r.stats.steals << ", \"misses\": [";
    for (std::size_t l = 0; l < r.stats.misses.size(); ++l) {
      if (l) os << ", ";
      write_number(os, r.stats.misses[l]);
    }
    os << "]";
    // Measured occupancy, only for runs that simulated it — a sweep
    // without --misses emits exactly the legacy document.
    if (!r.stats.measured_misses.empty()) {
      os << ", \"comm_cost\": ";
      write_number(os, r.stats.comm_cost);
      os << ", \"measured_misses\": [";
      for (std::size_t l = 0; l < r.stats.measured_misses.size(); ++l) {
        if (l) os << ", ";
        write_number(os, r.stats.measured_misses[l]);
      }
      os << "]";
      // Write-back / contention keys only when the model billed them —
      // default-model documents keep the legacy shape.
      if (!r.stats.measured_writebacks.empty()) {
        os << ", \"measured_writebacks\": [";
        for (std::size_t l = 0; l < r.stats.measured_writebacks.size(); ++l) {
          if (l) os << ", ";
          write_number(os, r.stats.measured_writebacks[l]);
        }
        os << "]";
      }
      if (r.cache.bw > 0.0) {
        os << ", \"contention_cost\": ";
        write_number(os, r.stats.contention_cost);
      }
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

void write_sweep_csv(std::ostream& os, const std::vector<RunPoint>& runs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  const std::size_t L = max_levels(runs);
  const std::size_t Q = max_measured_levels(runs);
  const bool C = any_cache_model(runs);
  const std::size_t W = max_writeback_levels(runs);
  os << "workload,algo,n,base,np,machine,policy,";
  if (C) os << "cache,";
  os << "sigma,alpha_prime,repeat,"
        "seed,makespan,total_work,miss_cost,utilization,atomic_units,"
        "anchors,steals";
  for (std::size_t l = 1; l <= L; ++l) os << ",misses_l" << l;
  if (Q > 0) {
    os << ",comm_cost";
    for (std::size_t l = 1; l <= Q; ++l) os << ",q_l" << l;
  }
  for (std::size_t l = 1; l <= W; ++l) os << ",wb_l" << l;
  os << "\n";
  for (const RunPoint& r : runs) {
    os << csv_field(r.workload.label()) << ',' << r.workload.algo << ','
       << r.workload.n << ',' << r.workload.base << ','
       << (r.workload.np ? 1 : 0) << ',' << csv_field(r.machine) << ','
       << r.policy << ',';
    if (C) os << csv_field(r.cache.label()) << ',';
    os << r.sigma << ','
       << r.alpha_prime << ',' << r.repeat << ',' << r.seed << ','
       << r.stats.makespan << ',' << r.stats.total_work << ','
       << r.stats.miss_cost << ',' << r.stats.utilization << ','
       << r.stats.atomic_units << ',' << r.stats.anchors << ','
       << r.stats.steals;
    for (std::size_t l = 0; l < L; ++l) {
      os << ',';
      if (l < r.stats.misses.size()) os << r.stats.misses[l];
    }
    if (Q > 0) {
      os << ',';
      if (!r.stats.measured_misses.empty()) os << r.stats.comm_cost;
      for (std::size_t l = 0; l < Q; ++l) {
        os << ',';
        if (l < r.stats.measured_misses.size())
          os << r.stats.measured_misses[l];
      }
    }
    for (std::size_t l = 0; l < W; ++l) {
      os << ',';
      if (l < r.stats.measured_writebacks.size())
        os << r.stats.measured_writebacks[l];
    }
    os << "\n";
  }
}

}  // namespace ndf::exp
