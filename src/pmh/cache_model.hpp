// String-keyed cache-model registry: the pluggable half of the simulated
// occupancy layer (pmh/occupancy.hpp). A cache *model* is a replacement
// policy — registered under a short name ("lru", "fifo", "clock", "aging"),
// mirroring the scheduler registry in sched/registry.hpp — plus orthogonal
// parameters that bend the hierarchy away from the paper's ideal:
//
//   repl=<name>   replacement policy (registry below); default lru
//   assoc=<A>     set associativity: each cache splits into capacity/(A·line)
//                 sets of A·line words, footprints map to sets by key, and
//                 eviction is per-set. 0 (default) = fully associative.
//   line=<W>      allocation granularity in words: footprints occupy (and
//                 miss) in multiples of W. 0 (default) = exact footprints.
//                 assoc > 0 without an explicit line uses line=64.
//   excl=<0|1>    exclusive level semantics: a unit whose level-l footprint
//                 hits in an inner cache is served entirely from there, so
//                 outer levels see neither traffic nor a recency update
//                 (data is not duplicated outward). Default 0 = inclusive,
//                 every level is touched independently (the paper's model).
//   wb=<x>        write-back cost: evicting a *resident* (dirty-assumed)
//                 footprint charges x extra traffic words per footprint
//                 word at that level. Default 0 = silent eviction.
//   bw=<x>        shared-bandwidth contention: each word missed while k
//                 other processors under the same cache are busy costs x·k
//                 extra traffic words. Default 0 = infinite bandwidth.
//
// Specs are parsed with the same verbatim-rejection discipline as machine
// and gen: specs — every error names the full offending spec string. The
// default spec (plain "lru") makes the occupancy layer byte-identical to
// the pre-registry whole-capacity LRU, which the CI perf gate enforces.
//
// Pinning: the space-bounded policy's correctness argument needs pinned
// reservations honored (a pinned footprint is never evicted). Every builtin
// policy honors them — its victim scan skips pinned entries. A registered
// policy that cannot honor reservations must say so via honors_pinning();
// the occupancy layer then refuses pin() loudly instead of silently
// breaking Theorem 1 runs (see docs/cache-models.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace ndf {

/// A parsed cache: spec — replacement policy name plus the orthogonal
/// model parameters. The default-constructed spec is the paper's ideal
/// model (whole-capacity fully-associative inclusive LRU, free evictions,
/// infinite bandwidth).
struct CacheModelSpec {
  std::string repl = "lru";
  std::size_t assoc = 0;  ///< ways per set; 0 = fully associative
  double line = 0.0;      ///< allocation granularity (words); 0 = exact
  bool exclusive = false; ///< inner-level hits skip outer levels
  double wb = 0.0;        ///< write-back words per evicted resident word
  double bw = 0.0;        ///< contention words per miss word per busy sharer

  bool operator==(const CacheModelSpec&) const = default;

  /// True for the paper's ideal model — the spec whose measured counters
  /// are byte-identical to the pre-registry occupancy layer, and the one
  /// the emitters stay silent about.
  bool is_default() const { return *this == CacheModelSpec{}; }

  /// Canonical round-trippable form: the bare policy name when every other
  /// parameter is default ("clock"), else "cache:repl=...,k=v" listing the
  /// non-default parameters in fixed key order. parse_cache_model(label())
  /// reproduces the spec exactly.
  std::string label() const;

  /// Effective allocation granularity: `line`, except assoc > 0 defaults
  /// it to 64 (an A-way cache needs a line to size its sets).
  double effective_line() const {
    return assoc > 0 && line == 0.0 ? 64.0 : line;
  }
};

/// One entry of a simulated cache set: a maximal-task footprint plus every
/// builtin policy's bookkeeping (one struct so sets stay a flat vector).
struct CacheEntry {
  std::int64_t task = -1;
  double size = 0.0;      ///< occupied words (already line-quantized)
  bool resident = false;  ///< loaded (occupies *and* was counted)
  bool pinned = false;    ///< reserved by an anchored task: not evictable
  bool ref = false;       ///< referenced bit (clock / aging)
  std::uint64_t last_use = 0;   ///< recency clock at last touch (lru)
  std::uint64_t loaded_at = 0;  ///< recency clock at insertion (fifo)
  std::uint64_t age = 0;        ///< aging shift register
};

/// Replacement-policy strategy. Stateless across calls — per-set state
/// (the clock hand) and per-entry state (CacheEntry fields) are owned by
/// the occupancy layer, so one policy instance serves every cache.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual const char* name() const = 0;

  /// `e` was referenced at recency clock `now`: a hit, the load that
  /// installed it, or a pin reservation.
  virtual void touched(CacheEntry& e, std::uint64_t now) = 0;

  /// Picks the eviction victim among `entries` (pinned entries are never
  /// eligible); `hand` is the set's persistent clock-hand position, which
  /// the policy may advance. Returns entries.size() when only pinned
  /// entries remain. Must be deterministic: stable scan order on ties.
  virtual std::size_t victim(std::vector<CacheEntry>& entries,
                             std::size_t& hand) = 0;

  /// False for a policy that cannot keep pinned entries resident; the
  /// occupancy layer then rejects pin() with a CheckError naming the
  /// policy instead of silently violating sb's reservation semantics.
  virtual bool honors_pinning() const { return true; }
};

using CacheReplFactory = std::function<std::unique_ptr<ReplacementPolicy>()>;

struct CacheModelInfo {
  std::string name;
  std::string description;
};

/// Registers a replacement policy. Returns false (keeping the existing
/// entry) if the name is taken.
bool register_cache_repl(const std::string& name,
                         const std::string& description,
                         CacheReplFactory factory);

bool cache_repl_registered(const std::string& name);

/// All registered replacement policies, sorted by name.
std::vector<CacheModelInfo> registered_cache_repls();

/// Instantiates a registered replacement policy. Throws CheckError on
/// unknown names (the message lists what is registered).
std::unique_ptr<ReplacementPolicy> make_cache_repl(const std::string& name);

/// Parses one cache-model spec: a bare registered policy name ("clock") or
/// the parametric form "cache:repl=clock,assoc=8,line=64,wb=1". Unknown or
/// duplicate keys, non-numeric values, out-of-range values and unknown
/// policies are all rejected with the full spec named verbatim.
CacheModelSpec parse_cache_model(const std::string& spec);

/// Semicolon-separated spec list for a `--cache=` axis; duplicates (after
/// canonicalization) are dropped. Empty input yields an empty list.
std::vector<CacheModelSpec> parse_cache_model_list(const std::string& specs);

}  // namespace ndf
