// Parallel Memory Hierarchy machine model (Sec. 4, Fig. 2, after Alpern et
// al. [4,5]): a symmetric tree rooted at an infinite memory; internal nodes
// are caches, leaves are processors. Every level-i cache has size Mi, the
// same fan-out, and miss cost Ci (cost of servicing a level-i miss from
// level i+1; a fetch that must come from level j costs C'j = ΣC below j).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace ndf {

/// One cache level of the hierarchy.
struct LevelSpec {
  double size = 0.0;       ///< Mi, in words
  std::size_t fanout = 1;  ///< children per level-i cache (level i-1 nodes)
  double miss_cost = 1.0;  ///< Ci: cost of a miss in this cache, serviced by
                           ///< the next level up (cache or memory)
};

/// PMH description. levels[0] is level 1 (just above the processors);
/// levels.back() is level h-1 (just below memory); `root_fanout` is the
/// number of level-(h-1) caches attached to memory.
struct PmhConfig {
  std::vector<LevelSpec> levels;
  std::size_t root_fanout = 1;

  /// Two-level machine: p processors, each under its own size-M1 cache,
  /// below memory; a miss costs cmiss.
  static PmhConfig flat(std::size_t p, double M1, double cmiss);

  /// Three-level machine resembling a multi-socket multicore: `sockets`
  /// L2-like caches of size M2 (miss to memory costs c2), each with `cores`
  /// single-processor L1-like caches of size M1 (miss to L2 costs c1).
  static PmhConfig two_tier(std::size_t sockets, std::size_t cores, double M1,
                            double M2, double c1, double c2);
};

/// Index arithmetic over the symmetric cache tree. Cache levels are
/// numbered 1..h-1; processors sit below level 1; "level h" denotes memory.
class Pmh {
 public:
  explicit Pmh(PmhConfig cfg);

  const PmhConfig& config() const { return cfg_; }

  std::size_t num_cache_levels() const { return cfg_.levels.size(); }
  std::size_t num_processors() const { return procs_; }

  double cache_size(std::size_t level) const {
    return cfg_.levels[check_level(level)].size;
  }
  /// Ci: cost of a miss in a level-`level` cache.
  double miss_cost(std::size_t level) const {
    return cfg_.levels[check_level(level)].miss_cost;
  }
  /// Children per level-`level` cache (processors for level 1).
  std::size_t fanout(std::size_t level) const {
    return cfg_.levels[check_level(level)].fanout;
  }
  std::size_t num_caches(std::size_t level) const {
    return caches_[check_level(level)];
  }
  /// Number of processors in the subtree of one level-`level` cache.
  std::size_t procs_per_cache(std::size_t level) const {
    return procs_per_[check_level(level)];
  }
  /// Index of the level-`level` cache above processor `p`.
  std::size_t cache_above(std::size_t proc, std::size_t level) const {
    NDF_DCHECK(proc < procs_);
    return proc / procs_per_cache(level);
  }
  /// Lowest common cache level of two processors (h = memory if they share
  /// nothing below the root).
  std::size_t lca_level(std::size_t a, std::size_t b) const;

  std::string to_string() const;

 private:
  std::size_t check_level(std::size_t level) const {
    NDF_CHECK_MSG(level >= 1 && level <= cfg_.levels.size(),
                  "bad cache level " << level);
    return level - 1;
  }

  PmhConfig cfg_;
  std::size_t procs_ = 0;
  std::vector<std::size_t> caches_;     ///< caches per level
  std::vector<std::size_t> procs_per_;  ///< processors per cache, per level
};

}  // namespace ndf
