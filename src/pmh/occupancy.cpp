#include "pmh/occupancy.hpp"

#include <algorithm>

namespace ndf {

CacheOccupancy::CacheOccupancy(const Pmh& machine) {
  const std::size_t L = machine.num_cache_levels();
  caches_.resize(L);
  misses_.assign(L, 0.0);
  capacity_.resize(L);
  for (std::size_t l = 1; l <= L; ++l) {
    caches_[l - 1].resize(machine.num_caches(l));
    capacity_[l - 1] = machine.cache_size(l);
  }
}

void CacheOccupancy::reset() {
  for (auto& level : caches_)
    for (Cache& c : level) {
      c.entries.clear();
      c.used = 0.0;
    }
  std::fill(misses_.begin(), misses_.end(), 0.0);
  clock_ = 0;
}

CacheOccupancy::Cache& CacheOccupancy::at(std::size_t level,
                                          std::size_t cache) {
  NDF_DCHECK(level >= 1 && level <= caches_.size());
  NDF_DCHECK(cache < caches_[level - 1].size());
  return caches_[level - 1][cache];
}

CacheOccupancy::Entry* CacheOccupancy::find(Cache& c, std::int64_t task) {
  for (Entry& e : c.entries)
    if (e.task == task) return &e;
  return nullptr;
}

void CacheOccupancy::make_room(Cache& c, double capacity, double incoming) {
  while (c.used + incoming > capacity) {
    // Oldest unpinned entry; stable scan order keeps ties deterministic
    // (last_use values are unique anyway — the clock bumps per touch).
    std::size_t victim = c.entries.size();
    for (std::size_t i = 0; i < c.entries.size(); ++i)
      if (!c.entries[i].pinned &&
          (victim == c.entries.size() ||
           c.entries[i].last_use < c.entries[victim].last_use))
        victim = i;
    if (victim == c.entries.size()) return;  // only pinned entries left
    c.used -= c.entries[victim].size;
    c.entries.erase(c.entries.begin() + victim);
  }
}

double CacheOccupancy::touch(std::size_t level, std::size_t cache,
                             std::int64_t task, double size) {
  Cache& c = at(level, cache);
  Entry* e = find(c, task);
  if (e && e->resident) {
    e->last_use = ++clock_;
    return 0.0;  // hit
  }
  if (e) {
    // Pinned reservation, first actual use: the load happens now.
    e->resident = true;
    e->last_use = ++clock_;
  } else {
    make_room(c, capacity_[level - 1], size);
    c.entries.push_back(Entry{task, size, true, false, ++clock_});
    c.used += size;
  }
  misses_[level - 1] += size;
  return size;
}

void CacheOccupancy::pin(std::size_t level, std::size_t cache, std::int64_t task,
                         double size) {
  Cache& c = at(level, cache);
  if (Entry* e = find(c, task)) {
    e->pinned = true;
    return;
  }
  // Reserve capacity now (the boundedness invariant the caller maintains
  // guarantees pinned reservations fit); count the load on first touch.
  make_room(c, capacity_[level - 1], size);
  c.entries.push_back(Entry{task, size, false, true, ++clock_});
  c.used += size;
}

void CacheOccupancy::unpin(std::size_t level, std::size_t cache,
                           std::int64_t task) {
  Cache& c = at(level, cache);
  for (std::size_t i = 0; i < c.entries.size(); ++i) {
    Entry& e = c.entries[i];
    if (e.task != task) continue;
    e.pinned = false;
    if (!e.resident) {
      // Reserved but never loaded: free the capacity, leave no stale entry.
      c.used -= e.size;
      c.entries.erase(c.entries.begin() + i);
    }
    return;
  }
}

}  // namespace ndf
