#include "pmh/occupancy.hpp"

#include <algorithm>
#include <cmath>

namespace ndf {

CacheOccupancy::CacheOccupancy(const Pmh& machine, const CacheModelSpec& model)
    : model_(model), repl_(make_cache_repl(model.repl)) {
  const std::size_t L = machine.num_cache_levels();
  caches_.resize(L);
  misses_.assign(L, 0.0);
  writebacks_.assign(L, 0.0);
  contention_.assign(L, 0.0);
  set_capacity_.resize(L);
  nsets_.resize(L);
  for (std::size_t l = 1; l <= L; ++l) {
    const double capacity = machine.cache_size(l);
    // assoc A at line W splits the cache into ⌊M/(A·W)⌋ sets of A·W words
    // each; anything that would make zero sets collapses to one set over
    // the whole capacity (== fully associative).
    std::size_t n = 1;
    if (model_.assoc > 0) {
      const double way_bytes = double(model_.assoc) * model_.effective_line();
      n = std::max<std::size_t>(1, std::size_t(capacity / way_bytes));
    }
    nsets_[l - 1] = n;
    set_capacity_[l - 1] = capacity / double(n);
    caches_[l - 1].resize(machine.num_caches(l));
    for (Cache& c : caches_[l - 1]) c.sets.resize(n);
  }
}

void CacheOccupancy::reset() {
  for (auto& level : caches_)
    for (Cache& c : level)
      for (Set& s : c.sets) {
        s.entries.clear();
        s.used = 0.0;
        s.hand = 0;
      }
  std::fill(misses_.begin(), misses_.end(), 0.0);
  std::fill(writebacks_.begin(), writebacks_.end(), 0.0);
  std::fill(contention_.begin(), contention_.end(), 0.0);
  clock_ = 0;
}

double CacheOccupancy::charged(double size) const {
  const double line = model_.effective_line();
  if (line <= 0.0) return size;
  return std::ceil(size / line) * line;
}

CacheOccupancy::Set& CacheOccupancy::set_for(std::size_t level,
                                             std::size_t cache,
                                             std::int64_t task) {
  NDF_DCHECK(level >= 1 && level <= caches_.size());
  NDF_DCHECK(cache < caches_[level - 1].size());
  Cache& c = caches_[level - 1][cache];
  const std::size_t n = nsets_[level - 1];
  // Footprint keys are non-negative (decomposition index + 2^32-aligned
  // namespace base); consecutive indices spread evenly across sets.
  return c.sets[n == 1 ? 0 : std::size_t(std::uint64_t(task) % n)];
}

CacheEntry* CacheOccupancy::find(Set& s, std::int64_t task) {
  for (CacheEntry& e : s.entries)
    if (e.task == task) return &e;
  return nullptr;
}

void CacheOccupancy::emit(obs::CacheEvent kind, std::size_t level,
                          std::size_t cache, std::int64_t task,
                          double words) const {
  if (sink_ == nullptr) return;
  double used = 0.0;
  for (const Set& s : caches_[level - 1][cache].sets) used += s.used;
  sink_->on_cache(kind, now_ != nullptr ? *now_ : 0.0,
                  std::uint32_t(level), std::uint32_t(cache), task, words,
                  used);
}

void CacheOccupancy::make_room(Set& s, std::size_t level, std::size_t cache,
                               double incoming) {
  const double capacity = set_capacity_[level - 1];
  while (s.used + incoming > capacity) {
    const std::size_t v = repl_->victim(s.entries, s.hand);
    if (v == s.entries.size()) return;  // only pinned entries left
    const CacheEntry& victim = s.entries[v];
    // Evicting loaded (dirty-assumed) data costs write-back traffic;
    // dropping a never-loaded reservation moves nothing.
    if (victim.resident) writebacks_[level - 1] += model_.wb * victim.size;
    const std::int64_t victim_task = victim.task;
    const double victim_size = victim.size;
    s.used -= victim.size;
    s.entries.erase(s.entries.begin() + v);
    // The erase shifted entries after v down one; keep the clock hand on
    // the element it pointed at (or wrap when the tail was evicted).
    if (s.hand > v) --s.hand;
    if (s.hand >= s.entries.size()) s.hand = 0;
    if (sink_ != nullptr)
      emit(obs::CacheEvent::kEvict, level, cache, victim_task, victim_size);
  }
}

double CacheOccupancy::touch(std::size_t level, std::size_t cache,
                             std::int64_t task, double size,
                             std::size_t sharers) {
  Set& s = set_for(level, cache, task);
  CacheEntry* e = find(s, task);
  if (e && e->resident) {
    repl_->touched(*e, ++clock_);
    if (sink_ != nullptr)
      emit(obs::CacheEvent::kHit, level, cache, task, e->size);
    return 0.0;  // hit
  }
  const double csize = charged(size);
  if (e) {
    // Pinned reservation, first actual use: the load happens now.
    e->resident = true;
    repl_->touched(*e, ++clock_);
  } else {
    make_room(s, level, cache, csize);
    CacheEntry fresh;
    fresh.task = task;
    fresh.size = csize;
    fresh.resident = true;
    s.entries.push_back(fresh);
    s.used += csize;
    CacheEntry& back = s.entries.back();
    back.loaded_at = ++clock_;
    repl_->touched(back, clock_);
  }
  misses_[level - 1] += csize;
  if (sharers > 0)
    contention_[level - 1] += model_.bw * double(sharers) * csize;
  if (sink_ != nullptr) emit(obs::CacheEvent::kMiss, level, cache, task, csize);
  return csize;
}

void CacheOccupancy::pin(std::size_t level, std::size_t cache,
                         std::int64_t task, double size) {
  NDF_CHECK_MSG(repl_->honors_pinning(),
                "cache model '" << model_.label()
                                << "': replacement policy '" << repl_->name()
                                << "' cannot honor pin/unpin reservations "
                                   "(required by the sb policy; pick a "
                                   "policy that honors pinning or a "
                                   "reservation-free scheduler)");
  Set& s = set_for(level, cache, task);
  if (CacheEntry* e = find(s, task)) {
    e->pinned = true;
    if (sink_ != nullptr)
      emit(obs::CacheEvent::kPin, level, cache, task, e->size);
    return;
  }
  // Reserve capacity now (the boundedness invariant the caller maintains
  // guarantees pinned reservations fit the cache; with associativity the
  // *set* may transiently overfill — see occupancy.hpp); count the load on
  // first touch.
  const double csize = charged(size);
  make_room(s, level, cache, csize);
  CacheEntry fresh;
  fresh.task = task;
  fresh.size = csize;
  fresh.pinned = true;
  s.entries.push_back(fresh);
  s.used += csize;
  CacheEntry& back = s.entries.back();
  back.loaded_at = ++clock_;
  repl_->touched(back, clock_);
  if (sink_ != nullptr) emit(obs::CacheEvent::kPin, level, cache, task, csize);
}

void CacheOccupancy::unpin(std::size_t level, std::size_t cache,
                           std::int64_t task) {
  Set& s = set_for(level, cache, task);
  for (std::size_t i = 0; i < s.entries.size(); ++i) {
    CacheEntry& e = s.entries[i];
    if (e.task != task) continue;
    e.pinned = false;
    const double esize = e.size;
    if (!e.resident) {
      // Reserved but never loaded: free the capacity, leave no stale entry.
      s.used -= e.size;
      s.entries.erase(s.entries.begin() + i);
      if (s.hand > i) --s.hand;
      if (s.hand >= s.entries.size()) s.hand = 0;
    }
    if (sink_ != nullptr)
      emit(obs::CacheEvent::kUnpin, level, cache, task, esize);
    return;
  }
}

}  // namespace ndf
