#include "pmh/presets.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace ndf {

namespace {

struct Preset {
  std::string description;
  PmhConfig config;
};

// The machines the experiment suite compares on. Sizes follow the benches:
// 3·b² words holds three b×b blocks (the MM working set at base b).
const std::map<std::string, Preset>& presets() {
  static const std::map<std::string, Preset> t = {
      {"flat8", {"8 processors, private 768-word caches, C=10",
                 PmhConfig::flat(8, 768, 10)}},
      {"flat16", {"16 processors, private 768-word caches, C=10",
                  PmhConfig::flat(16, 768, 10)}},
      {"flat64", {"64 processors, private 768-word caches, C=10",
                  PmhConfig::flat(64, 768, 10)}},
      {"deep2x4", {"2 sockets x 4 cores, 192-word L1 (C=3), 3072-word L2 "
                   "(C=30)",
                   PmhConfig::two_tier(2, 4, 192, 3072, 3, 30)}},
      {"deep4x4", {"4 sockets x 4 cores, 192-word L1 (C=3), 3072-word L2 "
                   "(C=30)",
                   PmhConfig::two_tier(4, 4, 192, 3072, 3, 30)}},
  };
  return t;
}

std::string preset_names() {
  std::string s;
  for (const auto& [name, p] : presets()) {
    if (!s.empty()) s += ", ";
    s += name;
  }
  return s;
}

/// Parses "k1=v1,k2=v2" with every key validated against `allowed` (a
/// defaults map that doubles as the schema). Every rejection names the
/// full offending spec string verbatim, not just the key — a sweep over
/// dozens of machine specs must say *which* spec was typo'd.
std::map<std::string, double> parse_params(
    const std::string& spec, const std::string& body,
    const std::map<std::string, double>& allowed) {
  std::map<std::string, double> out = allowed;
  std::string valid;
  for (const auto& [k, v] : allowed) {
    (void)v;
    if (!valid.empty()) valid += ", ";
    valid += k;
  }
  std::stringstream ss(body);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    NDF_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "bad machine parameter '" << item << "' in '" << spec
                                            << "' (want key=value)");
    const std::string key = item.substr(0, eq);
    NDF_CHECK_MSG(allowed.count(key), "unknown machine parameter '"
                                          << key << "' in '" << spec
                                          << "' (valid: " << valid << ")");
    char* end = nullptr;
    const std::string val = item.substr(eq + 1);
    out[key] = std::strtod(val.c_str(), &end);
    NDF_CHECK_MSG(end && *end == '\0' && !val.empty(),
                  "machine parameter '" << key << "' in '" << spec
                                        << "' is not a number: " << val);
  }
  return out;
}

/// Count-valued parameters (processors, sockets, cores) must be positive
/// integers: a negative double→size_t cast is UB and a fractional count
/// would truncate silently.
std::size_t as_count(const std::string& spec, const std::string& key,
                     double v) {
  // 2^30 caps the tree: beyond it the double→size_t cast risks UB and the
  // simulator could never allocate per-processor state anyway.
  NDF_CHECK_MSG(v >= 1.0 && v == std::floor(v) && v <= double(1 << 30),
                "machine parameter '" << key << "' in '" << spec
                                      << "' must be a positive integer <= 2^30"
                                         ", got "
                                      << v);
  return std::size_t(v);
}

/// Cache sizes must be positive (σM = 0 degenerates the decomposition) and
/// miss costs non-negative; reject here so a bad sweep spec fails at parse
/// time with the parameter name, not mid-grid with an invariant message.
double as_size(const std::string& spec, const std::string& key, double v) {
  NDF_CHECK_MSG(v > 0.0, "machine parameter '" << key << "' in '" << spec
                                               << "' must be > 0, got " << v);
  return v;
}

double as_cost(const std::string& spec, const std::string& key, double v) {
  NDF_CHECK_MSG(v >= 0.0, "machine parameter '"
                              << key << "' in '" << spec
                              << "' must be >= 0, got " << v);
  return v;
}

}  // namespace

std::vector<PmhPresetInfo> pmh_presets() {
  std::vector<PmhPresetInfo> out;
  for (const auto& [name, p] : presets()) out.push_back({name, p.description});
  return out;  // std::map iterates sorted by name
}

PmhConfig parse_pmh(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    const auto it = presets().find(spec);
    NDF_CHECK_MSG(it != presets().end(),
                  "unknown machine preset '"
                      << spec << "' (presets: " << preset_names()
                      << "; parametric: flat:p=,m1=,c1= or "
                         "twotier:s=,c=,m1=,m2=,c1=,c2=)");
    return it->second.config;
  }
  const std::string family = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  if (family == "flat") {
    const auto kv = parse_params(spec, body,
                                 {{"p", 8}, {"m1", 768}, {"c1", 10}});
    return PmhConfig::flat(as_count(spec, "p", kv.at("p")),
                           as_size(spec, "m1", kv.at("m1")),
                           as_cost(spec, "c1", kv.at("c1")));
  }
  if (family == "twotier") {
    const auto kv = parse_params(spec, body,
                                 {{"s", 2},
                                  {"c", 4},
                                  {"m1", 192},
                                  {"m2", 3072},
                                  {"c1", 3},
                                  {"c2", 30}});
    return PmhConfig::two_tier(as_count(spec, "s", kv.at("s")),
                               as_count(spec, "c", kv.at("c")),
                               as_size(spec, "m1", kv.at("m1")),
                               as_size(spec, "m2", kv.at("m2")),
                               as_cost(spec, "c1", kv.at("c1")),
                               as_cost(spec, "c2", kv.at("c2")));
  }
  NDF_CHECK_MSG(false, "unknown machine family '"
                           << family << "' in '" << spec
                           << "' (families: flat, twotier; presets: "
                           << preset_names() << ")");
  return {};  // unreachable
}

Pmh make_pmh(const std::string& spec) { return Pmh(parse_pmh(spec)); }

}  // namespace ndf
