// Named machine presets and a spec parser, so sweeps and benches select
// PMHs by string the way they select policies by string:
//
//   "flat16"                          — a named preset (see pmh_presets())
//   "flat:p=16,m1=768,c1=10"          — parametric flat machine
//   "twotier:s=4,c=4,m1=192,m2=3072,c1=3,c2=30"
//                                     — parametric two-tier machine
//
// Unknown preset names and unknown keys fail loudly, listing what exists
// (the same contract as the scheduler registry).
#pragma once

#include <string>
#include <vector>

#include "pmh/machine.hpp"

namespace ndf {

struct PmhPresetInfo {
  std::string name;
  std::string description;
};

/// All named presets, sorted by name.
std::vector<PmhPresetInfo> pmh_presets();

/// Parses a machine spec (named preset or parametric form) into a config.
/// Throws CheckError on unknown names/keys, listing the valid ones.
PmhConfig parse_pmh(const std::string& spec);

/// parse_pmh + construction.
Pmh make_pmh(const std::string& spec);

}  // namespace ndf
