// Simulated cache-occupancy state for a PMH: the *measured* side of the
// paper's Theorem 1. Every level-l cache tracks which maximal-task
// footprints are resident, with LRU replacement over the cache's full
// capacity Ml, and counts the words actually (re)loaded — the per-level
// miss totals Q_i that the analytical bound Q*(t; σMi) (analysis/pcc)
// promises to dominate for space-bounded executions.
//
// The unit of residency is a level-l maximal task's footprint (s(t) words),
// the same granularity both existing cache *charge* models use (DESIGN.md,
// "Cache-miss accounting"): the simulator has no per-word addresses for the
// transcribed kernels, only the spawn tree's size annotations, so the
// working set resident in a cache is modeled as a set of task footprints.
//
// Pinning exists for the space-bounded policy: anchoring a task reserves
// its footprint's capacity for the task's lifetime (the boundedness
// invariant keeps the pinned total ≤ σMl ≤ Ml), so a pinned footprint is
// never evicted and is loaded at most once — which is exactly why the
// measured Q_i of an sb run sits below Q*(σMi). Policies without
// reservations (ws, greedy, serial) leave everything unpinned and pay
// reloads whenever LRU pressure evicts a footprint they come back to.
//
// Determinism: recency is a monotone counter bumped per touch, eviction
// scans are in stable entry order, and the layer is driven only from the
// (deterministic) simulation event loop — so measured counters are
// bit-identical across runs, processes and sweep `--jobs` values.
//
// Footprint keys are 64-bit so a caller multiplexing several DAGs through
// one machine (the service mode, src/serve/) can namespace each job's
// decomposition indices into a disjoint key range: distinct tenants' data
// never false-hit each other, while repeat jobs over the same tenant's
// data reuse the same keys and can hit warm lines left by earlier jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "pmh/machine.hpp"

namespace ndf {

class CacheOccupancy {
 public:
  explicit CacheOccupancy(const Pmh& machine);

  /// Empties every cache and zeroes all miss counters and the recency
  /// clock, as if freshly constructed for the same machine — but entry
  /// vectors keep their capacity, so a reused instance allocates nothing
  /// in steady state (SimCore::reset cycles one instance per run).
  void reset();

  /// Runs footprint `task` (a level-`level` decomposition index) of `size`
  /// words through the level-`level` cache `cache`: a hit refreshes
  /// recency and returns 0; a miss loads the footprint (evicting unpinned
  /// LRU entries down to capacity), adds `size` to the level's miss total,
  /// and returns `size`.
  double touch(std::size_t level, std::size_t cache, std::int64_t task,
               double size);

  /// Reserves capacity for `task` in `cache` and protects it from
  /// eviction. Reservation does not count misses — the load is counted by
  /// the first touch(), so a pinned-but-never-run footprint costs nothing.
  void pin(std::size_t level, std::size_t cache, std::int64_t task,
           double size);

  /// Drops the reservation. A resident footprint stays as a normal LRU
  /// entry (stale data lingers until evicted); a never-loaded one frees
  /// its reserved capacity immediately.
  void unpin(std::size_t level, std::size_t cache, std::int64_t task);

  /// Measured level-`level` misses so far, summed over the level's caches
  /// (the Q_i that Theorem 1 bounds by Q*(t; σMl)).
  double misses(std::size_t level) const { return misses_[level - 1]; }

  /// misses(l) for l = 1..num_cache_levels, in level order.
  const std::vector<double>& level_misses() const { return misses_; }

 private:
  struct Entry {
    std::int64_t task = -1;
    double size = 0.0;
    bool resident = false;  ///< footprint loaded (occupies *and* counted)
    bool pinned = false;    ///< reserved by an anchored task: not evictable
    std::uint64_t last_use = 0;
  };
  struct Cache {
    std::vector<Entry> entries;
    double used = 0.0;  ///< Σ size over entries (resident or reserved)
  };

  Cache& at(std::size_t level, std::size_t cache);
  Entry* find(Cache& c, std::int64_t task);
  /// Evicts unpinned entries, least recent first, until `c.used + incoming`
  /// fits in `capacity` (or only pinned entries remain).
  void make_room(Cache& c, double capacity, double incoming);

  std::vector<std::vector<Cache>> caches_;  ///< caches_[l-1][cache index]
  std::vector<double> misses_;              ///< misses_[l-1]
  std::vector<double> capacity_;            ///< Ml per level
  std::uint64_t clock_ = 0;
};

}  // namespace ndf
