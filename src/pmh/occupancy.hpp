// Simulated cache-occupancy state for a PMH: the *measured* side of the
// paper's Theorem 1. Every level-l cache tracks which maximal-task
// footprints are resident under a pluggable cache model (pmh/cache_model.hpp
// — replacement policy, associativity, line granularity, write-back and
// contention costs) and counts the words actually (re)loaded — the
// per-level miss totals Q_i that the analytical bound Q*(t; σMi)
// (analysis/pcc) promises to dominate for space-bounded executions. The
// default model is whole-capacity fully-associative LRU, byte-identical to
// the paper's ideal (and to this layer before the model was pluggable).
//
// The unit of residency is a level-l maximal task's footprint (s(t) words,
// rounded up to the model's line granularity when one is set), the same
// granularity both existing cache *charge* models use (DESIGN.md,
// "Cache-miss accounting"): the simulator has no per-word addresses for the
// transcribed kernels, only the spawn tree's size annotations, so the
// working set resident in a cache is modeled as a set of task footprints.
//
// Pinning exists for the space-bounded policy: anchoring a task reserves
// its footprint's capacity for the task's lifetime (the boundedness
// invariant keeps the pinned total ≤ σMl ≤ Ml), so a pinned footprint is
// never evicted and is loaded at most once — which is exactly why the
// measured Q_i of an sb run sits below Q*(σMi). Every builtin replacement
// policy honors reservations (victim scans skip pinned entries); a
// registered policy that cannot must say so via honors_pinning(), and
// pin() then fails loudly naming the model. Policies without reservations
// (ws, greedy, serial) leave everything unpinned and pay reloads whenever
// replacement pressure evicts a footprint they come back to. With set
// associativity, a pinned reservation may transiently overfill its *set*
// (boundedness is a whole-cache invariant); eviction simply stops when
// only pinned entries remain, so reservations are still never broken.
//
// Determinism: recency is a monotone counter bumped per touch, eviction
// scans are in stable entry order (the clock hand is per-set state), and
// the layer is driven only from the (deterministic) simulation event loop —
// so measured counters are bit-identical across runs, processes and sweep
// `--jobs` values, for every model.
//
// Footprint keys are 64-bit so a caller multiplexing several DAGs through
// one machine (the service mode, src/serve/) can namespace each job's
// decomposition indices into a disjoint key range: distinct tenants' data
// never false-hit each other, while repeat jobs over the same tenant's
// data reuse the same keys and can hit warm lines left by earlier jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/events.hpp"
#include "pmh/cache_model.hpp"
#include "pmh/machine.hpp"

namespace ndf {

class CacheOccupancy {
 public:
  /// Shapes the layer for `machine` under `model` (default: the ideal LRU
  /// model). The replacement policy is instantiated from the cache-model
  /// registry once, here.
  explicit CacheOccupancy(const Pmh& machine,
                          const CacheModelSpec& model = {});

  /// The model this instance simulates (immutable after construction —
  /// SimCore rebuilds the instance when the spec changes).
  const CacheModelSpec& model() const { return model_; }

  /// Empties every cache and zeroes all counters and the recency clock, as
  /// if freshly constructed for the same machine and model — but entry
  /// vectors keep their capacity, so a reused instance allocates nothing
  /// in steady state (SimCore::reset cycles one instance per run).
  void reset();

  /// Runs footprint `task` (a level-`level` decomposition index) of `size`
  /// words through the level-`level` cache `cache`: a hit refreshes the
  /// policy's reference state and returns 0; a miss loads the footprint
  /// (evicting unpinned entries per the replacement policy down to
  /// capacity), adds the line-quantized size to the level's miss total,
  /// and returns it. `sharers` is the number of other processors busy
  /// under this cache right now — a miss with k sharers adds bw·k·size
  /// contention traffic (0 unless the model sets bw).
  double touch(std::size_t level, std::size_t cache, std::int64_t task,
               double size, std::size_t sharers = 0);

  /// Reserves capacity for `task` in `cache` and protects it from
  /// eviction. Reservation does not count misses — the load is counted by
  /// the first touch(), so a pinned-but-never-run footprint costs nothing.
  /// Throws CheckError if the model's replacement policy declared itself
  /// unable to honor reservations (ReplacementPolicy::honors_pinning).
  void pin(std::size_t level, std::size_t cache, std::int64_t task,
           double size);

  /// Drops the reservation. A resident footprint stays as a normal entry
  /// (stale data lingers until evicted); a never-loaded one frees its
  /// reserved capacity immediately.
  void unpin(std::size_t level, std::size_t cache, std::int64_t task);

  /// Measured level-`level` misses so far, summed over the level's caches
  /// (the Q_i that Theorem 1 bounds by Q*(t; σMl)).
  double misses(std::size_t level) const { return misses_[level - 1]; }

  /// misses(l) for l = 1..num_cache_levels, in level order.
  const std::vector<double>& level_misses() const { return misses_; }

  /// Write-back traffic per level: wb · size words for every *resident*
  /// footprint evicted at that level (all-zero unless the model sets wb).
  /// Not part of Q_i — eviction traffic, not reload traffic.
  const std::vector<double>& level_writebacks() const { return writebacks_; }

  /// Shared-bandwidth contention traffic per level: bw · sharers · size
  /// words per miss (all-zero unless the model sets bw). Not part of Q_i.
  const std::vector<double>& level_contention() const { return contention_; }

  /// Attaches a trace sink (obs/events.hpp): every touch/pin/unpin emits a
  /// hit/miss/evict/pin/unpin event, timestamped by reading `*now` at
  /// emission time (the simulation clock SimCore keeps current). Purely
  /// observational — counters, eviction decisions and recency state are
  /// bit-identical with or without a sink. Pass nullptr to detach;
  /// survives reset().
  void set_trace(obs::TraceSink* sink, const double* now) {
    sink_ = sink;
    now_ = now;
  }

 private:
  /// One associativity set: with the default fully-associative model each
  /// cache has exactly one set spanning its whole capacity.
  struct Set {
    std::vector<CacheEntry> entries;
    double used = 0.0;      ///< Σ size over entries (resident or reserved)
    std::size_t hand = 0;   ///< clock-policy hand position
  };
  struct Cache {
    std::vector<Set> sets;
  };

  /// Footprint size as the model charges it: rounded up to the effective
  /// line granularity when one is set.
  double charged(double size) const;
  Set& set_for(std::size_t level, std::size_t cache, std::int64_t task);
  CacheEntry* find(Set& s, std::int64_t task);
  /// Evicts per the replacement policy until `s.used + incoming` fits in
  /// the set's capacity (or only pinned entries remain), charging
  /// write-back traffic for resident victims. `cache` is only for trace
  /// attribution of eviction events.
  void make_room(Set& s, std::size_t level, std::size_t cache,
                 double incoming);
  /// Emits a cache trace event with the cache's post-event used total;
  /// no-op without a sink.
  void emit(obs::CacheEvent kind, std::size_t level, std::size_t cache,
            std::int64_t task, double words) const;

  CacheModelSpec model_;
  std::unique_ptr<ReplacementPolicy> repl_;
  std::vector<std::vector<Cache>> caches_;  ///< caches_[l-1][cache index]
  std::vector<double> misses_;              ///< misses_[l-1]
  std::vector<double> writebacks_;          ///< writebacks_[l-1]
  std::vector<double> contention_;          ///< contention_[l-1]
  std::vector<double> set_capacity_;        ///< per level: Ml / nsets
  std::vector<std::size_t> nsets_;          ///< per level: sets per cache
  std::uint64_t clock_ = 0;
  obs::TraceSink* sink_ = nullptr;          ///< optional event receiver
  const double* now_ = nullptr;             ///< simulation clock for events
};

}  // namespace ndf
