#include "pmh/cache_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace ndf {

namespace {

// ------------------------------------------------------------- builtins
//
// Every builtin honors pinning: victim scans skip pinned entries, so a
// pinned footprint survives any amount of pressure (the sb invariant).

/// Least-recently-used — the paper's ideal model and the default. The
/// victim scan is byte-identical to the pre-registry CacheOccupancy:
/// oldest last_use among unpinned entries, stable scan order.
class LruRepl final : public ReplacementPolicy {
 public:
  const char* name() const override { return "lru"; }
  void touched(CacheEntry& e, std::uint64_t now) override {
    e.last_use = now;
  }
  std::size_t victim(std::vector<CacheEntry>& entries,
                     std::size_t& hand) override {
    (void)hand;
    std::size_t v = entries.size();
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (!entries[i].pinned &&
          (v == entries.size() || entries[i].last_use < entries[v].last_use))
        v = i;
    return v;
  }
};

/// First-in-first-out: eviction order is insertion order — re-touching a
/// resident footprint does not save it.
class FifoRepl final : public ReplacementPolicy {
 public:
  const char* name() const override { return "fifo"; }
  void touched(CacheEntry& e, std::uint64_t now) override {
    (void)e;
    (void)now;  // references never refresh a FIFO entry
  }
  std::size_t victim(std::vector<CacheEntry>& entries,
                     std::size_t& hand) override {
    (void)hand;
    std::size_t v = entries.size();
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (!entries[i].pinned &&
          (v == entries.size() ||
           entries[i].loaded_at < entries[v].loaded_at))
        v = i;
    return v;
  }
};

/// Clock / second chance: a circular hand sweeps the set; an entry whose
/// referenced bit is set gets it cleared and one more pass, the first
/// unreferenced unpinned entry under the hand is evicted.
class ClockRepl final : public ReplacementPolicy {
 public:
  const char* name() const override { return "clock"; }
  void touched(CacheEntry& e, std::uint64_t now) override {
    (void)now;
    e.ref = true;
  }
  std::size_t victim(std::vector<CacheEntry>& entries,
                     std::size_t& hand) override {
    std::size_t evictable = 0;
    for (const CacheEntry& e : entries)
      if (!e.pinned) ++evictable;
    if (evictable == 0) return entries.size();
    if (hand >= entries.size()) hand = 0;
    // Two sweeps bound the scan: the first clears every referenced bit in
    // the worst case, the second must then find an unreferenced victim.
    for (;;) {
      CacheEntry& e = entries[hand];
      if (!e.pinned) {
        if (e.ref)
          e.ref = false;  // second chance
        else
          return hand;
      }
      hand = (hand + 1) % entries.size();
    }
  }
};

/// Aging (the working-set approximation): each eviction decision is one
/// aging tick — every entry's age register shifts right with its referenced
/// bit entering the MSB — and the lowest-aged unpinned entry (least
/// recently *and* least frequently referenced) is the victim.
class AgingRepl final : public ReplacementPolicy {
 public:
  const char* name() const override { return "aging"; }
  void touched(CacheEntry& e, std::uint64_t now) override {
    (void)now;
    e.ref = true;
  }
  std::size_t victim(std::vector<CacheEntry>& entries,
                     std::size_t& hand) override {
    (void)hand;
    constexpr std::uint64_t kMsb = std::uint64_t(1) << 63;
    for (CacheEntry& e : entries) {
      e.age = (e.age >> 1) | (e.ref ? kMsb : 0);
      e.ref = false;
    }
    std::size_t v = entries.size();
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (!entries[i].pinned &&
          (v == entries.size() || entries[i].age < entries[v].age))
        v = i;
    return v;
  }
};

// ------------------------------------------------------------- registry

struct Entry {
  std::string description;
  CacheReplFactory factory;
};

std::map<std::string, Entry>& table() {
  static std::map<std::string, Entry> t;
  return t;
}

void ensure_builtins() {
  static const bool once = [] {
    register_cache_repl(
        "lru", "least-recently-used — the paper's ideal model (default)",
        [] { return std::make_unique<LruRepl>(); });
    register_cache_repl(
        "fifo", "first-in-first-out — references never refresh an entry",
        [] { return std::make_unique<FifoRepl>(); });
    register_cache_repl(
        "clock",
        "second chance — referenced entries survive one sweep of the hand",
        [] { return std::make_unique<ClockRepl>(); });
    register_cache_repl(
        "aging",
        "working-set approximation — aging registers rank entries by "
        "recency and frequency of reference",
        [] { return std::make_unique<AgingRepl>(); });
    return true;
  }();
  (void)once;
}

// Safe from any error path: registers the builtins itself, so an unknown
// policy message lists what is actually available (sched/registry.cpp).
std::string known_names() {
  ensure_builtins();
  std::string s;
  for (const auto& [name, entry] : table()) {
    if (!s.empty()) s += ", ";
    s += name;
  }
  return s.empty() ? "<none>" : s;
}

double parse_value(const std::string& spec, const std::string& key,
                   const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  NDF_CHECK_MSG(end && *end == '\0' && !val.empty(),
                "cache parameter '" << key << "' in '" << spec
                                    << "' is not a number: " << val);
  return v;
}

}  // namespace

std::string CacheModelSpec::label() const {
  CacheModelSpec dflt;
  dflt.repl = repl;
  if (*this == dflt) return repl;  // only the policy differs: bare name
  std::ostringstream os;
  os << "cache:repl=" << repl;
  if (assoc != 0) os << ",assoc=" << assoc;
  if (line != 0.0) os << ",line=" << line;
  if (exclusive) os << ",excl=1";
  if (wb != 0.0) os << ",wb=" << wb;
  if (bw != 0.0) os << ",bw=" << bw;
  return os.str();
}

bool register_cache_repl(const std::string& name,
                         const std::string& description,
                         CacheReplFactory factory) {
  NDF_CHECK_MSG(!name.empty() && factory, "bad cache-model registration");
  return table().emplace(name, Entry{description, std::move(factory)}).second;
}

bool cache_repl_registered(const std::string& name) {
  ensure_builtins();
  return table().count(name) > 0;
}

std::vector<CacheModelInfo> registered_cache_repls() {
  ensure_builtins();
  std::vector<CacheModelInfo> out;
  for (const auto& [name, entry] : table())
    out.push_back({name, entry.description});
  return out;  // std::map iterates sorted by name
}

std::unique_ptr<ReplacementPolicy> make_cache_repl(const std::string& name) {
  ensure_builtins();
  const auto it = table().find(name);
  NDF_CHECK_MSG(it != table().end(), "unknown replacement policy '"
                                         << name << "' (registered: "
                                         << known_names() << ")");
  return it->second.factory();
}

CacheModelSpec parse_cache_model(const std::string& spec) {
  CacheModelSpec out;
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    // Bare policy name shorthand: "clock" == "cache:repl=clock".
    NDF_CHECK_MSG(cache_repl_registered(spec),
                  "unknown cache model '"
                      << spec << "' (policies: " << known_names()
                      << "; parametric: cache:repl=,assoc=,line=,excl=,"
                         "wb=,bw=)");
    out.repl = spec;
    return out;
  }
  const std::string family = spec.substr(0, colon);
  NDF_CHECK_MSG(family == "cache",
                "unknown cache-model family '"
                    << family << "' in '" << spec
                    << "' (want cache:key=value,... or a bare policy name: "
                    << known_names() << ")");
  static const char* kValid = "assoc, bw, excl, line, repl, wb";
  std::set<std::string> seen;
  std::stringstream ss(spec.substr(colon + 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    NDF_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "bad cache parameter '" << item << "' in '" << spec
                                          << "' (want key=value)");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    NDF_CHECK_MSG(seen.insert(key).second, "duplicate cache parameter '"
                                               << key << "' in '" << spec
                                               << "'");
    if (key == "repl") {
      NDF_CHECK_MSG(cache_repl_registered(val),
                    "unknown replacement policy '"
                        << val << "' in '" << spec
                        << "' (registered: " << known_names() << ")");
      out.repl = val;
    } else if (key == "assoc") {
      const double v = parse_value(spec, key, val);
      NDF_CHECK_MSG(v >= 0.0 && v == std::floor(v) && v <= double(1 << 20),
                    "cache parameter 'assoc' in '"
                        << spec << "' must be an integer in [0, 2^20], got "
                        << val);
      out.assoc = std::size_t(v);
    } else if (key == "line") {
      const double v = parse_value(spec, key, val);
      NDF_CHECK_MSG(v >= 0.0, "cache parameter 'line' in '"
                                  << spec << "' must be >= 0, got " << val);
      out.line = v;
    } else if (key == "excl") {
      const double v = parse_value(spec, key, val);
      NDF_CHECK_MSG(v == 0.0 || v == 1.0, "cache parameter 'excl' in '"
                                              << spec
                                              << "' must be 0 or 1, got "
                                              << val);
      out.exclusive = v == 1.0;
    } else if (key == "wb") {
      const double v = parse_value(spec, key, val);
      NDF_CHECK_MSG(v >= 0.0, "cache parameter 'wb' in '"
                                  << spec << "' must be >= 0, got " << val);
      out.wb = v;
    } else if (key == "bw") {
      const double v = parse_value(spec, key, val);
      NDF_CHECK_MSG(v >= 0.0, "cache parameter 'bw' in '"
                                  << spec << "' must be >= 0, got " << val);
      out.bw = v;
    } else {
      NDF_CHECK_MSG(false, "unknown cache parameter '"
                               << key << "' in '" << spec
                               << "' (valid: " << kValid << ")");
    }
  }
  return out;
}

std::vector<CacheModelSpec> parse_cache_model_list(const std::string& specs) {
  std::vector<CacheModelSpec> out;
  std::stringstream ss(specs);
  std::string item;
  while (std::getline(ss, item, ';')) {
    if (item.empty()) continue;
    CacheModelSpec m = parse_cache_model(item);
    if (std::find(out.begin(), out.end(), m) == out.end())
      out.push_back(std::move(m));
  }
  return out;
}

}  // namespace ndf
