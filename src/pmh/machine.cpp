#include "pmh/machine.hpp"

#include <sstream>

namespace ndf {

PmhConfig PmhConfig::flat(std::size_t p, double M1, double cmiss) {
  PmhConfig cfg;
  cfg.levels.push_back(LevelSpec{M1, 1, cmiss});  // one processor per cache
  cfg.root_fanout = p;
  return cfg;
}

PmhConfig PmhConfig::two_tier(std::size_t sockets, std::size_t cores,
                              double M1, double M2, double c1, double c2) {
  PmhConfig cfg;
  cfg.levels.push_back(LevelSpec{M1, 1, c1});      // one processor per L1
  cfg.levels.push_back(LevelSpec{M2, cores, c2});  // cores L1s per socket
  cfg.root_fanout = sockets;
  return cfg;
}

Pmh::Pmh(PmhConfig cfg) : cfg_(std::move(cfg)) {
  NDF_CHECK_MSG(!cfg_.levels.empty(), "PMH needs at least one cache level");
  const std::size_t h = cfg_.levels.size();
  caches_.assign(h, 0);
  procs_per_.assign(h, 0);
  // Count caches top-down, processors-per-cache bottom-up.
  std::size_t count = cfg_.root_fanout;
  for (std::size_t lvl = h; lvl >= 1; --lvl) {
    caches_[lvl - 1] = count;
    count *= cfg_.levels[lvl - 1].fanout;
    NDF_CHECK(cfg_.levels[lvl - 1].fanout >= 1);
    NDF_CHECK(cfg_.levels[lvl - 1].size > 0.0);
    if (lvl >= 2)
      NDF_CHECK_MSG(cfg_.levels[lvl - 1].size >= cfg_.levels[lvl - 2].size,
                    "cache sizes must be non-decreasing with level");
  }
  procs_ = count;
  std::size_t per = 1;
  for (std::size_t lvl = 1; lvl <= h; ++lvl) {
    per *= cfg_.levels[lvl - 1].fanout;
    procs_per_[lvl - 1] = per;
  }
}

std::size_t Pmh::lca_level(std::size_t a, std::size_t b) const {
  if (a == b) return 0;
  for (std::size_t lvl = 1; lvl <= num_cache_levels(); ++lvl)
    if (cache_above(a, lvl) == cache_above(b, lvl)) return lvl;
  return num_cache_levels() + 1;  // only memory is shared
}

std::string Pmh::to_string() const {
  std::ostringstream os;
  os << "PMH[p=" << procs_;
  for (std::size_t lvl = 1; lvl <= num_cache_levels(); ++lvl)
    os << ", L" << lvl << ": " << num_caches(lvl) << "x M=" << cache_size(lvl)
       << " C=" << miss_cost(lvl);
  os << "]";
  return os.str();
}

}  // namespace ndf
