#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace ndf::obs {

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double n = double(sorted.size());
  const std::size_t rank =
      std::size_t(std::max(1.0, std::ceil(q * n)));
  return sorted[std::min(rank, sorted.size()) - 1];
}

namespace {

// Bucket exponent for a positive value: the smallest e with value ≤ 2^e,
// i.e. value in (2^(e-1), 2^e]. frexp gives value = m·2^e with
// m in [0.5, 1); exact powers of two (m == 0.5) belong to the bucket
// below so edges are inclusive.
int bucket_exp(double value) {
  int e = 0;
  const double m = std::frexp(value, &e);
  if (m == 0.5) --e;
  return std::clamp(e, Log2Histogram::kMinExp, Log2Histogram::kMaxExp);
}

}  // namespace

void Log2Histogram::record(double value) {
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  if (!(value > 0.0)) {
    ++zero_;
    return;
  }
  ++buckets_[std::size_t(bucket_exp(value) - kMinExp)];
}

double Log2Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const std::uint64_t rank = std::uint64_t(
      std::max(1.0, std::ceil(q * double(count_))));
  std::uint64_t seen = zero_;
  if (std::min(rank, count_) <= seen) return 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (std::min(rank, count_) <= seen)
      return std::ldexp(1.0, int(i) + kMinExp);
  }
  return max();  // unreachable when counts are consistent
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_ += other.zero_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Log2Histogram::write_json(std::ostream& os) const {
  os << "{\"count\": " << count_ << ", \"zero\": " << zero_;
  if (count_ != 0) {
    os << ", \"min\": " << min() << ", \"max\": " << max()
       << ", \"mean\": " << mean();
  }
  os << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"le\": " << std::ldexp(1.0, int(i) + kMinExp)
       << ", \"n\": " << buckets_[i] << "}";
  }
  os << "]}";
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << value;
  }
  for (const auto& [name, hist] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": ";
    hist.write_json(os);
  }
  os << "}";
}

}  // namespace ndf::obs
