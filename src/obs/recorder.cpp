#include "obs/recorder.hpp"

namespace ndf::obs {

void EventRecorder::on_unit(double start, double end, std::uint32_t proc,
                            std::int64_t unit, std::int64_t root) {
  Event e;
  e.kind = Event::Kind::kUnit;
  e.t0 = start;
  e.t1 = end;
  e.a = proc;
  e.b = unit;
  e.c = root;
  events_.push_back(e);
  ++counts_[std::size_t(Event::Kind::kUnit)];
}

void EventRecorder::on_queue_wait(double ready, double start,
                                  std::uint32_t proc, std::int64_t unit) {
  Event e;
  e.kind = Event::Kind::kWait;
  e.t0 = ready;
  e.t1 = start;
  e.a = proc;
  e.b = unit;
  events_.push_back(e);
  ++counts_[std::size_t(Event::Kind::kWait)];
}

void EventRecorder::on_cache(CacheEvent kind, double t, std::uint32_t level,
                             std::uint32_t cache, std::int64_t task,
                             double words, double used_after) {
  Event e;
  e.kind = Event::Kind::kCache;
  e.sub = std::uint8_t(kind);
  e.t0 = t;
  e.a = cache;
  e.b = task;
  e.c = std::int64_t(level);
  e.words = words;
  e.value = used_after;
  events_.push_back(e);
  ++counts_[std::size_t(Event::Kind::kCache)];
}

void EventRecorder::on_job(JobEvent kind, double t, std::int64_t job,
                           std::uint32_t tenant, const char* label) {
  Event e;
  e.kind = Event::Kind::kJob;
  e.sub = std::uint8_t(kind);
  e.t0 = t;
  e.a = tenant;
  e.b = job;
  if (label != nullptr && label[0] != '\0') {
    // Linear intern: label sets are tiny (tenant + workload names).
    std::size_t i = 0;
    for (; i < labels_.size(); ++i)
      if (labels_[i] == label) break;
    if (i == labels_.size()) labels_.emplace_back(label);
    e.c = std::int64_t(i);
  }
  events_.push_back(e);
  ++counts_[std::size_t(Event::Kind::kJob)];
}

Trace EventRecorder::unit_trace() const {
  Trace trace;
  trace.reserve(count(Event::Kind::kUnit));
  for (const Event& e : events_) {
    if (e.kind != Event::Kind::kUnit) continue;
    TraceEvent te;
    te.start = e.t0;
    te.end = e.t1;
    te.proc = e.a;
    te.unit_root = NodeId(e.c);
    trace.push_back(te);
  }
  return trace;
}

void EventRecorder::clear() {
  events_.clear();
  labels_.clear();
  for (std::size_t& c : counts_) c = 0;
}

}  // namespace ndf::obs
