// Shared metrics primitives: nearest-rank percentiles, fixed-bucket log2
// histograms, and a small name→counter/histogram registry.
//
// The histogram is the streaming companion to the exact nearest-rank
// percentile: `Log2Histogram::percentile(q)` returns the upper edge of the
// bucket holding the rank-⌈qN⌉ sample, so for any positive sample it
// satisfies  exact ≤ returned < 2·exact  with O(1) memory — good enough
// for heartbeats and long soak streams where keeping every latency is not.
// The serve summaries keep both: exact percentiles from the sorted sample
// (via nearest_rank below) and the histograms under the JSON `metrics` key.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ndf::obs {

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element with at least q·N of the sample at or below it (rank ⌈qN⌉,
/// clamped to [1, N]). Returns 0 for an empty sample. This is the single
/// shared implementation behind every reported percentile (serve latency
/// summaries and histogram tests alike).
double nearest_rank(const std::vector<double>& sorted, double q);

/// Streaming histogram over power-of-two buckets: bucket e counts samples
/// in (2^(e-1), 2^e], exponents clamped to [kMinExp, kMaxExp]; zero and
/// negative samples land in a dedicated zero bucket. Exact count, sum,
/// min and max are kept alongside, so mean is exact and only the
/// percentiles are quantized (to the bucket's upper edge — within 2× of
/// the exact nearest-rank value, see file comment).
class Log2Histogram {
 public:
  static constexpr int kMinExp = -32;  ///< smallest bucket edge 2^-32
  static constexpr int kMaxExp = 63;   ///< largest bucket edge 2^63

  /// Adds one sample.
  void record(double value);

  /// Total samples recorded (including the zero bucket).
  std::uint64_t count() const { return count_; }
  /// Samples that were ≤ 0.
  std::uint64_t zero_count() const { return zero_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

  /// Upper bucket edge of the nearest-rank sample: 0 for an empty
  /// histogram or when the rank falls in the zero bucket; otherwise 2^e
  /// of the rank's bucket (exact ≤ result < 2·exact for positive exacts).
  double percentile(double q) const;

  /// Count in the bucket with upper edge 2^e (e in [kMinExp, kMaxExp]).
  std::uint64_t bucket_count(int e) const {
    return buckets_[std::size_t(e - kMinExp)];
  }

  /// Merges another histogram into this one.
  void merge(const Log2Histogram& other);

  /// Emits `{"count":N,"zero":Z,"min":m,"max":M,"mean":u,"buckets":
  /// [{"le":2^e,"n":c},...]}` — buckets ascending, zero-count buckets
  /// omitted, min/max/mean omitted when empty. Uses the stream's current
  /// float formatting.
  void write_json(std::ostream& os) const;

 private:
  static constexpr std::size_t kBuckets = std::size_t(kMaxExp - kMinExp + 1);
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t zero_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed counters and histograms with deterministic (sorted-name)
/// JSON emission. Cheap to copy/move; the serve summaries carry one per
/// cell under the report's `metrics` key.
class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (created at zero on first use).
  void add(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }
  /// Returns histogram `name`, creating it empty on first use.
  Log2Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, Log2Histogram>& histograms() const {
    return histograms_;
  }
  bool empty() const { return counters_.empty() && histograms_.empty(); }

  /// Emits `{"name":value,...,"name":{histogram},...}` — counters first,
  /// then histograms, each sorted by name. Uses the stream's current
  /// float formatting.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, Log2Histogram> histograms_;
};

}  // namespace ndf::obs
