#include "obs/progress.hpp"

#include <cstdio>
#include <iostream>

namespace ndf::obs {

ProgressMeter::ProgressMeter(bool enabled, std::string label,
                             std::ostream* os, double interval_s)
    : enabled_(enabled),
      label_(std::move(label)),
      os_(os != nullptr ? os : &std::cerr),
      interval_s_(interval_s) {}

double ProgressMeter::elapsed_s(Clock::time_point since) const {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

void ProgressMeter::print_line(double frac_known, std::size_t done) {
  const bool final = frac_known >= 1.0;
  const double elapsed = elapsed_s(phase_start_);
  char buf[192];
  if (final) {
    std::snprintf(buf, sizeof buf, "progress[%s]: %s %zu/%zu done in %.1fs\n",
                  label_.c_str(), phase_.c_str(), done, total_, elapsed);
  } else if (done > 0 && total_ != 0) {
    const double eta = elapsed * double(total_ - done) / double(done);
    std::snprintf(buf, sizeof buf,
                  "progress[%s]: %s %zu/%zu (%.1f%%) elapsed %.1fs eta %.1fs\n",
                  label_.c_str(), phase_.c_str(), done, total_,
                  100.0 * double(done) / double(total_), elapsed, eta);
  } else {
    std::snprintf(buf, sizeof buf, "progress[%s]: %s %zu/%zu elapsed %.1fs\n",
                  label_.c_str(), phase_.c_str(), done, total_, elapsed);
  }
  (*os_) << buf;
  os_->flush();
  last_print_ = Clock::now();
}

void ProgressMeter::begin_phase(const std::string& phase, std::size_t total) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  phase_ = phase;
  total_ = total;
  done_ = 0;
  open_ = true;
  phase_start_ = Clock::now();
  print_line(0.0, 0);
}

void ProgressMeter::tick(std::size_t n) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return;
  done_ += n;
  if (elapsed_s(last_print_) < interval_s_) return;
  print_line(0.0, done_);
}

void ProgressMeter::finish() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return;
  open_ = false;
  if (done_ < total_) done_ = total_;  // phases tick once per item
  print_line(1.0, done_);
}

}  // namespace ndf::obs
