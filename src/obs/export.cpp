#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "sched/trace.hpp"
#include "support/check.hpp"

namespace ndf::obs {
namespace {

// Shortest decimal that round-trips to the exact double — keeps the JSON
// deterministic and the golden fixtures readable.
void write_num(std::ostream& os, double v) {
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

const char* cache_sub_name(std::uint8_t sub) {
  switch (CacheEvent(sub)) {
    case CacheEvent::kHit: return "hit";
    case CacheEvent::kMiss: return "miss";
    case CacheEvent::kEvict: return "evict";
    case CacheEvent::kPin: return "pin";
    case CacheEvent::kUnpin: return "unpin";
  }
  return "?";
}

const char* job_sub_name(std::uint8_t sub) {
  switch (JobEvent(sub)) {
    case JobEvent::kArrival: return "arrival";
    case JobEvent::kAdmit: return "admit";
    case JobEvent::kComplete: return "complete";
    case JobEvent::kDeadlineMiss: return "deadline_miss";
  }
  return "?";
}

// Writes one traceEvents entry; the Emitter owns the comma discipline.
class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(os) {}
  std::ostream& begin() {
    os_ << (first_ ? "\n  {" : ",\n  {");
    first_ = false;
    return os_;
  }
  void end() { os_ << "}"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void meta(Emitter& em, const char* what, int pid, std::int64_t tid,
          const std::string& name) {
  std::ostream& os = em.begin();
  os << "\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": " << pid;
  if (tid >= 0) os << ", \"tid\": " << tid;
  os << ", \"args\": {\"name\": \"" << json_escape(name) << "\"}";
  em.end();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const EventRecorder& rec,
                        const std::string& name) {
  const std::vector<Event>& events = rec.events();
  const std::vector<std::string>& labels = rec.labels();
  auto label_of = [&](std::int64_t i) -> std::string {
    return (i >= 0 && std::size_t(i) < labels.size()) ? labels[std::size_t(i)]
                                                      : std::string();
  };

  // Track discovery: processors from unit/wait events, (level, cache)
  // pairs from cache events, tenants from job events — all sorted so tid
  // assignment is deterministic.
  std::uint32_t nprocs = 0;
  std::map<std::pair<std::int64_t, std::uint32_t>, int> cache_tid;
  std::map<std::uint32_t, std::string> tenants;  // id -> display name
  for (const Event& e : events) {
    switch (e.kind) {
      case Event::Kind::kUnit:
      case Event::Kind::kWait:
        nprocs = std::max(nprocs, e.a + 1);
        break;
      case Event::Kind::kCache:
        cache_tid.emplace(std::make_pair(e.c, e.a), 0);
        break;
      case Event::Kind::kJob: {
        auto [it, fresh] = tenants.emplace(e.a, std::string());
        if (JobEvent(e.sub) == JobEvent::kArrival && it->second.empty())
          it->second = label_of(e.c);
        (void)fresh;
        break;
      }
    }
  }
  int next_tid = 0;
  for (auto& [key, tid] : cache_tid) tid = next_tid++;

  os << "{\"otherData\": {\"name\": \"" << json_escape(name)
     << "\", \"generator\": \"ndf --trace-out\"},\n\"traceEvents\": [";
  Emitter em(os);

  if (nprocs > 0) {
    meta(em, "process_name", 0, -1, "processors");
    for (std::uint32_t p = 0; p < nprocs; ++p)
      meta(em, "thread_name", 0, p, "proc " + std::to_string(p));
  }
  if (!cache_tid.empty()) {
    meta(em, "process_name", 1, -1, "caches");
    for (const auto& [key, tid] : cache_tid)
      meta(em, "thread_name", 1, tid,
           "L" + std::to_string(key.first) + " cache " +
               std::to_string(key.second));
  }
  if (!tenants.empty()) {
    meta(em, "process_name", 2, -1, "service");
    for (const auto& [id, tname] : tenants)
      meta(em, "thread_name", 2, id,
           tname.empty() ? "tenant " + std::to_string(id) : tname);
  }

  // Per-job bookkeeping for pairing arrival→admit→complete into slices.
  struct JobState {
    double arrival = 0.0;
    double admit = 0.0;
    std::string label;
  };
  std::map<std::int64_t, JobState> jobs;
  // Ready-queue depth deltas: +1 when a unit becomes ready, −1 at its
  // dispatch (aggregated per timestamp below).
  std::map<double, std::int64_t> ready_delta;

  for (const Event& e : events) {
    switch (e.kind) {
      case Event::Kind::kUnit: {
        std::ostream& o = em.begin();
        o << "\"name\": \"u" << e.b << "\", \"cat\": \"unit\", \"ph\": \"X\""
          << ", \"ts\": ";
        write_num(o, e.t0);
        o << ", \"dur\": ";
        write_num(o, e.t1 - e.t0);
        o << ", \"pid\": 0, \"tid\": " << e.a << ", \"args\": {\"unit\": "
          << e.b << ", \"root\": " << e.c << "}";
        em.end();
        break;
      }
      case Event::Kind::kWait: {
        std::ostream& o = em.begin();
        o << "\"name\": \"wait u" << e.b
          << "\", \"cat\": \"queue\", \"ph\": \"X\", \"ts\": ";
        write_num(o, e.t0);
        o << ", \"dur\": ";
        write_num(o, e.t1 - e.t0);
        o << ", \"pid\": 0, \"tid\": " << e.a << ", \"args\": {\"unit\": "
          << e.b << "}";
        em.end();
        ready_delta[e.t0] += 1;
        ready_delta[e.t1] -= 1;
        break;
      }
      case Event::Kind::kCache: {
        // Hits don't change occupancy; elide them to keep traces compact
        // (they stay visible in the CSV export and the recorder counts).
        if (CacheEvent(e.sub) == CacheEvent::kHit) break;
        const int tid = cache_tid.at(std::make_pair(e.c, e.a));
        {
          std::ostream& o = em.begin();
          o << "\"name\": \"" << cache_sub_name(e.sub) << " t" << e.b
            << "\", \"cat\": \"cache\", \"ph\": \"i\", \"s\": \"t\", "
               "\"ts\": ";
          write_num(o, e.t0);
          o << ", \"pid\": 1, \"tid\": " << tid << ", \"args\": {\"task\": "
            << e.b << ", \"words\": ";
          write_num(o, e.words);
          o << "}";
          em.end();
        }
        {
          std::ostream& o = em.begin();
          o << "\"name\": \"used L" << e.c << " c" << e.a
            << "\", \"ph\": \"C\", \"ts\": ";
          write_num(o, e.t0);
          o << ", \"pid\": 1, \"args\": {\"words\": ";
          write_num(o, e.value);
          o << "}";
          em.end();
        }
        break;
      }
      case Event::Kind::kJob: {
        JobState& js = jobs[e.b];
        switch (JobEvent(e.sub)) {
          case JobEvent::kArrival: {
            js.arrival = e.t0;
            std::ostream& o = em.begin();
            o << "\"name\": \"arrive j" << e.b
              << "\", \"cat\": \"job\", \"ph\": \"i\", \"s\": \"t\", "
                 "\"ts\": ";
            write_num(o, e.t0);
            o << ", \"pid\": 2, \"tid\": " << e.a << ", \"args\": {\"job\": "
              << e.b << "}";
            em.end();
            break;
          }
          case JobEvent::kAdmit: {
            js.admit = e.t0;
            js.label = label_of(e.c);
            std::ostream& o = em.begin();
            o << "\"name\": \"wait j" << e.b
              << "\", \"cat\": \"job\", \"ph\": \"X\", \"ts\": ";
            write_num(o, js.arrival);
            o << ", \"dur\": ";
            write_num(o, e.t0 - js.arrival);
            o << ", \"pid\": 2, \"tid\": " << e.a << ", \"args\": {\"job\": "
              << e.b << "}";
            em.end();
            break;
          }
          case JobEvent::kComplete: {
            std::ostream& o = em.begin();
            o << "\"name\": \"j" << e.b;
            if (!js.label.empty()) o << " " << json_escape(js.label);
            o << "\", \"cat\": \"job\", \"ph\": \"X\", \"ts\": ";
            write_num(o, js.admit);
            o << ", \"dur\": ";
            write_num(o, e.t0 - js.admit);
            o << ", \"pid\": 2, \"tid\": " << e.a << ", \"args\": {\"job\": "
              << e.b << "}";
            em.end();
            break;
          }
          case JobEvent::kDeadlineMiss: {
            std::ostream& o = em.begin();
            o << "\"name\": \"deadline-miss j" << e.b
              << "\", \"cat\": \"job\", \"ph\": \"i\", \"s\": \"t\", "
                 "\"ts\": ";
            write_num(o, e.t0);
            o << ", \"pid\": 2, \"tid\": " << e.a << ", \"args\": {\"job\": "
              << e.b << "}";
            em.end();
            break;
          }
        }
        break;
      }
    }
  }

  // Ready-queue depth counter track (pid 0), in timestamp order.
  std::int64_t depth = 0;
  for (const auto& [t, delta] : ready_delta) {
    if (delta == 0) continue;
    depth += delta;
    std::ostream& o = em.begin();
    o << "\"name\": \"ready-queue\", \"ph\": \"C\", \"ts\": ";
    write_num(o, t);
    o << ", \"pid\": 0, \"args\": {\"units\": " << depth << "}";
    em.end();
  }

  os << "\n]}\n";
}

void write_events_csv(std::ostream& os, const EventRecorder& rec) {
  os << "kind,sub,t0,t1,a,b,c,words,value,label\n";
  const std::vector<std::string>& labels = rec.labels();
  for (const Event& e : rec.events()) {
    switch (e.kind) {
      case Event::Kind::kUnit: {
        os << "unit,,";
        write_num(os, e.t0);
        os << ",";
        write_num(os, e.t1);
        os << "," << e.a << "," << e.b << "," << e.c << ",,,\n";
        break;
      }
      case Event::Kind::kWait: {
        os << "wait,,";
        write_num(os, e.t0);
        os << ",";
        write_num(os, e.t1);
        os << "," << e.a << "," << e.b << ",,,,\n";
        break;
      }
      case Event::Kind::kCache: {
        os << "cache," << cache_sub_name(e.sub) << ",";
        write_num(os, e.t0);
        os << ",," << e.a << "," << e.b << "," << e.c << ",";
        write_num(os, e.words);
        os << ",";
        write_num(os, e.value);
        os << ",\n";
        break;
      }
      case Event::Kind::kJob: {
        os << "job," << job_sub_name(e.sub) << ",";
        write_num(os, e.t0);
        os << ",," << e.a << "," << e.b << ",,,,";
        if (e.c >= 0 && std::size_t(e.c) < labels.size())
          os << labels[std::size_t(e.c)];
        os << "\n";
        break;
      }
    }
  }
}

void write_trace_file(const std::string& path, const EventRecorder& rec,
                      const std::string& name) {
#ifndef NDEBUG
  {
    // Debug-mode invariant: the exported unit timeline must be a valid
    // schedule (no processor runs two units at once, times ordered).
    const Trace trace = rec.unit_trace();
    std::uint32_t nprocs = 0;
    for (const TraceEvent& te : trace) nprocs = std::max(nprocs, te.proc + 1);
    std::string msg;
    NDF_CHECK_MSG(validate_trace(trace, nprocs, &msg),
                  "trace-out invariant violated: " << msg);
  }
#endif
  std::ofstream out(path);
  NDF_CHECK_MSG(out.good(), "cannot open trace output file: " << path);
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv)
    write_events_csv(out, rec);
  else
    write_chrome_trace(out, rec, name);
  NDF_CHECK_MSG(out.good(), "failed writing trace output file: " << path);
}

}  // namespace ndf::obs
