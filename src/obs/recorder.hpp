// EventRecorder: the in-memory TraceSink behind `--trace-out`. Appends
// every event to one flat tagged vector (emission order = simulation
// order), interns job labels, and can reconstruct the legacy sched::Trace
// exactly — unit events are emitted at the same dispatch point SimCore
// fills SchedOptions::trace from, so unit_trace() is element-identical to
// what the legacy pointer would have captured.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "sched/trace.hpp"

namespace ndf::obs {

/// Tagged union of every event family, flat for cheap append and linear
/// export. Field meaning depends on `kind` (unused fields stay zero):
///
/// | kind      | t0      | t1    | a (u32)  | b (i64)       | c (i64) | value      |
/// |-----------|---------|-------|----------|---------------|---------|------------|
/// | kUnit     | start   | end   | proc     | unit          | root    | —          |
/// | kWait     | ready   | start | proc     | unit          | —       | —          |
/// | kCache    | t       | —     | cache    | task          | label²  | used_after |
/// | kJob      | t       | —     | tenant   | job           | label¹  | —          |
///
/// ¹ index into labels() (-1 = none).  ² cache events reuse `c`'s low bits
/// for the level and carry the miss/footprint words in `words`.
struct Event {
  enum class Kind : std::uint8_t { kUnit, kWait, kCache, kJob };
  Kind kind = Kind::kUnit;
  std::uint8_t sub = 0;  ///< CacheEvent / JobEvent enum value
  std::uint32_t a = 0;   ///< proc / cache index / tenant
  double t0 = 0.0;
  double t1 = 0.0;
  std::int64_t b = 0;       ///< unit / task / job id
  std::int64_t c = -1;      ///< root / cache level / label index
  double value = 0.0;       ///< cache: used_after
  double words = 0.0;       ///< cache: footprint words
};

class EventRecorder final : public TraceSink {
 public:
  void on_unit(double start, double end, std::uint32_t proc,
               std::int64_t unit, std::int64_t root) override;
  void on_queue_wait(double ready, double start, std::uint32_t proc,
                     std::int64_t unit) override;
  void on_cache(CacheEvent kind, double t, std::uint32_t level,
                std::uint32_t cache, std::int64_t task, double words,
                double used_after) override;
  void on_job(JobEvent kind, double t, std::int64_t job, std::uint32_t tenant,
              const char* label) override;

  const std::vector<Event>& events() const { return events_; }
  /// Interned job-event labels; Event::c for kJob indexes this.
  const std::vector<std::string>& labels() const { return labels_; }

  /// Events of one kind seen so far (counted at append, O(1)).
  std::size_t count(Event::Kind kind) const {
    return counts_[std::size_t(kind)];
  }

  /// The legacy flat unit trace, in emission order — element-identical to
  /// what a `SchedOptions::trace` pointer captures from the same run.
  Trace unit_trace() const;

  /// Forgets all events and labels (capacity retained).
  void clear();

 private:
  std::vector<Event> events_;
  std::vector<std::string> labels_;
  std::size_t counts_[4] = {0, 0, 0, 0};
};

}  // namespace ndf::obs
