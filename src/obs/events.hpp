// Structured event tracing: the typed event vocabulary every layer of the
// simulator can emit into, and the sink interface that receives it.
//
// A TraceSink is attached per run via SchedOptions::sink (and per service
// scenario via ServeScenario::trace_sink). Emission is strictly
// observational: no simulator decision, duration, counter or emitter
// output may depend on whether a sink is attached — stats and all
// table/JSON/CSV outputs are byte-identical with tracing on or off
// (CI-gated by scripts/ci_perf_gate.sh and ci_serve_gate.sh). When no sink
// is attached the hot paths pay exactly one null-pointer test.
//
// Event families (docs/observability.md has the full schema):
//   - unit:        an atomic unit executed [start, end) on a processor.
//   - queue-wait:  the gap between a unit's last external dependence being
//                  satisfied (ready) and its dispatch onto a processor.
//   - cache:       the simulated occupancy layer's hits, misses, evictions
//                  and sb pin/unpin reservations (pmh/occupancy.hpp).
//                  Attaching a sink turns the occupancy simulation on even
//                  without --misses; the measured-Q stats stay suppressed
//                  so outputs are unchanged.
//   - job:         service-mode lifecycle (src/serve/): arrival, admission,
//                  completion, deadline miss, in global service time.
//
// All hooks have empty default bodies so a sink subscribes only to the
// families it cares about. Times are simulated machine time (the same unit
// as makespan); ids are raw integers so this header stays dependency-free.
#pragma once

#include <cstdint>

namespace ndf::obs {

/// What happened in a simulated cache (pmh/occupancy.hpp).
enum class CacheEvent : std::uint8_t {
  kHit,    ///< footprint found resident; no traffic
  kMiss,   ///< footprint loaded; `words` of reload traffic (the Q_i unit)
  kEvict,  ///< a resident or reserved footprint was evicted for capacity
  kPin,    ///< sb anchored a task: its footprint is reserved, evict-proof
  kUnpin,  ///< the reservation was released (task complete)
};

/// Service-mode job lifecycle (src/serve/engine.cpp).
enum class JobEvent : std::uint8_t {
  kArrival,       ///< the job entered the admission queue
  kAdmit,         ///< the machine picked it; execution starts
  kComplete,      ///< last unit finished
  kDeadlineMiss,  ///< completed after its absolute deadline
};

/// Receiver of trace events. All hooks default to no-ops; implementations
/// must not throw. A sink is driven from exactly one simulation at a time
/// (the sweep engines trace only grid cell 0), so implementations need no
/// internal locking.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Atomic unit `unit` (spawn-tree root node `root`) ran [start, end) on
  /// processor `proc`.
  virtual void on_unit(double start, double end, std::uint32_t proc,
                       std::int64_t unit, std::int64_t root) {
    (void)start, (void)end, (void)proc, (void)unit, (void)root;
  }

  /// Unit `unit` became ready (last external dependence satisfied) at
  /// `ready` and was dispatched onto `proc` at `start`; the difference is
  /// its dispatch-queue wait. Emitted once per unit, at dispatch.
  virtual void on_queue_wait(double ready, double start, std::uint32_t proc,
                             std::int64_t unit) {
    (void)ready, (void)start, (void)proc, (void)unit;
  }

  /// Cache event at time `t` in the level-`level` cache with index `cache`:
  /// footprint key `task`, `words` of (line-quantized) footprint, and the
  /// cache's total resident+reserved words after the event (`used_after`,
  /// the occupancy counter-track sample).
  virtual void on_cache(CacheEvent kind, double t, std::uint32_t level,
                        std::uint32_t cache, std::int64_t task, double words,
                        double used_after) {
    (void)kind, (void)t, (void)level, (void)cache, (void)task, (void)words,
        (void)used_after;
  }

  /// Service-mode job event at global service time `t`: job stream index
  /// `job`, tenant id `tenant`, and a label (the tenant name for kArrival,
  /// the workload label for kAdmit, empty otherwise). `label` is only
  /// valid for the duration of the call — copy it.
  virtual void on_job(JobEvent kind, double t, std::int64_t job,
                      std::uint32_t tenant, const char* label) {
    (void)kind, (void)t, (void)job, (void)tenant, (void)label;
  }
};

/// Forwards every event to an inner sink with all timestamps shifted by a
/// fixed offset. The service engine wraps each job's SimCore run in one of
/// these (offset = the job's admission time) so a whole stream's events
/// land on one global service-time axis even though every job's simulation
/// starts its local clock at zero.
class OffsetSink final : public TraceSink {
 public:
  OffsetSink(TraceSink* inner, double offset)
      : inner_(inner), offset_(offset) {}

  void on_unit(double start, double end, std::uint32_t proc,
               std::int64_t unit, std::int64_t root) override {
    inner_->on_unit(start + offset_, end + offset_, proc, unit, root);
  }
  void on_queue_wait(double ready, double start, std::uint32_t proc,
                     std::int64_t unit) override {
    inner_->on_queue_wait(ready + offset_, start + offset_, proc, unit);
  }
  void on_cache(CacheEvent kind, double t, std::uint32_t level,
                std::uint32_t cache, std::int64_t task, double words,
                double used_after) override {
    inner_->on_cache(kind, t + offset_, level, cache, task, words,
                     used_after);
  }
  void on_job(JobEvent kind, double t, std::int64_t job, std::uint32_t tenant,
              const char* label) override {
    inner_->on_job(kind, t + offset_, job, tenant, label);
  }

 private:
  TraceSink* inner_;
  double offset_;
};

}  // namespace ndf::obs
