// Progress heartbeat for long sweeps: a thread-safe, rate-limited meter
// that prints `progress[run]: phase done/total (pct) elapsed Xs eta Ys`
// lines. All output goes to the chosen stream (stderr by default) so
// stdout emitters stay byte-identical; a default-constructed or disabled
// meter makes every call a cheap no-op.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>

namespace ndf::obs {

class ProgressMeter {
 public:
  /// Disabled meter: begin_phase/tick/finish do nothing.
  ProgressMeter() = default;

  /// `label` names the run (appears as `progress[label]:`); `os` defaults
  /// to std::cerr; `interval_s` is the minimum spacing between heartbeat
  /// lines (the begin and finish lines always print).
  explicit ProgressMeter(bool enabled, std::string label,
                         std::ostream* os = nullptr, double interval_s = 1.0);

  bool enabled() const { return enabled_; }

  /// Starts a phase of `total` work items (prints the 0/total line).
  void begin_phase(const std::string& phase, std::size_t total);

  /// Marks `n` items of the current phase done; prints a heartbeat if at
  /// least interval_s has passed since the last line. Safe to call from
  /// multiple worker threads.
  void tick(std::size_t n = 1);

  /// Ends the current phase (prints the done-in line). No-op if no phase
  /// is open.
  void finish();

 private:
  using Clock = std::chrono::steady_clock;
  double elapsed_s(Clock::time_point since) const;
  void print_line(double frac_known, std::size_t done);  // mu_ held

  bool enabled_ = false;
  std::string label_;
  std::ostream* os_ = nullptr;
  double interval_s_ = 1.0;

  std::mutex mu_;
  std::string phase_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  bool open_ = false;
  Clock::time_point phase_start_{};
  Clock::time_point last_print_{};
};

}  // namespace ndf::obs
