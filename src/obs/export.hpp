// Trace exporters behind `--trace-out`: Chrome trace-event JSON (loads in
// Perfetto / chrome://tracing) and a compact CSV of the raw event stream.
//
// Chrome-trace track layout (docs/observability.md):
//   pid 0 "processors" — one thread per processor carrying unit slices
//     (cat "unit") and dispatch-queue waits (cat "queue"), plus a
//     "ready-queue" counter track (units ready but not yet dispatched).
//   pid 1 "caches"     — one thread per (level, cache) carrying miss /
//     evict / pin / unpin instants (cat "cache"; hits are elided — they
//     don't change occupancy) and one "used L<l> c<i>" counter track per
//     cache sampling resident+reserved words after each event.
//   pid 2 "service"    — one thread per tenant: arrival instants, then a
//     wait slice (arrival→admit) and a service slice (admit→complete) per
//     job, and deadline-miss instants (cat "job").
// All timestamps are simulated machine time written as Chrome `ts`
// microseconds (1 sim time unit = 1 µs on screen).
#pragma once

#include <ostream>
#include <string>

#include "obs/recorder.hpp"

namespace ndf::obs {

/// Writes the Chrome trace-event JSON document; `name` identifies the run
/// in the file's otherData block.
void write_chrome_trace(std::ostream& os, const EventRecorder& rec,
                        const std::string& name);

/// Writes every recorded event as one CSV row (header
/// `kind,sub,t0,t1,a,b,c,words,value,label`; field meaning per kind as in
/// obs/recorder.hpp, hits included).
void write_events_csv(std::ostream& os, const EventRecorder& rec);

/// Writes `rec` to `path`: CSV when the path ends in `.csv`, Chrome JSON
/// otherwise. Throws CheckError if the file cannot be opened. Debug builds
/// re-validate the unit trace (validate_trace) before writing.
void write_trace_file(const std::string& path, const EventRecorder& rec,
                      const std::string& name);

}  // namespace ndf::obs
