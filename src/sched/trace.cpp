#include "sched/trace.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace ndf {

std::vector<double> utilization_timeline(const Trace& trace,
                                         std::size_t num_procs,
                                         double makespan,
                                         std::size_t buckets) {
  NDF_CHECK(num_procs > 0 && buckets > 0 && makespan > 0);
  std::vector<double> busy(buckets, 0.0);
  const double w = makespan / double(buckets);
  for (const TraceEvent& e : trace) {
    const double lo = std::max(0.0, e.start);
    const double hi = std::min(makespan, e.end);
    if (hi <= lo) continue;
    const std::size_t b0 = std::min(buckets - 1, std::size_t(lo / w));
    const std::size_t b1 = std::min(buckets - 1, std::size_t(hi / w));
    for (std::size_t b = b0; b <= b1; ++b) {
      const double s = std::max(lo, double(b) * w);
      const double t = std::min(hi, double(b + 1) * w);
      if (t > s) busy[b] += t - s;
    }
  }
  for (double& x : busy) x /= w * double(num_procs);
  return busy;
}

bool validate_trace(const Trace& trace, std::size_t num_procs,
                    std::string* msg) {
  std::vector<std::vector<std::pair<double, double>>> per_proc(num_procs);
  for (const TraceEvent& e : trace) {
    if (e.proc >= num_procs || e.end < e.start) {
      if (msg) *msg = "malformed trace event";
      return false;
    }
    per_proc[e.proc].push_back({e.start, e.end});
  }
  for (std::size_t p = 0; p < num_procs; ++p) {
    auto& iv = per_proc[p];
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i)
      if (iv[i].first < iv[i - 1].second - 1e-9) {
        if (msg) {
          std::ostringstream os;
          os << "processor " << p << " overlaps at t=" << iv[i].first;
          *msg = os.str();
        }
        return false;
      }
  }
  return true;
}

}  // namespace ndf
