// "edf" policy: the deadline-aware entry of the registry, after the
// sledge-serverless SCHEDULER_EDF option. Deadlines live on *jobs* (the
// service mode's admission unit, src/serve/), not on atomic units, so the
// policy splits across the two layers:
//
//   - Admission (service mode): the registration's deadline_aware flag
//     makes the serve engine order queued jobs earliest-absolute-deadline
//     first — non-preemptive EDF over job DAGs, ties broken by arrival
//     time then submission index. Jobs without a deadline sort last.
//   - Unit order (inside one job, and in batch sweeps where there is no
//     job stream): a single DAG has no deadlines to compare, so the unit
//     discipline degenerates to the greedy baseline — one global FIFO of
//     ready units under the distributed optimal-replacement charge. Batch
//     edf stats are therefore bit-identical to greedy's (tested), which
//     keeps the policy meaningful on every driver without forking the
//     cache model.
#include <deque>
#include <memory>

#include "sched/registry.hpp"

namespace ndf {

namespace {

class EdfScheduler final : public Scheduler {
 public:
  explicit EdfScheduler(const SchedOptions&) {}

  const char* name() const override { return "edf"; }

  void init(SimCore& core) override {
    core_ = &core;
    unit_dur_ = &core.distributed_unit_durations();
    core.charge_condensed_footprints();
  }

  void on_start() override {
    for (int u : core_->initially_ready_units()) ready_.push_back(u);
  }

  void on_task_ready(std::size_t level, int task) override {
    if (level == 1) ready_.push_back(task);
  }

  Assignment pick(std::size_t, double) override {
    if (ready_.empty()) return {};
    const int u = ready_.front();
    ready_.pop_front();
    return {u, (*unit_dur_)[u]};
  }

 private:
  SimCore* core_ = nullptr;
  const std::vector<double>* unit_dur_ = nullptr;  // core's cached table
  std::deque<int> ready_;  // global FIFO — greedy's unit discipline
};

}  // namespace

namespace detail {
void register_edf_scheduler() {
  register_scheduler(
      "edf",
      "deadline-aware: EDF-over-jobs admission in service mode; greedy "
      "unit order within a job",
      [](const SchedOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<EdfScheduler>(opts);
      },
      /*deadline_aware=*/true);
}
}  // namespace detail

}  // namespace ndf
