// "serial" policy: the depth-first serial elision — every atomic unit runs
// on processor 0, and among ready units the leftmost in spawn-tree
// (depth-first) order runs first. The determinism baseline: its makespan is
// exactly total_work + miss_cost on any machine, and its unit order is the
// order a single-processor depth-first execution would produce (atomic
// units are indexed in spawn-tree order, so "smallest ready index" is
// depth-first order restricted to the dependence constraints).
//
// Cache model: the same distributed optimal-replacement charge as "sb" and
// "greedy" (DESIGN.md), so serial/p is the Eq. (22) balance reference for
// any of them. With SchedOptions::measure_misses the LRU occupancy layer
// reports the depth-first execution's actual reloads through processor
// 0's cache path — the sequential cache complexity the paper's Q(t; M)
// generalizes.
#include <memory>
#include <queue>

#include "sched/registry.hpp"

namespace ndf {

namespace {

class SerialScheduler final : public Scheduler {
 public:
  explicit SerialScheduler(const SchedOptions&) {}

  const char* name() const override { return "serial"; }

  void init(SimCore& core) override {
    core_ = &core;
    unit_dur_ = &core.distributed_unit_durations();
    core.charge_condensed_footprints();
  }

  void on_start() override {
    for (int u : core_->initially_ready_units()) ready_.push(u);
  }

  void on_task_ready(std::size_t level, int task) override {
    if (level == 1) ready_.push(task);
  }

  Assignment pick(std::size_t proc, double) override {
    if (proc != 0 || ready_.empty()) return {};
    const int u = ready_.top();
    ready_.pop();
    return {u, (*unit_dur_)[u]};
  }

 private:
  SimCore* core_ = nullptr;
  const std::vector<double>* unit_dur_ = nullptr;  // core's cached table
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready_;
};

}  // namespace

namespace detail {
void register_serial_scheduler() {
  register_scheduler(
      "serial", "depth-first serial elision on processor 0 (determinism "
                "baseline)",
      [](const SchedOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<SerialScheduler>(opts);
      });
}
}  // namespace detail

}  // namespace ndf
