#include "sched/registry.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ndf {

namespace detail {
// Defined in the policy translation units. Called eagerly on first registry
// access so a static-library build cannot drop a policy whose object file
// nothing else references.
void register_sb_scheduler();
void register_ws_scheduler();
void register_greedy_scheduler();
void register_serial_scheduler();
void register_edf_scheduler();
}  // namespace detail

namespace {

struct Entry {
  std::string description;
  SchedulerFactory factory;
  bool deadline_aware = false;
};

std::map<std::string, Entry>& table() {
  static std::map<std::string, Entry> t;
  return t;
}

void ensure_builtins() {
  static const bool once = [] {
    detail::register_sb_scheduler();
    detail::register_ws_scheduler();
    detail::register_greedy_scheduler();
    detail::register_serial_scheduler();
    detail::register_edf_scheduler();
    return true;
  }();
  (void)once;
}

// Safe to call from any error path: registers the builtins itself, so an
// unknown-policy message always lists what is actually available instead of
// whatever happened to be registered at the time.
std::string known_names() {
  ensure_builtins();
  std::string s;
  for (const auto& [name, entry] : table()) {
    if (!s.empty()) s += ", ";
    s += name;
  }
  return s.empty() ? "<none>" : s;
}

}  // namespace

bool register_scheduler(const std::string& name,
                        const std::string& description,
                        SchedulerFactory factory,
                        bool deadline_aware) {
  NDF_CHECK_MSG(!name.empty() && factory, "bad scheduler registration");
  return table()
      .emplace(name, Entry{description, std::move(factory), deadline_aware})
      .second;
}

bool scheduler_registered(const std::string& name) {
  ensure_builtins();
  return table().count(name) > 0;
}

bool scheduler_deadline_aware(const std::string& name) {
  ensure_builtins();
  const auto it = table().find(name);
  NDF_CHECK_MSG(it != table().end(), "unknown scheduler '"
                                         << name << "' (registered: "
                                         << known_names() << ")");
  return it->second.deadline_aware;
}

std::vector<SchedulerInfo> registered_schedulers() {
  ensure_builtins();
  std::vector<SchedulerInfo> out;
  for (const auto& [name, entry] : table())
    out.push_back({name, entry.description, entry.deadline_aware});
  return out;  // std::map iterates sorted by name
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedOptions& opts) {
  ensure_builtins();
  const auto it = table().find(name);
  NDF_CHECK_MSG(it != table().end(), "unknown scheduler '"
                                         << name << "' (registered: "
                                         << known_names() << ")");
  return it->second.factory(opts);
}

SchedStats run_scheduler(const std::string& name, const StrandGraph& g,
                         const Pmh& machine, const SchedOptions& opts) {
  const auto policy = make_scheduler(name, opts);
  SimCore core(g, machine, opts);
  return core.run(*policy);
}

std::vector<std::string> parse_sched_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    NDF_CHECK_MSG(scheduler_registered(item),
                  "unknown scheduler '" << item << "' in --sched list "
                                        << "(registered: " << known_names()
                                        << ")");
    if (std::find(out.begin(), out.end(), item) == out.end())
      out.push_back(item);
  }
  return out;
}

}  // namespace ndf
