#include "sched/condensed_dag.hpp"

#include <atomic>

#include "pmh/machine.hpp"

namespace ndf {

namespace {
std::atomic<std::size_t> g_builds{0};
}  // namespace

std::vector<double> level_cache_sizes(const Pmh& machine) {
  std::vector<double> sizes;
  sizes.reserve(machine.num_cache_levels());
  for (std::size_t l = 1; l <= machine.num_cache_levels(); ++l)
    sizes.push_back(machine.cache_size(l));
  return sizes;
}

CondensedDag::CondensedDag(const StrandGraph& g, std::vector<double> sizes,
                           double sigma)
    : g_(&g), tree_(&g.tree()), sigma_(sigma), sizes_(std::move(sizes)) {
  NDF_CHECK(sigma_ > 0.0 && sigma_ < 1.0);
  NDF_CHECK_MSG(!sizes_.empty(), "condensation needs at least one cache level");
  ++g_builds;

  const std::size_t L = sizes_.size();
  dec_.reserve(L);
  for (std::size_t l = 1; l <= L; ++l)
    dec_.push_back(decompose(*tree_, sigma_ * sizes_[l - 1]));

  // Flat (level, task) arena layout: level l's counters start at
  // ext_off_[l-1]. All per-run counter state and the per-task size table
  // share these offsets.
  ext_off_.resize(L);
  std::size_t arena = 0;
  for (std::size_t l = 1; l <= L; ++l) {
    ext_off_[l - 1] = arena;
    arena += dec_[l - 1].maximal.size();
  }
  ext0_flat_.assign(arena, 0);

  task_units_.resize(L);
  for (std::size_t l = 1; l <= L; ++l)
    task_units_[l - 1].assign(dec_[l - 1].maximal.size(), 0);

  unit_task_.resize(L * num_units());
  for (std::size_t u = 0; u < num_units(); ++u)
    for (std::size_t l = 1; l <= L; ++l) {
      const int t = dec_[l - 1].owner[dec_[0].maximal[u]];
      unit_task_[(l - 1) * num_units() + u] = std::uint32_t(t);
      ++task_units_[l - 1][t];
    }

  task_size_.resize(arena);
  level_footprint_.assign(L, 0.0);
  for (std::size_t l = 1; l <= L; ++l)
    for (std::size_t t = 0; t < dec_[l - 1].maximal.size(); ++t) {
      const double s = tree_->size_of(dec_[l - 1].maximal[t]);
      task_size_[ext_off_[l - 1] + t] = s;
      level_footprint_[l - 1] += s;
    }

  unit_work_.resize(num_units());
  for (std::size_t u = 0; u < num_units(); ++u) {
    unit_work_[u] = tree_->work_of(dec_[0].maximal[u]);
    total_work_ += unit_work_[u];
  }

  // Dependence-counter template and the per-edge arrow CSR, built by the
  // one boundary-crossing walk (for_each_external_arrow). Edge ids follow
  // (vertex, successor-index) order — exactly the order SimCore's firing
  // loop visits them — so the event loop replays this walk as a linear
  // scan of arrows_ instead of re-deriving it per fire.
  edge_base_.resize(g_->num_vertices());
  arrow_off_.reserve(g_->num_edges() + 1);
  arrow_off_.push_back(0);
  std::size_t e = 0;
  for (VertexId v = 0; v < g_->num_vertices(); ++v) {
    edge_base_[v] = e;
    for (VertexId w : g_->successors(v)) {
      for_each_external_arrow(v, w, [&](std::size_t l, int t) {
        const std::size_t flat = ext_off_[l - 1] + std::size_t(t);
        ++ext0_flat_[flat];
        arrows_.push_back({std::uint32_t(flat), std::uint32_t(l)});
      });
      arrow_off_.push_back(std::uint32_t(arrows_.size()));
      ++e;
    }
  }
  NDF_CHECK(e == g_->num_edges());

  in_deg0_.resize(g_->num_vertices());
  for (VertexId v = 0; v < g_->num_vertices(); ++v)
    in_deg0_[v] = g_->in_degree(v);
}

bool CondensedDag::compatible_with(const Pmh& machine, double sigma) const {
  if (sigma != sigma_) return false;
  if (machine.num_cache_levels() != sizes_.size()) return false;
  for (std::size_t l = 1; l <= sizes_.size(); ++l)
    if (machine.cache_size(l) != sizes_[l - 1]) return false;
  return true;
}

std::size_t CondensedDag::total_builds() { return g_builds.load(); }

}  // namespace ndf
