#include "sched/condensed_dag.hpp"

#include <atomic>

#include "pmh/machine.hpp"

namespace ndf {

namespace {
std::atomic<std::size_t> g_builds{0};
}  // namespace

std::vector<double> level_cache_sizes(const Pmh& machine) {
  std::vector<double> sizes;
  sizes.reserve(machine.num_cache_levels());
  for (std::size_t l = 1; l <= machine.num_cache_levels(); ++l)
    sizes.push_back(machine.cache_size(l));
  return sizes;
}

CondensedDag::CondensedDag(const StrandGraph& g, std::vector<double> sizes,
                           double sigma)
    : g_(&g), tree_(&g.tree()), sigma_(sigma), sizes_(std::move(sizes)) {
  NDF_CHECK(sigma_ > 0.0 && sigma_ < 1.0);
  NDF_CHECK_MSG(!sizes_.empty(), "condensation needs at least one cache level");
  ++g_builds;

  const std::size_t L = sizes_.size();
  dec_.reserve(L);
  for (std::size_t l = 1; l <= L; ++l)
    dec_.push_back(decompose(*tree_, sigma_ * sizes_[l - 1]));

  ext0_.resize(L);
  task_units_.resize(L);
  for (std::size_t l = 1; l <= L; ++l) {
    ext0_[l - 1].assign(dec_[l - 1].maximal.size(), 0);
    task_units_[l - 1].assign(dec_[l - 1].maximal.size(), 0);
  }
  for (std::size_t u = 0; u < num_units(); ++u)
    for (std::size_t l = 1; l <= L; ++l)
      ++task_units_[l - 1][dec_[l - 1].owner[dec_[0].maximal[u]]];

  unit_work_.resize(num_units());
  for (std::size_t u = 0; u < num_units(); ++u) {
    unit_work_[u] = tree_->work_of(dec_[0].maximal[u]);
    total_work_ += unit_work_[u];
  }

  // Dependence-counter template: one external arrow per edge crossing a
  // maximal task boundary, at every level it crosses. Uses the same walk
  // SimCore's count_edge decrements through.
  for (VertexId v = 0; v < g_->num_vertices(); ++v)
    for (VertexId w : g_->successors(v))
      for_each_external_arrow(
          v, w, [&](std::size_t l, int t) { ++ext0_[l - 1][t]; });

  in_deg0_.resize(g_->num_vertices());
  for (VertexId v = 0; v < g_->num_vertices(); ++v)
    in_deg0_[v] = g_->in_degree(v);
}

bool CondensedDag::compatible_with(const Pmh& machine, double sigma) const {
  if (sigma != sigma_) return false;
  if (machine.num_cache_levels() != sizes_.size()) return false;
  for (std::size_t l = 1; l <= sizes_.size(); ++l)
    if (machine.cache_size(l) != sizes_[l - 1]) return false;
  return true;
}

std::size_t CondensedDag::total_builds() { return g_builds.load(); }

}  // namespace ndf
