#include "sched/sb_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "analysis/pcc.hpp"
#include "sched/registry.hpp"

namespace ndf {

namespace {

constexpr int kRoot = -1;

/// Per-maximal-task anchoring state at one cache level. Readiness (the
/// external-dependence count) lives in the core.
struct Task {
  NodeId root = kNoNode;
  double size = 0.0;
  int parent = kRoot;      ///< task index at the level above (kRoot = memory)
  bool oversized = false;  ///< size > σM at this level (a big strand)
  bool anchored = false;
  bool in_pending = false;
  int anchor_cache = -1;           ///< cache index at this level
  std::vector<std::size_t> lease;  ///< leased child-cache indices
};

/// The "sb" policy: anchoring, boundedness and allocation over the core's
/// readiness/event machinery.
class SbScheduler final : public Scheduler {
 public:
  explicit SbScheduler(const SchedOptions& opts) : opts_(opts) {}

  const char* name() const override { return "sb"; }

  void init(SimCore& core) override {
    core_ = &core;
    const SpawnTree& tree = core.tree();
    const Pmh& m = core.machine();
    const std::size_t L = core.num_levels();

    task_.resize(L);
    kids_.assign(L, {});
    for (std::size_t l = 1; l <= L; ++l) {
      const Decomposition& d = core.decomposition(l);
      auto& tl = task_[l - 1];
      tl.resize(d.maximal.size());
      for (std::size_t i = 0; i < tl.size(); ++i) {
        Task& t = tl[i];
        t.root = d.maximal[i];
        t.size = tree.size_of(t.root);
        t.oversized = t.size > opts_.sigma * m.cache_size(l);
        t.parent =
            l < L ? core.decomposition(l + 1).owner[t.root] : kRoot;
      }
    }
    for (std::size_t l = 2; l <= L; ++l) {
      kids_[l - 1].resize(task_[l - 1].size());
      for (std::size_t i = 0; i < task_[l - 2].size(); ++i) {
        const int p = task_[l - 2][i].parent;
        NDF_CHECK(p >= 0);
        kids_[l - 1][p].push_back(static_cast<int>(i));
      }
    }

    unit_dur_ = &core.distributed_unit_durations();
    unit_dispatched_.assign(core.num_units(), false);

    used_.resize(L);
    leased_to_.resize(L);
    runq_.resize(L);
    pending_.assign(L, {});
    for (std::size_t l = 1; l <= L; ++l) {
      used_[l - 1].assign(m.num_caches(l), 0.0);
      leased_to_[l - 1].assign(m.num_caches(l), -1);
      runq_[l - 1].resize(m.num_caches(l));
    }
  }

  void on_start() override {
    // Seed anchoring with every dependency-free task, top level first.
    const std::size_t L = core_->num_levels();
    for (std::size_t l = L; l >= 1; --l) {
      for (std::size_t i = 0; i < task_[l - 1].size(); ++i)
        if (core_->task_ext(l, static_cast<int>(i)) == 0)
          to_try_.push_back({l, static_cast<int>(i)});
      if (l == 1) break;
    }
    drain_anchor_worklist();
  }

  void on_task_ready(std::size_t level, int t) override {
    if (!task_[level - 1][t].anchored) to_try_.push_back({level, t});
  }

  void on_exit_fired(NodeId n) override { release_if_task_done(n); }

  void on_unit_complete(std::size_t, int) override {
    drain_anchor_worklist();
  }

  Assignment pick(std::size_t proc, double) override {
    const Pmh& m = core_->machine();
    for (std::size_t l = 1; l <= core_->num_levels(); ++l) {
      auto& q = runq_[l - 1][m.cache_above(proc, l)];
      if (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        return {u, (*unit_dur_)[u]};
      }
    }
    if (!runq_mem_.empty()) {
      const int u = runq_mem_.front();
      runq_mem_.pop_front();
      return {u, (*unit_dur_)[u]};
    }
    return {};
  }

 private:
  /// Releases capacity/leases of every anchored task rooted at node n (it
  /// can be maximal at several consecutive levels).
  void release_if_task_done(NodeId n) {
    for (std::size_t l = 1; l <= core_->num_levels(); ++l) {
      const int ti = core_->decomposition(l).owner[n];
      if (ti < 0) continue;  // glue at this level, maybe a task above
      Task& t = task_[l - 1][ti];
      if (t.root != n || !t.anchored || t.oversized) continue;
      used_[l - 1][t.anchor_cache] -= t.size;
      core_->unpin_footprint(l, std::size_t(t.anchor_cache), ti);
      if (l > 1)
        for (std::size_t c : t.lease) leased_to_[l - 2][c] = -1;
      retry_pending(l);
      if (l > 1) retry_pending(l - 1);  // freed leases unblock children
    }
  }

  void retry_pending(std::size_t l) {
    for (int ti : pending_[l - 1]) {
      task_[l - 1][ti].in_pending = false;
      to_try_.push_back({l, ti});
    }
    pending_[l - 1].clear();
  }

  bool parent_anchored(std::size_t l, const Task& t) const {
    if (l == core_->num_levels() || t.parent == kRoot) return true;
    return task_[l][t.parent].anchored;
  }

  /// gi(S): number of level-(l-1) subclusters for a size-S task at level l.
  std::size_t allocation(std::size_t l, double S) const {
    const Pmh& m = core_->machine();
    const double fi = double(m.fanout(l));
    const double frac = std::pow(3.0 * S / m.cache_size(l), opts_.alpha_prime);
    return static_cast<std::size_t>(
        std::min(fi, std::max(1.0, std::floor(fi * frac))));
  }

  void enqueue_unit(int u) {
    if (unit_dispatched_[u]) return;
    unit_dispatched_[u] = true;
    const NodeId n = task_[0][u].root;
    for (std::size_t l = 1; l <= core_->num_levels(); ++l) {
      const Task& t = task_[l - 1][core_->decomposition(l).owner[n]];
      if (!t.oversized) {
        NDF_CHECK(t.anchored && t.anchor_cache >= 0);
        runq_[l - 1][t.anchor_cache].push_back(u);
        return;
      }
    }
    runq_mem_.push_back(u);
  }

  void try_anchor(std::size_t l, int ti) {
    const Pmh& m = core_->machine();
    Task& t = task_[l - 1][ti];
    if (t.anchored || core_->task_ext(l, ti) != 0 || !parent_anchored(l, t))
      return;
    if (!t.oversized) {
      // Candidate anchors: parent's leased subclusters (all level-L caches
      // for top-level tasks).
      int chosen = -1;
      auto consider = [&](std::size_t c) {
        if (chosen >= 0) return;
        if (used_[l - 1][c] + t.size > opts_.sigma * m.cache_size(l)) return;
        if (l > 1) {
          const std::size_t f = m.fanout(l);
          bool any_free = false;
          for (std::size_t k = c * f; k < (c + 1) * f; ++k)
            if (leased_to_[l - 2][k] < 0) {
              any_free = true;
              break;
            }
          if (!any_free) return;
        }
        chosen = static_cast<int>(c);
      };
      if (l == core_->num_levels() || t.parent == kRoot) {
        for (std::size_t c = 0; c < m.num_caches(l); ++c) consider(c);
      } else {
        for (std::size_t c : task_[l][t.parent].lease) consider(c);
      }
      if (chosen < 0) {
        if (!t.in_pending) {
          t.in_pending = true;
          pending_[l - 1].push_back(ti);
        }
        return;
      }
      t.anchored = true;
      t.anchor_cache = chosen;
      used_[l - 1][chosen] += t.size;
      // Measured occupancy mirrors the capacity reservation: an anchored
      // footprint cannot be evicted until release, so it loads at most
      // once — the mechanism behind measured Q_i <= Q*(sigma*Mi).
      core_->pin_footprint(l, std::size_t(chosen), ti);
      if (l > 1) {
        const std::size_t want = allocation(l, t.size);
        const std::size_t f = m.fanout(l);
        for (std::size_t k = std::size_t(chosen) * f;
             k < (std::size_t(chosen) + 1) * f && t.lease.size() < want; ++k)
          if (leased_to_[l - 2][k] < 0) {
            leased_to_[l - 2][k] = ti;
            t.lease.push_back(k);
          }
      }
    } else {
      t.anchored = true;
    }
    core_->stats().misses[l - 1] += t.size;
    ++core_->stats().anchors;
    if (l == 1) {
      enqueue_unit(ti);
    } else {
      for (int c : kids_[l - 1][ti]) to_try_.push_back({l - 1, c});
    }
  }

  void drain_anchor_worklist() {
    while (!to_try_.empty()) {
      auto [l, ti] = to_try_.back();
      to_try_.pop_back();
      try_anchor(l, ti);
    }
  }

  const SchedOptions opts_;
  SimCore* core_ = nullptr;

  std::vector<std::vector<Task>> task_;             // task_[l-1]
  std::vector<std::vector<std::vector<int>>> kids_; // kids_[l-1][t] at l-1
  // The core's cached distributed-charge table (valid for this run's
  // (dag, machine, charge) binding — no per-run copy).
  const std::vector<double>* unit_dur_ = nullptr;
  std::vector<bool> unit_dispatched_;

  // Cache occupancy and child leases, per level.
  std::vector<std::vector<double>> used_;    // used_[l-1][cache]
  std::vector<std::vector<int>> leased_to_;  // leased_to_[l-1][cache]

  // Run queues: runq_[l-1][cache] plus the memory-level queue.
  std::vector<std::vector<std::deque<int>>> runq_;
  std::deque<int> runq_mem_;

  // Anchoring work-list and capacity-blocked tasks.
  std::vector<std::pair<std::size_t, int>> to_try_;  // (level, task)
  std::vector<std::vector<int>> pending_;            // pending_[l-1]
};

}  // namespace

namespace detail {
void register_sb_scheduler() {
  register_scheduler(
      "sb", "space-bounded: anchoring + boundedness + allocation (Sec. 4)",
      [](const SchedOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<SbScheduler>(opts);
      });
}
}  // namespace detail

SchedStats run_sb_scheduler(const StrandGraph& g, const Pmh& machine,
                            const SchedOptions& opts) {
  return run_scheduler("sb", g, machine, opts);
}

double sb_balanced_bound(const SpawnTree& tree, const Pmh& machine,
                         double sigma) {
  double cost = tree.work_of(tree.root());
  for (std::size_t l = 1; l <= machine.num_cache_levels(); ++l)
    cost += parallel_cache_complexity(tree, sigma * machine.cache_size(l)) *
            machine.miss_cost(l);
  return cost / double(machine.num_processors());
}

}  // namespace ndf
