#include "sched/sb_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "analysis/pcc.hpp"

namespace ndf {

namespace {

constexpr int kRoot = -1;

/// Per-maximal-task scheduler state at one cache level.
struct Task {
  NodeId root = kNoNode;
  double size = 0.0;
  int parent = kRoot;      ///< task index at the level above (kRoot = memory)
  int ext = 0;             ///< unsatisfied external incoming dataflow arrows
  bool oversized = false;  ///< size > σM at this level (a big strand)
  bool anchored = false;
  bool in_pending = false;
  int anchor_cache = -1;               ///< cache index at this level
  std::vector<std::size_t> lease;      ///< leased child-cache indices
  std::size_t units = 0;               ///< atomic units underneath
};

struct Simulator {
  const StrandGraph& g;
  const SpawnTree& tree;
  const Pmh& m;
  const SbOptions& opts;

  std::size_t L;                        // number of cache levels
  std::vector<Decomposition> dec;       // dec[l-1] = σM_l decomposition
  std::vector<std::vector<Task>> task;  // task[l-1]
  std::vector<std::vector<std::vector<int>>> kids;  // kids[l-1][t] at l-1

  // Atomic units = level-1 maximal tasks (indices into task[0]).
  std::vector<double> unit_work, unit_dur;
  std::vector<bool> unit_dispatched;

  // Vertex firing state.
  std::vector<char> fired;
  std::vector<std::uint32_t> in_deg;

  // Cache occupancy and child leases, per level.
  std::vector<std::vector<double>> used;    // used[l-1][cache]
  std::vector<std::vector<int>> leased_to;  // leased_to[l-1][cache]

  // Run queues: runq[l-1][cache] plus the memory-level queue.
  std::vector<std::vector<std::deque<int>>> runq;
  std::deque<int> runq_mem;

  // Anchoring work-list and capacity-blocked tasks.
  std::vector<std::pair<std::size_t, int>> to_try;  // (level, task)
  std::vector<std::vector<int>> pending;            // pending[l-1]

  struct Ev {
    double time;
    std::size_t proc;
    int unit;
    bool operator>(const Ev& o) const { return time > o.time; }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events;
  std::vector<std::size_t> idle;

  SbStats stats;
  double busy_time = 0.0;

  Simulator(const StrandGraph& g_, const Pmh& m_, const SbOptions& o_)
      : g(g_), tree(g_.tree()), m(m_), opts(o_) {}

  int owner_at(std::size_t level, NodeId n) const {
    return dec[level - 1].owner[n];
  }

  void setup() {
    L = m.num_cache_levels();
    NDF_CHECK(opts.sigma > 0.0 && opts.sigma < 1.0);
    dec.reserve(L);
    for (std::size_t l = 1; l <= L; ++l)
      dec.push_back(decompose(tree, opts.sigma * m.cache_size(l)));

    task.resize(L);
    kids.assign(L, {});
    for (std::size_t l = 1; l <= L; ++l) {
      auto& tl = task[l - 1];
      tl.resize(dec[l - 1].maximal.size());
      for (std::size_t i = 0; i < tl.size(); ++i) {
        Task& t = tl[i];
        t.root = dec[l - 1].maximal[i];
        t.size = tree.size_of(t.root);
        t.oversized = t.size > opts.sigma * m.cache_size(l);
        t.parent = l < L ? owner_at(l + 1, t.root) : kRoot;
      }
    }
    for (std::size_t l = 2; l <= L; ++l) {
      kids[l - 1].resize(task[l - 1].size());
      for (std::size_t i = 0; i < task[l - 2].size(); ++i) {
        const int p = task[l - 2][i].parent;
        NDF_CHECK(p >= 0);
        kids[l - 1][p].push_back(static_cast<int>(i));
      }
    }

    const auto& units = task[0];
    for (std::size_t u = 0; u < units.size(); ++u)
      for (std::size_t l = 1; l <= L; ++l)
        ++task[l - 1][owner_at(l, units[u].root)].units;

    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId w : g.successors(v)) count_edge(v, w, +1);

    unit_work.resize(units.size());
    unit_dur.resize(units.size());
    unit_dispatched.assign(units.size(), false);
    for (std::size_t u = 0; u < units.size(); ++u) {
      unit_work[u] = tree.work_of(units[u].root);
      double charge = 0.0;
      if (opts.charge_misses)
        for (std::size_t l = 1; l <= L; ++l) {
          const Task& t = task[l - 1][owner_at(l, units[u].root)];
          charge += t.size * m.miss_cost(l) / double(t.units);
        }
      unit_dur[u] = unit_work[u] + charge;
      stats.total_work += unit_work[u];
    }

    fired.assign(g.num_vertices(), 0);
    in_deg.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) in_deg[v] = g.in_degree(v);

    used.resize(L);
    leased_to.resize(L);
    runq.resize(L);
    pending.assign(L, {});
    for (std::size_t l = 1; l <= L; ++l) {
      used[l - 1].assign(m.num_caches(l), 0.0);
      leased_to[l - 1].assign(m.num_caches(l), -1);
      runq[l - 1].resize(m.num_caches(l));
    }

    stats.misses.assign(L, 0.0);
    for (std::size_t p = 0; p < m.num_processors(); ++p) idle.push_back(p);
    stats.atomic_units = units.size();
  }

  /// Adjusts ext counters for edge (v, w) at every level where the
  /// endpoints lie in different maximal tasks; on decrement-to-zero,
  /// schedules an anchoring attempt.
  void count_edge(VertexId v, VertexId w, int delta) {
    const NodeId nu = g.owner(v), nv = g.owner(w);
    for (std::size_t l = 1; l <= L; ++l) {
      const int tu = owner_at(l, nu), tv = owner_at(l, nv);
      if (tu == tv && tu >= 0) break;  // internal here and above
      if (tv >= 0) {
        Task& t = task[l - 1][tv];
        t.ext += delta;
        if (delta < 0 && t.ext == 0 && !t.anchored) to_try.push_back({l, tv});
      }
    }
  }

  bool is_control(VertexId v) const { return owner_at(1, g.owner(v)) < 0; }

  void fire_vertex(VertexId v, std::vector<VertexId>& cascade) {
    if (fired[v]) return;
    fired[v] = 1;
    for (VertexId w : g.successors(v)) {
      count_edge(v, w, -1);
      if (--in_deg[w] == 0 && !fired[w] && is_control(w)) cascade.push_back(w);
    }
    if (g.is_exit(v)) release_if_task_done(g.owner(v));
  }

  void cascade_all(std::vector<VertexId>& cascade) {
    while (!cascade.empty()) {
      VertexId v = cascade.back();
      cascade.pop_back();
      fire_vertex(v, cascade);
    }
  }

  /// Releases capacity/leases of every anchored task rooted at node n (it
  /// can be maximal at several consecutive levels).
  void release_if_task_done(NodeId n) {
    for (std::size_t l = 1; l <= L; ++l) {
      const int ti = owner_at(l, n);
      if (ti < 0) continue;  // glue at this level, maybe a task above
      Task& t = task[l - 1][ti];
      if (t.root != n || !t.anchored || t.oversized) continue;
      used[l - 1][t.anchor_cache] -= t.size;
      if (l > 1)
        for (std::size_t c : t.lease) leased_to[l - 2][c] = -1;
      retry_pending(l);
      if (l > 1) retry_pending(l - 1);  // freed leases unblock children
    }
  }

  void retry_pending(std::size_t l) {
    for (int ti : pending[l - 1]) {
      task[l - 1][ti].in_pending = false;
      to_try.push_back({l, ti});
    }
    pending[l - 1].clear();
  }

  bool parent_anchored(std::size_t l, const Task& t) const {
    if (l == L || t.parent == kRoot) return true;
    return task[l][t.parent].anchored;
  }

  /// gi(S): number of level-(l-1) subclusters for a size-S task at level l.
  std::size_t allocation(std::size_t l, double S) const {
    const double fi = double(m.fanout(l));
    const double frac = std::pow(3.0 * S / m.cache_size(l), opts.alpha_prime);
    return static_cast<std::size_t>(
        std::min(fi, std::max(1.0, std::floor(fi * frac))));
  }

  void enqueue_unit(int u) {
    if (unit_dispatched[u]) return;
    unit_dispatched[u] = true;
    const NodeId n = task[0][u].root;
    for (std::size_t l = 1; l <= L; ++l) {
      const Task& t = task[l - 1][owner_at(l, n)];
      if (!t.oversized) {
        NDF_CHECK(t.anchored && t.anchor_cache >= 0);
        runq[l - 1][t.anchor_cache].push_back(u);
        return;
      }
    }
    runq_mem.push_back(u);
  }

  void try_anchor(std::size_t l, int ti) {
    Task& t = task[l - 1][ti];
    if (t.anchored || t.ext != 0 || !parent_anchored(l, t)) return;
    if (!t.oversized) {
      // Candidate anchors: parent's leased subclusters (all level-L caches
      // for top-level tasks).
      int chosen = -1;
      auto consider = [&](std::size_t c) {
        if (chosen >= 0) return;
        if (used[l - 1][c] + t.size > opts.sigma * m.cache_size(l)) return;
        if (l > 1) {
          const std::size_t f = m.fanout(l);
          bool any_free = false;
          for (std::size_t k = c * f; k < (c + 1) * f; ++k)
            if (leased_to[l - 2][k] < 0) {
              any_free = true;
              break;
            }
          if (!any_free) return;
        }
        chosen = static_cast<int>(c);
      };
      if (l == L || t.parent == kRoot) {
        for (std::size_t c = 0; c < m.num_caches(l); ++c) consider(c);
      } else {
        for (std::size_t c : task[l][t.parent].lease) consider(c);
      }
      if (chosen < 0) {
        if (!t.in_pending) {
          t.in_pending = true;
          pending[l - 1].push_back(ti);
        }
        return;
      }
      t.anchored = true;
      t.anchor_cache = chosen;
      used[l - 1][chosen] += t.size;
      if (l > 1) {
        const std::size_t want = allocation(l, t.size);
        const std::size_t f = m.fanout(l);
        for (std::size_t k = std::size_t(chosen) * f;
             k < (std::size_t(chosen) + 1) * f && t.lease.size() < want; ++k)
          if (leased_to[l - 2][k] < 0) {
            leased_to[l - 2][k] = ti;
            t.lease.push_back(k);
          }
      }
    } else {
      t.anchored = true;
    }
    stats.misses[l - 1] += t.size;
    ++stats.anchors;
    if (l == 1) {
      enqueue_unit(ti);
    } else {
      for (int c : kids[l - 1][ti]) to_try.push_back({l - 1, c});
    }
  }

  void drain_anchor_worklist() {
    while (!to_try.empty()) {
      auto [l, ti] = to_try.back();
      to_try.pop_back();
      try_anchor(l, ti);
    }
  }

  void dispatch(double now) {
    std::vector<std::size_t> still_idle;
    for (std::size_t p : idle) {
      int u = -1;
      for (std::size_t l = 1; l <= L && u < 0; ++l) {
        auto& q = runq[l - 1][m.cache_above(p, l)];
        if (!q.empty()) {
          u = q.front();
          q.pop_front();
        }
      }
      if (u < 0 && !runq_mem.empty()) {
        u = runq_mem.front();
        runq_mem.pop_front();
      }
      if (u < 0) {
        still_idle.push_back(p);
        continue;
      }
      busy_time += unit_dur[u];
      if (opts.trace)
        opts.trace->push_back(TraceEvent{now, now + unit_dur[u],
                                         static_cast<std::uint32_t>(p),
                                         task[0][u].root});
      events.push(Ev{now + unit_dur[u], p, u});
    }
    idle.swap(still_idle);
  }

  void complete_unit(int u, std::vector<VertexId>& cascade) {
    const NodeId root = task[0][u].root;
    std::vector<NodeId> stack{root}, order;
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      order.push_back(n);
      for (NodeId c : tree.node(n).children) stack.push_back(c);
    }
    // Children before parents so the unit root's exit fires last.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      fire_vertex(g.enter(*it), cascade);
      fire_vertex(g.exit(*it), cascade);
    }
    cascade_all(cascade);
  }

  SbStats run() {
    setup();
    std::vector<VertexId> cascade;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (in_deg[v] == 0 && !fired[v] && is_control(v)) cascade.push_back(v);
    cascade_all(cascade);
    // Seed anchoring with every dependency-free task, top level first.
    for (std::size_t l = L; l >= 1; --l) {
      for (std::size_t i = 0; i < task[l - 1].size(); ++i)
        if (task[l - 1][i].ext == 0)
          to_try.push_back({l, static_cast<int>(i)});
      if (l == 1) break;
    }
    drain_anchor_worklist();
    dispatch(0.0);

    double now = 0.0;
    std::size_t done = 0;
    while (!events.empty()) {
      const Ev ev = events.top();
      events.pop();
      now = ev.time;
      idle.push_back(ev.proc);
      ++done;
      complete_unit(ev.unit, cascade);
      drain_anchor_worklist();
      dispatch(now);
    }
    NDF_CHECK_MSG(done == task[0].size(),
                  "SB simulation stalled: " << done << " of "
                                            << task[0].size()
                                            << " units completed");
    stats.makespan = now;
    for (std::size_t l = 1; l <= L; ++l)
      stats.miss_cost += stats.misses[l - 1] * m.miss_cost(l);
    stats.utilization =
        now > 0 ? busy_time / (double(m.num_processors()) * now) : 1.0;
    return stats;
  }
};

}  // namespace

SbStats run_sb_scheduler(const StrandGraph& g, const Pmh& machine,
                         const SbOptions& opts) {
  Simulator sim(g, machine, opts);
  return sim.run();
}

double sb_balanced_bound(const SpawnTree& tree, const Pmh& machine,
                         double sigma) {
  double cost = tree.work_of(tree.root());
  for (std::size_t l = 1; l <= machine.num_cache_levels(); ++l)
    cost += parallel_cache_complexity(tree, sigma * machine.cache_size(l)) *
            machine.miss_cost(l);
  return cost / double(machine.num_processors());
}

}  // namespace ndf
