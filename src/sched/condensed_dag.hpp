// Immutable condensation of an elaborated strand DAG against a cache-size
// profile: the per-level σM-maximal decompositions, unit work, task→unit
// counts, and the external-dependence templates every simulation run starts
// from. Building one is the expensive part of simulating a policy (it walks
// the spawn tree once per level and every DAG edge once per level); running
// a policy on top of it is cheap. A sweep over 4 policies × N machines with
// the same cache sizes therefore builds the condensation once and shares it
// across all 4N runs (see src/exp/sweep.hpp), instead of rebuilding it
// inside every SimCore as the pre-split code did.
//
// A CondensedDag depends only on (graph, σ, level cache sizes) — never on
// processor counts, fan-outs or miss costs — so machines that differ only
// in those reuse the same object. SimCore validates compatibility when
// borrowing one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/decompose.hpp"
#include "nd/graph.hpp"

namespace ndf {

class Pmh;

/// The σMi cache-size profile a condensation is keyed by: machine cache
/// sizes from level 1 up.
std::vector<double> level_cache_sizes(const Pmh& machine);

class CondensedDag {
 public:
  /// Decomposes `g`'s spawn tree by σ·sizes[l-1] at every level and
  /// precomputes the run-state templates. `sizes` is ordered level 1 up.
  CondensedDag(const StrandGraph& g, std::vector<double> sizes, double sigma);

  const StrandGraph& graph() const { return *g_; }
  const SpawnTree& tree() const { return *tree_; }
  double sigma() const { return sigma_; }
  const std::vector<double>& sizes() const { return sizes_; }
  std::size_t num_levels() const { return sizes_.size(); }

  /// σM_level-maximal decomposition (level in 1..num_levels()).
  const Decomposition& decomposition(std::size_t level) const {
    return dec_[level - 1];
  }

  /// Atomic units are the σM1-maximal tasks, indexed in spawn-tree
  /// (depth-first, left-to-right) order.
  std::size_t num_units() const { return dec_[0].maximal.size(); }
  NodeId unit_root(int u) const { return dec_[0].maximal[u]; }
  double unit_work(int u) const { return unit_work_[u]; }
  double total_work() const { return total_work_; }

  /// Atomic units inside level-`level` maximal task `t`.
  std::size_t task_units(std::size_t level, int t) const {
    return task_units_[level - 1][t];
  }

  /// Invokes fn(level, task) for every level at which edge (v, w) is an
  /// external incoming arrow of w's maximal task — the boundary-crossing
  /// walk the construction-time template build runs per edge. The event
  /// loop never re-walks it: the result is frozen into the per-edge arrow
  /// CSR below, so the +1 template and SimCore's -1 decrements are
  /// literally the same data and can never diverge.
  template <typename Fn>
  void for_each_external_arrow(VertexId v, VertexId w, Fn&& fn) const {
    const NodeId nu = g_->owner(v), nv = g_->owner(w);
    for (std::size_t l = 1; l <= dec_.size(); ++l) {
      const int tu = dec_[l - 1].owner[nu], tv = dec_[l - 1].owner[nv];
      if (tu == tv && tu >= 0) break;  // internal here and above
      if (tv >= 0) fn(l, tv);
    }
  }

  // --- flat run-state templates (contiguous arenas, memcpy-resettable) ----
  //
  // All per-(level, task) counters of a run live in ONE flat arena indexed
  // by ext_off(level) + task; a SimCore reset is a single vector assign
  // from initial_ext_flat() instead of L allocations. The per-edge arrow
  // CSR precomputes, for every DAG edge in (vertex, successor-index) order,
  // which flat counters the edge decrements when it fires — the event
  // loop's hottest walk reduced to a linear scan of precomputed entries.

  /// Offset of level `level`'s counters in the flat (level, task) arena.
  std::size_t ext_off(std::size_t level) const { return ext_off_[level - 1]; }
  /// Size of the flat arena (Σ_level num tasks at that level).
  std::size_t ext_arena_size() const { return ext0_flat_.size(); }
  /// Initial unsatisfied external dataflow arrows, flat arena layout — the
  /// template a run copies its mutable counters from.
  const std::vector<int>& initial_ext_flat() const { return ext0_flat_; }
  /// Initial in-degree per DAG vertex, same role.
  const std::vector<std::uint32_t>& initial_in_degree() const {
    return in_deg0_;
  }

  /// One precomputed external-arrow decrement: edge fires → --arena[flat],
  /// and on reaching zero the level-`level` task `flat - ext_off(level)`
  /// became ready.
  struct ArrowRef {
    std::uint32_t flat;   ///< index into the flat (level, task) arena
    std::uint32_t level;  ///< cache level of the crossing (1-based)
  };
  /// Id of vertex v's first outgoing edge; edge ids follow successor order,
  /// so v's i-th successor is edge `edge_base(v) + i`.
  std::size_t edge_base(VertexId v) const { return edge_base_[v]; }
  /// External arrows of edge `e`, as [begin, end) into one shared arena.
  const ArrowRef* arrows_begin(std::size_t e) const {
    return arrows_.data() + arrow_off_[e];
  }
  const ArrowRef* arrows_end(std::size_t e) const {
    return arrows_.data() + arrow_off_[e + 1];
  }

  /// Level-`level` maximal task containing unit `u` (flat table — the hot
  /// per-pick lookup of the ws cache model and the occupancy layer).
  int unit_task(std::size_t level, int u) const {
    return int(unit_task_[(level - 1) * num_units() + u]);
  }
  /// Footprint s(t) of level-`level` maximal task `t` (flat arena, same
  /// offsets as the ext counters).
  double task_size(std::size_t level, int t) const {
    return task_size_[ext_off_[level - 1] + t];
  }
  /// Σ_t s(t) over level-`level` maximal tasks — the schedule-independent
  /// per-level footprint total the distributed charge model bills once.
  double level_footprint(std::size_t level) const {
    return level_footprint_[level - 1];
  }

  /// True iff this condensation can drive a run on `machine` at `sigma`
  /// (same σ, same cache-size profile).
  bool compatible_with(const Pmh& machine, double sigma) const;

  /// Process-wide count of condensations ever built. Tests assert reuse by
  /// differencing it around a sweep ("built exactly once per workload×σ").
  static std::size_t total_builds();

 private:
  const StrandGraph* g_;
  const SpawnTree* tree_;
  double sigma_;
  std::vector<double> sizes_;

  std::vector<Decomposition> dec_;                    // dec_[l-1] = σM_l
  std::vector<std::vector<std::size_t>> task_units_;  // [l-1][task]
  std::vector<double> unit_work_;
  double total_work_ = 0.0;

  std::vector<std::size_t> ext_off_;   // [l-1] = arena offset of level l
  std::vector<int> ext0_flat_;         // flat (level, task) template
  std::vector<std::uint32_t> in_deg0_;

  std::vector<std::size_t> edge_base_;   // [v] = id of v's first out-edge
  std::vector<std::uint32_t> arrow_off_; // [e..e+1) spans arrows_
  std::vector<ArrowRef> arrows_;         // external-arrow decrement lists

  std::vector<std::uint32_t> unit_task_; // [(l-1)*units + u] = task at l
  std::vector<double> task_size_;        // flat arena: s(t) per (level, task)
  std::vector<double> level_footprint_;  // [l-1] = Σ_t s(t)
};

}  // namespace ndf
