// "greedy" policy: a centralized Brent-style greedy scheduler — one global
// FIFO queue of ready atomic units; any idle processor takes the next unit.
// No anchoring, no capacity constraints, no stealing.
//
// Cache model: the distributed optimal-replacement charge of the SB
// accounting (each maximal task's footprint loaded exactly once, latency
// spread uniformly over its units), so total busy time is exactly
// T1 + Σi Q(t;σMi)·Ci — the numerator of the Eq. (22) balanced reference.
// Greedy therefore makes Eq. (22) executable: its makespan is bounded below
// by (total_work + miss_cost)/p and shows how close a schedule with ideal
// locality but no locality *constraints* gets to perfect balance.
//
// Under SchedOptions::measure_misses the core also reports what that
// "ideal locality" charge hides: the simulated LRU occupancy layer
// (pmh/occupancy.hpp) measures the reloads a global FIFO actually incurs
// when consecutive units land on unrelated caches.
#include <deque>
#include <memory>

#include "sched/registry.hpp"

namespace ndf {

namespace {

class GreedyScheduler final : public Scheduler {
 public:
  explicit GreedyScheduler(const SchedOptions&) {}

  const char* name() const override { return "greedy"; }

  void init(SimCore& core) override {
    core_ = &core;
    unit_dur_ = &core.distributed_unit_durations();
    core.charge_condensed_footprints();
  }

  void on_start() override {
    for (int u : core_->initially_ready_units()) ready_.push_back(u);
  }

  void on_task_ready(std::size_t level, int task) override {
    if (level == 1) ready_.push_back(task);
  }

  Assignment pick(std::size_t, double) override {
    if (ready_.empty()) return {};
    const int u = ready_.front();
    ready_.pop_front();
    return {u, (*unit_dur_)[u]};
  }

 private:
  SimCore* core_ = nullptr;
  const std::vector<double>* unit_dur_ = nullptr;  // core's cached table
  std::deque<int> ready_;  // global FIFO
};

}  // namespace

namespace detail {
void register_greedy_scheduler() {
  register_scheduler(
      "greedy",
      "centralized Brent-style greedy: global FIFO, Eq. (22) miss charge",
      [](const SchedOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<GreedyScheduler>(opts);
      });
}
}  // namespace detail

}  // namespace ndf
