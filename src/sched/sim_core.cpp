#include "sched/sim_core.hpp"

namespace ndf {

SimCore::SimCore(const StrandGraph& g, const Pmh& machine,
                 const SchedOptions& opts)
    : g_(g), tree_(g.tree()), m_(machine), opts_(opts) {
  NDF_CHECK(opts_.sigma > 0.0 && opts_.sigma < 1.0);
  L_ = m_.num_cache_levels();
  dec_.reserve(L_);
  for (std::size_t l = 1; l <= L_; ++l)
    dec_.push_back(decompose(tree_, opts_.sigma * m_.cache_size(l)));

  ext_.resize(L_);
  task_units_.resize(L_);
  for (std::size_t l = 1; l <= L_; ++l) {
    ext_[l - 1].assign(dec_[l - 1].maximal.size(), 0);
    task_units_[l - 1].assign(dec_[l - 1].maximal.size(), 0);
  }
  for (std::size_t u = 0; u < num_units(); ++u)
    for (std::size_t l = 1; l <= L_; ++l)
      ++task_units_[l - 1][dec_[l - 1].owner[dec_[0].maximal[u]]];

  unit_work_.resize(num_units());
  for (std::size_t u = 0; u < num_units(); ++u) {
    unit_work_[u] = tree_.work_of(dec_[0].maximal[u]);
    stats_.total_work += unit_work_[u];
  }
  stats_.atomic_units = num_units();
  stats_.misses.assign(L_, 0.0);

  fired_.assign(g_.num_vertices(), 0);
  in_deg_.resize(g_.num_vertices());
  for (VertexId v = 0; v < g_.num_vertices(); ++v)
    in_deg_[v] = g_.in_degree(v);
}

std::vector<double> SimCore::distributed_unit_durations() const {
  std::vector<double> dur(num_units());
  for (std::size_t u = 0; u < num_units(); ++u) {
    double charge = 0.0;
    if (opts_.charge_misses)
      for (std::size_t l = 1; l <= L_; ++l) {
        const int t = dec_[l - 1].owner[dec_[0].maximal[u]];
        charge += tree_.size_of(dec_[l - 1].maximal[t]) * m_.miss_cost(l) /
                  double(task_units_[l - 1][t]);
      }
    dur[u] = unit_work_[u] + charge;
  }
  return dur;
}

std::vector<int> SimCore::initially_ready_units() const {
  std::vector<int> out;
  for (std::size_t u = 0; u < num_units(); ++u)
    if (ext_[0][u] == 0) out.push_back(static_cast<int>(u));
  return out;
}

void SimCore::charge_condensed_footprints() {
  for (std::size_t l = 1; l <= L_; ++l)
    for (NodeId root : dec_[l - 1].maximal)
      stats_.misses[l - 1] += tree_.size_of(root);
}

void SimCore::count_edge(VertexId v, VertexId w, int delta) {
  const NodeId nu = g_.owner(v), nv = g_.owner(w);
  for (std::size_t l = 1; l <= L_; ++l) {
    const int tu = dec_[l - 1].owner[nu], tv = dec_[l - 1].owner[nv];
    if (tu == tv && tu >= 0) break;  // internal here and above
    if (tv >= 0) {
      int& e = ext_[l - 1][tv];
      e += delta;
      if (delta < 0 && e == 0 && ready_hooks_enabled_)
        policy_->on_task_ready(l, tv);
    }
  }
}

void SimCore::fire_vertex(VertexId v) {
  if (fired_[v]) return;
  fired_[v] = 1;
  for (VertexId w : g_.successors(v)) {
    count_edge(v, w, -1);
    if (--in_deg_[w] == 0 && !fired_[w] && is_control(w))
      cascade_.push_back(w);
  }
  if (g_.is_exit(v)) policy_->on_exit_fired(g_.owner(v));
}

void SimCore::cascade_all() {
  while (!cascade_.empty()) {
    VertexId v = cascade_.back();
    cascade_.pop_back();
    fire_vertex(v);
  }
}

void SimCore::complete_unit(int u) {
  const NodeId root = dec_[0].maximal[u];
  std::vector<NodeId> stack{root}, order;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (NodeId c : tree_.node(n).children) stack.push_back(c);
  }
  // Children before parents so the unit root's exit fires last.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    fire_vertex(g_.enter(*it));
    fire_vertex(g_.exit(*it));
  }
  cascade_all();
}

void SimCore::dispatch(double now) {
  std::vector<std::size_t> still_idle;
  for (std::size_t p : idle_) {
    const Assignment a = policy_->pick(p, now);
    if (a.unit < 0) {
      still_idle.push_back(p);
      continue;
    }
    busy_time_ += a.duration;
    if (opts_.trace)
      opts_.trace->push_back(TraceEvent{now, now + a.duration,
                                        static_cast<std::uint32_t>(p),
                                        dec_[0].maximal[a.unit]});
    events_.push(Ev{now + a.duration, p, a.unit});
  }
  idle_.swap(still_idle);
}

SchedStats SimCore::run(Scheduler& policy) {
  policy_ = &policy;
  policy.init(*this);

  // Dependence counters: one external arrow per edge crossing a maximal
  // task boundary, at every level it crosses.
  for (VertexId v = 0; v < g_.num_vertices(); ++v)
    for (VertexId w : g_.successors(v)) count_edge(v, w, +1);

  for (std::size_t p = 0; p < m_.num_processors(); ++p) idle_.push_back(p);

  // Initial cascade: fire every dependency-free control vertex. Readiness
  // hooks stay off — the on_start scans cover everything ready at time 0.
  for (VertexId v = 0; v < g_.num_vertices(); ++v)
    if (in_deg_[v] == 0 && !fired_[v] && is_control(v)) cascade_.push_back(v);
  cascade_all();

  ready_hooks_enabled_ = true;
  policy.on_start();
  dispatch(0.0);

  double now = 0.0;
  std::size_t done = 0;
  while (!events_.empty()) {
    const Ev ev = events_.top();
    events_.pop();
    now = ev.time;
    idle_.push_back(ev.proc);
    ++done;
    complete_unit(ev.unit);
    policy.on_unit_complete(ev.proc, ev.unit);
    dispatch(now);
  }
  NDF_CHECK_MSG(done == num_units(),
                policy.name() << " simulation stalled: " << done << " of "
                              << num_units() << " units completed");
  stats_.makespan = now;
  for (std::size_t l = 1; l <= L_; ++l)
    stats_.miss_cost += stats_.misses[l - 1] * m_.miss_cost(l);
  stats_.utilization =
      now > 0 ? busy_time_ / (double(m_.num_processors()) * now) : 1.0;
  return stats_;
}

}  // namespace ndf
