#include "sched/sim_core.hpp"

#include <algorithm>
#include <string>

namespace ndf {

SimCore::SimCore(const StrandGraph& g, const Pmh& machine,
                 const SchedOptions& opts)
    : owned_(std::make_unique<CondensedDag>(g, level_cache_sizes(machine),
                                            opts.sigma)),
      dag_(owned_.get()),
      m_(&machine),
      opts_(opts) {
  init_run_state();
}

SimCore::SimCore(const CondensedDag& dag, const Pmh& machine,
                 const SchedOptions& opts)
    : dag_(&dag), m_(&machine), opts_(opts) {
  NDF_CHECK_MSG(dag_->compatible_with(*m_, opts_.sigma),
                "CondensedDag(sigma=" << dag_->sigma() << ", "
                                      << dag_->num_levels()
                                      << " levels) does not match machine "
                                      << m_->to_string() << " at sigma "
                                      << opts_.sigma);
  init_run_state();
}

void SimCore::reset(const CondensedDag& dag, const Pmh& machine,
                    const SchedOptions& opts) {
  NDF_CHECK_MSG(dag.compatible_with(machine, opts.sigma),
                "CondensedDag(sigma=" << dag.sigma() << ", "
                                      << dag.num_levels()
                                      << " levels) does not match machine "
                                      << machine.to_string() << " at sigma "
                                      << opts.sigma);
  // Rebinding to an external dag drops the privately built one (if any);
  // rebinding to the owned dag itself keeps it alive.
  if (owned_ && owned_.get() != &dag) owned_.reset();
  dag_ = &dag;
  m_ = &machine;
  opts_ = opts;
  policy_ = nullptr;
  ready_hooks_enabled_ = false;
  init_run_state();
}

void SimCore::init_run_state() {
  const std::vector<int>& ext0 = dag_->initial_ext_flat();
  ext_.assign(ext0.begin(), ext0.end());
  const std::vector<std::uint32_t>& deg0 = dag_->initial_in_degree();
  in_deg_.assign(deg0.begin(), deg0.end());
  fired_.assign(dag_->graph().num_vertices(), 0);
  cascade_.clear();
  events_.clear();
  idle_.clear();
  busy_time_ = 0.0;
  now_ = 0.0;
  // Ready-time tracking exists only for the queue-wait trace events; the
  // vector stays empty (and the per-fire branch dead) without a sink.
  if (opts_.sink != nullptr)
    ready_at_.assign(num_units(), 0.0);
  else
    ready_at_.clear();

  stats_ = SchedStats{};
  stats_.total_work = dag_->total_work();
  stats_.atomic_units = num_units();
  stats_.misses.assign(num_levels(), 0.0);

  // A trace sink wants cache events, so it too turns the occupancy
  // simulation on; the measured stats are filled only under
  // measure_misses (run()), keeping sink-only output byte-identical.
  if (opts_.measure_misses || opts_.sink != nullptr) {
    // The occupancy layer's shape depends only on the machine and the
    // cache-model spec: reuse the existing instance (cleared, capacity
    // kept) while both bindings hold. Service mode additionally keeps the
    // *contents* across runs (keep_occupancy): consecutive jobs on one
    // machine then contend for the same simulated lines, and the reported
    // counters are cumulative — that persistence also hinges on the model
    // binding, so a cache-model change always starts a cold instance.
    if (occ_ && occ_machine_ == m_ && occ_->model() == opts_.cache_model) {
      if (!opts_.keep_occupancy) occ_->reset();
    } else {
      occ_ = std::make_unique<CacheOccupancy>(*m_, opts_.cache_model);
      occ_machine_ = m_;
    }
    occ_->set_trace(opts_.sink, &now_);
  } else {
    occ_.reset();
    occ_machine_ = nullptr;
  }
}

void SimCore::pin_footprint(std::size_t level, std::size_t cache, int task) {
  if (!occ_) return;
  occ_->pin(level, cache, opts_.occ_task_base + task,
            dag_->task_size(level, task));
}

void SimCore::unpin_footprint(std::size_t level, std::size_t cache,
                              int task) {
  if (occ_) occ_->unpin(level, cache, opts_.occ_task_base + task);
}

std::size_t SimCore::busy_sharers(std::size_t proc, std::size_t level) const {
  // events_ holds exactly the in-flight assignments; this unit's own event
  // is pushed after touch_unit, so every entry is a concurrent *other*.
  const std::size_t cache = m_->cache_above(proc, level);
  std::size_t n = 0;
  for (const Ev& e : events_)
    if (m_->cache_above(e.proc, level) == cache) ++n;
  return n;
}

void SimCore::touch_unit(std::size_t proc, int u) {
  const CacheModelSpec& model = occ_->model();
  for (std::size_t l = 1; l <= num_levels(); ++l) {
    const int t = dag_->unit_task(l, u);
    const std::size_t sharers =
        model.bw > 0.0 ? busy_sharers(proc, l) : 0;
    const double miss =
        occ_->touch(l, m_->cache_above(proc, l), opts_.occ_task_base + t,
                    dag_->task_size(l, t), sharers);
    // Exclusive levels: a hit means the unit is served from this (or an
    // inner) cache, so the outer levels see no traffic and no recency
    // update — resident data is not duplicated outward.
    if (model.exclusive && miss == 0.0) break;
  }
}

const std::vector<double>& SimCore::distributed_unit_durations() const {
  if (dur_dag_ == dag_ && dur_machine_ == m_ &&
      dur_charge_ == opts_.charge_misses)
    return dur_;
  dur_.assign(num_units(), 0.0);
  for (std::size_t u = 0; u < num_units(); ++u) {
    double charge = 0.0;
    if (opts_.charge_misses)
      for (std::size_t l = 1; l <= num_levels(); ++l) {
        const int t = dag_->unit_task(l, u);
        charge += dag_->task_size(l, t) * m_->miss_cost(l) /
                  double(dag_->task_units(l, t));
      }
    dur_[u] = dag_->unit_work(u) + charge;
  }
  dur_dag_ = dag_;
  dur_machine_ = m_;
  dur_charge_ = opts_.charge_misses;
  return dur_;
}

std::vector<int> SimCore::initially_ready_units() const {
  std::vector<int> out;
  const std::size_t off = dag_->ext_off(1);
  for (std::size_t u = 0; u < num_units(); ++u)
    if (ext_[off + u] == 0) out.push_back(static_cast<int>(u));
  return out;
}

void SimCore::charge_condensed_footprints() {
  for (std::size_t l = 1; l <= num_levels(); ++l)
    stats_.misses[l - 1] += dag_->level_footprint(l);
}

void SimCore::push_event(const Ev& e) {
  events_.push_back(e);
  std::push_heap(events_.begin(), events_.end(), std::greater<Ev>{});
}

SimCore::Ev SimCore::pop_event() {
  std::pop_heap(events_.begin(), events_.end(), std::greater<Ev>{});
  const Ev e = events_.back();
  events_.pop_back();
  return e;
}

void SimCore::fire_vertex(VertexId v) {
  if (fired_[v]) return;
  fired_[v] = 1;
  const StrandGraph& g = dag_->graph();
  const std::vector<VertexId>& succ = g.successors(v);
  std::size_t e = dag_->edge_base(v);
  for (std::size_t i = 0; i < succ.size(); ++i, ++e) {
    const VertexId w = succ[i];
    // Precomputed external-arrow decrements of edge (v, w): the same
    // boundary-crossing walk the +1 template was built from, frozen into
    // the dag's arrow CSR at condensation time.
    for (const CondensedDag::ArrowRef* a = dag_->arrows_begin(e);
         a != dag_->arrows_end(e); ++a) {
      int& cnt = ext_[a->flat];
      if (--cnt == 0) {
        // Tracing: a unit's queue wait starts when its last external
        // dependence is satisfied (units ready at t=0 keep the default 0).
        if (!ready_at_.empty() && a->level == 1)
          ready_at_[a->flat - dag_->ext_off(1)] = now_;
        if (ready_hooks_enabled_)
          policy_->on_task_ready(a->level,
                                 int(a->flat - dag_->ext_off(a->level)));
      }
    }
    if (--in_deg_[w] == 0 && !fired_[w] && is_control(w))
      cascade_.push_back(w);
  }
  if (g.is_exit(v)) policy_->on_exit_fired(g.owner(v));
}

void SimCore::cascade_all() {
  while (!cascade_.empty()) {
    VertexId v = cascade_.back();
    cascade_.pop_back();
    fire_vertex(v);
  }
}

void SimCore::complete_unit(int u) {
  const NodeId root = dag_->unit_root(u);
  walk_stack_.clear();
  walk_order_.clear();
  walk_stack_.push_back(root);
  while (!walk_stack_.empty()) {
    NodeId n = walk_stack_.back();
    walk_stack_.pop_back();
    walk_order_.push_back(n);
    for (NodeId c : tree().node(n).children) walk_stack_.push_back(c);
  }
  const StrandGraph& g = dag_->graph();
  // Children before parents so the unit root's exit fires last.
  for (auto it = walk_order_.rbegin(); it != walk_order_.rend(); ++it) {
    fire_vertex(g.enter(*it));
    fire_vertex(g.exit(*it));
  }
  cascade_all();
}

void SimCore::dispatch(double now) {
  now_ = now;
  still_idle_.clear();
  for (std::size_t p : idle_) {
    const Assignment a = policy_->pick(p, now);
    if (a.unit < 0) {
      still_idle_.push_back(p);
      continue;
    }
    busy_time_ += a.duration;
    // Measured occupancy: the unit's footprint runs through every cache
    // above its processor at unit start. Observational only — duration was
    // already fixed by the policy's charge model above.
    if (occ_) touch_unit(p, a.unit);
    if (opts_.trace)
      opts_.trace->push_back(TraceEvent{now, now + a.duration,
                                        static_cast<std::uint32_t>(p),
                                        dag_->unit_root(a.unit)});
    if (opts_.sink != nullptr) {
      opts_.sink->on_queue_wait(ready_at_[std::size_t(a.unit)], now,
                                static_cast<std::uint32_t>(p), a.unit);
      opts_.sink->on_unit(now, now + a.duration,
                          static_cast<std::uint32_t>(p), a.unit,
                          std::int64_t(dag_->unit_root(a.unit)));
    }
    push_event(Ev{now + a.duration, p, a.unit});
  }
  idle_.swap(still_idle_);
}

SchedStats SimCore::run(Scheduler& policy) {
  policy_ = &policy;
  policy.init(*this);
#ifndef NDEBUG
  const std::size_t trace_mark = opts_.trace ? opts_.trace->size() : 0;
#endif

  // Dependence counters start from the dag's precomputed template (one
  // external arrow per edge crossing a maximal task boundary, at every
  // level it crosses) — already copied by init_run_state().

  for (std::size_t p = 0; p < m_->num_processors(); ++p) idle_.push_back(p);

  // Initial cascade: fire every dependency-free control vertex. Readiness
  // hooks stay off — the on_start scans cover everything ready at time 0.
  const StrandGraph& g = dag_->graph();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (in_deg_[v] == 0 && !fired_[v] && is_control(v)) cascade_.push_back(v);
  cascade_all();

  ready_hooks_enabled_ = true;
  policy.on_start();
  dispatch(0.0);

  double now = 0.0;
  std::size_t done = 0;
  while (!events_.empty()) {
    const Ev ev = pop_event();
    now = ev.time;
    now_ = now;  // completion-driven unpins emit cache events at this time
    idle_.push_back(ev.proc);
    ++done;
    complete_unit(ev.unit);
    policy.on_unit_complete(ev.proc, ev.unit);
    dispatch(now);
  }
  NDF_CHECK_MSG(done == num_units(),
                policy.name() << " simulation stalled: " << done << " of "
                              << num_units() << " units completed");
  stats_.makespan = now;
  for (std::size_t l = 1; l <= num_levels(); ++l)
    stats_.miss_cost += stats_.misses[l - 1] * m_->miss_cost(l);
  // A sink-only run (tracing without measure_misses) keeps occ_ alive for
  // cache events but must not report measured stats — emitter output stays
  // byte-identical to a run with no sink at all.
  if (occ_ && opts_.measure_misses) {
    stats_.measured_misses = occ_->level_misses();
    for (std::size_t l = 1; l <= num_levels(); ++l)
      stats_.comm_cost += stats_.measured_misses[l - 1] * m_->miss_cost(l);
    // Write-back and contention traffic are extra *cost*, not extra Q_i:
    // Theorem 1 bounds reload words, these bill eviction and bandwidth
    // interference on top. Both are identically zero (and the stats stay
    // in their legacy shape) under the default model.
    if (occ_->model().wb > 0.0) {
      stats_.measured_writebacks = occ_->level_writebacks();
      for (std::size_t l = 1; l <= num_levels(); ++l)
        stats_.comm_cost +=
            stats_.measured_writebacks[l - 1] * m_->miss_cost(l);
    }
    if (occ_->model().bw > 0.0) {
      const std::vector<double>& ct = occ_->level_contention();
      for (std::size_t l = 1; l <= num_levels(); ++l)
        stats_.contention_cost += ct[l - 1] * m_->miss_cost(l);
      stats_.comm_cost += stats_.contention_cost;
    }
  }
  stats_.utilization =
      now > 0 ? busy_time_ / (double(m_->num_processors()) * now) : 1.0;
#ifndef NDEBUG
  // Debug-mode invariant on every traced run: the unit timeline this run
  // appended must be a valid schedule.
  if (opts_.trace) {
    const Trace slice(opts_.trace->begin() + std::ptrdiff_t(trace_mark),
                      opts_.trace->end());
    std::string msg;
    NDF_CHECK_MSG(validate_trace(slice, m_->num_processors(), &msg),
                  policy.name() << " produced an invalid trace: " << msg);
  }
#endif
  return stats_;
}

}  // namespace ndf
