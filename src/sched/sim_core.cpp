#include "sched/sim_core.hpp"

namespace ndf {

SimCore::SimCore(const StrandGraph& g, const Pmh& machine,
                 const SchedOptions& opts)
    : owned_(std::make_unique<CondensedDag>(g, level_cache_sizes(machine),
                                            opts.sigma)),
      dag_(*owned_),
      m_(machine),
      opts_(opts) {
  init_run_state();
}

SimCore::SimCore(const CondensedDag& dag, const Pmh& machine,
                 const SchedOptions& opts)
    : dag_(dag), m_(machine), opts_(opts) {
  NDF_CHECK_MSG(dag_.compatible_with(m_, opts_.sigma),
                "CondensedDag(sigma=" << dag_.sigma() << ", "
                                      << dag_.num_levels()
                                      << " levels) does not match machine "
                                      << m_.to_string() << " at sigma "
                                      << opts_.sigma);
  init_run_state();
}

void SimCore::init_run_state() {
  ext_ = dag_.initial_ext();
  in_deg_ = dag_.initial_in_degree();
  fired_.assign(dag_.graph().num_vertices(), 0);

  stats_.total_work = dag_.total_work();
  stats_.atomic_units = num_units();
  stats_.misses.assign(num_levels(), 0.0);
  if (opts_.measure_misses) occ_ = std::make_unique<CacheOccupancy>(m_);
}

void SimCore::pin_footprint(std::size_t level, std::size_t cache, int task) {
  if (!occ_) return;
  const NodeId root = dag_.decomposition(level).maximal[task];
  occ_->pin(level, cache, task, tree().size_of(root));
}

void SimCore::unpin_footprint(std::size_t level, std::size_t cache,
                              int task) {
  if (occ_) occ_->unpin(level, cache, task);
}

void SimCore::touch_unit(std::size_t proc, int u) {
  const NodeId root = dag_.unit_root(u);
  for (std::size_t l = 1; l <= num_levels(); ++l) {
    const Decomposition& d = dag_.decomposition(l);
    const int t = d.owner[root];
    occ_->touch(l, m_.cache_above(proc, l), t, tree().size_of(d.maximal[t]));
  }
}

std::vector<double> SimCore::distributed_unit_durations() const {
  std::vector<double> dur(num_units());
  for (std::size_t u = 0; u < num_units(); ++u) {
    double charge = 0.0;
    if (opts_.charge_misses)
      for (std::size_t l = 1; l <= num_levels(); ++l) {
        const Decomposition& d = dag_.decomposition(l);
        const int t = d.owner[dag_.unit_root(u)];
        charge += tree().size_of(d.maximal[t]) * m_.miss_cost(l) /
                  double(dag_.task_units(l, t));
      }
    dur[u] = dag_.unit_work(u) + charge;
  }
  return dur;
}

std::vector<int> SimCore::initially_ready_units() const {
  std::vector<int> out;
  for (std::size_t u = 0; u < num_units(); ++u)
    if (ext_[0][u] == 0) out.push_back(static_cast<int>(u));
  return out;
}

void SimCore::charge_condensed_footprints() {
  for (std::size_t l = 1; l <= num_levels(); ++l)
    for (NodeId root : dag_.decomposition(l).maximal)
      stats_.misses[l - 1] += tree().size_of(root);
}

void SimCore::count_edge(VertexId v, VertexId w, int delta) {
  dag_.for_each_external_arrow(v, w, [&](std::size_t l, int t) {
    int& e = ext_[l - 1][t];
    e += delta;
    if (delta < 0 && e == 0 && ready_hooks_enabled_)
      policy_->on_task_ready(l, t);
  });
}

void SimCore::fire_vertex(VertexId v) {
  if (fired_[v]) return;
  fired_[v] = 1;
  const StrandGraph& g = dag_.graph();
  for (VertexId w : g.successors(v)) {
    count_edge(v, w, -1);
    if (--in_deg_[w] == 0 && !fired_[w] && is_control(w))
      cascade_.push_back(w);
  }
  if (g.is_exit(v)) policy_->on_exit_fired(g.owner(v));
}

void SimCore::cascade_all() {
  while (!cascade_.empty()) {
    VertexId v = cascade_.back();
    cascade_.pop_back();
    fire_vertex(v);
  }
}

void SimCore::complete_unit(int u) {
  const NodeId root = dag_.unit_root(u);
  std::vector<NodeId> stack{root}, order;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (NodeId c : tree().node(n).children) stack.push_back(c);
  }
  const StrandGraph& g = dag_.graph();
  // Children before parents so the unit root's exit fires last.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    fire_vertex(g.enter(*it));
    fire_vertex(g.exit(*it));
  }
  cascade_all();
}

void SimCore::dispatch(double now) {
  std::vector<std::size_t> still_idle;
  for (std::size_t p : idle_) {
    const Assignment a = policy_->pick(p, now);
    if (a.unit < 0) {
      still_idle.push_back(p);
      continue;
    }
    busy_time_ += a.duration;
    // Measured occupancy: the unit's footprint runs through every cache
    // above its processor at unit start. Observational only — duration was
    // already fixed by the policy's charge model above.
    if (occ_) touch_unit(p, a.unit);
    if (opts_.trace)
      opts_.trace->push_back(TraceEvent{now, now + a.duration,
                                        static_cast<std::uint32_t>(p),
                                        dag_.unit_root(a.unit)});
    events_.push(Ev{now + a.duration, p, a.unit});
  }
  idle_.swap(still_idle);
}

SchedStats SimCore::run(Scheduler& policy) {
  policy_ = &policy;
  policy.init(*this);

  // Dependence counters start from the dag's precomputed template (one
  // external arrow per edge crossing a maximal task boundary, at every
  // level it crosses) — already copied by init_run_state().

  for (std::size_t p = 0; p < m_.num_processors(); ++p) idle_.push_back(p);

  // Initial cascade: fire every dependency-free control vertex. Readiness
  // hooks stay off — the on_start scans cover everything ready at time 0.
  const StrandGraph& g = dag_.graph();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (in_deg_[v] == 0 && !fired_[v] && is_control(v)) cascade_.push_back(v);
  cascade_all();

  ready_hooks_enabled_ = true;
  policy.on_start();
  dispatch(0.0);

  double now = 0.0;
  std::size_t done = 0;
  while (!events_.empty()) {
    const Ev ev = events_.top();
    events_.pop();
    now = ev.time;
    idle_.push_back(ev.proc);
    ++done;
    complete_unit(ev.unit);
    policy.on_unit_complete(ev.proc, ev.unit);
    dispatch(now);
  }
  NDF_CHECK_MSG(done == num_units(),
                policy.name() << " simulation stalled: " << done << " of "
                              << num_units() << " units completed");
  stats_.makespan = now;
  for (std::size_t l = 1; l <= num_levels(); ++l)
    stats_.miss_cost += stats_.misses[l - 1] * m_.miss_cost(l);
  if (occ_) {
    stats_.measured_misses = occ_->level_misses();
    for (std::size_t l = 1; l <= num_levels(); ++l)
      stats_.comm_cost += stats_.measured_misses[l - 1] * m_.miss_cost(l);
  }
  stats_.utilization =
      now > 0 ? busy_time_ / (double(m_.num_processors()) * now) : 1.0;
  return stats_;
}

}  // namespace ndf
