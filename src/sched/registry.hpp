// String-keyed scheduler-policy registry: every policy registers a factory
// under a short name ("sb", "ws", "greedy", "serial"), and benches, tests
// and examples select policies with `--sched=<name>[,<name>...]`. Adding a
// policy is one file: implement Scheduler, define a registration function,
// and list it among the builtins in registry.cpp (external code can also
// call register_scheduler directly before first use).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/sim_core.hpp"

namespace ndf {

using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const SchedOptions&)>;

struct SchedulerInfo {
  std::string name;
  std::string description;
};

/// Registers a policy factory. Returns false (and keeps the existing entry)
/// if the name is taken.
bool register_scheduler(const std::string& name,
                        const std::string& description,
                        SchedulerFactory factory);

bool scheduler_registered(const std::string& name);

/// All registered policies, sorted by name.
std::vector<SchedulerInfo> registered_schedulers();

/// Instantiates a registered policy. Throws CheckError on unknown names
/// (the message lists what is registered).
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedOptions& opts);

/// One-shot convenience: build the policy, simulate `g` over `machine`.
SchedStats run_scheduler(const std::string& name, const StrandGraph& g,
                         const Pmh& machine, const SchedOptions& opts = {});

/// Parses a comma-separated `--sched=` list ("sb,ws,greedy"), validating
/// every name against the registry. Empty input yields an empty list.
std::vector<std::string> parse_sched_list(const std::string& csv);

}  // namespace ndf
