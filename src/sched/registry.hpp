// String-keyed scheduler-policy registry: every policy registers a factory
// under a short name ("sb", "ws", "greedy", "serial"), and benches, tests
// and examples select policies with `--sched=<name>[,<name>...]`. Adding a
// policy is one file: implement Scheduler, define a registration function,
// and list it among the builtins in registry.cpp (external code can also
// call register_scheduler directly before first use).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/sim_core.hpp"

namespace ndf {

using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const SchedOptions&)>;

struct SchedulerInfo {
  std::string name;
  std::string description;
  /// Deadline-aware policies get EDF-over-jobs admission in the service
  /// mode (src/serve/): queued jobs are admitted earliest-absolute-deadline
  /// first instead of in arrival order. Batch (single-DAG) behavior is
  /// whatever the policy's unit-level discipline is.
  bool deadline_aware = false;
};

/// Registers a policy factory. Returns false (and keeps the existing entry)
/// if the name is taken. `deadline_aware` marks the policy for EDF-over-jobs
/// admission in service mode (see SchedulerInfo).
bool register_scheduler(const std::string& name,
                        const std::string& description,
                        SchedulerFactory factory,
                        bool deadline_aware = false);

bool scheduler_registered(const std::string& name);

/// True when the named, registered policy asked for deadline-aware (EDF)
/// job admission in service mode. Throws CheckError on unknown names.
bool scheduler_deadline_aware(const std::string& name);

/// All registered policies, sorted by name.
std::vector<SchedulerInfo> registered_schedulers();

/// Instantiates a registered policy. Throws CheckError on unknown names
/// (the message lists what is registered).
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedOptions& opts);

/// One-shot convenience: build the policy, simulate `g` over `machine`.
SchedStats run_scheduler(const std::string& name, const StrandGraph& g,
                         const Pmh& machine, const SchedOptions& opts = {});

/// Parses a comma-separated `--sched=` list ("sb,ws,greedy"), validating
/// every name against the registry. Empty input yields an empty list.
std::vector<std::string> parse_sched_list(const std::string& csv);

}  // namespace ndf
