// Randomized work-stealing scheduler baseline (Blumofe-Leiserson style) on
// the PMH simulator, for the SB-vs-WS locality comparison the paper invokes
// from [47, 48]; a policy on the shared core (sched/sim_core.hpp),
// registered as "ws".
//
// Scheduling granularity is the same σM1-maximal atomic unit used by the SB
// simulator, so makespans and miss counts are directly comparable. Each
// processor owns a LIFO deque of ready units; idle processors steal the
// oldest unit from a uniformly random victim.
//
// Cache model ("task-footprint model", DESIGN.md): each processor tracks,
// per cache level l, which level-l maximal task's footprint is resident in
// the level-l cache above it; executing a unit from a different level-l
// task reloads that task's footprint (s(t) misses at level l, latency
// s(t)·Cl added to the unit). Work stealing scatters units of the same
// task across the machine, which is exactly the locality loss the SB
// scheduler's anchoring avoids.
#pragma once

#include "sched/sim_core.hpp"

namespace ndf {

/// Equivalent to run_scheduler("ws", g, machine, opts).
SchedStats run_ws_scheduler(const StrandGraph& g, const Pmh& machine,
                            const SchedOptions& opts = {});

}  // namespace ndf
