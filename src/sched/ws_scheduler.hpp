// Randomized work-stealing scheduler baseline (Blumofe-Leiserson style) on
// the PMH simulator, for the SB-vs-WS locality comparison the paper invokes
// from [47, 48].
//
// Scheduling granularity is the same σM1-maximal atomic unit used by the SB
// simulator, so makespans and miss counts are directly comparable. Each
// processor owns a LIFO deque of ready units; idle processors steal the
// oldest unit from a uniformly random victim.
//
// Cache model ("task-footprint model", DESIGN.md): each processor tracks,
// per cache level l, which level-l maximal task's footprint is resident in
// the level-l cache above it; executing a unit from a different level-l
// task reloads that task's footprint (s(t) misses at level l, latency
// s(t)·Cl added to the unit). Work stealing scatters units of the same
// task across the machine, which is exactly the locality loss the SB
// scheduler's anchoring avoids.
#pragma once

#include <cstdint>
#include <vector>

#include "nd/graph.hpp"
#include "pmh/machine.hpp"
#include "sched/trace.hpp"

namespace ndf {

struct WsOptions {
  double sigma = 1.0 / 3.0;   ///< unit granularity (match the SB run)
  std::uint64_t seed = 42;    ///< victim-selection seed
  double steal_cost = 0.0;    ///< fixed latency added to stolen units
  bool charge_misses = true;  ///< include miss latency in unit durations
  Trace* trace = nullptr;     ///< optional per-unit execution trace sink
};

struct WsStats {
  double makespan = 0.0;
  double total_work = 0.0;
  std::vector<double> misses;  ///< per level, as in SbStats
  double miss_cost = 0.0;
  std::size_t steals = 0;
  std::size_t atomic_units = 0;
  double utilization = 0.0;
};

WsStats run_ws_scheduler(const StrandGraph& g, const Pmh& machine,
                         const WsOptions& opts = {});

}  // namespace ndf
