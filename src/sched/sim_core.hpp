// Shared discrete-event simulation core for scheduler policies on a PMH.
//
// Every scheduler the paper compares (space-bounded, work-stealing, and the
// baselines) simulates the same machinery: condense the elaborated strand
// DAG into σM1-maximal atomic units, fire vertices as units complete,
// propagate readiness through per-level M-maximal task condensations, run a
// time-ordered event loop over the processors, charge misses against the
// PMH, and account work/utilization into one stats record. SimCore owns all
// of that; a Scheduler policy only decides *which* ready unit runs *where*
// and what latency it is charged (see DESIGN.md, "Simulator architecture").
//
// The static half of the machinery — decompositions, unit work, dependence
// templates — lives in an immutable CondensedDag. SimCore is the cheap
// per-run half: mutable counters, the event queue, and stats. Construct one
// SimCore either from a graph+machine (builds a private CondensedDag, the
// historical interface) or from a shared CondensedDag so a sweep reuses one
// condensation across policies and machines (the src/exp/ subsystem's fast
// path). One instance is reusable across runs: reset(dag, machine, opts)
// rebinds it and restores every counter arena from the dag's templates
// while keeping all buffer capacity — the sweep engine runs thousands of
// grid cells through one worker-local core with zero per-cell allocation
// churn (mutable state lives in flat arenas, the event queue is a plain
// vector-heap, and the distributed duration table is cached across runs
// that share a (dag, machine, charge) binding).
//
// The split keeps policies small: SB is anchoring/boundedness/allocation,
// WS is victim selection plus the footprint-reload cache model, greedy and
// serial are a queue discipline each. New policies implement Scheduler and
// register themselves in sched/registry.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/events.hpp"
#include "pmh/machine.hpp"
#include "pmh/occupancy.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/trace.hpp"

namespace ndf {

/// Options shared by every scheduler policy. Policy-specific knobs are
/// grouped but live here so the string-keyed registry can construct any
/// policy from one record.
struct SchedOptions {
  double sigma = 1.0 / 3.0;   ///< dilation parameter: units are σM1-maximal
  bool charge_misses = true;  ///< include miss latency in unit durations
  /// Simulate per-cache occupancy (pmh/occupancy.hpp) and report the
  /// *measured* per-level misses Q_i and communication cost alongside the
  /// policy's charged model. Purely observational: it never changes unit
  /// durations, so makespan and the legacy stats are bit-identical with
  /// the flag on or off.
  bool measure_misses = false;
  /// Cache model the measured occupancy simulates (pmh/cache_model.hpp):
  /// replacement policy, associativity/line granularity, inclusive vs
  /// exclusive levels, write-back and contention costs. The default spec
  /// is the ideal whole-capacity LRU whose counters are byte-identical to
  /// the pre-registry layer. Irrelevant unless measure_misses.
  CacheModelSpec cache_model;
  /// Service mode (src/serve/): carry the simulated occupancy *contents*
  /// over from the previous run on this core instead of starting cold, so
  /// consecutive jobs multiplexed onto one machine see each other's cache
  /// residue. Only meaningful with measure_misses on a reset()-reused core
  /// whose machine binding is unchanged; the reported measured_misses /
  /// comm_cost are then *cumulative* since the occupancy last started cold
  /// (callers take per-run deltas). Purely observational either way: unit
  /// durations and makespan never depend on the occupancy layer.
  bool keep_occupancy = false;
  /// Added to every decomposition index before it is used as an occupancy
  /// footprint key. The service engine gives each (tenant, condensation)
  /// pair a disjoint 2^32-aligned range: different tenants' jobs can never
  /// false-hit each other's data, while a tenant's repeat jobs over the
  /// same workload share keys and can hit lines left warm by earlier jobs.
  /// Irrelevant (and zero) outside service mode.
  std::int64_t occ_task_base = 0;
  Trace* trace = nullptr;     ///< optional per-unit execution trace sink
  /// Structured event sink (obs/events.hpp): unit executions, dispatch-
  /// queue waits, and — because attaching a sink turns the occupancy
  /// simulation on even without measure_misses — cache hit/miss/evict/
  /// pin/unpin events. Strictly observational: stats and emitter outputs
  /// are byte-identical with or without a sink (measured_misses stays
  /// empty unless measure_misses is also set); when null the hot paths pay
  /// one pointer test. The sweep engines attach one to grid cell 0 only.
  obs::TraceSink* sink = nullptr;

  // Space-bounded family.
  double alpha_prime = 1.0;  ///< allocation exponent α' = min{αmax, 1}

  // Work-stealing family.
  std::uint64_t seed = 42;  ///< victim-selection seed
  double steal_cost = 0.0;  ///< fixed latency added to stolen units
};

/// Unified per-run statistics (one struct for every policy; fields that a
/// policy does not produce stay zero).
struct SchedStats {
  double makespan = 0.0;
  double total_work = 0.0;
  /// misses[i] = total misses in all level-(i+1) caches (i in 0..h-2).
  std::vector<double> misses;
  /// Total miss latency charged (Σ_level misses·C).
  double miss_cost = 0.0;
  std::size_t atomic_units = 0;
  std::size_t anchors = 0;  ///< space-bounded: tasks anchored
  std::size_t steals = 0;   ///< work-stealing: successful steals
  /// Average processor utilization: total busy time / (p · makespan).
  double utilization = 0.0;
  /// Measured per-level misses Q_i from the simulated occupancy layer
  /// (empty unless SchedOptions::measure_misses): measured_misses[i] is the
  /// total words loaded into level-(i+1) caches, the quantity Theorem 1
  /// bounds by Q*(t; σM_{i+1}).
  std::vector<double> measured_misses;
  /// Measured communication cost — Σ_level (Q_i + WB_i)·C_i plus the
  /// contention cost below (0 unless measuring). With the default cache
  /// model the write-back and contention terms are zero, so this stays the
  /// legacy Σ Q_i·C_i byte for byte.
  double comm_cost = 0.0;
  /// Per-level write-back traffic WB_i of the measured cache model (empty
  /// unless measuring with a wb > 0 model): words of dirty-eviction
  /// traffic, costed into comm_cost but *not* part of Q_i.
  std::vector<double> measured_writebacks;
  /// Shared-bandwidth contention cost Σ_level contention_i·C_i (0 unless
  /// measuring with a bw > 0 model); already included in comm_cost.
  double contention_cost = 0.0;
};

class SimCore;

/// A unit chosen to run on a processor, with its full charged duration
/// (work plus whatever latency the policy's cache model adds). unit < 0
/// leaves the processor idle until more work appears.
struct Assignment {
  int unit = -1;
  double duration = 0.0;
};

/// Scheduler policy interface. The core drives the event loop and firing;
/// the policy reacts to readiness/completion hooks and assigns units to
/// idle processors. Hooks are invoked in deterministic simulation order.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  /// Called once, after the core has built decompositions, units and
  /// external-dependence counters, before anything fires.
  virtual void init(SimCore& core) = 0;

  /// Called after the initial control-vertex cascade; seed ready work from
  /// the tasks/units whose external dependence count is already zero.
  virtual void on_start() = 0;

  /// Assign a unit to idle processor `proc` at time `now`, or return a
  /// negative unit to leave it idle.
  virtual Assignment pick(std::size_t proc, double now) = 0;

  /// A level-`level` maximal task's last external dependence was satisfied
  /// (level 1 = atomic units). Fired for every level, innermost first.
  /// Not delivered during the initial control cascade — everything ready at
  /// time zero is covered by the on_start scan (e.g. via
  /// SimCore::initially_ready_units), so policies cannot double-queue.
  virtual void on_task_ready(std::size_t level, int task) {
    (void)level;
    (void)task;
  }

  /// The exit vertex of spawn-tree node `n` fired (tasks rooted at `n` are
  /// complete; the SB policy releases capacity here).
  virtual void on_exit_fired(NodeId n) { (void)n; }

  /// Atomic unit `unit` finished on `proc` (vertices already fired).
  virtual void on_unit_complete(std::size_t proc, int unit) {
    (void)proc;
    (void)unit;
  }
};

/// The shared simulator. Construct per run, then call run(policy).
class SimCore {
 public:
  /// Builds a private condensation for this one run (graph × machine sizes
  /// × opts.sigma). The historical interface; sweeps prefer the shared-dag
  /// constructor below.
  SimCore(const StrandGraph& g, const Pmh& machine, const SchedOptions& opts);

  /// Runs on a shared, externally owned condensation. `dag` must outlive
  /// the core and be compatible with (machine, opts.sigma) — checked.
  SimCore(const CondensedDag& dag, const Pmh& machine,
          const SchedOptions& opts);

  /// Rebinds this core to (dag, machine, opts) and restores all per-run
  /// state from the dag's templates, as if freshly constructed — but every
  /// buffer keeps its capacity, so a core cycled through a sweep chunk
  /// allocates only when a bigger dag than any before arrives. Stats from
  /// a reset-reused core are bit-identical to a fresh core's (tested).
  /// `dag` and `machine` must outlive the core until the next reset.
  void reset(const CondensedDag& dag, const Pmh& machine,
             const SchedOptions& opts);

  SchedStats run(Scheduler& policy);

  // --- static structure available from Scheduler::init on -----------------
  const CondensedDag& dag() const { return *dag_; }
  const SpawnTree& tree() const { return dag_->tree(); }
  const Pmh& machine() const { return *m_; }

  std::size_t num_levels() const { return dag_->num_levels(); }
  /// σM_level-maximal decomposition (level in 1..num_levels()).
  const Decomposition& decomposition(std::size_t level) const {
    return dag_->decomposition(level);
  }

  /// Atomic units are the σM1-maximal tasks, indexed in spawn-tree
  /// (depth-first, left-to-right) order.
  std::size_t num_units() const { return dag_->num_units(); }
  NodeId unit_root(int u) const { return dag_->unit_root(u); }
  double unit_work(int u) const { return dag_->unit_work(u); }

  /// Unsatisfied external incoming dataflow arrows of a maximal task.
  int task_ext(std::size_t level, int t) const {
    return ext_[dag_->ext_off(level) + t];
  }

  /// Units with no unsatisfied external dependences, in unit order. The
  /// canonical on_start seed for unit-queue policies.
  std::vector<int> initially_ready_units() const;

  /// Per-unit durations under the distributed optimal-replacement charge:
  /// each level-l maximal task's footprint is loaded exactly once (s(t)
  /// misses at level l) and the latency s(t)·Cl is spread uniformly over
  /// the task's units, the way the Eq. (22) bound assumes. This is the SB
  /// accounting; greedy and serial reuse it as their cache model.
  ///
  /// The table depends only on (dag, machine, opts.charge_misses), so it is
  /// computed once and cached for as long as the core stays bound to that
  /// triple — across reset()s, i.e. once per condensation×machine in a
  /// sweep chunk instead of once per cell. The reference stays valid until
  /// the next reset that changes the binding.
  const std::vector<double>& distributed_unit_durations() const;

  /// Charges every maximal task's footprint once into stats().misses —
  /// the schedule-independent miss total matching
  /// distributed_unit_durations().
  void charge_condensed_footprints();

  /// Mutable during a run: policies account misses/anchors/steals here.
  SchedStats& stats() { return stats_; }

  // --- simulated occupancy (opts.measure_misses or opts.sink) -------------
  /// True when this run simulates cache occupancy — because it measures
  /// Q_i (opts.measure_misses) and/or traces cache events (opts.sink).
  /// Measured Q_i / comm_cost are reported in stats only under
  /// measure_misses.
  bool measuring() const { return occ_ != nullptr; }
  /// Space-bounded reservation hooks: pin the footprint of level-`level`
  /// maximal task `task` in cache `cache` (anchoring) so occupancy
  /// eviction honors the boundedness invariant, and release it when the
  /// task completes. No-ops when not measuring.
  void pin_footprint(std::size_t level, std::size_t cache, int task);
  void unpin_footprint(std::size_t level, std::size_t cache, int task);

 private:
  struct Ev {
    double time;
    std::size_t proc;
    int unit;
    bool operator>(const Ev& o) const { return time > o.time; }
  };

  void init_run_state();

  bool is_control(VertexId v) const {
    return dag_->decomposition(1).owner[dag_->graph().owner(v)] < 0;
  }

  void fire_vertex(VertexId v);
  void cascade_all();
  /// Runs unit `u`'s footprint through every cache above `proc` (level 1
  /// up) in the occupancy layer; called once per assignment, at unit start.
  /// Under an exclusive cache model, a level that hits stops the walk —
  /// the unit is served from the innermost resident copy and outer levels
  /// see no traffic.
  void touch_unit(std::size_t proc, int u);
  /// Other processors currently running a unit under the same level-`level`
  /// cache as `proc` — the contention sharer count for a bw > 0 model.
  std::size_t busy_sharers(std::size_t proc, std::size_t level) const;
  /// Fires all vertices of completed unit `u`, children before parents so
  /// the unit root's exit fires last.
  void complete_unit(int u);
  void dispatch(double now);

  // The event queue as an explicit vector-heap (std::push_heap/pop_heap
  // with the same comparator std::priority_queue would use, so completion
  // order is unchanged) — unlike priority_queue it can be cleared without
  // giving its capacity back.
  void push_event(const Ev& e);
  Ev pop_event();

  std::unique_ptr<CondensedDag> owned_;  // only set by the building ctor
  const CondensedDag* dag_;
  const Pmh* m_;
  SchedOptions opts_;  // by value: a temporary argument must not dangle
  Scheduler* policy_ = nullptr;
  bool ready_hooks_enabled_ = false;

  // Per-run counter arenas, restored from the dag's flat templates on
  // every reset (vector assigns — capacity survives).
  std::vector<int> ext_;  // flat (level, task) arena, dag_->ext_off layout
  std::vector<char> fired_;
  std::vector<std::uint32_t> in_deg_;

  // Reused scratch: the control cascade, complete_unit's subtree walk and
  // dispatch's idle filter all keep their high-water capacity.
  std::vector<VertexId> cascade_;
  std::vector<NodeId> walk_stack_, walk_order_;
  std::vector<std::size_t> idle_, still_idle_;

  std::vector<Ev> events_;  // min-heap on time

  // Cached distributed-charge duration table; valid while the core stays
  // bound to (dur_dag_, dur_machine_, dur_charge_).
  mutable std::vector<double> dur_;
  mutable const CondensedDag* dur_dag_ = nullptr;
  mutable const Pmh* dur_machine_ = nullptr;
  mutable bool dur_charge_ = true;

  std::unique_ptr<CacheOccupancy> occ_;  // when measuring and/or tracing
  const Pmh* occ_machine_ = nullptr;     // machine occ_ was shaped for
                                         // (its model spec lives in occ_)

  SchedStats stats_;
  double busy_time_ = 0.0;
  // Tracing state (only touched when opts_.sink is set, except now_ which
  // tracks the event-loop clock unconditionally — occupancy trace events
  // read it by pointer).
  double now_ = 0.0;
  std::vector<double> ready_at_;  // per unit: last ext dependence satisfied
};

}  // namespace ndf
