#include "sched/ws_scheduler.hpp"

#include <deque>
#include <memory>

#include "sched/registry.hpp"
#include "support/rng.hpp"

namespace ndf {

namespace {

/// The "ws" policy: per-processor LIFO deques, random victim selection,
/// and the task-footprint reload model.
///
/// The reload model below is the *charged* one (it sets unit durations and
/// the legacy misses/miss_cost stats). Under SchedOptions::measure_misses
/// the core additionally runs every assignment through the shared LRU
/// occupancy layer (pmh/occupancy.hpp), which unlike the per-processor
/// `resident_` approximation models capacity and sharing in multi-core
/// caches — that measured Q_i is what exceeds the paper's Q*(sigma*Mi)
/// bound when stealing scatters footprints.
class WsScheduler final : public Scheduler {
 public:
  explicit WsScheduler(const SchedOptions& opts)
      : opts_(opts), rng_(opts.seed) {}

  const char* name() const override { return "ws"; }

  void init(SimCore& core) override {
    core_ = &core;
    deque_.resize(core.machine().num_processors());
    resident_.assign(core.machine().num_processors(),
                     std::vector<int>(core.num_levels(), -2));
  }

  void on_start() override {
    // Dependency-free units seed processor 0's deque.
    for (int u : core_->initially_ready_units()) deque_[0].push_back(u);
  }

  void on_task_ready(std::size_t level, int task) override {
    if (level == 1) ready_.push_back(task);
  }

  void on_unit_complete(std::size_t proc, int) override {
    for (int u : ready_) deque_[proc].push_back(u);
    ready_.clear();
  }

  /// Own deque first (LIFO), then steal the oldest unit from a random
  /// victim (one round of up to 2p attempts).
  Assignment pick(std::size_t proc, double) override {
    int u = -1;
    bool stolen = false;
    if (!deque_[proc].empty()) {
      u = deque_[proc].back();
      deque_[proc].pop_back();
    } else {
      const std::size_t np = core_->machine().num_processors();
      for (std::size_t tries = 0; tries < 2 * np && u < 0; ++tries) {
        const std::size_t victim = rng_.below(np);
        if (victim != proc && !deque_[victim].empty()) {
          u = deque_[victim].front();
          deque_[victim].pop_front();
          stolen = true;
          ++core_->stats().steals;
        }
      }
      // Deterministic sweep so an unlucky random round cannot strand a
      // ready unit with every processor idle (the simulator has no
      // retry tick).
      for (std::size_t victim = 0; victim < np && u < 0; ++victim)
        if (victim != proc && !deque_[victim].empty()) {
          u = deque_[victim].front();
          deque_[victim].pop_front();
          stolen = true;
          ++core_->stats().steals;
        }
    }
    if (u < 0) return {};
    const double dur = core_->unit_work(u) + touch_caches(proc, u) +
                       (stolen ? opts_.steal_cost : 0.0);
    return {u, dur};
  }

 private:
  /// Charges context-switch misses for running unit u on processor p;
  /// returns the added latency.
  double touch_caches(std::size_t p, int u) {
    double lat = 0.0;
    const CondensedDag& dag = core_->dag();
    for (std::size_t l = 1; l <= core_->num_levels(); ++l) {
      const int t = dag.unit_task(l, u);
      if (resident_[p][l - 1] == t) continue;
      resident_[p][l - 1] = t;
      const double s = dag.task_size(l, t);
      core_->stats().misses[l - 1] += s;
      if (opts_.charge_misses) lat += s * core_->machine().miss_cost(l);
    }
    return lat;
  }

  const SchedOptions opts_;
  SimCore* core_ = nullptr;

  std::vector<std::deque<int>> deque_;     // per processor
  std::vector<std::vector<int>> resident_; // resident_[p][l-1] = task id
  std::vector<int> ready_;                 // units readied since last pick
  Rng rng_;
};

}  // namespace

namespace detail {
void register_ws_scheduler() {
  register_scheduler(
      "ws",
      "randomized work stealing: LIFO deques + footprint-reload model",
      [](const SchedOptions& opts) -> std::unique_ptr<Scheduler> {
        return std::make_unique<WsScheduler>(opts);
      });
}
}  // namespace detail

SchedStats run_ws_scheduler(const StrandGraph& g, const Pmh& machine,
                            const SchedOptions& opts) {
  return run_scheduler("ws", g, machine, opts);
}

}  // namespace ndf
