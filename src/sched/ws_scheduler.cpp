#include "sched/ws_scheduler.hpp"

#include <deque>
#include <queue>

#include "analysis/decompose.hpp"
#include "support/rng.hpp"

namespace ndf {

namespace {

struct WsSim {
  const StrandGraph& g;
  const SpawnTree& tree;
  const Pmh& m;
  const WsOptions& opts;

  std::size_t L;
  std::vector<Decomposition> dec;  // dec[l-1] = σM_l decomposition
  std::vector<int> ext;            // per unit: unsatisfied external edges
  std::vector<double> unit_work;
  std::vector<char> fired;
  std::vector<std::uint32_t> in_deg;

  std::vector<std::deque<int>> deque_;       // per processor
  std::vector<std::vector<int>> resident;    // resident[p][l-1] = task id
  std::vector<std::size_t> idle;

  struct Ev {
    double time;
    std::size_t proc;
    int unit;
    bool operator>(const Ev& o) const { return time > o.time; }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events;

  Rng rng;
  WsStats stats;
  double busy_time = 0.0;

  WsSim(const StrandGraph& g_, const Pmh& m_, const WsOptions& o_)
      : g(g_), tree(g_.tree()), m(m_), opts(o_), rng(o_.seed) {}

  int owner_at(std::size_t l, NodeId n) const { return dec[l - 1].owner[n]; }
  int unit_of(NodeId n) const { return dec[0].owner[n]; }

  void count_edge(VertexId v, VertexId w, int delta,
                  std::vector<int>* newly_ready) {
    const int tu = unit_of(g.owner(v)), tv = unit_of(g.owner(w));
    if (tu == tv || tv < 0) return;
    ext[tv] += delta;
    if (delta < 0 && ext[tv] == 0 && newly_ready) newly_ready->push_back(tv);
  }

  bool is_control(VertexId v) const { return unit_of(g.owner(v)) < 0; }

  void fire_vertex(VertexId v, std::vector<VertexId>& cascade,
                   std::vector<int>* ready) {
    if (fired[v]) return;
    fired[v] = 1;
    for (VertexId w : g.successors(v)) {
      count_edge(v, w, -1, ready);
      if (--in_deg[w] == 0 && !fired[w] && is_control(w)) cascade.push_back(w);
    }
  }

  void cascade_all(std::vector<VertexId>& cascade, std::vector<int>* ready) {
    while (!cascade.empty()) {
      VertexId v = cascade.back();
      cascade.pop_back();
      fire_vertex(v, cascade, ready);
    }
  }

  /// Charges context-switch misses for running unit u on processor p;
  /// returns the added latency.
  double touch_caches(std::size_t p, int u) {
    double lat = 0.0;
    const NodeId root = dec[0].maximal[u];
    for (std::size_t l = 1; l <= L; ++l) {
      const int t = owner_at(l, root);
      if (resident[p][l - 1] == t) continue;
      resident[p][l - 1] = t;
      const double s = tree.size_of(dec[l - 1].maximal[t]);
      stats.misses[l - 1] += s;
      if (opts.charge_misses) lat += s * m.miss_cost(l);
    }
    return lat;
  }

  void start_unit(std::size_t p, int u, double now, bool stolen) {
    const double dur =
        unit_work[u] + touch_caches(p, u) + (stolen ? opts.steal_cost : 0.0);
    busy_time += dur;
    if (opts.trace)
      opts.trace->push_back(TraceEvent{now, now + dur,
                                       static_cast<std::uint32_t>(p),
                                       dec[0].maximal[u]});
    events.push(Ev{now + dur, p, u});
  }

  /// Gives each idle processor work: own deque first (LIFO), then steal the
  /// oldest unit from a random victim (one round of up to p attempts).
  void dispatch(double now) {
    std::vector<std::size_t> still_idle;
    for (std::size_t p : idle) {
      int u = -1;
      bool stolen = false;
      if (!deque_[p].empty()) {
        u = deque_[p].back();
        deque_[p].pop_back();
      } else {
        const std::size_t np = m.num_processors();
        for (std::size_t tries = 0; tries < 2 * np && u < 0; ++tries) {
          const std::size_t victim = rng.below(np);
          if (victim != p && !deque_[victim].empty()) {
            u = deque_[victim].front();
            deque_[victim].pop_front();
            stolen = true;
            ++stats.steals;
          }
        }
        // Deterministic sweep so an unlucky random round cannot strand a
        // ready unit with every processor idle (the simulator has no
        // retry tick).
        for (std::size_t victim = 0; victim < np && u < 0; ++victim)
          if (victim != p && !deque_[victim].empty()) {
            u = deque_[victim].front();
            deque_[victim].pop_front();
            stolen = true;
            ++stats.steals;
          }
      }
      if (u < 0) {
        still_idle.push_back(p);
        continue;
      }
      start_unit(p, u, now, stolen);
    }
    idle.swap(still_idle);
  }

  WsStats run() {
    L = m.num_cache_levels();
    dec.reserve(L);
    for (std::size_t l = 1; l <= L; ++l)
      dec.push_back(decompose(tree, opts.sigma * m.cache_size(l)));
    const std::size_t U = dec[0].maximal.size();
    ext.assign(U, 0);
    unit_work.resize(U);
    for (std::size_t u = 0; u < U; ++u)
      unit_work[u] = tree.work_of(dec[0].maximal[u]);

    fired.assign(g.num_vertices(), 0);
    in_deg.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) in_deg[v] = g.in_degree(v);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId w : g.successors(v)) count_edge(v, w, +1, nullptr);

    deque_.resize(m.num_processors());
    resident.assign(m.num_processors(), std::vector<int>(L, -2));
    for (std::size_t p = 0; p < m.num_processors(); ++p) idle.push_back(p);
    stats.misses.assign(L, 0.0);
    stats.atomic_units = U;
    for (std::size_t u = 0; u < U; ++u) stats.total_work += unit_work[u];

    // Initial cascade; dependency-free units seed processor 0's deque.
    std::vector<VertexId> cascade;
    std::vector<int> ready;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (in_deg[v] == 0 && is_control(v)) cascade.push_back(v);
    cascade_all(cascade, &ready);
    ready.clear();  // the ext scan below already covers these
    for (std::size_t u = 0; u < U; ++u)
      if (ext[u] == 0) deque_[0].push_back(static_cast<int>(u));
    dispatch(0.0);

    double now = 0.0;
    std::size_t done = 0;
    while (!events.empty()) {
      const Ev ev = events.top();
      events.pop();
      now = ev.time;
      idle.push_back(ev.proc);
      ++done;
      // Fire the completed unit's vertices (children first).
      std::vector<NodeId> stack{dec[0].maximal[ev.unit]}, order;
      while (!stack.empty()) {
        NodeId n = stack.back();
        stack.pop_back();
        order.push_back(n);
        for (NodeId c : tree.node(n).children) stack.push_back(c);
      }
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        fire_vertex(g.enter(*it), cascade, &ready);
        fire_vertex(g.exit(*it), cascade, &ready);
      }
      cascade_all(cascade, &ready);
      for (int u : ready) deque_[ev.proc].push_back(u);
      ready.clear();
      dispatch(now);
    }
    NDF_CHECK_MSG(done == U, "WS simulation stalled: " << done << " of " << U
                                                       << " units completed");
    stats.makespan = now;
    for (std::size_t l = 1; l <= L; ++l)
      stats.miss_cost += stats.misses[l - 1] * m.miss_cost(l);
    stats.utilization =
        now > 0 ? busy_time / (double(m.num_processors()) * now) : 1.0;
    return stats;
  }
};

}  // namespace

WsStats run_ws_scheduler(const StrandGraph& g, const Pmh& machine,
                         const WsOptions& opts) {
  WsSim sim(g, machine, opts);
  return sim.run();
}

}  // namespace ndf
