// Execution traces from the scheduler simulators: one record per atomic
// unit execution, plus helpers to turn a trace into a utilization timeline
// (the "how busy was the machine over time" curve that makes the ND-vs-NP
// load-balance difference visible).
#pragma once

#include <cstdint>
#include <vector>

#include "nd/spawn_tree.hpp"

namespace ndf {

struct TraceEvent {
  double start = 0.0;
  double end = 0.0;
  std::uint32_t proc = 0;
  NodeId unit_root = kNoNode;
};

using Trace = std::vector<TraceEvent>;

/// Fraction of processors busy in each of `buckets` equal slices of
/// [0, makespan). Events outside the range are clipped.
std::vector<double> utilization_timeline(const Trace& trace,
                                         std::size_t num_procs,
                                         double makespan,
                                         std::size_t buckets);

/// Validates a trace: no processor runs two units at once, all times are
/// ordered. Returns false (and sets *msg) on violation.
bool validate_trace(const Trace& trace, std::size_t num_procs,
                    std::string* msg);

}  // namespace ndf
