// Space-bounded scheduler for ND programs on a PMH (Sec. 4), simulated by
// discrete events over the elaborated strand DAG.
//
// Faithful elements:
//  * Anchoring: a σMi-maximal task is anchored to a level-i cache below its
//    parent task's anchor, only once it is FULLY READY (every dataflow
//    arrow entering its subtree from outside is satisfied) — this is where
//    the ND model's extra parallelism shows up, because partial
//    dependencies make subtasks ready earlier than the NP serial elision.
//  * Boundedness: the sum of sizes of tasks anchored to a cache of size M
//    never exceeds σM (capacity reservation for the task's lifetime).
//  * Allocation: a task of size S anchored at level i leases
//    gi(S) = min{fi, max{1, ⌊fi·(3S/Mi)^α'⌋}} free level-(i-1) subclusters
//    of its anchor; its subtasks may only anchor on leased subclusters.
//  * Miss accounting: anchoring a task of size s at level i loads its
//    footprint once — s misses at level i (this is exactly the Theorem 1 /
//    Q*(t;σMi) accounting); the latency s·Ci is spread uniformly over the
//    task's serial execution units so that it parallelizes the way the
//    Eq. (22) bound assumes.
//
// Simplifications (documented in DESIGN.md): σM1-maximal tasks are atomic
// serial units (the paper executes them depth-first on one processor
// anyway); an idle processor takes work from the nearest ancestor anchor
// with a non-empty queue rather than via per-anchor task queues with
// worst-case provisioning.
#pragma once

#include <vector>

#include "analysis/decompose.hpp"
#include "nd/graph.hpp"
#include "pmh/machine.hpp"
#include "sched/trace.hpp"

namespace ndf {

struct SbOptions {
  double sigma = 1.0 / 3.0;  ///< dilation parameter (boundedness)
  double alpha_prime = 1.0;  ///< allocation exponent α' = min{αmax, 1}
  bool charge_misses = true; ///< include miss latency in strand durations
  Trace* trace = nullptr;    ///< optional per-unit execution trace sink
};

struct SbStats {
  double makespan = 0.0;
  double total_work = 0.0;
  /// misses[i] = total misses in all level-(i+1) caches (i in 0..h-2).
  std::vector<double> misses;
  /// Total miss latency charged (Σ_level misses·C).
  double miss_cost = 0.0;
  std::size_t atomic_units = 0;
  std::size_t anchors = 0;
  /// Average processor utilization: total busy time / (p · makespan).
  double utilization = 0.0;
};

/// Runs the space-bounded scheduler on the elaborated graph `g` (ND or NP
/// elaboration) over `machine`. The spawn tree must carry size annotations.
SbStats run_sb_scheduler(const StrandGraph& g, const Pmh& machine,
                         const SbOptions& opts = {});

/// The perfectly-load-balanced reference of Eq. (22) plus work:
/// (T1 + Σi Q*(t;σMi)·Ci) / p.
double sb_balanced_bound(const SpawnTree& tree, const Pmh& machine,
                         double sigma = 1.0 / 3.0);

}  // namespace ndf
