// Space-bounded scheduler for ND programs on a PMH (Sec. 4), a policy on
// the shared discrete-event core (sched/sim_core.hpp); registered as "sb".
//
// Faithful elements:
//  * Anchoring: a σMi-maximal task is anchored to a level-i cache below its
//    parent task's anchor, only once it is FULLY READY (every dataflow
//    arrow entering its subtree from outside is satisfied) — this is where
//    the ND model's extra parallelism shows up, because partial
//    dependencies make subtasks ready earlier than the NP serial elision.
//  * Boundedness: the sum of sizes of tasks anchored to a cache of size M
//    never exceeds σM (capacity reservation for the task's lifetime).
//  * Allocation: a task of size S anchored at level i leases
//    gi(S) = min{fi, max{1, ⌊fi·(3S/Mi)^α'⌋}} free level-(i-1) subclusters
//    of its anchor; its subtasks may only anchor on leased subclusters.
//  * Miss accounting: anchoring a task of size s at level i loads its
//    footprint once — s misses at level i (this is exactly the Theorem 1 /
//    Q*(t;σMi) accounting); the latency s·Ci is spread uniformly over the
//    task's serial execution units so that it parallelizes the way the
//    Eq. (22) bound assumes. That is the *charged* model; under
//    SchedOptions::measure_misses the core also *measures* misses with a
//    per-cache LRU occupancy simulation, in which sb pins each anchored
//    footprint for the task's lifetime (the boundedness reservation), so
//    measured Q_i <= charged misses <= Q*(t;σMi) — the testable form of
//    Theorem 1 (see DESIGN.md, "Cache-miss accounting").
//
// Simplifications are documented in DESIGN.md.
#pragma once

#include "sched/sim_core.hpp"

namespace ndf {

/// Runs the space-bounded scheduler on the elaborated graph `g` (ND or NP
/// elaboration) over `machine`. The spawn tree must carry size annotations.
/// Equivalent to run_scheduler("sb", g, machine, opts).
SchedStats run_sb_scheduler(const StrandGraph& g, const Pmh& machine,
                            const SchedOptions& opts = {});

/// The perfectly-load-balanced reference of Eq. (22) plus work:
/// (T1 + Σi Q*(t;σMi)·Ci) / p.
double sb_balanced_bound(const SpawnTree& tree, const Pmh& machine,
                         double sigma = 1.0 / 3.0);

}  // namespace ndf
