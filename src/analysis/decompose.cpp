#include "analysis/decompose.hpp"

namespace ndf {

Decomposition decompose(const SpawnTree& tree, double M) {
  NDF_CHECK(M > 0.0);
  Decomposition d;
  d.M = M;
  d.owner.assign(tree.num_nodes(), -1);

  // Iterative DFS from the root; cut at the first node of size <= M.
  std::vector<NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    const SpawnNode& node = tree.node(n);
    const bool cut = tree.size_of(n) <= M || node.kind == Kind::Strand;
    if (cut) {
      const int idx = static_cast<int>(d.maximal.size());
      d.maximal.push_back(n);
      // Mark the whole maximal subtree.
      for (NodeId m : tree.strands_under(n)) d.owner[m] = idx;
      std::vector<NodeId> sub{n};
      while (!sub.empty()) {
        NodeId s = sub.back();
        sub.pop_back();
        d.owner[s] = idx;
        for (NodeId c : tree.node(s).children) sub.push_back(c);
      }
    } else {
      d.glue.push_back(n);
      for (auto it = node.children.rbegin(); it != node.children.rend(); ++it)
        stack.push_back(*it);
    }
  }
  return d;
}

}  // namespace ndf
