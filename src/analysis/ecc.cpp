#include "analysis/ecc.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ndf {

double MaximalDag::longest_chain(const std::vector<double>& weights) const {
  NDF_CHECK(weights.size() == num_maximal);
  auto weight = [&](std::uint32_t v) {
    return v < num_maximal ? weights[v] : 0.0;
  };
  // Kahn order + DP.
  std::vector<std::uint32_t> indeg = in_degree;
  std::vector<std::uint32_t> frontier;
  std::vector<double> dist(num_supernodes(), 0.0);
  std::size_t seen = 0;
  for (std::uint32_t v = 0; v < num_supernodes(); ++v)
    if (indeg[v] == 0) frontier.push_back(v);
  double best = 0.0;
  while (!frontier.empty()) {
    std::uint32_t v = frontier.back();
    frontier.pop_back();
    ++seen;
    dist[v] += weight(v);
    best = std::max(best, dist[v]);
    for (std::uint32_t w : succ[v]) {
      dist[w] = std::max(dist[w], dist[v]);
      if (--indeg[w] == 0) frontier.push_back(w);
    }
  }
  NDF_CHECK_MSG(seen == num_supernodes(),
                "condensed maximal-task graph has a cycle");
  return best;
}

MaximalDag build_maximal_dag(const StrandGraph& g, const Decomposition& d) {
  const SpawnTree& tree = g.tree();
  // Supernode mapping: vertex v of the strand graph -> supernode id.
  // Maximal task i -> i. Glue vertices get fresh ids after the maximals.
  const std::uint32_t nm = static_cast<std::uint32_t>(d.maximal.size());
  std::vector<std::uint32_t> super(g.num_vertices(),
                                   std::uint32_t(-1));
  std::uint32_t next = nm;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const NodeId n = g.owner(v);
    const int own = d.owner[n];
    if (own >= 0)
      super[v] = static_cast<std::uint32_t>(own);
    else if (tree.in_subtree(n, tree.root()))
      super[v] = next++;
  }

  MaximalDag m;
  m.num_maximal = nm;
  m.succ.resize(next);
  m.in_degree.assign(next, 0);

  std::unordered_set<std::uint64_t> seen;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (super[v] == std::uint32_t(-1)) continue;
    for (VertexId w : g.successors(v)) {
      const std::uint32_t a = super[v], b = super[w];
      if (a == b || b == std::uint32_t(-1)) continue;
      const std::uint64_t key = (std::uint64_t(a) << 32) | b;
      if (!seen.insert(key).second) continue;
      m.succ[a].push_back(b);
      ++m.in_degree[b];
    }
  }
  return m;
}

EccResult effective_cache_complexity(const SpawnTree& tree,
                                     const StrandGraph& g,
                                     const Decomposition& d, double alpha) {
  NDF_CHECK(alpha >= 0.0);
  const MaximalDag m = build_maximal_dag(g, d);

  const double s_root = tree.size_of(tree.root());
  NDF_CHECK(s_root > 0.0);

  // Effective depth of each maximal task ti: ⌈Q̂α(ti)/s(ti)^α⌉ with
  // Q̂α(ti) = Q*(ti;M) = s(ti), i.e. ⌈s(ti)^{1-α}⌉.
  std::vector<double> eff(d.maximal.size());
  double q_sum = 0.0;
  for (std::size_t i = 0; i < d.maximal.size(); ++i) {
    const double s = tree.size_of(d.maximal[i]);
    NDF_CHECK(s > 0.0);
    eff[i] = std::ceil(std::pow(s, 1.0 - alpha));
    q_sum += s;
  }

  EccResult r;
  r.depth_term = m.longest_chain(eff);
  r.work_term = std::ceil(q_sum / std::pow(s_root, alpha));
  r.effective_depth = std::max(r.depth_term, r.work_term);
  r.q_hat = r.effective_depth * std::pow(s_root, alpha);
  return r;
}

double parallelizability(const SpawnTree& tree, const StrandGraph& g,
                         const Decomposition& d, double cU, double lo,
                         double hi, double step) {
  const double q_star = parallel_cache_complexity(tree, d);
  double best = lo;
  for (double a = lo; a <= hi + 1e-12; a += step) {
    const EccResult r = effective_cache_complexity(tree, g, d, a);
    if (r.q_hat <= cU * q_star)
      best = a;
    else
      break;  // q_hat/q_star is monotone in α once depth dominates
  }
  return best;
}

}  // namespace ndf
