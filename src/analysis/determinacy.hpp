// Determinacy verification for elaborated ND programs.
//
// A fire-rule table is only correct if every true data dependency of the
// algorithm is represented: any two strands whose declared footprints
// conflict (one writes what the other reads or writes) must be ordered by
// a dependence path in the algorithm DAG. This checker verifies exactly
// that, by computing strand-to-strand reachability and testing every
// conflicting pair. It is the executable form of the paper's claim that
// the DRS produces the algorithm DAG (Sec. 2), and it is what validates
// our transcription of the rule tables (including the documented VH / TM1
// corrections).
//
// Intended for small problem instances (cost is O(|V|·|S|/64) memory for
// reachability bitsets plus O(|S|²) conflict pairs).
#pragma once

#include <string>

#include "nd/graph.hpp"

namespace ndf {

struct DeterminacyReport {
  bool ok = true;
  std::size_t strands_with_footprint = 0;
  std::size_t conflicting_pairs = 0;  ///< pairs needing an ordering
  std::string message;                ///< first violation, if any
};

/// Checks that all conflicting strand pairs in `g` are ordered. Strands
/// without declared footprints are ignored.
DeterminacyReport check_determinacy(const StrandGraph& g);

}  // namespace ndf
