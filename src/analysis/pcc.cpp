#include "analysis/pcc.hpp"

namespace ndf {

double parallel_cache_complexity(const SpawnTree& tree,
                                 const Decomposition& d) {
  double q = 0.0;
  for (NodeId m : d.maximal) q += tree.size_of(m);
  q += kGlueCost * static_cast<double>(d.glue.size());
  return q;
}

double parallel_cache_complexity(const SpawnTree& tree, double M) {
  return parallel_cache_complexity(tree, decompose(tree, M));
}

}  // namespace ndf
