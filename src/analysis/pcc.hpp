// Parallel cache complexity Q*(t; M) (Sec. 4, Fig. 13): the sum of the
// sizes of the M-maximal subtasks of t plus a constant overhead per glue
// node. Q* does not depend on the traversal order, and by Theorem 1 bounds
// the level-j misses of any space-bounded execution (with M = σ·Mj).
#pragma once

#include "analysis/decompose.hpp"

namespace ndf {

/// Cost charged per glue node (the paper's "constant overhead").
inline constexpr double kGlueCost = 1.0;

/// Q*(root; M) computed from a decomposition.
double parallel_cache_complexity(const SpawnTree& tree,
                                 const Decomposition& d);

/// Convenience overload: decomposes and evaluates.
double parallel_cache_complexity(const SpawnTree& tree, double M);

}  // namespace ndf
