// Effective cache complexity Q̂α(t; M) (Definition 2) and the
// parallelizability αmax of an algorithm (Sec. 4).
//
// The spawn tree is unrolled to its M-maximal leaves; all dataflow arrows
// between them (fire-derived and seq) are regarded as dependencies. Then
//
//   ⌈Q̂α(t)/s(t)^α⌉ = max( depth term, work term )
//     depth term = max over chains χ of M-maximal tasks of
//                  Σ_{ti∈χ} ⌈Q̂α(ti)/s(ti)^α⌉, with Q̂α(ti) = Q*(ti;M) = s(ti)
//     work term  = ⌈ Σ_{ti} Q̂α(ti) / s(t)^α ⌉
//
// The depth term is computed as a longest vertex-weighted path over the
// condensation of the strand DAG onto M-maximal supernodes (glue vertices
// carry weight 0 but provide connectivity).
//
// αmax(M) is the largest α for which Q̂α(t;M) ≤ cU · Q*(t;M); past it the
// depth-dominated term takes over and space-bounded scheduling can no
// longer load balance the task on a machine of that parallelism.
#pragma once

#include <vector>

#include "analysis/decompose.hpp"
#include "analysis/pcc.hpp"
#include "nd/graph.hpp"

namespace ndf {

/// Condensation of a strand graph onto the M-maximal decomposition.
/// Supernode ids: [0, maximal.size()) are maximal tasks; the rest are
/// individual enter/exit vertices of glue nodes.
struct MaximalDag {
  std::size_t num_maximal = 0;
  std::vector<std::vector<std::uint32_t>> succ;
  std::vector<std::uint32_t> in_degree;

  std::size_t num_supernodes() const { return succ.size(); }

  /// Longest path where maximal supernode i has weight `weights[i]` and
  /// glue vertices weigh 0. Validates acyclicity.
  double longest_chain(const std::vector<double>& weights) const;
};

MaximalDag build_maximal_dag(const StrandGraph& g, const Decomposition& d);

struct EccResult {
  double depth_term = 0.0;  ///< max chain of effective depths
  double work_term = 0.0;   ///< ⌈Q*(t;M)-ish / s(t)^α⌉
  double effective_depth = 0.0;
  double q_hat = 0.0;       ///< Q̂α(t;M)
};

EccResult effective_cache_complexity(const SpawnTree& tree,
                                     const StrandGraph& g,
                                     const Decomposition& d, double alpha);

/// Largest α in [lo, hi] (granularity `step`) with Q̂α ≤ cU·Q*. Returns lo
/// if even lo fails.
double parallelizability(const SpawnTree& tree, const StrandGraph& g,
                         const Decomposition& d, double cU = 2.0,
                         double lo = 0.0, double hi = 1.5,
                         double step = 1.0 / 64.0);

}  // namespace ndf
