#include "analysis/determinacy.hpp"

#include <sstream>
#include <vector>

namespace ndf {

namespace {

/// Dense bitset rows over strand indices.
class BitMatrix {
 public:
  BitMatrix(std::size_t rows, std::size_t bits)
      : words_((bits + 63) / 64), data_(rows * words_, 0) {}

  void set(std::size_t row, std::size_t bit) {
    data_[row * words_ + bit / 64] |= 1ULL << (bit % 64);
  }
  bool test(std::size_t row, std::size_t bit) const {
    return data_[row * words_ + bit / 64] >> (bit % 64) & 1;
  }
  void merge_into(std::size_t dst, std::size_t src) {
    std::uint64_t* d = &data_[dst * words_];
    const std::uint64_t* s = &data_[src * words_];
    for (std::size_t w = 0; w < words_; ++w) d[w] |= s[w];
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> data_;
};

}  // namespace

DeterminacyReport check_determinacy(const StrandGraph& g) {
  const SpawnTree& tree = g.tree();
  DeterminacyReport rep;

  // Index the strands that declared footprints.
  std::vector<NodeId> strands;
  std::vector<int> strand_ix(tree.num_nodes(), -1);
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    const SpawnNode& node = tree.node(n);
    if (node.kind == Kind::Strand &&
        (!node.reads.empty() || !node.writes.empty()) &&
        tree.in_subtree(n, tree.root())) {
      strand_ix[n] = static_cast<int>(strands.size());
      strands.push_back(n);
    }
  }
  rep.strands_with_footprint = strands.size();
  if (strands.empty()) return rep;

  // reach[v] = set of footprint strands reachable from vertex v (a strand
  // s is "at" its enter vertex). Processed in reverse topological order.
  const std::vector<VertexId> order = g.topological_order();
  BitMatrix reach(g.num_vertices(), strands.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    for (VertexId w : g.successors(v)) reach.merge_into(v, w);
    if (!g.is_exit(v)) {
      const int ix = strand_ix[g.owner(v)];
      if (ix >= 0) reach.set(v, static_cast<std::size_t>(ix));
    }
  }

  auto conflicts = [&](const SpawnNode& a, const SpawnNode& b) {
    return segments_overlap(a.writes, b.writes) ||
           segments_overlap(a.writes, b.reads) ||
           segments_overlap(a.reads, b.writes);
  };

  for (std::size_t i = 0; i < strands.size(); ++i) {
    const SpawnNode& a = tree.node(strands[i]);
    for (std::size_t j = i + 1; j < strands.size(); ++j) {
      const SpawnNode& b = tree.node(strands[j]);
      if (!conflicts(a, b)) continue;
      ++rep.conflicting_pairs;
      const bool ab = reach.test(g.exit(strands[i]), j);
      const bool ba = reach.test(g.exit(strands[j]), i);
      if (!ab && !ba) {
        rep.ok = false;
        if (rep.message.empty()) {
          std::ostringstream os;
          os << "unordered conflicting strands: node " << strands[i] << " ('"
             << a.label << "') and node " << strands[j] << " ('" << b.label
             << "')";
          rep.message = os.str();
        }
      }
    }
  }
  return rep;
}

}  // namespace ndf
