// M-maximal decomposition of a spawn tree (Sec. 4, Fig. 13).
//
// A task is M-maximal if its size s(t) is at most M but its parent's size
// exceeds M. Decomposing a spawn tree by M yields the set of M-maximal
// subtrees plus the "glue nodes" above them; the decomposition is unique.
#pragma once

#include <vector>

#include "nd/spawn_tree.hpp"

namespace ndf {

struct Decomposition {
  double M = 0.0;
  /// Roots of the M-maximal subtrees, in tree order.
  std::vector<NodeId> maximal;
  /// Glue nodes (strictly above every maximal task).
  std::vector<NodeId> glue;
  /// Per spawn-tree node: index into `maximal` of the covering maximal
  /// task, or -1 for glue nodes / nodes outside the root's subtree.
  std::vector<int> owner;

  bool is_glue(NodeId n) const { return owner[n] < 0; }
};

/// Decomposes the tree rooted at `tree.root()` by threshold M.
///
/// A strand whose own size exceeds M is treated as maximal anyway (a leaf
/// cannot be subdivided); the paper's algorithms never produce this case
/// when base-case sizes are below the smallest cache.
Decomposition decompose(const SpawnTree& tree, double M);

}  // namespace ndf
