// Differential execution oracle for the native runtime: instruments every
// strand body of a spawn tree with atomic epoch stamps (a global
// fetch-add clock) and run counters, so a test can assert — for any
// executor schedule — that
//
//   1. every strand ran exactly once, and
//   2. every task-level dependence arrow was respected: all strands of the
//      arrow's source subtree stamped their end epoch before any strand of
//      the sink subtree stamped its start epoch.
//
// The oracle wraps the existing bodies (the original body still runs
// between the stamps), so it composes with real-data kernels and with
// structure-only trees alike, and it records which executor worker ran
// each strand (runtime/executor.hpp's current_worker()) so sb-mode tests
// can additionally assert anchor-group confinement.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "nd/graph.hpp"
#include "nd/spawn_tree.hpp"

namespace ndf {

class ExecutionOracle {
 public:
  /// Wraps every strand body under the tree's root. The oracle must
  /// outlive every execution of the tree.
  explicit ExecutionOracle(SpawnTree& tree);

  ExecutionOracle(const ExecutionOracle&) = delete;
  ExecutionOracle& operator=(const ExecutionOracle&) = delete;

  /// Clears all stamps and counters for the next run.
  void reset();

  std::size_t num_strands() const { return strands_.size(); }
  /// Times strand `n` ran since the last reset.
  int runs(NodeId n) const { return rec_[index_of(n)].runs.load(); }
  std::uint64_t start_epoch(NodeId n) const {
    return rec_[index_of(n)].start;
  }
  std::uint64_t end_epoch(NodeId n) const { return rec_[index_of(n)].end; }
  /// Executor worker that ran strand `n` (SIZE_MAX for execute_serial or
  /// a strand that never ran).
  std::size_t worker(NodeId n) const { return rec_[index_of(n)].worker; }

  /// Checks exactly-once and every arrow's ordering against the elaborated
  /// graph (which must come from the same tree). Returns human-readable
  /// violations; empty means the run was consistent.
  std::vector<std::string> verify(const StrandGraph& g) const;

 private:
  struct Record {
    std::atomic<int> runs{0};
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::size_t worker = static_cast<std::size_t>(-1);
  };

  std::size_t index_of(NodeId n) const;

  SpawnTree* tree_;
  std::vector<NodeId> strands_;        ///< instrumented strand ids
  std::vector<std::size_t> index_;     ///< NodeId → record index (or npos)
  std::vector<Record> rec_;
  std::atomic<std::uint64_t> clock_{1};  ///< 0 = "never stamped"
};

}  // namespace ndf
