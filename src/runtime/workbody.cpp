#include "runtime/workbody.hpp"

#include <algorithm>
#include <chrono>

namespace ndf {

void spin_work(std::uint64_t iters) {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters; ++i) sink = sink + i;
}

std::size_t attach_spin_bodies(SpawnTree& tree, double spins_per_work) {
  std::size_t attached = 0;
  for (NodeId n : tree.strands_under(tree.root())) {
    SpawnNode& node = tree.node(n);
    if (node.body) continue;
    const std::uint64_t iters = static_cast<std::uint64_t>(
        std::max(1.0, node.work * spins_per_work));
    node.body = [iters] { spin_work(iters); };
    ++attached;
  }
  return attached;
}

double spin_rate_per_second() {
  // Warm up, then time a block big enough to dwarf clock granularity.
  spin_work(100000);
  const std::uint64_t iters = 5000000;
  const auto t0 = std::chrono::steady_clock::now();
  spin_work(iters);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s > 0 ? double(iters) / s : 1e9;
}

}  // namespace ndf
