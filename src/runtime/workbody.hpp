// Synthetic strand payloads for structure-only trees: the workload
// registry (src/exp) and the generator (src/gen) build trees whose strands
// declare work in abstract instruction counts but carry no executable
// body. To measure native wall-clock scaling on those graphs, ndf_native
// attaches a calibrated spin body to every body-less strand: `work ×
// spins_per_work` iterations of an optimizer-proof spin loop, so relative
// strand durations mirror the declared work the simulator charges.
#pragma once

#include <cstddef>
#include <cstdint>

#include "nd/spawn_tree.hpp"

namespace ndf {

/// Burns `iters` spin iterations; never optimized away.
void spin_work(std::uint64_t iters);

/// Gives every body-less strand under the root a spin body of
/// `work × spins_per_work` iterations (clamped to at least 1). Strands
/// that already have a body keep it. Returns the number of bodies
/// attached.
std::size_t attach_spin_bodies(SpawnTree& tree, double spins_per_work);

/// Measured spin-loop rate of this machine, in iterations per second
/// (one-shot calibration over a few milliseconds). Lets drivers size
/// spins_per_work so a workload's serial run hits a target duration.
double spin_rate_per_second();

}  // namespace ndf
