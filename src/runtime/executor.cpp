#include "runtime/executor.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"
#include "support/rng.hpp"

namespace ndf {

namespace {

class Pool {
 public:
  Pool(const StrandGraph& g, std::size_t num_threads)
      : g_(g), tree_(g.tree()), nthreads_(num_threads) {
    const std::size_t V = g_.num_vertices();
    counts_ = std::vector<std::atomic<std::uint32_t>>(V);
    for (VertexId v = 0; v < V; ++v)
      counts_[v].store(g_.in_degree(v), std::memory_order_relaxed);
    for (NodeId n = 0; n < tree_.num_nodes(); ++n)
      if (tree_.node(n).kind == Kind::Strand &&
          tree_.in_subtree(n, tree_.root()))
        ++total_;
    for (std::size_t i = 0; i < nthreads_; ++i)
      deques_.emplace_back(total_ + 1);
  }

  ExecReport run() {
    // Seed: fire every vertex whose in-degree is already zero, exactly
    // once. Control vertices cascade; strand enters become initial jobs
    // (strands that become ready during the cascade are pushed by
    // propagate() itself — no second scan, or they would run twice).
    seed_cursor_ = 0;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      // Static zero in-degree only: vertices that reach zero during the
      // cascade are handled (once) inside propagate().
      if (g_.in_degree(v) != 0) continue;
      if (is_strand_enter(v))
        push_job(static_cast<std::int32_t>(g_.owner(v)),
                 seed_cursor_++ % nthreads_);
      else
        propagate(v, seed_cursor_++ % nthreads_);
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(nthreads_);
    for (std::size_t i = 1; i < nthreads_; ++i)
      threads.emplace_back([this, i] { worker(i); });
    worker(0);
    for (auto& th : threads) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    NDF_CHECK_MSG(done_.load() == total_,
                  "executor finished with " << done_.load() << " of "
                                            << total_ << " strands run");
    ExecReport r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.strands = total_;
    r.steals = steals_.load();
    return r;
  }

 private:
  bool is_strand_enter(VertexId v) const {
    return !g_.is_exit(v) && tree_.node(g_.owner(v)).kind == Kind::Strand;
  }

  void push_job(std::int32_t node, std::size_t worker_ix) {
    deques_[worker_ix].push(node);
  }

  /// Fires vertex v (whose count reached zero): decrements successors,
  /// recursing through control vertices; ready strands are pushed onto the
  /// calling worker's deque.
  void propagate(VertexId start, std::size_t worker_ix) {
    std::vector<VertexId> stack{start};
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g_.successors(v)) {
        if (counts_[w].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (is_strand_enter(w))
            push_job(static_cast<std::int32_t>(g_.owner(w)), worker_ix);
          else
            stack.push_back(w);
        }
      }
    }
  }

  void run_strand(NodeId n, std::size_t worker_ix) {
    const SpawnNode& node = tree_.node(n);
    if (node.body) node.body();
    // enter(n) fired at push time; its only successor is exit(n).
    propagate(g_.enter(n), worker_ix);
    done_.fetch_add(1, std::memory_order_acq_rel);
  }

  void worker(std::size_t ix) {
    Rng rng(0x9E3779B97F4A7C15ULL ^ ix);
    std::size_t backoff = 0;
    while (done_.load(std::memory_order_acquire) < total_) {
      std::int32_t job = deques_[ix].pop();
      if (job < 0 && nthreads_ > 1) {
        const std::size_t victim = rng.below(nthreads_);
        if (victim != ix) {
          job = deques_[victim].steal();
          if (job >= 0) steals_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (job >= 0) {
        backoff = 0;
        run_strand(static_cast<NodeId>(job), ix);
      } else if (++backoff > 64) {
        std::this_thread::yield();
      }
    }
  }

  const StrandGraph& g_;
  const SpawnTree& tree_;
  std::size_t nthreads_;
  std::size_t total_ = 0;
  std::size_t seed_cursor_ = 0;
  std::vector<std::atomic<std::uint32_t>> counts_;
  std::deque<WsDeque> deques_;  // WsDeque is not movable (atomics)
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> steals_{0};
};

}  // namespace

ExecReport execute_parallel(const StrandGraph& g, std::size_t num_threads) {
  NDF_CHECK(num_threads >= 1);
  Pool pool(g, num_threads);
  return pool.run();
}

ExecReport execute_serial(const StrandGraph& g) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t strands = 0;
  for (VertexId v : g.topological_order()) {
    if (g.is_exit(v)) continue;
    const SpawnNode& n = g.tree().node(g.owner(v));
    if (n.kind == Kind::Strand) {
      if (n.body) n.body();
      ++strands;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  ExecReport r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.strands = strands;
  return r;
}

}  // namespace ndf
