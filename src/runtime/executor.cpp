#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "pmh/machine.hpp"
#include "runtime/deque.hpp"
#include "support/rng.hpp"

namespace ndf {

namespace {

thread_local std::size_t tls_worker = static_cast<std::size_t>(-1);

/// Scope guard that names the current thread as executor worker `ix`.
struct WorkerScope {
  explicit WorkerScope(std::size_t ix) { tls_worker = ix; }
  ~WorkerScope() { tls_worker = static_cast<std::size_t>(-1); }
};

/// Deterministic per-strand chaos delay: derived from (chaos seed, node,
/// phase) only, so the same seed perturbs the same strands by the same
/// amounts no matter which worker runs them or in what order.
std::uint32_t chaos_spins(const ChaosOptions& c, NodeId n,
                          std::uint32_t phase) {
  if (c.max_delay_spins == 0) return 0;
  std::uint64_t s = c.seed ^ (0x9E3779B97F4A7C15ULL * (n + 1)) ^ phase;
  return static_cast<std::uint32_t>(splitmix64(s) % c.max_delay_spins);
}

void spin_iters(std::uint32_t iters) {
  volatile std::uint32_t sink = 0;
  for (std::uint32_t i = 0; i < iters; ++i) sink = sink + i;
}

void pin_to_cpu(std::size_t cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

/// Worker index range under one level-`level` cache of `machine`, with the
/// `workers` real threads spread proportionally over the machine's
/// processors (worker w covers processors [w·P/W, (w+1)·P/W)).
AnchorPlan::Range cache_worker_range(const Pmh& machine, std::size_t level,
                                     std::size_t cache, std::size_t workers) {
  const std::size_t P = machine.num_processors();
  const std::size_t ppc = machine.procs_per_cache(level);
  const std::size_t pb = cache * ppc, pe = (cache + 1) * ppc;
  // First worker whose processor window starts at or after pb / pe.
  const auto first_at = [&](std::size_t proc) {
    return static_cast<std::uint32_t>((proc * workers + P - 1) / P);
  };
  return {first_at(pb), first_at(pe)};
}

struct AnchorState {
  const SpawnTree& tree;
  const Pmh& machine;
  double sigma;
  std::size_t workers;
  AnchorPlan plan;
  /// load[level-1][cache] = total anchored work, for least-loaded choice.
  std::vector<std::vector<double>> load;

  void assign(NodeId n, std::size_t level, AnchorPlan::Range range) {
    // Anchor n down every cache level it fits in, highest first — the
    // level where it fits but its parent did not is where the simulator's
    // sb policy anchors it; inner levels then re-anchor the same subtree
    // the way nested maximal tasks anchor to nested caches.
    while (level >= 1 &&
           tree.size_of(n) <= sigma * machine.cache_size(level)) {
      const std::size_t ppc = machine.procs_per_cache(level);
      // Candidate caches at this level whose processors lie inside the
      // current range's processor window.
      const std::size_t P = machine.num_processors();
      const std::size_t pb = (range.begin * P) / workers;
      const std::size_t pe = (range.end * P + workers - 1) / workers;
      std::size_t best = static_cast<std::size_t>(-1);
      AnchorPlan::Range best_range;
      for (std::size_t c = pb / ppc; c * ppc < pe; ++c) {
        const AnchorPlan::Range r =
            cache_worker_range(machine, level, c, workers);
        // Only ranges that are real subdivisions: non-empty and inside
        // the inherited range.
        if (r.begin >= r.end) continue;
        if (r.begin < range.begin || r.end > range.end) continue;
        if (best == static_cast<std::size_t>(-1) ||
            load[level - 1][c] < load[level - 1][best])
          best = c;
      }
      if (best != static_cast<std::size_t>(-1)) {
        const AnchorPlan::Range r =
            cache_worker_range(machine, level, best, workers);
        if (r.end - r.begin < range.end - range.begin) {
          load[level - 1][best] += tree.work_of(n);
          range = r;
          ++plan.anchors;
        }
      }
      --level;
    }
    const SpawnNode& node = tree.node(n);
    if (node.kind == Kind::Strand) {
      plan.strand_group[n] = range;
      return;
    }
    for (NodeId c : node.children) assign(c, level, range);
  }
};

class Pool {
 public:
  Pool(const StrandGraph& g, const ExecOptions& opts)
      : g_(g), tree_(g.tree()), opts_(opts) {
    nthreads_ = opts.threads
                    ? opts.threads
                    : std::max<std::size_t>(
                          1, std::thread::hardware_concurrency());
    NDF_CHECK_MSG(opts.mode != ExecMode::Sb || opts.machine,
                  "sb-mode native execution needs ExecOptions::machine");

    const std::size_t V = g_.num_vertices();
    counts_ = std::vector<std::atomic<std::uint32_t>>(V);
    for (VertexId v = 0; v < V; ++v)
      counts_[v].store(g_.in_degree(v), std::memory_order_relaxed);
    for (NodeId n = 0; n < tree_.num_nodes(); ++n)
      if (tree_.node(n).kind == Kind::Strand &&
          tree_.in_subtree(n, tree_.root()))
        ++total_;
    for (std::size_t i = 0; i < nthreads_; ++i)
      deques_.emplace_back(total_ + 1);
    stats_ = std::vector<PaddedStats>(nthreads_);
    scratch_ = std::vector<Scratch>(nthreads_);

    if (opts.mode == ExecMode::Sb && nthreads_ > 1) {
      plan_ = plan_anchors(tree_, *opts.machine, opts.sigma, nthreads_);
      build_groups();
    } else {
      // Single global group; every strand unconstrained.
      groups_.emplace_back();
      groups_[0].range = {0, static_cast<std::uint32_t>(nthreads_)};
      group_of_.assign(tree_.num_nodes(), 0);
      worker_groups_.assign(nthreads_, {0});
    }
  }

  ExecReport run() {
    // Seed: fire every vertex whose in-degree is already zero, exactly
    // once. Control vertices cascade; strand enters become initial jobs
    // (strands that become ready during the cascade are pushed by
    // propagate() itself — no second scan, or they would run twice).
    // All of this happens on the calling thread before any worker starts,
    // so pushing into arbitrary deques is still owner-safe.
    {
      const WorkerScope scope(0);
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        // Static zero in-degree only: vertices that reach zero during the
        // cascade are handled (once) inside propagate().
        if (g_.in_degree(v) != 0) continue;
        if (is_strand_enter(v))
          seed_job(g_.owner(v));
        else
          propagate(v, seed_cursor_ % nthreads_, /*seeding=*/true);
        ++seed_cursor_;
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(nthreads_);
    for (std::size_t i = 1; i < nthreads_; ++i)
      threads.emplace_back([this, i] { worker(i); });
    worker(0);
    for (auto& th : threads) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    NDF_CHECK_MSG(done_.load() == total_,
                  "executor finished with " << done_.load() << " of "
                                            << total_ << " strands run");
    ExecReport r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.strands = total_;
    r.anchors = plan_.anchors;
    r.handoffs = handoffs_.load();
    r.workers.reserve(nthreads_);
    for (const PaddedStats& s : stats_) {
      r.steals += s.w.steals;
      r.steal_attempts += s.w.steal_attempts;
      r.workers.push_back(s.w);
    }
    return r;
  }

 private:
  struct Group {
    AnchorPlan::Range range;
    // Cross-group handoff inbox: the one queue a non-member may write.
    std::mutex mu;
    std::vector<std::int32_t> jobs;
    std::atomic<bool> nonempty{false};
  };

  struct alignas(64) PaddedStats {
    WorkerReport w;
  };

  bool is_strand_enter(VertexId v) const {
    return !g_.is_exit(v) && tree_.node(g_.owner(v)).kind == Kind::Strand;
  }

  /// Registers the distinct anchor ranges as groups and maps each worker
  /// to the groups containing it, innermost (narrowest) first.
  void build_groups() {
    groups_.emplace_back();
    groups_[0].range = {0, static_cast<std::uint32_t>(nthreads_)};
    group_of_.assign(tree_.num_nodes(), 0);
    for (NodeId n = 0; n < tree_.num_nodes(); ++n) {
      if (tree_.node(n).kind != Kind::Strand) continue;
      if (n >= plan_.strand_group.size()) continue;
      const AnchorPlan::Range r = plan_.strand_group[n];
      if (r.begin == 0 && r.end == nthreads_) continue;
      std::size_t gi = 0;
      for (; gi < groups_.size(); ++gi)
        if (groups_[gi].range.begin == r.begin &&
            groups_[gi].range.end == r.end)
          break;
      if (gi == groups_.size()) {
        // std::deque: Group is immovable (mutex/atomic).
        groups_.emplace_back();
        groups_[gi].range = r;
      }
      group_of_[n] = static_cast<std::uint32_t>(gi);
    }
    worker_groups_.assign(nthreads_, {});
    for (std::size_t w = 0; w < nthreads_; ++w) {
      for (std::size_t gi = 1; gi < groups_.size(); ++gi)
        if (w >= groups_[gi].range.begin && w < groups_[gi].range.end)
          worker_groups_[w].push_back(gi);
      // Narrowest group first: steal close before stealing wide.
      std::sort(worker_groups_[w].begin(), worker_groups_[w].end(),
                [this](std::size_t a, std::size_t b) {
                  return groups_[a].range.end - groups_[a].range.begin <
                         groups_[b].range.end - groups_[b].range.begin;
                });
      worker_groups_[w].push_back(0);  // the global group, last resort
    }
  }

  bool in_range(const AnchorPlan::Range& r, std::size_t w) const {
    return w >= r.begin && w < r.end;
  }

  /// Seed-time placement: round-robin across the job's whole anchor group
  /// so initial work starts spread out.
  void seed_job(NodeId node) {
    const Group& grp = groups_[group_of_[node]];
    const std::size_t span = grp.range.end - grp.range.begin;
    const std::size_t w = grp.range.begin + seed_cursor_ % span;
    deques_[w].push(static_cast<std::int32_t>(node));
  }

  /// A strand became ready, discovered by `worker_ix`: keep it local when
  /// allowed, hand it to its anchor group's inbox otherwise.
  void dispatch(NodeId node, std::size_t worker_ix, bool seeding) {
    Group& grp = groups_[group_of_[node]];
    if (seeding) {
      seed_job(node);
      return;
    }
    if (in_range(grp.range, worker_ix)) {
      deques_[worker_ix].push(static_cast<std::int32_t>(node));
      return;
    }
    handoff(static_cast<std::int32_t>(node), grp);
  }

  void handoff(std::int32_t job, Group& grp) {
    {
      const std::lock_guard<std::mutex> lock(grp.mu);
      grp.jobs.push_back(job);
    }
    grp.nonempty.store(true, std::memory_order_release);
    handoffs_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Fires vertex v (whose count reached zero): decrements successors,
  /// recursing through control vertices; ready strands are dispatched.
  void propagate(VertexId start, std::size_t worker_ix, bool seeding) {
    std::vector<VertexId>& stack = scratch_[worker_ix].stack;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g_.successors(v)) {
        if (counts_[w].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (is_strand_enter(w))
            dispatch(g_.owner(w), worker_ix, seeding);
          else
            stack.push_back(w);
        }
      }
    }
  }

  void run_strand(NodeId n, std::size_t worker_ix) {
    const SpawnNode& node = tree_.node(n);
    WorkerReport& st = stats_[worker_ix].w;
    const auto b0 = std::chrono::steady_clock::now();
    if (opts_.chaos.enabled) spin_iters(chaos_spins(opts_.chaos, n, 0));
    if (node.body) node.body();
    if (opts_.chaos.enabled) spin_iters(chaos_spins(opts_.chaos, n, 1));
    // enter(n) fired at push time; its only successor is exit(n).
    propagate(g_.enter(n), worker_ix, /*seeding=*/false);
    st.busy_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - b0)
            .count();
    ++st.strands;
    done_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// One job from an inbox of a group containing `ix`, or kEmpty.
  std::int32_t poll_inboxes(std::size_t ix) {
    for (std::size_t gi : worker_groups_[ix]) {
      Group& grp = groups_[gi];
      if (!grp.nonempty.load(std::memory_order_acquire)) continue;
      const std::lock_guard<std::mutex> lock(grp.mu);
      if (grp.jobs.empty()) continue;
      const std::int32_t job = grp.jobs.back();
      grp.jobs.pop_back();
      if (grp.jobs.empty())
        grp.nonempty.store(false, std::memory_order_release);
      return job;
    }
    return WsDeque::kEmpty;
  }

  /// One steal attempt against a random victim of group `gi` (≠ self).
  /// May return a job the thief is not allowed to run; the caller hands
  /// those off.
  std::int32_t try_steal(std::size_t ix, std::size_t gi, Rng& rng) {
    const AnchorPlan::Range r = groups_[gi].range;
    const std::size_t span = r.end - r.begin;
    if (span <= 1) return WsDeque::kEmpty;
    const std::size_t victim = r.begin + rng.below(span);
    if (victim == ix) return WsDeque::kEmpty;
    ++stats_[ix].w.steal_attempts;
    const std::int32_t job = deques_[victim].steal();
    if (job >= 0) ++stats_[ix].w.steals;
    return job;
  }

  void worker(std::size_t ix) {
    const WorkerScope scope(ix);
    if (opts_.pin_threads) pin_to_cpu(ix);
    Rng rng(splitmix_mix(opts_.seed, ix));
    std::size_t backoff = 0;
    while (done_.load(std::memory_order_acquire) < total_) {
      std::int32_t job = deques_[ix].pop();
      if (job < 0) job = poll_inboxes(ix);
      if (job < 0 && nthreads_ > 1) {
        // Steal narrow-to-wide: exhaust the innermost anchor group's ring
        // before reaching across sockets.
        for (std::size_t gi : worker_groups_[ix]) {
          job = try_steal(ix, gi, rng);
          if (job >= 0) break;
        }
        if (job >= 0 &&
            !in_range(groups_[group_of_[job]].range, ix)) {
          // Stolen from a shared ring but anchored elsewhere: hand it to
          // its group and keep looking.
          handoff(job, groups_[group_of_[job]]);
          job = WsDeque::kEmpty;
        }
      }
      if (job >= 0) {
        backoff = 0;
        run_strand(static_cast<NodeId>(job), ix);
      } else if (++backoff > 64) {
        std::this_thread::yield();
      }
    }
  }

  static std::uint64_t splitmix_mix(std::uint64_t seed, std::size_t ix) {
    std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (ix + 1));
    return splitmix64(s);
  }

  struct alignas(64) Scratch {
    std::vector<VertexId> stack;
  };

  const StrandGraph& g_;
  const SpawnTree& tree_;
  ExecOptions opts_;
  std::size_t nthreads_ = 1;
  std::size_t total_ = 0;
  std::size_t seed_cursor_ = 0;
  AnchorPlan plan_;
  std::vector<std::atomic<std::uint32_t>> counts_;
  std::deque<WsDeque> deques_;  // WsDeque is not movable (atomics)
  std::deque<Group> groups_;    // Group is not movable (mutex)
  std::vector<std::uint32_t> group_of_;  ///< strand NodeId → group index
  std::vector<std::vector<std::size_t>> worker_groups_;
  std::vector<PaddedStats> stats_;
  std::vector<Scratch> scratch_;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> handoffs_{0};
};

}  // namespace

AnchorPlan plan_anchors(const SpawnTree& tree, const Pmh& machine,
                        double sigma, std::size_t workers) {
  NDF_CHECK(workers >= 1);
  AnchorState st{tree, machine, sigma, workers, {}, {}};
  st.plan.strand_group.assign(
      tree.num_nodes(), {0, static_cast<std::uint32_t>(workers)});
  st.load.resize(machine.num_cache_levels());
  for (std::size_t l = 1; l <= machine.num_cache_levels(); ++l)
    st.load[l - 1].assign(machine.num_caches(l), 0.0);
  st.assign(tree.root(), machine.num_cache_levels(),
            {0, static_cast<std::uint32_t>(workers)});
  return std::move(st.plan);
}

ExecReport execute(const StrandGraph& g, const ExecOptions& opts) {
  Pool pool(g, opts);
  return pool.run();
}

ExecReport execute_parallel(const StrandGraph& g, std::size_t num_threads) {
  NDF_CHECK(num_threads >= 1);
  ExecOptions opts;
  opts.threads = num_threads;
  return execute(g, opts);
}

ExecReport execute_serial(const StrandGraph& g) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t strands = 0;
  for (VertexId v : g.topological_order()) {
    if (g.is_exit(v)) continue;
    const SpawnNode& n = g.tree().node(g.owner(v));
    if (n.kind == Kind::Strand) {
      if (n.body) n.body();
      ++strands;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  ExecReport r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.strands = strands;
  return r;
}

std::size_t current_worker() { return tls_worker; }

}  // namespace ndf
