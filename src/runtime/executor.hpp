// Real-thread executor for elaborated ND programs — the native backend:
// a Cilk/TBB-style work-stealing pool whose tasks are the strands of the
// algorithm DAG and whose dependencies are the DAG's edges, tracked with
// atomic join counters. A strand becomes stealable work the moment its last
// incoming dataflow arrow is satisfied, which is precisely the fire
// construct's "create sink tasks as partial dependencies are met" execution
// policy (Sec. 5 discussion).
//
// Two scheduling modes mirror the simulator's policy registry:
//   * ws — randomized work stealing: every worker owns a Chase-Lev deque
//     (runtime/deque.hpp) and steals from seeded-PRNG-chosen victims.
//   * sb — space-bounded-aware: strands are anchored to *worker groups*
//     the way the simulator's sb policy anchors task footprints to caches.
//     Maximal subtrees fitting σ·M_i are bound (least-loaded, determinis-
//     tically) to the workers under one level-i cache of the PMH preset,
//     and stealing never moves a strand outside its anchor group, so a
//     task's footprint stays under the cache its group shares.
//
// Everything is measured: wall-clock, successful/attempted steals,
// cross-group handoffs, and per-worker busy time / strand counts (the
// native mirror of ThreadPool::WorkerStats), so bench/ndf_native can
// compare native scaling curves against simulated makespan ratios.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nd/graph.hpp"

namespace ndf {

class Pmh;

/// Which native scheduling discipline runs the DAG.
enum class ExecMode : std::uint8_t {
  Ws,  ///< global randomized work stealing
  Sb,  ///< space-bounded: group-anchored stealing over a PMH's cache tree
};

/// Chaos-scheduling knobs for the stress harness: deterministic per-strand
/// delays (derived from `seed` and the strand's node id, not from the
/// worker that happens to run it) perturb interleavings so races reproduce
/// from a printed seed instead of a lucky rerun. The steal-order PRNGs
/// already derive from ExecOptions::seed, so (seed, chaos.seed, threads,
/// mode) pins the whole schedule-perturbation down.
struct ChaosOptions {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Upper bound (exclusive) on the pre- and post-body spin delays, in
  /// spin-loop iterations. 0 disables delays even when enabled.
  std::uint32_t max_delay_spins = 256;
};

struct ExecOptions {
  std::size_t threads = 0;  ///< worker count; 0 = hardware concurrency
  ExecMode mode = ExecMode::Ws;
  std::uint64_t seed = 42;  ///< steal-victim PRNG seed (per worker: seed^ix)
  /// PMH machine whose cache tree defines the sb worker groups (and the
  /// pinning layout). Required for Sb mode; ignored in Ws mode except by
  /// pin_threads. Workers map onto the machine's processors proportionally
  /// when the counts differ. Not owned.
  const Pmh* machine = nullptr;
  double sigma = 1.0 / 3.0;  ///< sb anchoring dilation: groups get σM_i
  /// Pin worker i to cpu i (Linux sched_setaffinity; no-op elsewhere), so
  /// contiguous sb groups land on contiguous cores the way the presets
  /// assume sockets are contiguous. Off by default: CI runners and laptops
  /// migrate better unpinned.
  bool pin_threads = false;
  ChaosOptions chaos;
};

/// Per-worker native accounting (index = worker id).
struct WorkerReport {
  double busy_s = 0.0;          ///< wall-clock inside strand bodies
  std::size_t strands = 0;      ///< strands this worker executed
  std::size_t steals = 0;       ///< successful steals by this worker
  std::size_t steal_attempts = 0;  ///< steal() calls incl. empty/aborted
};

struct ExecReport {
  double seconds = 0.0;
  std::size_t strands = 0;
  std::size_t steals = 0;          ///< Σ workers' successful steals
  std::size_t steal_attempts = 0;  ///< Σ workers' attempts
  /// Sb mode: strands handed to another group's inbox because the worker
  /// that made them ready (or stole them) is outside their anchor group.
  std::size_t handoffs = 0;
  /// Sb mode: subtree→group anchors recorded by the plan (see AnchorPlan).
  std::size_t anchors = 0;
  std::vector<WorkerReport> workers;
};

/// The sb anchor plan: for every spawn-tree node that is a strand, the
/// half-open worker range its execution is confined to. Computed once per
/// run (deterministically — least-loaded-by-work tie-broken by cache
/// index), exposed so tests can assert group confinement and ndf_native
/// can report it.
struct AnchorPlan {
  struct Range {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;  ///< exclusive; [0, workers) = unconstrained
  };
  /// Indexed by NodeId; meaningful for strand nodes only.
  std::vector<Range> strand_group;
  /// Number of subtree→cache anchors that actually narrowed a group.
  std::size_t anchors = 0;
};

/// Mirrors the simulator's space-bounded anchoring onto `workers` real
/// threads: walks the spawn tree, and each subtree that is maximal with
/// respect to σ·M_i (fits, parent does not) is anchored to the worker
/// range under one level-i cache — the least-loaded eligible one — of
/// `machine`'s cache tree. Strands inherit the innermost anchor above
/// them. Workers map onto processors proportionally when counts differ.
AnchorPlan plan_anchors(const SpawnTree& tree, const Pmh& machine,
                        double sigma, std::size_t workers);

/// Runs every strand body in `g` on opts.threads workers, respecting the
/// DAG's dependencies. Strands without bodies are treated as no-ops.
/// Throws CheckError on inconsistent options (Sb without a machine).
ExecReport execute(const StrandGraph& g, const ExecOptions& opts);

/// Legacy convenience: Ws mode with default seed.
ExecReport execute_parallel(const StrandGraph& g, std::size_t num_threads);

/// Runs every strand body once, serially, in a topological order of the
/// DAG. The determinism baseline in tests and benches.
ExecReport execute_serial(const StrandGraph& g);

/// Index of the executor worker running on the current thread, or SIZE_MAX
/// outside a worker. The execution oracle (runtime/oracle.hpp) records it
/// per strand so tests can check sb group confinement.
std::size_t current_worker();

}  // namespace ndf
