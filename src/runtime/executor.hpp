// Real-thread executor for elaborated ND programs — the runtime prototype:
// a Cilk/TBB-style work-stealing pool whose tasks are the strands of the
// algorithm DAG and whose dependencies are the DAG's edges, tracked with
// atomic join counters. A strand becomes stealable work the moment its last
// incoming dataflow arrow is satisfied, which is precisely the fire
// construct's "create sink tasks as partial dependencies are met" execution
// policy (Sec. 5 discussion).
#pragma once

#include <cstddef>

#include "nd/graph.hpp"

namespace ndf {

struct ExecReport {
  double seconds = 0.0;
  std::size_t strands = 0;
  std::size_t steals = 0;
};

/// Runs every strand body in `g` on `num_threads` workers, respecting the
/// DAG's dependencies. Strands without bodies are treated as no-ops.
ExecReport execute_parallel(const StrandGraph& g, std::size_t num_threads);

/// Runs every strand body once, serially, in a topological order of the
/// DAG. Used as the determinism baseline in tests.
ExecReport execute_serial(const StrandGraph& g);

}  // namespace ndf
