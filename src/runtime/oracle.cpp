#include "runtime/oracle.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "runtime/executor.hpp"

namespace ndf {

ExecutionOracle::ExecutionOracle(SpawnTree& tree) : tree_(&tree) {
  strands_ = tree.strands_under(tree.root());
  index_.assign(tree.num_nodes(), static_cast<std::size_t>(-1));
  rec_ = std::vector<Record>(strands_.size());
  for (std::size_t i = 0; i < strands_.size(); ++i) {
    const NodeId n = strands_[i];
    index_[n] = i;
    SpawnNode& node = tree.node(n);
    // The wrapper stamps start, runs the original payload, then stamps
    // end — so the [start, end] window covers the real body and the
    // arrow-ordering check below is sound for data races too.
    node.body = [this, i, orig = std::move(node.body)] {
      Record& r = rec_[i];
      r.start = clock_.fetch_add(1, std::memory_order_acq_rel);
      r.worker = current_worker();
      r.runs.fetch_add(1, std::memory_order_acq_rel);
      if (orig) orig();
      r.end = clock_.fetch_add(1, std::memory_order_acq_rel);
    };
  }
}

void ExecutionOracle::reset() {
  for (Record& r : rec_) {
    r.runs.store(0);
    r.start = r.end = 0;
    r.worker = static_cast<std::size_t>(-1);
  }
  clock_.store(1);
}

std::size_t ExecutionOracle::index_of(NodeId n) const {
  NDF_CHECK_MSG(n < index_.size() &&
                    index_[n] != static_cast<std::size_t>(-1),
                "node " << n << " is not an instrumented strand");
  return index_[n];
}

std::vector<std::string> ExecutionOracle::verify(const StrandGraph& g) const {
  std::vector<std::string> bad;
  for (std::size_t i = 0; i < strands_.size(); ++i) {
    const int n = rec_[i].runs.load();
    if (n != 1) {
      std::ostringstream os;
      os << "strand " << strands_[i] << " ran " << n << " times (want 1)";
      bad.push_back(os.str());
    }
  }
  // Arrow ordering: source subtree fully stamped-out before sink subtree
  // stamped-in. strands_under is left-to-right; epochs are global.
  for (const TaskArrow& a : g.arrows()) {
    std::uint64_t src_end = 0;
    std::uint64_t dst_start = ~0ULL;
    for (NodeId s : tree_->strands_under(a.from))
      src_end = std::max(src_end, rec_[index_of(s)].end);
    for (NodeId s : tree_->strands_under(a.to))
      dst_start = std::min(dst_start, rec_[index_of(s)].start);
    if (src_end >= dst_start) {
      std::ostringstream os;
      os << "arrow " << a.from << "->" << a.to
         << " violated: source end epoch " << src_end
         << " >= sink start epoch " << dst_start;
      bad.push_back(os.str());
    }
  }
  return bad;
}

}  // namespace ndf
