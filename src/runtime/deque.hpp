// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory-order
// treatment after Lê et al., PPoPP'13), specialized to int32 job ids with a
// fixed capacity chosen at construction (the executor knows the total job
// count up front, so no dynamic growth is needed).
//
// The owner pushes and pops at the bottom; thieves steal from the top.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace ndf {

class WsDeque {
 public:
  static constexpr std::int32_t kEmpty = -1;
  static constexpr std::int32_t kAbort = -2;

  explicit WsDeque(std::size_t capacity) {
    std::size_t cap = 64;
    while (cap < capacity + 1) cap <<= 1;
    buf_ = std::vector<std::atomic<std::int32_t>>(cap);
    mask_ = cap - 1;
  }

  /// Owner only.
  void push(std::int32_t job) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    NDF_CHECK_MSG(b - t < static_cast<std::int64_t>(mask_),
                  "work-stealing deque overflow");
    buf_[static_cast<std::size_t>(b) & mask_].store(
        job, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns kEmpty when drained.
  std::int32_t pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return kEmpty;
    }
    std::int32_t job =
        buf_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
    if (t == b) {
      // Last element: race against thieves.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        job = kEmpty;
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  /// Any thread. Returns kEmpty or kAbort (lost a race; retry elsewhere).
  std::int32_t steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return kEmpty;
    const std::int32_t job =
        buf_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return kAbort;
    return job;
  }

  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

  /// Usable capacity: push() checks overflow against this (one slot of the
  /// power-of-two ring is sacrificed to keep the full/empty cases apart).
  std::size_t capacity() const { return mask_; }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<std::int32_t>> buf_;
  std::size_t mask_ = 0;
};

}  // namespace ndf
