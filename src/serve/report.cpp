#include "serve/report.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>

#include "exp/report.hpp"

namespace ndf::serve {

namespace {

using exp::detail::csv_field;
using exp::detail::json_escape;
using exp::detail::write_number;

/// Deepest measured-miss vector across all cells: 0 when nothing was
/// measured, in which case no Q column appears anywhere and the output is
/// byte-identical to a --misses-off run (exp/report.cpp's contract).
std::size_t max_measured_levels(const std::vector<ServeCell>& cells) {
  std::size_t L = 0;
  for (const ServeCell& c : cells) {
    L = std::max(L, c.summary.measured_misses.size());
    for (const JobRecord& r : c.jobs)
      L = std::max(L, r.measured_misses.size());
  }
  return L;
}

/// Whether any cell served under a non-default cache model (ServeCell's
/// cache label is empty for the default): gates the `cache` column so
/// default-model output stays byte-identical to the pre-registry emitters.
bool any_cache_model(const std::vector<ServeCell>& cells) {
  for (const ServeCell& c : cells)
    if (!c.cache.empty()) return true;
  return false;
}

}  // namespace

Table summary_table(const std::string& title,
                    const std::vector<ServeCell>& cells) {
  const std::size_t Q = max_measured_levels(cells);
  const bool C = any_cache_model(cells);
  Table t(title);
  std::vector<std::string> header{
      "machine",  "policy",   "sigma",    "jobs",     "horizon",
      "thruput",  "util",     "fairness", "tenants",  "lat_mean",
      "lat_p50",  "lat_p99",  "lat_p999", "lat_max",  "ddl",
      "ddl_miss"};
  if (C) header.insert(header.begin() + 2, "cache");
  if (Q > 0) {
    header.push_back("comm_cost");
    for (std::size_t l = 1; l <= Q; ++l)
      header.push_back("Q_L" + std::to_string(l));
  }
  t.set_header(std::move(header));
  for (const ServeCell& c : cells) {
    const ServeSummary& s = c.summary;
    std::vector<Cell> row;
    row.reserve(17 + (Q > 0 ? Q + 1 : 0));
    row.push_back(c.machine);
    row.push_back(c.policy);
    if (C) row.push_back(c.cache.empty() ? std::string("lru") : c.cache);
    row.push_back(c.sigma);
    row.push_back((long long)s.completed);
    row.push_back(s.horizon);
    row.push_back(s.throughput);
    row.push_back(s.utilization);
    row.push_back(s.fairness);
    row.push_back((long long)s.tenants);
    row.push_back(s.latency_mean);
    row.push_back(s.latency_p50);
    row.push_back(s.latency_p99);
    row.push_back(s.latency_p999);
    row.push_back(s.latency_max);
    row.push_back((long long)s.with_deadline);
    row.push_back((long long)s.deadline_misses);
    if (Q > 0) {
      if (s.measured_misses.empty())
        row.push_back(std::string("-"));
      else
        row.push_back(s.comm_cost);
      for (std::size_t l = 0; l < Q; ++l)
        if (l < s.measured_misses.size())
          row.push_back(s.measured_misses[l]);
        else
          row.push_back(std::string("-"));
    }
    t.add_row(std::move(row));
  }
  return t;
}

void write_serve_json(std::ostream& os, const std::string& name,
                      const std::vector<ServeCell>& cells) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"serve\": \"" << json_escape(name) << "\",\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ServeCell& c = cells[i];
    const ServeSummary& s = c.summary;
    os << (i ? ",\n" : "\n") << "    {\"machine\": \""
       << json_escape(c.machine) << "\", \"machine_desc\": \""
       << json_escape(c.machine_desc) << "\", \"policy\": \""
       << json_escape(c.policy) << "\"";
    // Cache-model key only under a non-default model (legacy byte-identity).
    if (!c.cache.empty())
      os << ", \"cache\": \"" << json_escape(c.cache) << "\"";
    os << ", \"sigma\": ";
    write_number(os, c.sigma);
    os << ",\n     \"summary\": {\"completed\": " << s.completed
       << ", \"horizon\": ";
    write_number(os, s.horizon);
    os << ", \"throughput\": ";
    write_number(os, s.throughput);
    os << ", \"utilization\": ";
    write_number(os, s.utilization);
    os << ", \"latency\": {\"mean\": ";
    write_number(os, s.latency_mean);
    os << ", \"p50\": ";
    write_number(os, s.latency_p50);
    os << ", \"p99\": ";
    write_number(os, s.latency_p99);
    os << ", \"p999\": ";
    write_number(os, s.latency_p999);
    os << ", \"max\": ";
    write_number(os, s.latency_max);
    os << "}, \"tenants\": " << s.tenants << ", \"fairness\": ";
    write_number(os, s.fairness);  // inf (zero-share tenant) becomes null
    os << ", \"with_deadline\": " << s.with_deadline
       << ", \"deadline_misses\": " << s.deadline_misses;
    if (!s.measured_misses.empty()) {
      os << ", \"comm_cost\": ";
      write_number(os, s.comm_cost);
      os << ", \"measured_misses\": [";
      for (std::size_t l = 0; l < s.measured_misses.size(); ++l) {
        if (l) os << ", ";
        write_number(os, s.measured_misses[l]);
      }
      os << "]";
    }
    // Streaming histograms (obs/metrics.hpp): latency and queue_wait per
    // cell, alongside — not replacing — the exact percentiles above.
    os << ", \"metrics\": ";
    s.metrics.write_json(os);
    os << "},\n     \"jobs\": [";
    for (std::size_t j = 0; j < c.jobs.size(); ++j) {
      const JobRecord& r = c.jobs[j];
      os << (j ? ",\n       " : "\n       ") << "{\"index\": " << r.job.index
         << ", \"tenant\": \"" << json_escape(r.job.tenant)
         << "\", \"workload\": \"" << json_escape(r.job.workload.label())
         << "\", \"arrival\": ";
      write_number(os, r.job.arrival);
      os << ", \"deadline\": ";
      write_number(os, r.job.deadline);  // +inf (none) becomes null
      os << ", \"start\": ";
      write_number(os, r.start);
      os << ", \"completion\": ";
      write_number(os, r.completion);
      os << ", \"latency\": ";
      write_number(os, r.latency);
      os << ", \"service\": ";
      write_number(os, r.service);
      os << ", \"utilization\": ";
      write_number(os, r.utilization);
      os << ", \"deadline_met\": " << (r.deadline_met ? "true" : "false");
      if (!r.measured_misses.empty()) {
        os << ", \"comm_cost\": ";
        write_number(os, r.comm_cost);
        os << ", \"measured_misses\": [";
        for (std::size_t l = 0; l < r.measured_misses.size(); ++l) {
          if (l) os << ", ";
          write_number(os, r.measured_misses[l]);
        }
        os << "]";
      }
      os << "}";
    }
    os << (c.jobs.empty() ? "]}" : "\n     ]}");
  }
  os << "\n  ]\n}\n";
}

void write_serve_csv(std::ostream& os, const std::vector<ServeCell>& cells) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  const std::size_t Q = max_measured_levels(cells);
  const bool C = any_cache_model(cells);
  os << "machine,policy,";
  if (C) os << "cache,";
  os << "sigma,job,tenant,workload,arrival,deadline,start,"
        "completion,latency,service,utilization,deadline_met";
  if (Q > 0) {
    os << ",comm_cost";
    for (std::size_t l = 1; l <= Q; ++l) os << ",q_l" << l;
  }
  os << "\n";
  for (const ServeCell& c : cells) {
    for (const JobRecord& r : c.jobs) {
      os << csv_field(c.machine) << ',' << c.policy << ',';
      if (C) os << csv_field(c.cache.empty() ? "lru" : c.cache) << ',';
      os << c.sigma << ','
         << r.job.index << ',' << csv_field(r.job.tenant) << ','
         << csv_field(r.job.workload.label()) << ',' << r.job.arrival << ',';
      if (r.job.has_deadline()) os << r.job.deadline;  // empty = none
      os << ',' << r.start << ',' << r.completion << ',' << r.latency << ','
         << r.service << ',' << r.utilization << ','
         << (r.deadline_met ? 1 : 0);
      if (Q > 0) {
        os << ',';
        if (!r.measured_misses.empty()) os << r.comm_cost;
        for (std::size_t l = 0; l < Q; ++l) {
          os << ',';
          if (l < r.measured_misses.size()) os << r.measured_misses[l];
        }
      }
      os << "\n";
    }
  }
}

}  // namespace ndf::serve
