// Service-mode emitters: one stdout table, one JSON document, one CSV per
// serve run, mirroring the sweep emitters (exp/report.hpp). The JSON is
// the artifact CI's serve gate validates and uploads (`ndf_serve
// --json=BENCH_serve.json`); the CSV is the flat per-job form. Every
// column is defined in docs/metrics.md ("Service-mode columns").
#pragma once

#include <iosfwd>

#include "serve/engine.hpp"
#include "support/table.hpp"

namespace ndf::serve {

/// Cell-level summary table: one row per (machine, σ, policy) cell with
/// throughput, utilization, fairness, latency percentiles and deadline
/// counts. Measured cells (--misses) get `comm_cost` + `Q_L<i>` columns.
Table summary_table(const std::string& title,
                    const std::vector<ServeCell>& cells);

/// {"serve": <name>, "cells": [{machine, policy, sigma, summary: {...},
/// jobs: [{...}, ...]}, ...]} — cell aggregates plus every job's record
/// (tenant, arrival, start, completion, latency, deadline, per-job Q_i
/// when measured). Doubles are round-trippable; inf/nan become null.
void write_serve_json(std::ostream& os, const std::string& name,
                      const std::vector<ServeCell>& cells);

/// Flat per-job CSV: one header row + one row per (cell, job), cell
/// coordinates repeated per row. Measured runs append comm_cost/q_l<i>.
void write_serve_csv(std::ostream& os, const std::vector<ServeCell>& cells);

}  // namespace ndf::serve
