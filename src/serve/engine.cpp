#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "obs/progress.hpp"
#include "pmh/presets.hpp"
#include "sched/condensed_dag.hpp"
#include "sched/registry.hpp"
#include "sched/sim_core.hpp"
#include "support/thread_pool.hpp"

namespace ndf::serve {

namespace {

// Nearest-rank percentiles (docs/metrics.md) come from the shared tested
// implementation in obs/metrics.hpp — byte-identical to the formula that
// used to live here.
using obs::nearest_rank;

/// The resolved, deterministic inputs every cell shares: built workloads,
/// job streams with workload/tenant ids resolved, and the occupancy
/// namespace geometry. Immutable during the fan-out.
struct StreamPlan {
  /// Distinct workloads across the stream + mix, by first use.
  std::vector<exp::WorkloadSpec> specs;
  std::vector<std::unique_ptr<exp::Workload>> built;
  std::vector<std::size_t> job_widx;  ///< open jobs: workload index
  std::vector<std::size_t> mix_widx;  ///< closed mix: workload index
  /// Open jobs: tenant id by first appearance in the (sorted) input
  /// stream — execution-order-independent, so every policy agrees.
  std::vector<std::size_t> job_tenant;
  std::size_t num_tenants = 0;

  std::size_t intern(const exp::WorkloadSpec& w,
                     std::map<std::string, std::size_t>& by_label) {
    const auto [it, fresh] = by_label.emplace(w.label(), specs.size());
    if (fresh) specs.push_back(w);
    return it->second;
  }
};

StreamPlan plan_stream(const ServeScenario& s) {
  StreamPlan plan;
  std::map<std::string, std::size_t> by_label;
  std::map<std::string, std::size_t> tenant_ids;
  plan.job_widx.reserve(s.jobs.size());
  plan.job_tenant.reserve(s.jobs.size());
  for (const JobSpec& j : s.jobs) {
    plan.job_widx.push_back(plan.intern(j.workload, by_label));
    plan.job_tenant.push_back(
        tenant_ids.emplace(j.tenant, tenant_ids.size()).first->second);
  }
  plan.mix_widx.reserve(s.mix.size());
  for (const exp::WorkloadSpec& w : s.mix)
    plan.mix_widx.push_back(plan.intern(w, by_label));
  plan.num_tenants =
      s.closed ? s.closed->clients : std::max<std::size_t>(tenant_ids.size(), 1);
  plan.built.resize(plan.specs.size());
  return plan;
}

/// One job admitted to the machine: the spec plus its resolved workload
/// and tenant ids and the effective (absolute) deadline.
struct Admission {
  JobSpec job;
  std::size_t widx = 0;
  std::size_t tenant_id = 0;
};

/// EDF-over-jobs admission key: earliest absolute deadline first (+inf —
/// no deadline — sorts last), ties by arrival then submission index. The
/// FIFO key is the same tuple without the deadline.
bool edf_before(const Admission& a, const Admission& b) {
  if (a.job.deadline != b.job.deadline) return a.job.deadline < b.job.deadline;
  if (a.job.arrival != b.job.arrival) return a.job.arrival < b.job.arrival;
  return a.job.index < b.job.index;
}

bool fifo_before(const Admission& a, const Admission& b) {
  if (a.job.arrival != b.job.arrival) return a.job.arrival < b.job.arrival;
  return a.job.index < b.job.index;
}

/// Runs one cell's full service simulation. Everything it reads is shared
/// and immutable; everything it writes is local or the caller's slot.
class CellRunner {
 public:
  /// `sink` is the scenario's trace sink for grid cell 0, null elsewhere.
  CellRunner(const ServeScenario& s, const StreamPlan& plan, const Pmh& m,
             double sigma, const std::string& policy,
             const std::vector<const CondensedDag*>& dags,
             obs::TraceSink* sink)
      : s_(s),
        plan_(plan),
        m_(m),
        sigma_(sigma),
        policy_(policy),
        dags_(dags),
        sink_(sink),
        edf_(scheduler_deadline_aware(policy)) {}

  void run(ServeCell& cell) {
    cell.machine_desc = m_.to_string();
    cell.policy = policy_;
    if (!s_.cache_model.is_default()) cell.cache = s_.cache_model.label();
    cell.sigma = sigma_;
    if (s_.closed)
      run_closed(cell);
    else
      run_open(cell);
    summarize(cell);
  }

 private:
  /// Admits and runs `a` on the machine free at `now`; returns the
  /// completion time.
  double execute(double now, const Admission& a, ServeCell& cell) {
    SchedOptions opts;
    opts.sigma = sigma_;
    opts.alpha_prime = s_.alpha_prime;
    opts.charge_misses = s_.charge_misses;
    opts.measure_misses = s_.measure_misses;
    opts.cache_model = s_.cache_model;
    // The simulated caches persist across jobs; footprint keys are
    // namespaced per (tenant, workload) so only a tenant's own repeat
    // jobs can hit warm lines (engine.hpp, "Measured occupancy").
    opts.keep_occupancy = s_.measure_misses;
    opts.occ_task_base =
        std::int64_t(a.tenant_id * plan_.specs.size() + a.widx) << 32;
    opts.seed = s_.base_seed + a.job.index;

    // Tracing: the job's lifecycle in global service time, and its
    // simulation events shifted from the job-local clock (which restarts
    // at 0) onto the same axis — offset by the admission time.
    obs::OffsetSink offset(sink_, now);
    if (sink_ != nullptr) {
      const std::int64_t jid = std::int64_t(a.job.index);
      sink_->on_job(obs::JobEvent::kArrival, a.job.arrival, jid,
                    std::uint32_t(a.tenant_id), a.job.tenant.c_str());
      const std::string wlabel = a.job.workload.label();
      sink_->on_job(obs::JobEvent::kAdmit, now, jid,
                    std::uint32_t(a.tenant_id), wlabel.c_str());
      opts.sink = &offset;
    }

    const CondensedDag& dag = *dags_[a.widx];
    const auto sched = make_scheduler(policy_, opts);
    if (core_)
      core_->reset(dag, m_, opts);
    else
      core_ = std::make_unique<SimCore>(dag, m_, opts);
    const SchedStats stats = core_->run(*sched);

    JobRecord rec;
    rec.job = a.job;
    rec.start = now;
    rec.service = stats.makespan;
    rec.completion = now + stats.makespan;
    rec.latency = rec.completion - a.job.arrival;
    rec.utilization = stats.utilization;
    rec.deadline_met =
        !a.job.has_deadline() || rec.completion <= a.job.deadline;
    if (!stats.measured_misses.empty()) {
      // The persistent occupancy reports cumulative counters; this job's
      // Q_i is the delta since the previous admission.
      rec.measured_misses.resize(stats.measured_misses.size());
      for (std::size_t l = 0; l < stats.measured_misses.size(); ++l)
        rec.measured_misses[l] =
            stats.measured_misses[l] -
            (l < cum_misses_.size() ? cum_misses_[l] : 0.0);
      rec.comm_cost = stats.comm_cost - cum_comm_;
      cum_misses_ = stats.measured_misses;
      cum_comm_ = stats.comm_cost;
    }
    if (sink_ != nullptr) {
      const std::int64_t jid = std::int64_t(a.job.index);
      sink_->on_job(obs::JobEvent::kComplete, rec.completion, jid,
                    std::uint32_t(a.tenant_id), "");
      if (!rec.deadline_met)
        sink_->on_job(obs::JobEvent::kDeadlineMiss, rec.completion, jid,
                      std::uint32_t(a.tenant_id), "");
    }
    const double completion = rec.completion;
    cell.jobs.push_back(std::move(rec));
    return completion;
  }

  void run_open(ServeCell& cell) {
    cell.jobs.reserve(s_.jobs.size());
    // Jobs arrive in (arrival, index) order; `queue` holds the arrived,
    // not-yet-admitted ones in admission order. Non-preemptive: the
    // machine runs one job to completion, then admits the next.
    std::vector<Admission> queue;
    std::size_t next = 0;
    double now = 0.0;
    const auto before = edf_ ? edf_before : fifo_before;
    while (next < s_.jobs.size() || !queue.empty()) {
      while (next < s_.jobs.size() && s_.jobs[next].arrival <= now) {
        queue.push_back(
            {s_.jobs[next], plan_.job_widx[next], plan_.job_tenant[next]});
        ++next;
      }
      if (queue.empty()) {  // idle until the next arrival
        now = s_.jobs[next].arrival;
        continue;
      }
      const auto it = std::min_element(queue.begin(), queue.end(), before);
      const Admission a = *it;
      queue.erase(it);
      now = execute(now, a, cell);
    }
  }

  void run_closed(ServeCell& cell) {
    const ArrivalSpec& spec = *s_.closed;
    const std::size_t clients = spec.clients;
    cell.jobs.reserve(clients * spec.jobs);
    // Each client submits its next job `think` after its previous one
    // completed; client c's k-th job has global submission index
    // k·clients + c, the deterministic tie-break for the time-0 burst.
    std::vector<double> ready(clients, 0.0);
    std::vector<std::size_t> done(clients, 0);
    double now = 0.0;
    const auto before = edf_ ? edf_before : fifo_before;
    for (std::size_t served = 0; served < clients * spec.jobs; ++served) {
      bool any = false;
      double soonest = 0.0;
      for (std::size_t c = 0; c < clients; ++c) {
        if (done[c] == spec.jobs) continue;
        if (!any || ready[c] < soonest) soonest = ready[c];
        any = true;
      }
      if (soonest > now) now = soonest;  // idle until a client is ready
      // Admission scans the waiting clients; with <= a few thousand
      // clients the O(clients) pass per job is noise next to the DAG
      // simulation it admits.
      bool have = false;
      Admission best;
      for (std::size_t c = 0; c < clients; ++c) {
        if (done[c] == spec.jobs || ready[c] > now) continue;
        Admission a;
        a.job.index = done[c] * clients + c;
        a.job.tenant = "t" + std::to_string(c);
        a.job.arrival = ready[c];
        if (spec.deadline > 0.0) a.job.deadline = ready[c] + spec.deadline;
        a.widx = plan_.mix_widx[a.job.index % plan_.mix_widx.size()];
        a.job.workload = plan_.specs[a.widx];
        a.tenant_id = c;
        if (!have || before(a, best)) {
          best = std::move(a);
          have = true;
        }
      }
      const std::size_t c = best.tenant_id;
      now = execute(now, best, cell);
      ready[c] = now + spec.think;
      ++done[c];
    }
  }

  void summarize(ServeCell& cell) {
    ServeSummary& sum = cell.summary;
    sum.completed = cell.jobs.size();
    // Created before the idle early-out so the report's `metrics` key has
    // both (empty) histograms even for a jobless cell.
    obs::Log2Histogram& lat_hist = sum.metrics.histogram("latency");
    obs::Log2Histogram& wait_hist = sum.metrics.histogram("queue_wait");
    if (cell.jobs.empty()) return;  // idle service: zeros, fairness 1
    std::vector<double> latencies;
    latencies.reserve(cell.jobs.size());
    std::map<std::string, double> share;
    double busy_weighted = 0.0, lat_total = 0.0;
    for (const JobRecord& r : cell.jobs) {
      sum.horizon = std::max(sum.horizon, r.completion);
      latencies.push_back(r.latency);
      lat_total += r.latency;
      lat_hist.record(r.latency);
      wait_hist.record(r.start - r.job.arrival);
      busy_weighted += r.utilization * r.service;
      share[r.job.tenant] += r.service;
      if (r.job.has_deadline()) {
        ++sum.with_deadline;
        if (!r.deadline_met) ++sum.deadline_misses;
      }
      if (!r.measured_misses.empty()) {
        if (sum.measured_misses.size() < r.measured_misses.size())
          sum.measured_misses.resize(r.measured_misses.size(), 0.0);
        for (std::size_t l = 0; l < r.measured_misses.size(); ++l)
          sum.measured_misses[l] += r.measured_misses[l];
        sum.comm_cost += r.comm_cost;
      }
    }
    if (sum.horizon > 0.0) {
      sum.throughput = double(sum.completed) / sum.horizon;
      sum.utilization = busy_weighted / sum.horizon;
    }
    std::sort(latencies.begin(), latencies.end());
    sum.latency_mean = lat_total / double(latencies.size());
    sum.latency_p50 = nearest_rank(latencies, 0.50);
    sum.latency_p99 = nearest_rank(latencies, 0.99);
    sum.latency_p999 = nearest_rank(latencies, 0.999);
    sum.latency_max = latencies.back();
    sum.tenants = share.size();
    if (share.size() > 1) {
      double lo = share.begin()->second, hi = lo;
      for (const auto& [tenant, sv] : share) {
        lo = std::min(lo, sv);
        hi = std::max(hi, sv);
      }
      // A zero-service tenant makes the share ratio infinite; the JSON
      // emitter maps that to null (no finite skew exists).
      sum.fairness =
          lo > 0.0 ? hi / lo
                   : std::numeric_limits<double>::infinity();
    }
  }

  const ServeScenario& s_;
  const StreamPlan& plan_;
  const Pmh& m_;
  double sigma_;
  const std::string& policy_;
  const std::vector<const CondensedDag*>& dags_;
  obs::TraceSink* sink_;
  bool edf_;
  // One simulator core serves the whole stream: reset()-rebound per job,
  // occupancy carried across jobs when measuring.
  std::unique_ptr<SimCore> core_;
  std::vector<double> cum_misses_;  // occupancy counters are cumulative
  double cum_comm_ = 0.0;
};

/// One cell's result, padded to a cache line: adjacent slots are written
/// by different workers (exp/sweep.cpp, ResultSlot).
struct alignas(64) CellSlot {
  ServeCell cell;
};

}  // namespace

std::size_t serve_grid_size(const ServeScenario& s) {
  return s.machines.size() * s.sigmas.size() * s.policies.size();
}

void validate(const ServeScenario& s) {
  NDF_CHECK_MSG(!s.machines.empty(), "serve scenario '" << s.name
                                                        << "' has no machines");
  NDF_CHECK_MSG(!s.policies.empty(), "serve scenario '" << s.name
                                                        << "' has no policies");
  NDF_CHECK_MSG(!s.sigmas.empty(), "serve scenario '"
                                       << s.name << "' has no sigma values");
  for (const std::string& p : s.policies)
    NDF_CHECK_MSG(scheduler_registered(p),
                  "serve scenario '" << s.name << "' names unknown policy '"
                                     << p << "'");
  for (const std::string& spec : s.machines) (void)parse_pmh(spec);
  NDF_CHECK_MSG(cache_repl_registered(s.cache_model.repl),
                "serve scenario '"
                    << s.name << "' names unknown cache replacement policy '"
                    << s.cache_model.repl << "' (in '"
                    << s.cache_model.label() << "')");
  for (double sigma : s.sigmas)
    NDF_CHECK_MSG(sigma > 0.0 && sigma < 1.0,
                  "serve scenario '" << s.name << "' has sigma " << sigma
                                     << " outside (0, 1)");
  NDF_CHECK_MSG(s.alpha_prime > 0.0 && s.alpha_prime <= 1.0,
                "serve scenario '" << s.name << "' has alpha' "
                                   << s.alpha_prime << " outside (0, 1]");
  if (s.closed) {
    NDF_CHECK_MSG(s.closed->kind == "closed",
                  "serve scenario '" << s.name
                                     << "': the generated stream must be a "
                                        "closed: spec, got '"
                                     << s.closed->label() << "'");
    NDF_CHECK_MSG(s.jobs.empty(),
                  "serve scenario '" << s.name
                                     << "' has both an explicit job stream "
                                        "and a closed-loop generator");
    NDF_CHECK_MSG(!s.mix.empty(), "serve scenario '"
                                      << s.name
                                      << "': a closed-loop stream needs a "
                                         "non-empty workload mix");
  }
  for (const JobSpec& j : s.jobs) {
    NDF_CHECK_MSG(std::isfinite(j.arrival) && j.arrival >= 0.0,
                  "serve scenario '" << s.name << "': job " << j.index
                                     << " ('" << j.workload.label()
                                     << "') has arrival " << j.arrival);
    NDF_CHECK_MSG(j.deadline >= j.arrival,
                  "serve scenario '" << s.name << "': job " << j.index
                                     << " ('" << j.workload.label()
                                     << "') has deadline " << j.deadline
                                     << " before its arrival " << j.arrival);
  }
}

const std::vector<ServeCell>& ServeSweep::run() {
  if (ran_) return results_;
  results_.clear();
  condensations_ = 0;
  validate(scenario_);

  std::vector<Pmh> machines;
  machines.reserve(scenario_.machines.size());
  for (const std::string& spec : scenario_.machines)
    machines.push_back(make_pmh(spec));

  try {
    StreamPlan plan = plan_stream(scenario_);

    // Dedupe machine cache profiles (plan_condensations' trick): dags are
    // keyed by (workload, σ, profile), so machines sharing a profile share
    // every condensation.
    std::vector<std::vector<double>> profiles;
    std::vector<std::size_t> machine_profile(machines.size());
    for (std::size_t m = 0; m < machines.size(); ++m) {
      std::vector<double> sizes = level_cache_sizes(machines[m]);
      std::size_t p = 0;
      while (p < profiles.size() && profiles[p] != sizes) ++p;
      if (p == profiles.size()) profiles.push_back(std::move(sizes));
      machine_profile[m] = p;
    }

    const std::size_t W = plan.specs.size();
    const std::size_t S = scenario_.sigmas.size();
    const std::size_t cells = serve_grid_size(scenario_);
    const std::size_t jobs =
        std::min(jobs_ == 0 ? ThreadPool::default_jobs() : jobs_,
                 std::max<std::size_t>(cells, 1));

    // Every cell serves the same stream, so every (σ, profile) pair needs
    // every workload's condensation: the dag table is dense, profile-major.
    std::vector<std::unique_ptr<CondensedDag>> dags(profiles.size() * S * W);
    std::vector<CellSlot> slots(cells);
    obs::ProgressMeter progress(scenario_.progress, scenario_.name);
    ThreadPool pool(jobs);  // after the data its tasks touch (exp/sweep.cpp)

    // Phase 1: build each distinct workload once, in parallel.
    {
      progress.begin_phase("workloads", W);
      std::vector<std::future<void>> futs;
      futs.reserve(W);
      for (std::size_t w = 0; w < W; ++w)
        futs.push_back(pool.submit([w, &plan, &progress] {
          plan.built[w] = std::make_unique<exp::Workload>(plan.specs[w]);
          progress.tick();
        }));
      wait_all(futs);
      progress.finish();
    }

    // Phase 2: build each (workload, σ, profile) condensation once.
    {
      progress.begin_phase("condensations", dags.size());
      std::vector<std::future<void>> futs;
      futs.reserve(dags.size());
      for (std::size_t p = 0; p < profiles.size(); ++p)
        for (std::size_t g = 0; g < S; ++g)
          for (std::size_t w = 0; w < W; ++w) {
            const std::size_t k = (p * S + g) * W + w;
            futs.push_back(pool.submit([this, k, p, g, w, &plan, &profiles,
                                        &dags, &progress] {
              dags[k] = std::make_unique<CondensedDag>(
                  plan.built[w]->graph(), profiles[p], scenario_.sigmas[g]);
              progress.tick();
            }));
          }
      wait_all(futs);
      progress.finish();
    }

    // Phase 3: fan the cells out; each writes only its own padded slot, so
    // the merged vector is in grid order and output is byte-identical at
    // any worker count.
    progress.begin_phase("cells", cells);
    parallel_for_chunks(
        pool, cells, 4 * jobs,
        [this, S, W, &plan, &machines, &machine_profile, &dags, &slots,
         &progress](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            // Grid order: machine-major, then σ, then policy.
            const std::size_t m = i / (S * scenario_.policies.size());
            const std::size_t g =
                (i / scenario_.policies.size()) % S;
            const std::size_t p = i % scenario_.policies.size();
            const std::size_t base = (machine_profile[m] * S + g) * W;
            std::vector<const CondensedDag*> cell_dags(W);
            for (std::size_t w = 0; w < W; ++w)
              cell_dags[w] = dags[base + w].get();
            slots[i].cell.machine = scenario_.machines[m];
            // Cell 0 (one cell, one worker) carries the trace sink.
            CellRunner runner(scenario_, plan, machines[m],
                              scenario_.sigmas[g], scenario_.policies[p],
                              cell_dags,
                              i == 0 ? scenario_.trace_sink : nullptr);
            runner.run(slots[i].cell);
            progress.tick();
          }
        });
    progress.finish();

    results_.reserve(cells);
    for (CellSlot& s : slots) results_.push_back(std::move(s.cell));
    condensations_ = dags.size();
  } catch (...) {
    // A failed run leaves the object as if run() was never called
    // (exp/sweep.cpp's contract).
    results_.clear();
    condensations_ = 0;
    throw;
  }

  ran_ = true;
  return results_;
}

}  // namespace ndf::serve
