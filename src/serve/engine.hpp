// The open-arrivals service engine: multiplexes a stream of DAG jobs from
// many tenants onto one PMH machine and reports service metrics —
// throughput, per-tenant fairness, p50/p99/p999 job latency — instead of a
// single batch makespan.
//
// Model: non-preemptive run-to-completion admission. Jobs wait in an
// admission queue from their arrival; whenever the machine is free, the
// admission order picks the next job — arrival order (FIFO) for the
// classic policies, earliest-absolute-deadline first for policies
// registered deadline-aware (`edf`), ties broken by arrival time then
// submission index. The admitted job runs alone on the whole machine
// through the shared discrete-event core: one SimCore per worker is
// reset()-rebound per job (the PR-6 arena design), so serving a thousand
// jobs allocates like serving one. Job latency = completion − arrival,
// queueing included.
//
// Measured occupancy (--misses): the simulated caches persist *across*
// jobs (SchedOptions::keep_occupancy), so each job starts in whatever
// state the previous tenants left the hierarchy in. Footprint keys are
// namespaced per (tenant, workload): different tenants can never
// false-hit each other's data, while a tenant's repeat jobs over the same
// workload can hit lines still warm from earlier jobs. Each JobRecord
// carries the per-job *delta* of every level's measured misses — the Q_i
// attributable to that tenant's job, directly comparable against the
// job's own Q* bound.
//
// The grid (machines × σ × policies) mirrors src/exp: cells sharing a
// (workload, σ, cache-profile) share one condensation, cells fan out over
// a thread pool, each cell writes only its own pre-sized slot, and output
// is byte-identical at every `jobs` worker count (tested, CI-gated).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "pmh/cache_model.hpp"
#include "serve/arrivals.hpp"

namespace ndf::serve {

/// A service scenario: one job stream × machines × σ × policies.
struct ServeScenario {
  std::string name = "serve";
  /// Open stream (trace or expanded poisson), in any order; the engine
  /// serves arrivals in (arrival, index) order. May be empty (an idle
  /// service reports zero throughput, not an error).
  std::vector<JobSpec> jobs;
  /// Closed-loop generator instead of `jobs` (arrivals depend on service
  /// times); requires a non-empty `mix`.
  std::optional<ArrivalSpec> closed;
  std::vector<exp::WorkloadSpec> mix;  ///< closed-loop workload rotation
  std::vector<std::string> machines;   ///< pmh specs (pmh/presets.hpp)
  std::vector<std::string> policies;   ///< registry names; deadline-aware
                                       ///< ones get EDF-over-jobs admission
  std::vector<double> sigmas{1.0 / 3.0};
  double alpha_prime = 1.0;
  std::uint64_t base_seed = 42;  ///< job i runs with seed base_seed + i
  bool charge_misses = true;
  bool measure_misses = false;  ///< persistent occupancy + per-job Q_i
  /// Cache model for the persistent occupancy (`--cache=` spec,
  /// pmh/cache_model.hpp). A single model, not an axis: the service caches
  /// persist across jobs, so a model change means a different machine
  /// state history, not a comparable cell. Default keeps all output
  /// byte-identical to the pre-registry engine.
  CacheModelSpec cache_model;
  /// Structured tracing (`--trace-out`): the sink attached to grid cell 0
  /// only (one cell = one worker, so the sink needs no locking). Job
  /// lifecycle events arrive in global service time; each admitted job's
  /// simulation events are shifted onto the same axis (obs::OffsetSink).
  /// Observational only: all reports stay byte-identical. Not owned.
  obs::TraceSink* trace_sink = nullptr;
  /// `--progress`: stderr heartbeat while the grid runs (`--soak` cells
  /// are slow; this is the only sign of life). stdout is unaffected.
  bool progress = false;
};

/// One served job: the resolved spec plus its service trajectory.
struct JobRecord {
  JobSpec job;
  double start = 0.0;       ///< admission (= execution start) time
  double completion = 0.0;  ///< start + service
  double latency = 0.0;     ///< completion − arrival (queueing included)
  double service = 0.0;     ///< the job's makespan on the whole machine
  double utilization = 0.0; ///< processor utilization while it ran
  bool deadline_met = true; ///< false only when it had one and missed it
  /// Per-level measured misses attributable to this job (delta of the
  /// persistent occupancy counters); empty unless measuring.
  std::vector<double> measured_misses;
  double comm_cost = 0.0;   ///< Σ level delta · C_level (0 unless measuring)
};

/// Aggregates of one grid cell's completed stream.
struct ServeSummary {
  std::size_t completed = 0;
  double horizon = 0.0;      ///< completion time of the last job
  double throughput = 0.0;   ///< completed / horizon
  double utilization = 0.0;  ///< Σ busy time / (p · horizon)
  double latency_mean = 0.0;
  /// Nearest-rank percentiles of job latency (docs/metrics.md).
  double latency_p50 = 0.0, latency_p99 = 0.0, latency_p999 = 0.0;
  double latency_max = 0.0;
  std::size_t tenants = 0;
  /// Max/min per-tenant service share — 1.0 is perfectly fair, larger is
  /// more skewed. 1.0 when at most one tenant completed anything.
  double fairness = 1.0;
  std::size_t with_deadline = 0, deadline_misses = 0;
  /// Per-level measured miss totals over the whole stream (empty unless
  /// measuring), and their total cost.
  std::vector<double> measured_misses;
  double comm_cost = 0.0;
  /// Streaming histograms over the cell's jobs (obs/metrics.hpp), emitted
  /// under the JSON report's `metrics` key: `latency` (completion −
  /// arrival) and `queue_wait` (admission start − arrival). Always filled;
  /// the exact nearest-rank percentiles above remain the summary columns.
  obs::MetricsRegistry metrics;
};

/// One executed grid cell: coordinates, the served jobs in execution
/// order, and the aggregates.
struct ServeCell {
  std::string machine;       ///< the spec string the scenario named
  std::string machine_desc;  ///< Pmh::to_string() of the built machine
  std::string policy;
  /// Cache-model label when the scenario serves under a non-default model;
  /// empty otherwise (emitters gate their `cache` column on it).
  std::string cache;
  double sigma = 1.0 / 3.0;
  std::vector<JobRecord> jobs;  ///< in execution (admission) order
  ServeSummary summary;
};

/// |machines| · |sigmas| · |policies|.
std::size_t serve_grid_size(const ServeScenario& s);

/// Checks axes, registry names, machine specs, σ/α' ranges, and stream
/// coherence (closed needs a mix; arrivals finite). Throws CheckError.
void validate(const ServeScenario& s);

/// The serve runner. Expands machines × σ × policies, builds each distinct
/// workload and each (workload, σ, cache-profile) condensation exactly
/// once, then executes every cell's full service simulation — on a thread
/// pool when `jobs` allows, with byte-identical results at any worker
/// count.
class ServeSweep {
 public:
  /// `jobs` is the cell-execution worker count: 0 = hardware concurrency,
  /// 1 = serial; clamped to the cell count.
  explicit ServeSweep(ServeScenario s, std::size_t jobs = 0)
      : scenario_(std::move(s)), jobs_(jobs) {}

  /// Expands and executes the grid (first call; later calls return the
  /// cached results). Cells are in machine-major, then σ, then policy
  /// order. A run that throws leaves the object fully reset.
  const std::vector<ServeCell>& run();

  const ServeScenario& scenario() const { return scenario_; }
  const std::vector<ServeCell>& results() const { return results_; }
  /// CondensedDags built (== distinct workload × σ × cache-profile
  /// combinations). Zero until a run completes.
  std::size_t condensations_built() const { return condensations_; }
  std::size_t jobs() const { return jobs_; }

 private:
  ServeScenario scenario_;
  std::size_t jobs_ = 0;
  std::vector<ServeCell> results_;
  std::size_t condensations_ = 0;
  bool ran_ = false;
};

}  // namespace ndf::serve
