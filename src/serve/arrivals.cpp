#include "serve/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "support/rng.hpp"

namespace ndf::serve {

namespace {

double parse_double(const std::string& spec, const std::string& key,
                    const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  NDF_CHECK_MSG(end && *end == '\0' && !val.empty() && std::isfinite(v),
                "arrival parameter '" << key << "' in '" << spec
                                      << "' is not a finite number: " << val);
  return v;
}

std::size_t parse_count(const std::string& spec, const std::string& key,
                        const std::string& val) {
  char* end = nullptr;
  const long long v = std::strtoll(val.c_str(), &end, 10);
  NDF_CHECK_MSG(end && *end == '\0' && !val.empty() && v > 0,
                "arrival parameter '" << key << "' in '" << spec
                                      << "' is not a positive integer: "
                                      << val);
  return std::size_t(v);
}

}  // namespace

std::string ArrivalSpec::label() const {
  std::ostringstream os;
  if (kind == "poisson") {
    os << "poisson:rate=" << rate << ",jobs=" << jobs;
    if (tenants != 1) os << ",tenants=" << tenants;
    if (deadline != 0.0) os << ",deadline=" << deadline;
    if (seed != 42) os << ",seed=" << seed;
  } else {
    os << "closed:clients=" << clients << ",jobs=" << jobs;
    if (think != 0.0) os << ",think=" << think;
    if (deadline != 0.0) os << ",deadline=" << deadline;
  }
  return os.str();
}

ArrivalSpec parse_arrivals(const std::string& spec) {
  ArrivalSpec a;
  const auto colon = spec.find(':');
  a.kind = spec.substr(0, colon);
  NDF_CHECK_MSG(a.kind == "poisson" || a.kind == "closed",
                "unknown arrival kind '" << a.kind << "' in '" << spec
                                         << "' (valid: poisson, closed)");

  // Same parameter discipline as workload/gen specs: duplicates and
  // unknown keys are loud, and the full offending spec is always named.
  std::set<std::string> seen;
  bool have_rate = false, have_jobs = false, have_clients = false;
  if (colon != std::string::npos) {
    std::stringstream ss(spec.substr(colon + 1));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      const auto eq = item.find('=');
      NDF_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "bad arrival parameter '" << item << "' in '" << spec
                                              << "' (want key=value)");
      const std::string key = item.substr(0, eq);
      const std::string val = item.substr(eq + 1);
      NDF_CHECK_MSG(seen.insert(key).second,
                    "duplicate arrival parameter '" << key << "' in '" << spec
                                                    << "'");
      if (key == "jobs") {
        a.jobs = parse_count(spec, key, val);
        have_jobs = true;
      } else if (key == "deadline") {
        a.deadline = parse_double(spec, key, val);
        NDF_CHECK_MSG(a.deadline >= 0.0, "arrival parameter 'deadline' in '"
                                             << spec << "' must be >= 0");
      } else if (a.kind == "poisson" && key == "rate") {
        a.rate = parse_double(spec, key, val);
        NDF_CHECK_MSG(a.rate > 0.0, "arrival parameter 'rate' in '"
                                        << spec << "' must be > 0");
        have_rate = true;
      } else if (a.kind == "poisson" && key == "tenants") {
        a.tenants = parse_count(spec, key, val);
      } else if (a.kind == "poisson" && key == "seed") {
        a.seed = std::uint64_t(parse_count(spec, key, val));
      } else if (a.kind == "closed" && key == "clients") {
        a.clients = parse_count(spec, key, val);
        have_clients = true;
      } else if (a.kind == "closed" && key == "think") {
        a.think = parse_double(spec, key, val);
        NDF_CHECK_MSG(a.think >= 0.0, "arrival parameter 'think' in '"
                                          << spec << "' must be >= 0");
      } else {
        NDF_CHECK_MSG(false,
                      "unknown arrival parameter '"
                          << key << "' in '" << spec << "' (valid for "
                          << a.kind << ": "
                          << (a.kind == "poisson"
                                  ? "rate, jobs, tenants, deadline, seed"
                                  : "clients, jobs, think, deadline")
                          << ")");
      }
    }
  }
  NDF_CHECK_MSG(have_jobs,
                "arrival spec '" << spec << "' needs jobs=<count>");
  if (a.kind == "poisson")
    NDF_CHECK_MSG(have_rate,
                  "arrival spec '" << spec << "' needs rate=<arrivals/time>");
  else
    NDF_CHECK_MSG(have_clients,
                  "arrival spec '" << spec << "' needs clients=<count>");
  return a;
}

std::vector<JobSpec> parse_trace(std::istream& in,
                                 const std::string& origin) {
  std::vector<JobSpec> jobs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string arrival_tok;
    if (!(ls >> arrival_tok) || arrival_tok[0] == '#') continue;

    JobSpec j;
    j.index = jobs.size();
    char* end = nullptr;
    j.arrival = std::strtod(arrival_tok.c_str(), &end);
    NDF_CHECK_MSG(end && *end == '\0' && std::isfinite(j.arrival) &&
                      j.arrival >= 0.0,
                  "trace " << origin << ":" << lineno
                           << ": arrival time is not a finite number >= 0: '"
                           << arrival_tok << "' in line '" << line << "'");

    std::string spec_tok;
    NDF_CHECK_MSG(bool(ls >> j.tenant) && bool(ls >> spec_tok),
                  "trace " << origin << ":" << lineno
                           << ": want '<arrival> <tenant> <workload-spec> "
                              "[deadline=<t>]', got '"
                           << line << "'");
    try {
      j.workload = exp::parse_workload(spec_tok);
    } catch (const CheckError& e) {
      // Re-throw with the trace location; the workload parser's message
      // already names the offending spec verbatim.
      NDF_CHECK_MSG(false,
                    "trace " << origin << ":" << lineno << ": " << e.what());
    }

    std::string extra;
    while (ls >> extra) {
      NDF_CHECK_MSG(extra.rfind("deadline=", 0) == 0,
                    "trace " << origin << ":" << lineno
                             << ": unexpected token '" << extra
                             << "' in line '" << line
                             << "' (only deadline=<t> may follow the spec)");
      const std::string val = extra.substr(9);
      j.deadline = std::strtod(val.c_str(), &end);
      NDF_CHECK_MSG(end && *end == '\0' && !val.empty() &&
                        std::isfinite(j.deadline) && j.deadline >= j.arrival,
                    "trace " << origin << ":" << lineno
                             << ": deadline must be a finite number >= the "
                                "arrival time, got '"
                             << extra << "' in line '" << line << "'");
    }
    jobs.push_back(std::move(j));
  }
  // The engine consumes arrivals in time order; the submission index keeps
  // equal-arrival jobs in input order (the documented tie-break).
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& x, const JobSpec& y) {
                     return x.arrival < y.arrival;
                   });
  return jobs;
}

std::vector<JobSpec> load_trace(const std::string& path) {
  std::ifstream in(path);
  NDF_CHECK_MSG(bool(in), "cannot read trace file '" << path << "'");
  return parse_trace(in, path);
}

std::vector<JobSpec> expand_open_arrivals(
    const ArrivalSpec& spec, const std::vector<exp::WorkloadSpec>& mix) {
  NDF_CHECK_MSG(spec.kind == "poisson",
                "arrival spec '"
                    << spec.label()
                    << "' is closed-loop: its arrivals depend on service "
                       "times and are generated by the serve engine");
  NDF_CHECK_MSG(!mix.empty(), "arrival spec '"
                                  << spec.label()
                                  << "' needs a non-empty workload mix "
                                     "(--workloads=...)");
  std::vector<JobSpec> jobs;
  jobs.reserve(spec.jobs);
  Rng rng(spec.seed);
  double t = 0.0;
  for (std::size_t i = 0; i < spec.jobs; ++i) {
    // Exponential interarrival at mean rate `rate`; uniform() < 1 keeps
    // the log argument positive.
    t += -std::log(1.0 - rng.uniform()) / spec.rate;
    JobSpec j;
    j.index = i;
    j.tenant = "t" + std::to_string(i % spec.tenants);
    j.workload = mix[i % mix.size()];
    j.arrival = t;
    if (spec.deadline > 0.0) j.deadline = t + spec.deadline;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace ndf::serve
