// Deterministic structured workload families: shapes chosen to hit known
// scheduler corner cases, each a pure function of its size parameters.
//
//  * chain      — n strands in series: zero parallelism, the serial-policy
//                 identity case and a latency floor for every other policy.
//  * forkjoin   — depth stages of a fan-wide par in series: the classic
//                 nested-parallel barrier shape (no dataflow arrows at all).
//  * diamond    — depth stacked fork/join diamonds (source → fan middles →
//                 sink): maximal join pressure on readiness propagation.
//  * wavefront  — an n×n grid where cell (i,j) depends on (i-1,j) and
//                 (i,j-1), built from generated per-column fire rules: the
//                 dataflow-heavy shape the ND model exists for (LCS's
//                 dependence structure without its recursive decomposition).
//
// All strands carry `work` instructions and a synthetic footprint wired to
// the real dependences, so analysis/determinacy verifies each family's
// elaboration (see gen.hpp).
#pragma once

#include <cstddef>

#include "nd/spawn_tree.hpp"

namespace ndf::gen {

SpawnTree make_chain_tree(std::size_t n, double work);
SpawnTree make_forkjoin_tree(std::size_t depth, std::size_t fan, double work);
SpawnTree make_diamond_tree(std::size_t depth, std::size_t fan, double work);
SpawnTree make_wavefront_tree(std::size_t n, double work);

}  // namespace ndf::gen
