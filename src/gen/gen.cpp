#include "gen/gen.hpp"

#include <cerrno>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/determinacy.hpp"
#include "gen/families.hpp"
#include "gen/random_sp.hpp"
#include "nd/drs.hpp"
#include "nd/validate.hpp"

namespace ndf::gen {

namespace {

/// One registered family: which keys its spec accepts and how to build it.
struct Family {
  std::string description;
  std::string keys;  ///< accepted keys with defaults, shown by --list
  std::vector<std::string> accepted;
  std::function<SpawnTree(const GenSpec&)> make;
};

const std::map<std::string, Family>& families() {
  static const std::map<std::string, Family> t = {
      {"sp",
       {"seeded random series-parallel tree with sampled dataflow "
        "cross-edges",
        "depth=6, fan=3, work=64, cross=30, seed=1",
        {"depth", "fan", "work", "cross", "seed"},
        make_random_sp_tree}},
      {"chain",
       {"n strands in series (zero parallelism)",
        "n=16, work=64",
        {"n", "work"},
        [](const GenSpec& s) { return make_chain_tree(s.n, double(s.work)); }}},
      {"forkjoin",
       {"depth barrier stages of fan parallel strands",
        "depth=6, fan=3, work=64",
        {"depth", "fan", "work"},
        [](const GenSpec& s) {
          return make_forkjoin_tree(s.depth, s.fan, double(s.work));
        }}},
      {"diamond",
       {"depth stacked fork/join diamonds (source, fan middles, sink)",
        "depth=6, fan=3, work=64",
        {"depth", "fan", "work"},
        [](const GenSpec& s) {
          return make_diamond_tree(s.depth, s.fan, double(s.work));
        }}},
      {"wavefront",
       {"n x n dependence grid via per-column fire rules (2-D wavefront)",
        "n=16, work=64",
        {"n", "work"},
        [](const GenSpec& s) {
          return make_wavefront_tree(s.n, double(s.work));
        }}},
  };
  return t;
}

std::string known_families() {
  std::string s;
  for (const auto& [name, f] : families()) {
    if (!s.empty()) s += ", ";
    s += name;
  }
  return s;
}

const Family& family_of(const GenSpec& spec, const std::string& context) {
  const auto it = families().find(spec.family);
  NDF_CHECK_MSG(it != families().end(),
                "unknown gen family '" << spec.family << "' in '" << context
                                       << "' (registered: "
                                       << known_families() << ")");
  return it->second;
}

std::uint64_t parse_u64(const std::string& spec, const std::string& key,
                        const std::string& val) {
  // Digits only (strtoull would accept '+', whitespace and, saturating,
  // out-of-range values — all of which must fail loudly instead).
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
  NDF_CHECK_MSG(!val.empty() && val.find_first_not_of("0123456789") ==
                                    std::string::npos &&
                    end && *end == '\0' && errno != ERANGE,
                "gen parameter '" << key << "' in '" << spec
                                  << "' is not a non-negative 64-bit "
                                     "integer: "
                                  << val);
  return v;
}

bool accepts(const Family& f, const std::string& key) {
  for (const std::string& k : f.accepted)
    if (k == key) return true;
  return false;
}

}  // namespace

std::string GenSpec::label() const {
  const GenSpec d;
  // The closest thing to a verbatim spec a programmatic GenSpec has: its
  // own canonical prefix (labels of unknown families cannot be rendered).
  const Family& f = family_of(*this, "gen:family=" + family);
  std::ostringstream os;
  os << "gen:family=" << family;
  // Fixed key order; only keys the family accepts, only non-default
  // values — so parse_gen_params(label()) round-trips exactly.
  struct Key {
    const char* name;
    std::uint64_t value, dflt;
  };
  const Key keys[] = {{"n", n, d.n},         {"depth", depth, d.depth},
                      {"fan", fan, d.fan},   {"work", work, d.work},
                      {"cross", cross, d.cross}, {"seed", seed, d.seed}};
  for (const Key& k : keys)
    if (accepts(f, k.name) && k.value != k.dflt)
      os << ',' << k.name << '=' << k.value;
  return os.str();
}

std::vector<FamilyInfo> registered_families() {
  std::vector<FamilyInfo> out;
  for (const auto& [name, f] : families())
    out.push_back({name, f.description, f.keys});
  return out;  // std::map iterates sorted by name
}

bool family_accepts(const std::string& family, const std::string& key) {
  const auto it = families().find(family);
  return it != families().end() && accepts(it->second, key);
}

GenSpec parse_gen_params(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& spec) {
  GenSpec g;
  // Family first (it may appear anywhere in the list), so the accepted-key
  // check below knows which family it is checking against.
  for (const auto& [key, val] : kv)
    if (key == "family") g.family = val;
  const Family& f = family_of(g, spec);

  for (const auto& [key, val] : kv) {
    if (key == "family") continue;
    NDF_CHECK_MSG(accepts(f, key),
                  "gen family '" << g.family << "' does not accept "
                                 << "parameter '" << key << "' in '" << spec
                                 << "' (accepted: " << f.keys << ", np)");
    const std::uint64_t v = parse_u64(spec, key, val);
    if (key == "n")
      g.n = std::size_t(v);
    else if (key == "depth")
      g.depth = std::size_t(v);
    else if (key == "fan")
      g.fan = std::size_t(v);
    else if (key == "work")
      g.work = std::size_t(v);
    else if (key == "cross")
      g.cross = std::size_t(v);
    else
      g.seed = v;  // "seed" — accepted-key check above rules out the rest
  }
  return g;
}

SpawnTree generate(const GenSpec& spec) {
  // Re-validate common ranges here so specs constructed past the parser
  // (or injected into a Scenario) still fail loudly inside sweep workers.
  NDF_CHECK_MSG(spec.work >= 1 && spec.work <= 1000000,
                "gen workload needs work in [1, 1000000], got " << spec.work);
  SpawnTree tree = family_of(spec, spec.label()).make(spec);
  // Rejection check: a generated rule table must pass static validation
  // before the DRS ever runs on it.
  expect_valid_rules(tree.rules());
  return tree;
}

GenReport check_generated(const SpawnTree& tree, bool np_mode) {
  GenReport rep;
  const std::vector<RuleIssue> issues = validate_rules(tree.rules());
  rep.rule_issues = issues.size();
  if (!issues.empty())
    rep.message = tree.rules().name(issues.front().type) + ": " +
                  issues.front().message;

  const StrandGraph g = elaborate(tree, {.np_mode = np_mode});
  try {
    (void)g.topological_order();
    rep.acyclic = true;
  } catch (const CheckError& e) {
    rep.acyclic = false;
    if (rep.message.empty()) rep.message = e.what();
  }

  if (rep.acyclic) {
    const DeterminacyReport d = check_determinacy(g);
    rep.determinate = d.ok;
    rep.conflicting_pairs = d.conflicting_pairs;
    if (!d.ok && rep.message.empty()) rep.message = d.message;
  }
  return rep;
}

}  // namespace ndf::gen
