// Seeded random series-parallel spawn trees with legal dataflow
// cross-edges. Every tree is a pure function of the GenSpec (structure,
// work, fire rules and synthetic footprints all come from one
// SplitMix64-seeded xoshiro256** stream) — identical specs are
// bit-identical across runs and processes.
#pragma once

#include "gen/gen.hpp"

namespace ndf::gen {

/// spec.family must be "sp". Parameter ranges are validated loudly.
SpawnTree make_random_sp_tree(const GenSpec& spec);

}  // namespace ndf::gen
