// Synthetic nested-dataflow workload generator.
//
// Synthesizes *legal* ND spawn trees far outside the paper's eight
// hand-transcribed kernels, so the sweep engine can probe sb/ws/greedy on
// deep skinny trees, wide flat trees, dataflow-heavy wavefronts and
// adversarial fan-outs. Two kinds of families:
//
//  * `sp` — seeded random series-parallel spawn trees (support/rng
//    SplitMix64 → xoshiro256**, so every graph is a pure function of the
//    spec) decorated with randomly sampled left-to-right sibling dataflow
//    cross-edges, realized as generated fire-rule tables whose pedigrees
//    are walked on the real tree (always in range, always acyclic);
//  * `chain`, `forkjoin`, `diamond`, `wavefront` — deterministic
//    structured shapes that hit known scheduler corner cases
//    (families.hpp).
//
// Every generated strand carries a synthetic footprint (counter-based
// fake addresses, never real pointers — bit-identical across processes)
// mirroring the generated dependences, so analysis/determinacy is a real
// oracle: it verifies the DRS elaboration realizes every sampled
// dependence as an ordering. check_generated() bundles that rejection
// check with nd/validate and acyclicity.
//
// Spec strings are first-class workloads in src/exp/workload:
//
//   gen:family=sp,depth=8,fan=4,seed=7
//   gen:family=wavefront,n=32
//
// Labels round-trip: only keys the family accepts, and only values that
// differ from the defaults, are printed, in a fixed order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nd/spawn_tree.hpp"

namespace ndf::gen {

/// Parameters of one generated workload. Which keys apply depends on the
/// family; parse_gen_params rejects the rest loudly.
struct GenSpec {
  std::string family = "sp";
  std::size_t n = 16;        ///< chain length / wavefront side
  std::size_t depth = 6;     ///< sp recursion depth / forkjoin+diamond stages
  std::size_t fan = 3;       ///< max children (sp) / width per stage
  std::size_t work = 64;     ///< mean strand work (and footprint words)
  std::size_t cross = 30;    ///< sp: % chance a par group grows cross-edges
  std::uint64_t seed = 1;    ///< sp: generator seed

  /// Canonical spec string ("gen:family=sp,depth=8,fan=4,seed=7");
  /// parse_gen_params(label()) reproduces the spec exactly.
  std::string label() const;
};

struct FamilyInfo {
  std::string name;
  std::string description;
  std::string keys;  ///< accepted keys with their defaults, for --list
};

/// All families, sorted by name.
std::vector<FamilyInfo> registered_families();

/// True when a registered family accepts spec key `key` ("n", "depth",
/// ...); false for unknown families. The workload layer uses this to
/// surface applicable gen parameters in its own columns.
bool family_accepts(const std::string& family, const std::string& key);

/// Parses the key=value items of a "gen:" spec (np is handled by the
/// workload parser and never reaches here). Throws CheckError on unknown
/// families (listing the registered ones), keys a family does not accept
/// (listing the accepted ones), or malformed values. `spec` is the full
/// spec string, for error messages.
GenSpec parse_gen_params(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& spec);

/// Builds the spawn tree of a spec. Validates parameter ranges loudly
/// (also when a spec was constructed past the parser) and runs the
/// fire-rule rejection check (nd/validate) on the generated table.
SpawnTree generate(const GenSpec& spec);

/// Legality report of a generated (or any) spawn tree: the rule table is
/// validated, the tree elaborated, the DAG checked for acyclicity, and
/// every declared-footprint conflict checked for an ordering path.
struct GenReport {
  std::size_t rule_issues = 0;
  bool acyclic = false;
  bool determinate = false;
  std::size_t conflicting_pairs = 0;  ///< footprint pairs needing an order
  std::string message;                ///< first problem, if any

  bool ok() const { return rule_issues == 0 && acyclic && determinate; }
};

GenReport check_generated(const SpawnTree& tree, bool np_mode = false);

}  // namespace ndf::gen
