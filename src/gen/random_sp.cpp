#include "gen/random_sp.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "gen/synthetic_mem.hpp"
#include "support/rng.hpp"

namespace ndf::gen {

namespace {

/// A built subtree with its footprint size (sum of strand sizes — the
/// generator gives every strand size == work, so subtree footprints add).
struct Sub {
  NodeId id;
  double size;
};

class SpBuilder {
 public:
  SpBuilder(SpawnTree& t, const GenSpec& spec)
      : t_(t), spec_(spec), rng_(spec.seed) {}

  NodeId build_root() {
    const Sub root = build(spec_.depth, /*may_leaf=*/false);
    return root.id;
  }

 private:
  Sub leaf() {
    // Uniform integer work in [1, 2*work-1], mean ≈ work; footprint == work
    // so condensation sees varied unit sizes.
    const double w = double(1 + rng_.below(2 * spec_.work - 1));
    return {t_.strand(w, w, "s"), w};
  }

  Sub build(std::size_t depth, bool may_leaf) {
    // Early leaves (15%) make shapes ragged: deep skinny spines next to
    // wide flat bushes out of the same spec.
    if (depth == 0 || (may_leaf && rng_.below(100) < 15)) return leaf();

    const std::size_t k = 2 + rng_.below(spec_.fan - 1);
    std::vector<Sub> ch;
    ch.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      ch.push_back(build(depth - 1, /*may_leaf=*/true));

    double size = 0.0;
    std::vector<NodeId> ids;
    ids.reserve(k);
    for (const Sub& c : ch) {
      size += c.size;
      ids.push_back(c.id);
    }

    if (rng_.below(100) < 40) {  // series composition
      for (std::size_t i = 0; i + 1 < k; ++i)
        mem_.link(t_, ids[i], ids[i + 1]);
      return {t_.seq(std::move(ids), size, ""), size};
    }
    if (rng_.below(100) < spec_.cross)  // parallel with cross-edges
      return fire_group(ch, size);
    return {t_.par(std::move(ids), size, ""), size};  // plain parallel
  }

  /// Realizes sampled left-to-right sibling dependences: the children are
  /// split into a left and a right group and joined by a fresh fire type
  /// whose rules map random (legal, tree-walked) pedigrees of the left
  /// group onto pedigrees of the right group with a FULL inner type. Left
  /// group before right group keeps every sampled edge acyclic by
  /// construction.
  Sub fire_group(const std::vector<Sub>& ch, double size) {
    const std::size_t k = ch.size();
    const std::size_t split = 1 + rng_.below(k - 1);
    const Sub left = wrap(ch, 0, split);
    const Sub right = wrap(ch, split, k);

    const FireType type =
        t_.rules().add_type("X" + std::to_string(next_type_++));
    const std::size_t nrules = 1 + rng_.below(3);
    for (std::size_t r = 0; r < nrules; ++r) {
      auto [src_ped, src_node] = random_walk(left.id);
      auto [dst_ped, dst_node] = random_walk(right.id);
      t_.rules().add_rule(type, Pedigree(std::move(src_ped)),
                          FireRules::kFull, Pedigree(std::move(dst_ped)));
      // Footprint mirror of this rule's realized ordering (duplicate
      // sampled rules just add a second, equally ordered segment).
      mem_.link(t_, src_node, dst_node);
    }
    return {t_.fire(type, left.id, right.id, size, ""), size};
  }

  /// par() of ch[lo..hi), or the child itself when the range is one wide.
  Sub wrap(const std::vector<Sub>& ch, std::size_t lo, std::size_t hi) {
    if (hi - lo == 1) return ch[lo];
    double size = 0.0;
    std::vector<NodeId> ids;
    ids.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      size += ch[i].size;
      ids.push_back(ch[i].id);
    }
    return {t_.par(std::move(ids), size, ""), size};
  }

  /// Random downward walk from `from`, at most 4 levels, geometrically
  /// distributed depth. Indices are sampled against the real child counts,
  /// so every produced pedigree is in range for the DRS's descend().
  std::pair<std::vector<std::uint8_t>, NodeId> random_walk(NodeId from) {
    std::vector<std::uint8_t> ped;
    NodeId cur = from;
    while (t_.node(cur).kind != Kind::Strand && ped.size() < 4 &&
           rng_.below(100) < 60) {
      const std::size_t k = t_.node(cur).children.size();
      const std::size_t ix = 1 + rng_.below(k);
      ped.push_back(static_cast<std::uint8_t>(ix));
      cur = t_.node(cur).children[ix - 1];
    }
    return {std::move(ped), cur};
  }

  SpawnTree& t_;
  const GenSpec& spec_;
  Rng rng_;
  SyntheticMem mem_;
  int next_type_ = 0;
};

}  // namespace

SpawnTree make_random_sp_tree(const GenSpec& spec) {
  NDF_CHECK_MSG(spec.family == "sp",
                "make_random_sp_tree got family '" << spec.family << "'");
  NDF_CHECK_MSG(spec.depth >= 1 && spec.depth <= 12,
                "gen sp needs depth in [1, 12], got " << spec.depth);
  NDF_CHECK_MSG(spec.fan >= 2 && spec.fan <= 32,
                "gen sp needs fan in [2, 32], got " << spec.fan);
  NDF_CHECK_MSG(spec.work >= 1, "gen sp needs work >= 1");
  NDF_CHECK_MSG(spec.cross <= 100, "gen sp needs cross in [0, 100] (%), got "
                                       << spec.cross);
  // Worst case the tree is a full fan-ary tree of the given depth.
  NDF_CHECK_MSG(std::pow(double(spec.fan), double(spec.depth)) <= 500000.0,
                "gen sp spec too large (fan^depth > 500000): depth="
                    << spec.depth << ", fan=" << spec.fan);

  SpawnTree t;
  SpBuilder b(t, spec);
  t.set_root(b.build_root());
  return t;
}

}  // namespace ndf::gen
