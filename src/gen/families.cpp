#include "gen/families.hpp"

#include <string>
#include <vector>

#include "gen/synthetic_mem.hpp"
#include "support/check.hpp"

namespace ndf::gen {

namespace {

/// A par stage of `fan` strands (or the strand itself when fan == 1).
NodeId stage(SpawnTree& t, std::size_t fan, double work,
             const std::string& tag, std::vector<NodeId>* strands) {
  std::vector<NodeId> s;
  s.reserve(fan);
  for (std::size_t i = 0; i < fan; ++i)
    s.push_back(t.strand(work, work, tag));
  if (strands) *strands = s;
  return fan == 1 ? s[0] : t.par(s, double(fan) * work, tag);
}

}  // namespace

SpawnTree make_chain_tree(std::size_t n, double work) {
  NDF_CHECK_MSG(n >= 1 && n <= 100000, "gen chain needs n in [1, 100000]");
  SpawnTree t;
  SyntheticMem mem;
  std::vector<NodeId> strands;
  strands.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    strands.push_back(t.strand(work, work, "c" + std::to_string(i)));
  for (std::size_t i = 0; i + 1 < n; ++i)
    mem.link(t, strands[i], strands[i + 1]);
  t.set_root(n == 1 ? strands[0] : t.seq(strands, double(n) * work, "chain"));
  return t;
}

SpawnTree make_forkjoin_tree(std::size_t depth, std::size_t fan,
                             double work) {
  NDF_CHECK_MSG(depth >= 1 && fan >= 1 && depth * fan <= 100000,
                "gen forkjoin needs depth, fan >= 1 and depth*fan <= 100000");
  SpawnTree t;
  SyntheticMem mem;
  std::vector<NodeId> levels;
  std::vector<NodeId> prev;
  for (std::size_t d = 0; d < depth; ++d) {
    std::vector<NodeId> cur;
    levels.push_back(stage(t, fan, work, "fj" + std::to_string(d), &cur));
    // The barrier between stages orders everything, so any stage-d+1
    // strand may legally read any stage-d strand's output; one reader per
    // writer keeps the conflict-pair count linear.
    for (std::size_t w = 0; w < prev.size(); ++w) {
      const MemSegment s = mem.fresh();
      t.node(prev[w]).writes.push_back(s);
      t.node(cur[w % cur.size()]).reads.push_back(s);
    }
    prev = std::move(cur);
  }
  t.set_root(depth == 1 ? levels[0]
                        : t.seq(levels, double(depth * fan) * work, "fj"));
  return t;
}

SpawnTree make_diamond_tree(std::size_t depth, std::size_t fan, double work) {
  NDF_CHECK_MSG(depth >= 1 && fan >= 1 && depth * (fan + 2) <= 100000,
                "gen diamond needs depth, fan >= 1 and depth*(fan+2) <= "
                "100000");
  SpawnTree t;
  SyntheticMem mem;
  std::vector<NodeId> diamonds;
  NodeId prev_sink = kNoNode;
  for (std::size_t d = 0; d < depth; ++d) {
    const std::string tag = "d" + std::to_string(d);
    const NodeId src = t.strand(work, work, tag + ".src");
    std::vector<NodeId> mids;
    const NodeId mid = stage(t, fan, work, tag + ".mid", &mids);
    const NodeId sink = t.strand(work, work, tag + ".sink");
    // src feeds every middle, every middle feeds the sink (ordered by the
    // seq barriers below); sinks chain across stacked diamonds.
    for (NodeId m : mids) {
      const MemSegment s = mem.fresh();
      t.node(src).writes.push_back(s);
      t.node(m).reads.push_back(s);
      const MemSegment s2 = mem.fresh();
      t.node(m).writes.push_back(s2);
      t.node(sink).reads.push_back(s2);
    }
    if (prev_sink != kNoNode) mem.link(t, prev_sink, src);
    diamonds.push_back(
        t.seq({src, mid, sink}, double(fan + 2) * work, tag));
    prev_sink = sink;
  }
  t.set_root(depth == 1
                 ? diamonds[0]
                 : t.seq(diamonds, double(depth * (fan + 2)) * work, "dia"));
  return t;
}

SpawnTree make_wavefront_tree(std::size_t n, double work) {
  // Pedigree indices are uint8_t, so a row of n children needs n <= 255;
  // n*n strands also bound the determinacy-check cost.
  NDF_CHECK_MSG(n >= 1 && n <= 128, "gen wavefront needs n in [1, 128]");
  SpawnTree t;
  SyntheticMem mem;
  if (n == 1) {
    t.set_root(t.strand(work, work, "wf0,0"));
    return t;
  }

  std::vector<std::vector<NodeId>> cell(n, std::vector<NodeId>(n));
  std::vector<NodeId> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<NodeId> row(n);
    for (std::size_t j = 0; j < n; ++j) {
      cell[i][j] = t.strand(
          work, work, "wf" + std::to_string(i) + "," + std::to_string(j));
      row[j] = cell[i][j];
    }
    // Left-to-right within a row: exactly the horizontal wavefront edge.
    rows[i] = t.seq(row, double(n) * work, "row" + std::to_string(i));
  }

  // Vertical edges (i,j) → (i+1,j) via generated per-column fire rules.
  // Rows fold right-to-left: the innermost fire pairs two bare rows
  // (sink pedigree (j)); every outer fire's sink is a fire node whose
  // child 1 is the next row down (sink pedigree (1)(j)).
  FireRules& R = t.rules();
  const FireType v_row = R.add_type("V");
  const FireType v_acc = R.add_type("Vx");
  for (std::size_t j = 1; j <= n; ++j) {
    const auto ix = static_cast<std::uint8_t>(j);
    R.add_rule(v_row, Pedigree{ix}, FireRules::kFull, Pedigree{ix});
    R.add_rule(v_acc, Pedigree{ix}, FireRules::kFull,
               Pedigree(std::vector<std::uint8_t>{1, ix}));
  }
  NodeId acc = rows[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    const FireType type = (acc == rows[n - 1]) ? v_row : v_acc;
    acc = t.fire(type, rows[i], acc,
                 double((n - i) * n) * work, "wf");
  }
  t.set_root(acc);

  // Footprints mirror the grid: (i,j) writes its cell and reads up/left.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const MemSegment s = mem.fresh();
      t.node(cell[i][j]).writes.push_back(s);
      if (i + 1 < n) t.node(cell[i + 1][j]).reads.push_back(s);
      if (j + 1 < n) t.node(cell[i][j + 1]).reads.push_back(s);
    }
  return t;
}

}  // namespace ndf::gen
