// Synthetic footprints for generated strands.
//
// Generated workloads have no real data, but the determinacy checker is
// only a real oracle if strands declare footprints. SyntheticMem hands out
// counter-based fake address segments (never real pointers — the same spec
// yields bit-identical segments in every process, which the cross-process
// determinism gate relies on). Generators allocate one segment per
// *generated dependence*: a single strand on the source side writes it and
// strands on the sink side read it, so every conflicting pair the checker
// finds corresponds to a dependence the DRS elaboration must have realized
// as an ordering path — and a generator bug that drops one fails the
// check_determinacy rejection check instead of shipping a racy workload.
#pragma once

#include <algorithm>
#include <cstdint>

#include "nd/spawn_tree.hpp"
#include "support/mem.hpp"

namespace ndf::gen {

class SyntheticMem {
 public:
  MemSegment fresh() {
    const MemSegment s{next_, next_ + 64};
    next_ += 128;  // gap so segments never touch
    return s;
  }

  /// Declares the dependence subtree(from) → subtree(to) as a footprint:
  /// the first strand under `from` writes a fresh segment, up to
  /// `max_readers` strands under `to` read it. Legal only when the
  /// elaboration orders all of `from` before all of `to`.
  void link(SpawnTree& t, NodeId from, NodeId to,
            std::size_t max_readers = 4) {
    const MemSegment s = fresh();
    t.node(t.strands_under(from).front()).writes.push_back(s);
    const std::vector<NodeId> readers = t.strands_under(to);
    const std::size_t k = std::min(max_readers, readers.size());
    for (std::size_t i = 0; i < k; ++i)
      t.node(readers[i]).reads.push_back(s);
  }

 private:
  std::uintptr_t next_ = 0x1000;  // fixed base: process-independent
};

}  // namespace ndf::gen
