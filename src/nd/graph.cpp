#include "nd/graph.hpp"

#include <algorithm>

namespace ndf {

StrandGraph::StrandGraph(const SpawnTree& tree)
    : tree_(&tree),
      succ_(2 * tree.num_nodes()),
      in_degree_(2 * tree.num_nodes(), 0),
      weight_(2 * tree.num_nodes(), 0.0) {
  for (NodeId n = 0; n < tree.num_nodes(); ++n)
    if (tree.node(n).kind == Kind::Strand &&
        tree.in_subtree(n, tree.root()))
      weight_[exit(n)] = tree.node(n).work;
}

void StrandGraph::add_edge(VertexId u, VertexId v) {
  NDF_DCHECK(u < succ_.size() && v < succ_.size());
  succ_[u].push_back(v);
  ++in_degree_[v];
  ++num_edges_;
}

std::vector<VertexId> StrandGraph::topological_order() const {
  std::vector<std::uint32_t> indeg = in_degree_;
  std::vector<VertexId> order;
  order.reserve(num_vertices());
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < num_vertices(); ++v)
    if (indeg[v] == 0) frontier.push_back(v);
  while (!frontier.empty()) {
    VertexId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (VertexId w : succ_[v])
      if (--indeg[w] == 0) frontier.push_back(w);
  }
  NDF_CHECK_MSG(order.size() == num_vertices(),
                "cycle detected in elaborated DAG ("
                    << order.size() << " of " << num_vertices()
                    << " vertices ordered) — inconsistent fire rules?");
  return order;
}

double StrandGraph::work() const {
  double w = 0.0;
  for (double x : weight_) w += x;
  return w;
}

std::vector<double> StrandGraph::longest_path_to() const {
  const std::vector<VertexId> order = topological_order();
  std::vector<double> dist(num_vertices(), 0.0);
  for (VertexId v : order) {
    dist[v] += weight_[v];
    for (VertexId w : succ_[v]) dist[w] = std::max(dist[w], dist[v]);
  }
  return dist;
}

double StrandGraph::span() const {
  const std::vector<double> dist = longest_path_to();
  double s = 0.0;
  for (double d : dist) s = std::max(s, d);
  return s;
}

}  // namespace ndf
