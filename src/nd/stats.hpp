// Structural statistics of elaborated algorithm DAGs: counts, work/span/
// parallelism, and a level-synchronous parallelism profile (how many
// strands are simultaneously available at each dependence depth) — the
// quantity that visualizes why the ND elaboration of TRS/LCS keeps
// processors busy while the NP elaboration starves them.
#pragma once

#include <vector>

#include "nd/graph.hpp"

namespace ndf {

struct DagStats {
  std::size_t strands = 0;
  std::size_t edges = 0;
  double work = 0.0;
  double span = 0.0;
  double parallelism = 0.0;  ///< T1 / T∞
  std::size_t depth_levels = 0;       ///< dependence-depth levels (strands)
  std::size_t max_level_width = 0;    ///< widest level (strand count)
  double avg_level_width = 0.0;
};

DagStats compute_stats(const StrandGraph& g);

/// Strands per dependence-depth level (level = longest strand-edge path
/// from a source). The histogram's shape is the wavefront profile.
std::vector<std::size_t> parallelism_profile(const StrandGraph& g);

}  // namespace ndf
