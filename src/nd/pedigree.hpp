// Pedigrees: positions of nested subtasks in a spawn tree, following the
// circled-number notation of the paper (Sec. 2). A pedigree is a sequence of
// 1-based child indices relative to an (implicit) ancestor; e.g. the paper's
// "+(2)(1)" is Pedigree{2, 1} relative to the source of a fire construct.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace ndf {

/// A relative pedigree: 1-based child indices from an ancestor downward.
class Pedigree {
 public:
  Pedigree() = default;
  Pedigree(std::initializer_list<std::uint8_t> ix) : ix_(ix) {
    for (auto i : ix_) NDF_CHECK_MSG(i >= 1, "pedigree indices are 1-based");
  }
  /// Dynamic-length form for programmatically built rule tables (the
  /// synthetic workload generator samples pedigrees at runtime).
  explicit Pedigree(std::vector<std::uint8_t> ix) : ix_(std::move(ix)) {
    for (auto i : ix_) NDF_CHECK_MSG(i >= 1, "pedigree indices are 1-based");
  }

  std::size_t depth() const { return ix_.size(); }
  bool empty() const { return ix_.empty(); }
  std::uint8_t operator[](std::size_t i) const { return ix_[i]; }

  auto begin() const { return ix_.begin(); }
  auto end() const { return ix_.end(); }

  friend bool operator==(const Pedigree& a, const Pedigree& b) {
    return a.ix_ == b.ix_;
  }

  /// Rendered like the paper: "(2)(1)".
  std::string to_string() const {
    std::string s;
    for (auto i : ix_) {
      s += '(';
      s += std::to_string(int(i));
      s += ')';
    }
    return s;
  }

 private:
  std::vector<std::uint8_t> ix_;
};

}  // namespace ndf
