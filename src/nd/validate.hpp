// Static validation of fire-rule tables, independent of any particular
// spawn tree: catches the classes of table bugs we hit while transcribing
// the paper (non-productive rules that spin forever, dangling type
// references, and types unreachable from any program construct).
#pragma once

#include <string>
#include <vector>

#include "nd/fire.hpp"

namespace ndf {

struct RuleIssue {
  FireType type;
  std::string message;
};

/// Checks every registered type's table:
///  * rule pedigrees are well formed (indices >= 1 — enforced at build) and
///    every referenced inner type exists;
///  * productivity: a rule with two empty pedigrees must change type, and
///    the type-change graph of such rules must be acyclic (otherwise the
///    DRS would rewrite forever between the same two nodes).
std::vector<RuleIssue> validate_rules(const FireRules& rules);

/// Throwing form: CheckError listing every issue (type name + message).
/// Programmatic rule builders (src/gen/) call this as a rejection check
/// before a generated table ever reaches the DRS.
void expect_valid_rules(const FireRules& rules);

}  // namespace ndf
