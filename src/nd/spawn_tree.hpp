// Spawn trees for the Nested Dataflow model (Sec. 2).
//
// Internal nodes are composition constructs — Seq (";"), Par ("‖"), Fire
// ("~>", binary, carrying a FireType) — and leaves are strands annotated
// with work (instruction count) and an optional executable kernel. Every
// node may carry a size annotation s(t) (distinct words accessed); per the
// paper, unannotated nodes inherit from the lowest annotated ancestor
// (leaves here always receive an explicit or computed size).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nd/fire.hpp"
#include "support/check.hpp"
#include "support/mem.hpp"

namespace ndf {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class Kind : std::uint8_t { Strand, Seq, Par, Fire };

/// One node of a spawn tree. Managed by SpawnTree; refer to nodes by id.
struct SpawnNode {
  Kind kind = Kind::Strand;
  FireType fire_type = FireRules::kEmpty;  ///< only meaningful for Fire
  std::vector<NodeId> children;
  NodeId parent = kNoNode;

  double work = 0.0;  ///< strand instruction count (leaves only)
  double size = -1.0; ///< s(t): footprint in words; -1 = inherit

  std::string label;  ///< for diagnostics and printed DAG dumps

  /// Optional executable payload for the real-thread runtime.
  std::function<void()> body;

  /// Optional declared footprint (strands bound to real data); consumed by
  /// the determinacy property tests.
  std::vector<MemSegment> reads, writes;
};

/// An ND spawn tree plus its fire-rule registry.
///
/// Built bottom-up: create strands and compose them; finish with
/// set_root(). The tree is immutable after elaboration starts.
class SpawnTree {
 public:
  FireRules& rules() { return rules_; }
  const FireRules& rules() const { return rules_; }

  /// Creates a strand leaf with given work and footprint size.
  NodeId strand(double work, double size, std::string label = "",
                std::function<void()> body = nullptr);

  /// Serial composition a ; b ; ... (n-ary, left to right).
  NodeId seq(std::vector<NodeId> children, double size = -1.0,
             std::string label = "");

  /// Parallel composition a ‖ b ‖ ....
  NodeId par(std::vector<NodeId> children, double size = -1.0,
             std::string label = "");

  /// Fire composition: left ~type~> right.
  NodeId fire(FireType type, NodeId left, NodeId right, double size = -1.0,
              std::string label = "");

  void set_root(NodeId root);
  NodeId root() const {
    NDF_CHECK_MSG(root_ != kNoNode, "spawn tree has no root");
    return root_;
  }
  bool has_root() const { return root_ != kNoNode; }

  std::size_t num_nodes() const { return nodes_.size(); }
  const SpawnNode& node(NodeId id) const {
    NDF_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  SpawnNode& node(NodeId id) {
    NDF_DCHECK(id < nodes_.size());
    return nodes_[id];
  }

  bool is_strand(NodeId id) const { return node(id).kind == Kind::Strand; }

  /// Effective size of a task: its own annotation, or the lowest annotated
  /// ancestor's (paper, Sec. 4 "Terminology").
  double size_of(NodeId id) const;

  /// Total work of the subtree rooted at id (sum over strands).
  double work_of(NodeId id) const;

  /// Number of strand leaves in the subtree rooted at id.
  std::size_t strand_count(NodeId id) const;

  /// Descends `p` from node `id`, stopping early at strands (the DRS
  /// recursion-termination rule, Sec. 2).
  NodeId descend(NodeId id, const Pedigree& p) const;

  /// True if `desc` lies in the subtree rooted at `anc` (inclusive).
  bool in_subtree(NodeId desc, NodeId anc) const;

  /// All strand ids in the subtree rooted at id, left-to-right.
  std::vector<NodeId> strands_under(NodeId id) const;

 private:
  NodeId add_node(SpawnNode n);
  void adopt(NodeId parent, const std::vector<NodeId>& children);

  FireRules rules_;
  std::vector<SpawnNode> nodes_;
  NodeId root_ = kNoNode;
};

}  // namespace ndf
