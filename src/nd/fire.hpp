// Fire-rule tables defining the semantics of "~>" (the paper's ";→" fire
// construct). Each fire *type* (e.g. "MM", "TM", "2TM2T") owns a set of
// rewriting rules
//
//     +(p)  T'~>  -(q)
//
// meaning: a dashed arrow of this type from source S to sink K is rewritten
// into an arrow of type T' from the subtask of S at pedigree p to the
// subtask of K at pedigree q (Sec. 2, "Fire Rule").
//
// Two built-in types close the construct algebra (Sec. 2): kFull, the total
// dependency ";" (solid arrow), and kEmpty, the zero dependency "‖".
#pragma once

#include <string>
#include <vector>

#include "nd/pedigree.hpp"
#include "support/check.hpp"

namespace ndf {

/// Identifier of a fire type within a FireRules registry.
using FireType = int;

/// A single rewriting rule of a fire type.
struct FireRule {
  Pedigree src;    ///< pedigree below the source (+)
  FireType inner;  ///< type of the rewritten arrow
  Pedigree dst;    ///< pedigree below the sink (-)
};

/// Registry of fire types and their rule tables for one ND program.
class FireRules {
 public:
  /// Built-in: total dependency (the ";" serial construct as an arrow).
  static constexpr FireType kFull = 0;
  /// Built-in: zero dependency (the "‖" construct as an arrow).
  static constexpr FireType kEmpty = 1;

  FireRules() : names_{"FULL", "EMPTY"}, rules_(2) {}

  /// Registers a named fire type with an (initially empty) rule table.
  FireType add_type(std::string name) {
    names_.push_back(std::move(name));
    rules_.emplace_back();
    return static_cast<FireType>(names_.size() - 1);
  }

  /// Appends one rewriting rule to `type`'s table.
  void add_rule(FireType type, Pedigree src, FireType inner, Pedigree dst) {
    NDF_CHECK_MSG(type > kEmpty, "cannot add rules to built-in types");
    NDF_CHECK(valid(inner));
    rules_[type].push_back(FireRule{std::move(src), inner, std::move(dst)});
  }

  bool valid(FireType t) const {
    return t >= 0 && t < static_cast<FireType>(rules_.size());
  }

  const std::vector<FireRule>& rules(FireType t) const {
    NDF_CHECK(valid(t));
    return rules_[t];
  }

  const std::string& name(FireType t) const {
    NDF_CHECK(valid(t));
    return names_[t];
  }

  std::size_t num_types() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<FireRule>> rules_;
};

}  // namespace ndf
