#include "nd/spawn_tree.hpp"

namespace ndf {

NodeId SpawnTree::add_node(SpawnNode n) {
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SpawnTree::adopt(NodeId parent, const std::vector<NodeId>& children) {
  for (NodeId c : children) {
    NDF_CHECK_MSG(nodes_[c].parent == kNoNode,
                  "node " << c << " already has a parent");
    nodes_[c].parent = parent;
  }
}

NodeId SpawnTree::strand(double work, double size, std::string label,
                         std::function<void()> body) {
  NDF_CHECK(work >= 0.0 && size >= 0.0);
  SpawnNode n;
  n.kind = Kind::Strand;
  n.work = work;
  n.size = size;
  n.label = std::move(label);
  n.body = std::move(body);
  return add_node(std::move(n));
}

NodeId SpawnTree::seq(std::vector<NodeId> children, double size,
                      std::string label) {
  NDF_CHECK_MSG(children.size() >= 2, "seq needs >= 2 children");
  SpawnNode n;
  n.kind = Kind::Seq;
  n.children = std::move(children);
  n.size = size;
  n.label = std::move(label);
  NodeId id = add_node(std::move(n));
  adopt(id, nodes_[id].children);
  return id;
}

NodeId SpawnTree::par(std::vector<NodeId> children, double size,
                      std::string label) {
  NDF_CHECK_MSG(children.size() >= 2, "par needs >= 2 children");
  SpawnNode n;
  n.kind = Kind::Par;
  n.children = std::move(children);
  n.size = size;
  n.label = std::move(label);
  NodeId id = add_node(std::move(n));
  adopt(id, nodes_[id].children);
  return id;
}

NodeId SpawnTree::fire(FireType type, NodeId left, NodeId right, double size,
                       std::string label) {
  NDF_CHECK(rules_.valid(type));
  SpawnNode n;
  n.kind = Kind::Fire;
  n.fire_type = type;
  n.children = {left, right};
  n.size = size;
  n.label = std::move(label);
  NodeId id = add_node(std::move(n));
  adopt(id, nodes_[id].children);
  return id;
}

void SpawnTree::set_root(NodeId root) {
  NDF_CHECK(root < nodes_.size());
  NDF_CHECK_MSG(nodes_[root].parent == kNoNode, "root must have no parent");
  root_ = root;
}

double SpawnTree::size_of(NodeId id) const {
  NodeId cur = id;
  while (cur != kNoNode) {
    if (nodes_[cur].size >= 0.0) return nodes_[cur].size;
    cur = nodes_[cur].parent;
  }
  NDF_CHECK_MSG(false, "no size annotation on path to root from " << id);
  return 0.0;
}

double SpawnTree::work_of(NodeId id) const {
  const SpawnNode& n = node(id);
  if (n.kind == Kind::Strand) return n.work;
  double w = 0.0;
  for (NodeId c : n.children) w += work_of(c);
  return w;
}

std::size_t SpawnTree::strand_count(NodeId id) const {
  const SpawnNode& n = node(id);
  if (n.kind == Kind::Strand) return 1;
  std::size_t k = 0;
  for (NodeId c : n.children) k += strand_count(c);
  return k;
}

NodeId SpawnTree::descend(NodeId id, const Pedigree& p) const {
  NodeId cur = id;
  for (std::uint8_t ix : p) {
    const SpawnNode& n = node(cur);
    if (n.kind == Kind::Strand) break;  // recursion terminated at a leaf
    NDF_CHECK_MSG(ix <= n.children.size(),
                  "pedigree index " << int(ix) << " out of range at node "
                                    << cur << " (" << n.children.size()
                                    << " children)");
    cur = n.children[ix - 1];
  }
  return cur;
}

bool SpawnTree::in_subtree(NodeId desc, NodeId anc) const {
  NodeId cur = desc;
  while (cur != kNoNode) {
    if (cur == anc) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

std::vector<NodeId> SpawnTree::strands_under(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    const SpawnNode& n = node(cur);
    if (n.kind == Kind::Strand) {
      out.push_back(cur);
    } else {
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
        stack.push_back(*it);
    }
  }
  return out;
}

}  // namespace ndf
