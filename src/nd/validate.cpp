#include "nd/validate.hpp"

namespace ndf {

std::vector<RuleIssue> validate_rules(const FireRules& rules) {
  std::vector<RuleIssue> issues;
  const FireType n = static_cast<FireType>(rules.num_types());

  // Edges of the "no-progress" graph: type a -> type b when a has a rule
  // with both pedigrees empty rewriting to b (the DRS revisits the same
  // node pair under type b).
  std::vector<std::vector<FireType>> stay(n);
  for (FireType t = FireRules::kEmpty + 1; t < n; ++t) {
    for (const FireRule& r : rules.rules(t)) {
      if (!rules.valid(r.inner)) {
        issues.push_back({t, "rule references unknown inner type"});
        continue;
      }
      if (r.src.empty() && r.dst.empty()) {
        if (r.inner == t) {
          issues.push_back({t, "non-productive self rule (+ T -)"});
          continue;
        }
        stay[t].push_back(r.inner);
      }
    }
  }

  // Cycle detection over the no-progress graph (DFS, three colors).
  std::vector<int> color(n, 0);
  std::vector<FireType> stack;
  auto dfs = [&](auto&& self, FireType u) -> bool {
    color[u] = 1;
    for (FireType v : stay[u]) {
      if (color[v] == 1) return true;
      if (color[v] == 0 && self(self, v)) return true;
    }
    color[u] = 2;
    return false;
  };
  for (FireType t = 0; t < n; ++t)
    if (color[t] == 0 && dfs(dfs, t))
      issues.push_back(
          {t, "cycle of empty-pedigree rules (rewriting cannot terminate)"});

  return issues;
}

void expect_valid_rules(const FireRules& rules) {
  const std::vector<RuleIssue> issues = validate_rules(rules);
  if (issues.empty()) return;
  std::string msg;
  for (const RuleIssue& i : issues) {
    if (!msg.empty()) msg += "; ";
    msg += rules.name(i.type) + ": " + i.message;
  }
  NDF_CHECK_MSG(false, "invalid fire-rule table (" << issues.size()
                                                   << " issue(s)): " << msg);
}

}  // namespace ndf
