// Graphviz (DOT) export of spawn trees and elaborated algorithm DAGs, for
// documentation and debugging of fire-rule tables. Mirrors the paper's
// figures: spawn trees render composition constructs as labeled internal
// nodes (";", "‖", "~T~>"); algorithm DAGs render strands with their
// dataflow edges.
#pragma once

#include <string>

#include "nd/graph.hpp"
#include "nd/spawn_tree.hpp"

namespace ndf {

/// DOT rendering of the spawn tree (structure only, no dataflow arrows).
std::string to_dot(const SpawnTree& tree);

/// DOT rendering of the strand-level algorithm DAG: strand vertices plus
/// the task-level arrows recorded during elaboration. Control (enter/exit)
/// vertices are elided; `max_strands` guards against accidentally dumping
/// a million-node graph.
std::string to_dot(const StrandGraph& g, std::size_t max_strands = 4096);

}  // namespace ndf
