#include "nd/stats.hpp"

#include <algorithm>

namespace ndf {

std::vector<std::size_t> parallelism_profile(const StrandGraph& g) {
  const SpawnTree& tree = g.tree();
  // Depth = number of strands on the longest path ending at each vertex
  // (control vertices pass depth through; a strand's exit adds one).
  const std::vector<VertexId> order = g.topological_order();
  std::vector<std::uint32_t> depth(g.num_vertices(), 0);
  std::uint32_t max_depth = 0;
  for (VertexId v : order) {
    std::uint32_t d = depth[v];
    if (g.is_exit(v) && tree.node(g.owner(v)).kind == Kind::Strand) ++d;
    max_depth = std::max(max_depth, d);
    for (VertexId w : g.successors(v)) depth[w] = std::max(depth[w], d);
  }
  std::vector<std::size_t> hist(max_depth, 0);
  for (NodeId n = 0; n < tree.num_nodes(); ++n)
    if (tree.node(n).kind == Kind::Strand && tree.in_subtree(n, tree.root()))
      ++hist[depth[g.enter(n)]];  // depth *before* executing the strand
  return hist;
}

DagStats compute_stats(const StrandGraph& g) {
  DagStats s;
  const SpawnTree& tree = g.tree();
  for (NodeId n = 0; n < tree.num_nodes(); ++n)
    if (tree.node(n).kind == Kind::Strand && tree.in_subtree(n, tree.root()))
      ++s.strands;
  s.edges = g.num_edges();
  s.work = g.work();
  s.span = g.span();
  s.parallelism = s.span > 0 ? s.work / s.span : 0.0;
  const auto prof = parallelism_profile(g);
  s.depth_levels = prof.size();
  for (std::size_t w : prof) s.max_level_width = std::max(s.max_level_width, w);
  s.avg_level_width =
      prof.empty() ? 0.0 : double(s.strands) / double(prof.size());
  return s;
}

}  // namespace ndf
