#include "nd/dot.hpp"

#include <sstream>

namespace ndf {

namespace {

std::string node_label(const SpawnTree& t, NodeId n) {
  const SpawnNode& node = t.node(n);
  switch (node.kind) {
    case Kind::Strand:
      return node.label.empty() ? "s" + std::to_string(n) : node.label;
    case Kind::Seq:
      return ";";
    case Kind::Par:
      return "||";
    case Kind::Fire:
      return "~" + t.rules().name(node.fire_type) + "~>";
  }
  return "?";
}

}  // namespace

std::string to_dot(const SpawnTree& tree) {
  std::ostringstream os;
  os << "digraph spawn_tree {\n  node [shape=box, fontsize=10];\n";
  const NodeId root = tree.root();
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (!tree.in_subtree(n, root)) continue;
    os << "  n" << n << " [label=\"" << node_label(tree, n) << "\"";
    if (tree.node(n).kind == Kind::Strand) os << ", style=filled";
    os << "];\n";
    for (NodeId c : tree.node(n).children)
      os << "  n" << n << " -> n" << c << " [style=dotted, arrowhead=none];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const StrandGraph& g, std::size_t max_strands) {
  const SpawnTree& tree = g.tree();
  std::ostringstream os;
  os << "digraph algorithm_dag {\n  node [shape=ellipse, fontsize=10];\n";
  std::size_t strands = 0;
  const NodeId root = tree.root();
  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (tree.node(n).kind != Kind::Strand || !tree.in_subtree(n, root))
      continue;
    NDF_CHECK_MSG(++strands <= max_strands,
                  "DAG too large for DOT export (limit " << max_strands
                                                         << " strands)");
    os << "  n" << n << " [label=\"" << node_label(tree, n) << "\"];\n";
  }
  // Task-level arrows (each may connect whole subtrees; we draw them
  // between subtree roots, matching the paper's dataflow-arrow figures).
  // Arrow endpoints that are internal nodes get box-shaped declarations.
  for (const TaskArrow& a : g.arrows())
    for (NodeId n : {a.from, a.to})
      if (tree.node(n).kind != Kind::Strand)
        os << "  n" << n << " [label=\"" << node_label(tree, n)
           << "\", shape=box];\n";
  for (const TaskArrow& a : g.arrows())
    os << "  n" << a.from << " -> n" << a.to << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace ndf
