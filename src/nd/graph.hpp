// Strand-level dependence graph produced by elaborating a spawn tree with
// the DAG Rewriting System (drs.hpp).
//
// Every spawn-tree node contributes two vertices, enter(n) and exit(n); a
// solid arrow between subtrees A → B becomes the single edge
// exit(A) → enter(B), which encodes the paper's "all-to-all between
// descendants" shorthand without materializing quadratically many edges.
// Strand work is carried as a weight on the strand's exit vertex, so the
// weight of a longest (vertex-weighted) path is exactly the span T∞.
#pragma once

#include <cstdint>
#include <vector>

#include "nd/spawn_tree.hpp"

namespace ndf {

using VertexId = std::uint32_t;

/// A dependence edge between spawn-tree nodes recorded during elaboration
/// (solid arrows only, i.e. after all fire rewriting).
struct TaskArrow {
  NodeId from;
  NodeId to;
};

class StrandGraph {
 public:
  explicit StrandGraph(const SpawnTree& tree);

  const SpawnTree& tree() const { return *tree_; }

  VertexId enter(NodeId n) const { return 2 * n; }
  VertexId exit(NodeId n) const { return 2 * n + 1; }
  NodeId owner(VertexId v) const { return v / 2; }
  bool is_exit(VertexId v) const { return v % 2 == 1; }

  std::size_t num_vertices() const { return succ_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  void add_edge(VertexId u, VertexId v);

  const std::vector<VertexId>& successors(VertexId v) const {
    return succ_[v];
  }
  std::size_t in_degree(VertexId v) const { return in_degree_[v]; }
  double vertex_weight(VertexId v) const { return weight_[v]; }

  /// Solid task-level arrows recorded during elaboration, including seq
  /// ordering edges; used to condense onto M-maximal tasks.
  const std::vector<TaskArrow>& arrows() const { return arrows_; }
  void record_arrow(NodeId from, NodeId to) { arrows_.push_back({from, to}); }

  /// Kahn topological order. Throws CheckError if the graph has a cycle
  /// (which would indicate an inconsistent fire-rule table).
  std::vector<VertexId> topological_order() const;

  /// Total work (sum of strand weights).
  double work() const;

  /// Span: maximum vertex-weighted path length. Validates acyclicity.
  double span() const;

  /// Per-vertex longest-path-to-vertex distances (inclusive of the vertex's
  /// own weight), in topological order. Used by schedulers and tests.
  std::vector<double> longest_path_to() const;

 private:
  const SpawnTree* tree_;
  std::vector<std::vector<VertexId>> succ_;
  std::vector<std::uint32_t> in_degree_;
  std::vector<double> weight_;
  std::vector<TaskArrow> arrows_;
  std::size_t num_edges_ = 0;
};

}  // namespace ndf
