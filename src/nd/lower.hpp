// The serial elision of the fire construct as a source-to-source
// transform: produces a new spawn tree in which every fire node is a "; "
// node (the paper's NP versions of the ND algorithms, Sec. 3). Elaborating
// the lowered tree equals elaborating the original with np_mode — both
// paths exist so the equivalence itself is testable, and so NP trees can
// be fed to tools that inspect tree structure (DOT export, decomposition).
#pragma once

#include "nd/spawn_tree.hpp"

namespace ndf {

/// Deep-copies `tree`, replacing every Fire node with a Seq node. Strand
/// bodies and footprints are shared (copied std::function / segments).
SpawnTree lower_to_np(const SpawnTree& tree);

}  // namespace ndf
