#include "nd/lower.hpp"

namespace ndf {

SpawnTree lower_to_np(const SpawnTree& tree) {
  SpawnTree out;
  // Recursive copy; node ids change (detached nodes are dropped).
  auto copy = [&](auto&& self, NodeId n) -> NodeId {
    const SpawnNode& node = tree.node(n);
    if (node.kind == Kind::Strand) {
      const NodeId id =
          out.strand(node.work, node.size, node.label, node.body);
      out.node(id).reads = node.reads;
      out.node(id).writes = node.writes;
      return id;
    }
    std::vector<NodeId> kids;
    kids.reserve(node.children.size());
    for (NodeId c : node.children) kids.push_back(self(self, c));
    switch (node.kind) {
      case Kind::Par:
        return out.par(std::move(kids), node.size, node.label);
      case Kind::Seq:
      case Kind::Fire:
        return out.seq(std::move(kids), node.size, node.label);
      default:
        NDF_CHECK(false);
        return kNoNode;
    }
  };
  out.set_root(copy(copy, tree.root()));
  return out;
}

}  // namespace ndf
