#include "nd/drs.hpp"

#include <unordered_set>

namespace ndf {

namespace {

/// Packs (src, dst, type) for the rewrite memo table. NodeIds are < 2^24 in
/// any tree we build (checked below); types < 2^16.
std::uint64_t memo_key(NodeId a, NodeId b, FireType t) {
  return (std::uint64_t(a) << 40) | (std::uint64_t(b) << 16) |
         std::uint64_t(std::uint16_t(t));
}

class Elaborator {
 public:
  Elaborator(const SpawnTree& tree, ElabOptions opts, StrandGraph& g)
      : tree_(tree), opts_(opts), g_(g) {}

  void run() {
    NDF_CHECK_MSG(tree_.num_nodes() < (1u << 24),
                  "spawn tree too large for arrow memo keys");
    const NodeId root = tree_.root();
    // Structural + seq edges for every node.
    for (NodeId n = 0; n < tree_.num_nodes(); ++n) {
      if (!tree_.in_subtree(n, root)) continue;  // ignore detached nodes
      const SpawnNode& node = tree_.node(n);
      switch (node.kind) {
        case Kind::Strand:
          g_.add_edge(g_.enter(n), g_.exit(n));
          break;
        case Kind::Seq:
          link_children(n);
          for (std::size_t i = 0; i + 1 < node.children.size(); ++i)
            solid(node.children[i], node.children[i + 1]);
          break;
        case Kind::Par:
          link_children(n);
          break;
        case Kind::Fire:
          link_children(n);
          rewrite(node.children[0], node.children[1], node.fire_type, 0);
          break;
      }
    }
  }

 private:
  void link_children(NodeId n) {
    for (NodeId c : tree_.node(n).children) {
      g_.add_edge(g_.enter(n), g_.enter(c));
      g_.add_edge(g_.exit(c), g_.exit(n));
    }
  }

  /// Emits the solid arrow a → b (full dependency between subtrees).
  void solid(NodeId a, NodeId b) {
    if (!seen_.insert(memo_key(a, b, FireRules::kFull)).second) return;
    g_.add_edge(g_.exit(a), g_.enter(b));
    g_.record_arrow(a, b);
  }

  void rewrite(NodeId a, NodeId b, FireType type, int depth) {
    NDF_CHECK_MSG(depth < 256, "fire-rule rewriting did not terminate");
    if (type == FireRules::kEmpty) return;
    if (type == FireRules::kFull || opts_.np_mode) {
      solid(a, b);
      return;
    }
    if (!seen_.insert(memo_key(a, b, type)).second) return;

    const auto& rules = tree_.rules().rules(type);
    const bool a_strand = tree_.is_strand(a);
    const bool b_strand = tree_.is_strand(b);
    if (a_strand && b_strand) {
      // Recursion terminated: a named fire type between strands is a full
      // dependency (types with no rules behave like "‖").
      if (!rules.empty()) solid(a, b);
      return;
    }
    for (const FireRule& r : rules) {
      const NodeId sa = tree_.descend(a, r.src);
      const NodeId sb = tree_.descend(b, r.dst);
      // Progress guard: at least one endpoint must move, or the type must
      // change, for the rewriting to be well-founded.
      NDF_CHECK_MSG(sa != a || sb != b || r.inner != type,
                    "non-productive fire rule in type "
                        << tree_.rules().name(type));
      rewrite(sa, sb, r.inner, depth + 1);
    }
  }

  const SpawnTree& tree_;
  ElabOptions opts_;
  StrandGraph& g_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace

StrandGraph elaborate(const SpawnTree& tree, ElabOptions opts) {
  StrandGraph g(tree);
  Elaborator(tree, opts, g).run();
  return g;
}

}  // namespace ndf
