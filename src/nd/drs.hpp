// DAG Rewriting System (Sec. 2): elaborates an ND spawn tree into the
// equivalent algorithm DAG over strands.
//
// Rewriting of a dashed arrow (src, dst, type):
//   * both endpoints strands          → solid edge (recursion terminated);
//     exception: an empty rule table (the "‖" type) yields no edge.
//   * kFull                           → solid edge exit(src) → enter(dst)
//     (the enter/exit encoding captures the all-to-all shorthand).
//   * otherwise                       → for each rule (+p, T', -q) of the
//     type, recursively rewrite (descend(src, p), descend(dst, q), T').
//
// Elaboration also adds the structural edges of the spawn tree itself
// (enter(parent) → enter(child), exit(child) → exit(parent)) and the solid
// arrows of Seq nodes.
#pragma once

#include "nd/graph.hpp"
#include "nd/spawn_tree.hpp"

namespace ndf {

struct ElabOptions {
  /// Nested-parallel mode: the serial elision of the fire construct. Every
  /// fire arrow is treated as a full dependency (paper Sec. 3: the NP
  /// versions of the algorithms replace "~>" with ";").
  bool np_mode = false;
};

/// Elaborates `tree` into its strand-level algorithm DAG.
StrandGraph elaborate(const SpawnTree& tree, ElabOptions opts = {});

}  // namespace ndf
