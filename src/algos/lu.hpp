// LU factorization with partial pivoting (Sec. 3, after Toledo [51]).
//
// Recursive on column blocks over the trailing rows: for the instance on
// columns [col0, col0+c) and rows [col0, n),
//
//   1. LU on the left half-panel (recursively),
//   2. apply its row swaps to the right half columns (deferred pivoting),
//   3. U01 ← L00⁻¹·A01(top), then A11(bottom) −= L10·U01 (ND TRS and MMS),
//   4. LU on the trailing block (recursively),
//   5. apply the trailing swaps back to the left half's bottom rows.
//
// The paper obtains LU "by a straightforward parallelization of Toledo's
// algorithm combined with replacing TRS by the ND TRS": the LU-level
// composition stays serial (pivoting is inherently sequential across
// panels) while the TRS and MMS substeps use the ND fire constructs; the
// resulting span is O(m log n) for an n×m matrix, versus O(m log² n)-type
// behaviour in the NP model where TRS itself has span Θ(m log m).
//
// Pivots are recorded LAPACK-style in `ipiv` (global row indices: step k
// swapped rows k and ipiv[k]); the factored matrix holds L (unit lower) and
// U in place.
#pragma once

#include <optional>
#include <vector>

#include "algos/linalg_types.hpp"
#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

struct LuViews {
  MatrixView<double> A;        ///< full n×n matrix, factored in place
  std::vector<int>* ipiv;      ///< size-n pivot record, filled in
};

/// Builds the LU spawn tree for an n×n matrix with panel width `base`.
NodeId build_lu(SpawnTree& tree, const LinalgTypes& ty, std::size_t n,
                std::size_t base, const std::optional<LuViews>& views);

/// Structure-only tree for analysis.
SpawnTree make_lu_tree(std::size_t n, std::size_t base);

/// Serial reference: in-place LU with partial pivoting; fills ipiv.
void lu_reference(MatrixView<double> A, std::vector<int>& ipiv);

/// Applies the row swaps ipiv[k0..k1) to the given column range of A.
void apply_pivots(MatrixView<double> A, const std::vector<int>& ipiv,
                  std::size_t k0, std::size_t k1, std::size_t c0,
                  std::size_t c1);

}  // namespace ndf
