#include "algos/fw1d.hpp"

#include <algorithm>

namespace ndf {

Fw1dTypes Fw1dTypes::install(SpawnTree& tree) {
  FireRules& R = tree.rules();
  Fw1dTypes t;
  t.AB = R.add_type("AB");
  t.ABAB = R.add_type("ABAB");
  t.DA = R.add_type("DA");
  t.VVA = R.add_type("VVA");
  t.VVB = R.add_type("VVB");
  t.BBBB = R.add_type("BBBB");

  // Node shapes: A = fire(ABAB, fire(AB, a00, b01), fire(AB, a11, b10));
  // B = fire(BBBB, par(b00, b01), par(b10, b11)). In both shapes the
  // top-row subtasks sit at pedigrees (1)(1) and (1)(2).

  // A → same-rows B: the sink's top half reads the source's upper-diagonal
  // values, the bottom half reads the lower sub-A's diagonals plus the
  // upper sub-A's LAST diagonal (the boundary rule the arXiv table omits).
  R.add_rule(t.AB, {1, 1}, t.AB, {1, 1});
  R.add_rule(t.AB, {1, 1}, t.AB, {1, 2});
  R.add_rule(t.AB, {2, 1}, t.AB, {2, 1});
  R.add_rule(t.AB, {2, 1}, t.AB, {2, 2});
  R.add_rule(t.AB, {1, 1}, t.DA, {2, 1});
  R.add_rule(t.AB, {1, 1}, t.DA, {2, 2});

  // First half-step → second half-step: b01 sits above a11, a00 sits above
  // b10, and a00's last diagonal bounds both members of the second half.
  R.add_rule(t.ABAB, {2}, t.VVB, {1});
  R.add_rule(t.ABAB, {1}, t.VVA, {2});
  R.add_rule(t.ABAB, {1}, t.DA, {1});
  R.add_rule(t.ABAB, {1}, t.DA, {2});

  // Last diagonal cell: produced inside the source's bottom-right sub-A,
  // consumed by the sink's first row.
  R.add_rule(t.DA, {2, 1}, t.DA, {1, 1});
  R.add_rule(t.DA, {2, 1}, t.DA, {1, 2});

  // Vertical neighbours (column-aligned): the source's bottom-row subtasks
  // feed the sink's top-row subtasks. For an A-shaped source the bottom
  // row is (b10, a11); for a B-shaped source it is (b10, b11).
  R.add_rule(t.VVA, {2, 2}, t.VVB, {1, 1});
  R.add_rule(t.VVA, {2, 1}, t.VVA, {1, 2});
  R.add_rule(t.VVB, {2, 1}, t.VVB, {1, 1});
  R.add_rule(t.VVB, {2, 2}, t.VVB, {1, 2});

  // Row-halves of a B-task, positionally (the paper's BBBB).
  R.add_rule(t.BBBB, {1}, t.VVB, {1});
  R.add_rule(t.BBBB, {2}, t.VVB, {2});
  return t;
}

namespace {

/// Fills cells (t, i) for t in [t0, t0+st), i in [i0, i0+si).
void fw1d_block(Matrix<double>& D, std::size_t t0, std::size_t i0,
                std::size_t st, std::size_t si) {
  for (std::size_t t = t0; t < t0 + st; ++t)
    for (std::size_t i = i0; i < i0 + si; ++i)
      D(t, i) = std::min(D(t - 1, i), D(t - 1, t - 1) + 1.0);
}

struct Fw1dBuilder {
  SpawnTree& t;
  const Fw1dTypes& ty;
  std::size_t base;
  Matrix<double>* D;  // null for structure-only

  NodeId leaf(std::size_t t0, std::size_t i0, std::size_t st,
              std::size_t si) {
    const double work = double(st) * si;
    const double size = double(st) * si + 2.0 * st;
    NodeId id;
    if (D) {
      Matrix<double>* Dp = D;
      id = t.strand(work, size, "fw1d",
                    [Dp, t0, i0, st, si] { fw1d_block(*Dp, t0, i0, st, si); });
      SpawnNode& node = t.node(id);
      MatrixView<double> dv = Dp->view();
      // Reads: the row above the block and the diagonal cells
      // (t-1, t-1) for t in the block's row range.
      append_segments(node.reads, segments_of(dv.block(t0 - 1, i0, 1, si)));
      for (std::size_t k = 0; k < st; ++k) {
        const double* cell = &(*Dp)(t0 - 1 + k, t0 - 1 + k);
        node.reads.push_back(
            MemSegment{reinterpret_cast<std::uintptr_t>(cell),
                       reinterpret_cast<std::uintptr_t>(cell + 1)});
      }
      append_segments(node.writes, segments_of(dv.block(t0, i0, st, si)));
    } else {
      id = t.strand(work, size, "fw1d");
    }
    return id;
  }

  /// B task: block rows [t0, t0+st) × cols [i0, i0+si); diagonals come from
  /// elsewhere (the fire rules provide the ordering).
  NodeId build_b(std::size_t t0, std::size_t i0, std::size_t st,
                 std::size_t si) {
    if (std::max(st, si) <= base) return leaf(t0, i0, st, si);
    const std::size_t th = (st + 1) / 2, tl = st - th;
    const std::size_t ih = (si + 1) / 2, il = si - ih;
    const NodeId b00 = build_b(t0, i0, th, ih);
    const NodeId b01 = build_b(t0, i0 + ih, th, il);
    const NodeId b10 = build_b(t0 + th, i0, tl, ih);
    const NodeId b11 = build_b(t0 + th, i0 + ih, tl, il);
    return t.fire(ty.BBBB, t.par({b00, b01}), t.par({b10, b11}),
                  double(st) * si + 2.0 * st, "B");
  }

  /// A task: diagonal block rows [t0, t0+s) × cols [t0, t0+s).
  NodeId build_a(std::size_t t0, std::size_t s) {
    if (s <= base) return leaf(t0, t0, s, s);
    const std::size_t sh = (s + 1) / 2, sl = s - sh;
    const NodeId a00 = build_a(t0, sh);
    const NodeId b01 = build_b(t0, t0 + sh, sh, sl);
    const NodeId a11 = build_a(t0 + sh, sl);
    const NodeId b10 = build_b(t0 + sh, t0, sl, sh);
    const NodeId g1 = t.fire(ty.AB, a00, b01);
    const NodeId g2 = t.fire(ty.AB, a11, b10);
    return t.fire(ty.ABAB, g1, g2, double(s) * s + 2.0 * s, "A");
  }
};

}  // namespace

NodeId build_fw1d(SpawnTree& tree, const Fw1dTypes& ty, std::size_t n,
                  std::size_t base, Matrix<double>* D) {
  NDF_CHECK(n >= 1 && base >= 1);
  if (D) NDF_CHECK(D->rows() >= n + 1 && D->cols() >= n + 1);
  Fw1dBuilder b{tree, ty, base, D};
  return b.build_a(1, n);
}

SpawnTree make_fw1d_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const Fw1dTypes ty = Fw1dTypes::install(tree);
  tree.set_root(build_fw1d(tree, ty, n, base, nullptr));
  return tree;
}

void fw1d_reference(Matrix<double>& D) {
  const std::size_t n = D.rows() - 1;
  fw1d_block(D, 1, 1, n, n);
}

}  // namespace ndf
