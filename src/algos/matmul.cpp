#include "algos/matmul.hpp"

namespace ndf {

void mm_reference(MatrixView<double> A, MatrixView<double> B,
                  MatrixView<double> C, double sign, bool b_transposed) {
  const std::size_t p = C.rows(), s = C.cols(), q = A.cols();
  NDF_CHECK(A.rows() == p);
  if (b_transposed)
    NDF_CHECK(B.rows() == s && B.cols() == q);
  else
    NDF_CHECK(B.rows() == q && B.cols() == s);
  if (b_transposed) {
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < s; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < q; ++k) acc += A(i, k) * B(j, k);
        C(i, j) += sign * acc;
      }
    return;
  }
  // i-k-j order streams B and C rows (the j-inner form walks B with stride
  // equal to the backing matrix width, which is bandwidth-hostile).
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t k = 0; k < q; ++k) {
      const double a = sign * A(i, k);
      for (std::size_t j = 0; j < s; ++j) C(i, j) += a * B(k, j);
    }
}

namespace {

/// Logical quadrant (r, c) of the B operand, respecting transposition: the
/// (r, c) quadrant of Bᵀ is the (c, r) quadrant of the stored B.
MatrixView<double> b_quadrant(const MmViews& v, std::size_t q,
                              std::size_t s, int r, int c) {
  const std::size_t qh = (q + 1) / 2, sh = (s + 1) / 2;
  if (v.b_transposed)
    return v.B.block(c ? sh : 0, r ? qh : 0, c ? s - sh : sh,
                     r ? q - qh : qh);
  return v.B.block(r ? qh : 0, c ? sh : 0, r ? q - qh : qh, c ? s - sh : sh);
}

struct MmBuilder {
  SpawnTree& t;
  const LinalgTypes& ty;
  std::size_t base;
  double sign;

  NodeId build(std::size_t p, std::size_t q, std::size_t s,
               const std::optional<MmViews>& v) {
    const double work = 2.0 * double(p) * double(q) * double(s);
    const double size =
        double(p) * q + double(q) * s + double(p) * s;
    const std::size_t maxdim = std::max({p, q, s});

    // Strongly rectangular blocks (LU's tall panel updates): peel the
    // dominant dimension first so the 8-way fire shape below only ever sees
    // aspect ratios ≤ 2, which is what the Eq. (1)/(8) pedigrees assume.
    // p- and s-splits write disjoint C halves (parallel); a q-split has the
    // two halves updating the same C and uses the MM fire construct between
    // the two isomorphic subtrees.
    if (maxdim > base) {
      if (p > 2 * std::max(q, s)) {
        const std::size_t ph = (p + 1) / 2;
        auto half = [&](int hi) {
          std::optional<MmViews> sv;
          if (v)
            sv = MmViews{v->A.block(hi ? ph : 0, 0, hi ? p - ph : ph, q),
                         v->B,
                         v->C.block(hi ? ph : 0, 0, hi ? p - ph : ph, s),
                         v->b_transposed};
          return build(hi ? p - ph : ph, q, s, sv);
        };
        return t.par({half(0), half(1)}, size);
      }
      if (s > 2 * std::max(p, q)) {
        const std::size_t sh = (s + 1) / 2;
        auto half = [&](int hi) {
          std::optional<MmViews> sv;
          if (v) {
            auto Bh = v->b_transposed
                          ? v->B.block(hi ? sh : 0, 0, hi ? s - sh : sh, q)
                          : v->B.block(0, hi ? sh : 0, q, hi ? s - sh : sh);
            sv = MmViews{v->A, Bh,
                         v->C.block(0, hi ? sh : 0, p, hi ? s - sh : sh),
                         v->b_transposed};
          }
          return build(p, q, hi ? s - sh : sh, sv);
        };
        return t.par({half(0), half(1)}, size);
      }
      if (q > 2 * std::max(p, s)) {
        const std::size_t qh = (q + 1) / 2;
        auto half = [&](int hi) {
          std::optional<MmViews> sv;
          if (v) {
            auto Bh = v->b_transposed
                          ? v->B.block(0, hi ? qh : 0, s, hi ? q - qh : qh)
                          : v->B.block(hi ? qh : 0, 0, hi ? q - qh : qh, s);
            sv = MmViews{v->A.block(0, hi ? qh : 0, p, hi ? q - qh : qh), Bh,
                         v->C, v->b_transposed};
          }
          return build(p, hi ? q - qh : qh, s, sv);
        };
        return t.fire(ty.MMT, half(0), half(1), size, "MMq");
      }
    }

    if (maxdim <= base) {
      std::function<void()> body;
      NodeId id;
      if (v) {
        MmViews cv = *v;
        const double sg = sign;
        body = [cv, sg] {
          mm_reference(cv.A, cv.B, cv.C, sg, cv.b_transposed);
        };
        id = t.strand(work, size, "mm", std::move(body));
        append_segments(t.node(id).reads, segments_of(cv.A));
        append_segments(t.node(id).reads, segments_of(cv.B));
        append_segments(t.node(id).writes, segments_of(cv.C));
      } else {
        id = t.strand(work, size, "mm");
      }
      return id;
    }

    const std::size_t ph = (p + 1) / 2, qh = (q + 1) / 2, sh = (s + 1) / 2;
    // Eight sub-multiplies; half g ∈ {0,1} selects the k-range (B row half
    // / A column half), and each half covers all four C quadrants.
    auto sub = [&](int g, int ci, int cj) {
      std::optional<MmViews> sv;
      if (v) {
        sv = MmViews{
            v->A.block(ci ? ph : 0, g ? qh : 0, ci ? p - ph : ph,
                       g ? q - qh : qh),
            b_quadrant(*v, q, s, g, cj),
            v->C.block(ci ? ph : 0, cj ? sh : 0, ci ? p - ph : ph,
                       cj ? s - sh : sh),
            v->b_transposed};
      }
      return build(ci ? p - ph : ph, g ? q - qh : qh, cj ? s - sh : sh, sv);
    };
    auto half = [&](int g) {
      return t.par({t.par({sub(g, 0, 0), sub(g, 0, 1)}),
                    t.par({sub(g, 1, 0), sub(g, 1, 1)})});
    };
    const NodeId first = half(0);
    const NodeId second = half(1);
    return t.fire(ty.MMH, first, second, size, "MM");
  }
};

}  // namespace

NodeId build_mm(SpawnTree& tree, const LinalgTypes& ty, std::size_t p,
                std::size_t q, std::size_t s, std::size_t base, double sign,
                const std::optional<MmViews>& views) {
  // base >= 2 guarantees no dimension is ever split below 1 (an 8-way split
  // only happens at aspect ratio <= 2, so a unit dimension implies
  // maxdim <= 2 <= base, i.e. a leaf).
  NDF_CHECK(p >= 1 && q >= 1 && s >= 1 && base >= 2);
  if (views) {
    NDF_CHECK(views->A.rows() == p && views->A.cols() == q);
    NDF_CHECK(views->C.rows() == p && views->C.cols() == s);
  }
  MmBuilder b{tree, ty, base, sign};
  return b.build(p, q, s, views);
}

SpawnTree make_mm_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const LinalgTypes ty = LinalgTypes::install(tree);
  tree.set_root(build_mm(tree, ty, n, n, n, base, +1.0, std::nullopt));
  return tree;
}

}  // namespace ndf
