#include "algos/lcs.hpp"

#include <algorithm>

namespace ndf {

LcsTypes LcsTypes::install(SpawnTree& tree) {
  FireRules& R = tree.rules();
  LcsTypes t;
  t.HV = R.add_type("HV");
  t.VH = R.add_type("VH");
  t.H = R.add_type("H");
  t.V = R.add_type("V");

  // Eq. (18): X00 feeds X01 horizontally and X10 vertically.
  R.add_rule(t.HV, {}, t.H, {1});
  R.add_rule(t.HV, {}, t.V, {2});
  // Eq. (19) (corrected, see header): X01 feeds X11 vertically, X10
  // horizontally.
  R.add_rule(t.VH, {2, 1}, t.V, {});
  R.add_rule(t.VH, {2, 2}, t.H, {});
  // Eq. (20): horizontal refinement — the source's right-column quadrants
  // feed the sink's left-column quadrants. Within an LCS task the quadrant
  // pedigrees are X00=(1)(1), X01=(1)(2)(1), X10=(1)(2)(2), X11=(2).
  R.add_rule(t.H, {1, 2, 1}, t.H, {1, 1});
  R.add_rule(t.H, {2}, t.H, {1, 2, 2});
  // Eq. (21): vertical refinement — bottom-row quadrants feed top-row ones.
  R.add_rule(t.V, {1, 2, 2}, t.V, {1, 1});
  R.add_rule(t.V, {2}, t.V, {1, 2, 1});
  return t;
}

namespace {

/// Fills DP cells (i, j) for i in [i0, i0+si), j in [j0, j0+sj).
void lcs_block(const std::vector<int>& S, const std::vector<int>& T,
               Matrix<int>& X, std::size_t i0, std::size_t j0,
               std::size_t si, std::size_t sj) {
  for (std::size_t i = i0; i < i0 + si; ++i)
    for (std::size_t j = j0; j < j0 + sj; ++j)
      X(i, j) = S[i - 1] == T[j - 1]
                    ? X(i - 1, j - 1) + 1
                    : std::max(X(i, j - 1), X(i - 1, j));
}

struct LcsBuilder {
  SpawnTree& t;
  const LcsTypes& ty;
  std::size_t base;

  double task_size(std::size_t si, std::size_t sj) const {
    return 2.0 * double(si + sj) + 2.0;  // boundaries + sequence slices
  }

  NodeId build(std::size_t i0, std::size_t j0, std::size_t si,
               std::size_t sj, const std::optional<LcsViews>& v) {
    if (std::max(si, sj) <= base) {
      NodeId id;
      if (v) {
        LcsViews cv = *v;
        id = t.strand(double(si) * sj, task_size(si, sj), "lcs",
                      [cv, i0, j0, si, sj] {
                        lcs_block(*cv.S, *cv.T, *cv.X, i0, j0, si, sj);
                      });
        SpawnNode& node = t.node(id);
        Matrix<int>& X = *cv.X;
        // Reads: the row above (incl. the diagonal corner) and the column
        // to the left of the block.
        MatrixView<int> xv = X.view();
        append_segments(node.reads,
                        segments_of(xv.block(i0 - 1, j0 - 1, 1, sj + 1)));
        append_segments(node.reads,
                        segments_of(xv.block(i0, j0 - 1, si, 1)));
        append_segments(node.writes, segments_of(xv.block(i0, j0, si, sj)));
      } else {
        id = t.strand(double(si) * sj, task_size(si, sj), "lcs");
      }
      return id;
    }

    const std::size_t ih = (si + 1) / 2, il = si - ih;
    const std::size_t jh = (sj + 1) / 2, jl = sj - jh;
    const NodeId q00 = build(i0, j0, ih, jh, v);
    const NodeId q01 = build(i0, j0 + jh, ih, jl, v);
    const NodeId q10 = build(i0 + ih, j0, il, jh, v);
    const NodeId q11 = build(i0 + ih, j0 + jh, il, jl, v);
    const NodeId hv = t.fire(ty.HV, q00, t.par({q01, q10}));
    return t.fire(ty.VH, hv, q11, task_size(si, sj), "LCS");
  }
};

}  // namespace

NodeId build_lcs(SpawnTree& tree, const LcsTypes& ty, std::size_t n,
                 std::size_t base, const std::optional<LcsViews>& views) {
  NDF_CHECK(n >= 1 && base >= 1);
  if (views) {
    NDF_CHECK(views->S->size() >= n && views->T->size() >= n);
    NDF_CHECK(views->X->rows() >= n + 1 && views->X->cols() >= n + 1);
  }
  LcsBuilder b{tree, ty, base};
  return b.build(1, 1, n, n, views);
}

SpawnTree make_lcs_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const LcsTypes ty = LcsTypes::install(tree);
  tree.set_root(build_lcs(tree, ty, n, base, std::nullopt));
  return tree;
}

int lcs_reference(const std::vector<int>& S, const std::vector<int>& T,
                  Matrix<int>& X) {
  const std::size_t n = X.rows() - 1, m = X.cols() - 1;
  for (std::size_t i = 0; i <= n; ++i) X(i, 0) = 0;
  for (std::size_t j = 0; j <= m; ++j) X(0, j) = 0;
  lcs_block(S, T, X, 1, 1, n, m);
  return X(n, m);
}

}  // namespace ndf
