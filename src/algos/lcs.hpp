// Longest Common Subsequence in the ND model (Sec. 3, Eqs. 16–21, Fig. 11).
//
// The n×n DP table is split into quadrants; X00 fires X01 and X10 through
// the "HV" construct and the pair fires X11 through "VH"; the "H" and "V"
// types recursively refine horizontal (left→right) and vertical (top→down)
// boundary dependencies (Eqs. 20–21). NP span is Θ(n log n) (Fig. 1); ND
// span is Θ(n).
//
// Transcription note: the arXiv text prints the VH table as
// { +(1) V -, +(2) H - }, which would hang the vertical dependency on the
// X00 subtask; by Fig. 11a (X11 depends vertically on X01 and horizontally
// on X10) and by symmetry with HV we read it as
// { +(2)(1) V -, +(2)(2) H - } (the two children of the ‖ node). DESIGN.md
// records this deviation; the determinacy property test validates it.
//
// Size annotations use the linear-space footprint O(s) of a DP block (its
// boundary rows/columns plus sequence slices), which is the size model
// under which the paper's Q*(n; M) = O(n²/M) claim (Claim 1) holds.
#pragma once

#include <optional>
#include <vector>

#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

struct LcsTypes {
  FireType HV, VH, H, V;
  static LcsTypes install(SpawnTree& tree);
};

struct LcsViews {
  const std::vector<int>* S = nullptr;  ///< sequence 1 (length ≥ n)
  const std::vector<int>* T = nullptr;  ///< sequence 2 (length ≥ n)
  Matrix<int>* X = nullptr;             ///< (n+1)×(n+1) table, borders zero
};

/// Builds the LCS spawn tree over the n×n DP region (cells (1..n, 1..n)).
NodeId build_lcs(SpawnTree& tree, const LcsTypes& ty, std::size_t n,
                 std::size_t base, const std::optional<LcsViews>& views);

/// Structure-only tree for analysis.
SpawnTree make_lcs_tree(std::size_t n, std::size_t base);

/// Serial reference; fills the whole table and returns X(n, n).
int lcs_reference(const std::vector<int>& S, const std::vector<int>& T,
                  Matrix<int>& X);

}  // namespace ndf
