#include "algos/gotoh.hpp"

#include <algorithm>

namespace ndf {

namespace {

constexpr double kNegInf = -1e30;

/// Fills cells (i, j), i ∈ [i0, i0+si), j ∈ [j0, j0+sj), of all three
/// tables.
void gotoh_block(const std::vector<int>& S, const std::vector<int>& T,
                 const GotohParams& p, Matrix<double>& M, Matrix<double>& E,
                 Matrix<double>& F, std::size_t i0, std::size_t j0,
                 std::size_t si, std::size_t sj) {
  for (std::size_t i = i0; i < i0 + si; ++i)
    for (std::size_t j = j0; j < j0 + sj; ++j) {
      const double sub = S[i - 1] == T[j - 1] ? p.match : p.mismatch;
      const double best_nw =
          std::max({M(i - 1, j - 1), E(i - 1, j - 1), F(i - 1, j - 1)});
      M(i, j) = best_nw + sub;
      E(i, j) = std::max(E(i, j - 1) + p.gap_extend,
                         std::max(M(i, j - 1), F(i, j - 1)) + p.gap_open +
                             p.gap_extend);
      F(i, j) = std::max(F(i - 1, j) + p.gap_extend,
                         std::max(M(i - 1, j), E(i - 1, j)) + p.gap_open +
                             p.gap_extend);
    }
}

struct GotohBuilder {
  SpawnTree& t;
  const LcsTypes& ty;
  std::size_t base;

  double task_size(std::size_t si, std::size_t sj) const {
    // Linear-space footprint: three tables' boundaries plus sequences.
    return 6.0 * double(si + sj) + 2.0;
  }

  NodeId build(std::size_t i0, std::size_t j0, std::size_t si,
               std::size_t sj, const std::optional<GotohViews>& v) {
    if (std::max(si, sj) <= base) {
      NodeId id;
      const double work = 3.0 * double(si) * sj;
      if (v) {
        GotohViews cv = *v;
        id = t.strand(work, task_size(si, sj), "gotoh",
                      [cv, i0, j0, si, sj] {
                        gotoh_block(*cv.S, *cv.T, cv.params, *cv.M, *cv.E,
                                    *cv.F, i0, j0, si, sj);
                      });
        SpawnNode& node = t.node(id);
        for (Matrix<double>* X : {cv.M, cv.E, cv.F}) {
          MatrixView<double> xv = X->view();
          append_segments(node.reads,
                          segments_of(xv.block(i0 - 1, j0 - 1, 1, sj + 1)));
          append_segments(node.reads,
                          segments_of(xv.block(i0, j0 - 1, si, 1)));
          append_segments(node.writes,
                          segments_of(xv.block(i0, j0, si, sj)));
        }
      } else {
        id = t.strand(work, task_size(si, sj), "gotoh");
      }
      return id;
    }

    const std::size_t ih = (si + 1) / 2, il = si - ih;
    const std::size_t jh = (sj + 1) / 2, jl = sj - jh;
    const NodeId q00 = build(i0, j0, ih, jh, v);
    const NodeId q01 = build(i0, j0 + jh, ih, jl, v);
    const NodeId q10 = build(i0 + ih, j0, il, jh, v);
    const NodeId q11 = build(i0 + ih, j0 + jh, il, jl, v);
    const NodeId hv = t.fire(ty.HV, q00, t.par({q01, q10}));
    return t.fire(ty.VH, hv, q11, task_size(si, sj), "GOT");
  }
};

}  // namespace

void gotoh_init_borders(const GotohParams& p, Matrix<double>& M,
                        Matrix<double>& E, Matrix<double>& F) {
  const std::size_t n = M.rows() - 1, m = M.cols() - 1;
  M(0, 0) = 0.0;
  E(0, 0) = F(0, 0) = kNegInf;
  for (std::size_t j = 1; j <= m; ++j) {
    M(0, j) = kNegInf;
    F(0, j) = kNegInf;
    E(0, j) = p.gap_open + p.gap_extend * double(j);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    M(i, 0) = kNegInf;
    E(i, 0) = kNegInf;
    F(i, 0) = p.gap_open + p.gap_extend * double(i);
  }
}

double gotoh_reference(const std::vector<int>& S, const std::vector<int>& T,
                       const GotohParams& p, Matrix<double>& M,
                       Matrix<double>& E, Matrix<double>& F) {
  const std::size_t n = M.rows() - 1, m = M.cols() - 1;
  gotoh_init_borders(p, M, E, F);
  gotoh_block(S, T, p, M, E, F, 1, 1, n, m);
  return std::max({M(n, m), E(n, m), F(n, m)});
}

NodeId build_gotoh(SpawnTree& tree, const LcsTypes& ty, std::size_t n,
                   std::size_t base, const std::optional<GotohViews>& views) {
  NDF_CHECK(n >= 1 && base >= 1);
  if (views) {
    NDF_CHECK(views->S->size() >= n && views->T->size() >= n);
    for (Matrix<double>* X : {views->M, views->E, views->F})
      NDF_CHECK(X && X->rows() >= n + 1 && X->cols() >= n + 1);
  }
  GotohBuilder b{tree, ty, base};
  return b.build(1, 1, n, n, views);
}

SpawnTree make_gotoh_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const LcsTypes ty = LcsTypes::install(tree);
  tree.set_root(build_gotoh(tree, ty, n, base, std::nullopt));
  return tree;
}

}  // namespace ndf
