#include "algos/linalg_types.hpp"

namespace ndf {

// Pedigree conventions used below (see the builders):
//
// Multiply task (matmul.cpp): fire(MMH, G1, G2), where Gg =
// par(par(sub(g,0,0), sub(g,0,1)), par(sub(g,1,0), sub(g,1,1))) and
// sub(g,ci,cj) multiplies A(ci,g)·B(g,cj) into C(ci,cj). So within a
// multiply task, sub(g,ci,cj) is at pedigree (g+1)(ci+1)(cj+1).
//
// Left TRS task (trs.cpp): fire(T2M2T, par(pair0, pair1), par(tail0,
// tail1)) with pair_s = fire(TM, trs_s, mms_s). Strips are column halves of
// the RHS; X(r, s) (row half r, strip s) is finally produced by
// (1)(s+1)(1) for r=0 and by (2)(s+1) for r=1.
//
// Right TRS task: same shape with strips = row halves; X(s, c) (strip s,
// column half c) is produced by (1)(s+1)(1) for c=0 and (2)(s+1) for c=1.
//
// Cholesky task (cholesky.cpp): fire(CTMC, fire(CT, cho00, trsr10),
// fire(MC, mms11, cho11)).
LinalgTypes LinalgTypes::install(SpawnTree& tree) {
  FireRules& R = tree.rules();
  LinalgTypes t;
  t.MMT = R.add_type("MMT");
  t.MMH = R.add_type("MMH");
  t.MMP = R.add_type("MMP");
  t.TM = R.add_type("TM");
  t.T2M2T = R.add_type("2TM2T");
  t.MT = R.add_type("MT");
  t.MB = R.add_type("MB");
  t.TM1 = R.add_type("TM1");
  t.T2M2T1 = R.add_type("2TM2T1");
  t.MT1 = R.add_type("MT1");
  t.MA = R.add_type("MA");
  t.TB = R.add_type("TB");
  t.CT = R.add_type("CT");
  t.CTMC = R.add_type("CTMC");
  t.MC = R.add_type("MC");

  // --- MM family (refined Eq. (1)) --------------------------------------
  R.add_rule(t.MMT, {2}, t.MMH, {1});
  R.add_rule(t.MMH, {1}, t.MMP, {1});
  R.add_rule(t.MMH, {2}, t.MMP, {2});
  R.add_rule(t.MMP, {1}, t.MMT, {1});
  R.add_rule(t.MMP, {2}, t.MMT, {2});

  // --- Left TRS (Eq. (8) first table, verbatim) --------------------------
  // Sink mms sub (g,ci,cj) reads B(g, cj) = source X(g, cj).
  R.add_rule(t.TM, {1, 1, 1}, t.TM, {1, 1, 1});
  R.add_rule(t.TM, {1, 1, 1}, t.TM, {1, 2, 1});
  R.add_rule(t.TM, {1, 2, 1}, t.TM, {1, 1, 2});
  R.add_rule(t.TM, {1, 2, 1}, t.TM, {1, 2, 2});
  R.add_rule(t.TM, {2, 1}, t.TM, {2, 1, 1});
  R.add_rule(t.TM, {2, 1}, t.TM, {2, 2, 1});
  R.add_rule(t.TM, {2, 2}, t.TM, {2, 1, 2});
  R.add_rule(t.TM, {2, 2}, t.TM, {2, 2, 2});

  // Eq. (5): the trailing solve of each strip waits only on the multiply
  // that down-dates that strip.
  R.add_rule(t.T2M2T, {1, 2}, t.MT, {1});
  R.add_rule(t.T2M2T, {2, 2}, t.MT, {2});

  // MMS C → left TRS. Sink's strip-s leading solve reads C(0,s); its
  // strip-s multiply consumes C(0,s) as B and updates C(1,s); trailing
  // solves are ordered transitively by the sink's internal T2M2T.
  R.add_rule(t.MT, {2, 1, 1}, t.MT, {1, 1, 1});
  R.add_rule(t.MT, {2, 1, 1}, t.MB, {1, 1, 2});
  R.add_rule(t.MT, {2, 1, 2}, t.MT, {1, 2, 1});
  R.add_rule(t.MT, {2, 1, 2}, t.MB, {1, 2, 2});
  R.add_rule(t.MT, {2, 2, 1}, t.MMT, {1, 1, 2});
  R.add_rule(t.MT, {2, 2, 2}, t.MMT, {1, 2, 2});

  // MMS C → MMS as B-operand: sink sub (g,ci,cj) reads B(g,cj), whose
  // final producer is source sub (1,g,cj) = +(2)(g+1)(cj+1).
  R.add_rule(t.MB, {2, 1, 1}, t.MB, {1, 1, 1});
  R.add_rule(t.MB, {2, 1, 1}, t.MB, {1, 2, 1});
  R.add_rule(t.MB, {2, 1, 2}, t.MB, {1, 1, 2});
  R.add_rule(t.MB, {2, 1, 2}, t.MB, {1, 2, 2});
  R.add_rule(t.MB, {2, 2, 1}, t.MB, {2, 1, 1});
  R.add_rule(t.MB, {2, 2, 1}, t.MB, {2, 2, 1});
  R.add_rule(t.MB, {2, 2, 2}, t.MB, {2, 1, 2});
  R.add_rule(t.MB, {2, 2, 2}, t.MB, {2, 2, 2});

  // --- Right transposed TRS (the paper's TM1 family, typos fixed) --------
  // Right-TRS X → MMS' as A-operand: sink sub (g,ci,cj) reads A(ci,g),
  // produced by source's strip-ci solve (g=0) or trailing solve (g=1).
  R.add_rule(t.TM1, {1, 1, 1}, t.TM1, {1, 1, 1});
  R.add_rule(t.TM1, {1, 1, 1}, t.TM1, {1, 1, 2});
  R.add_rule(t.TM1, {1, 2, 1}, t.TM1, {1, 2, 1});
  R.add_rule(t.TM1, {1, 2, 1}, t.TM1, {1, 2, 2});
  R.add_rule(t.TM1, {2, 1}, t.TM1, {2, 1, 1});
  R.add_rule(t.TM1, {2, 1}, t.TM1, {2, 1, 2});
  R.add_rule(t.TM1, {2, 2}, t.TM1, {2, 2, 1});
  R.add_rule(t.TM1, {2, 2}, t.TM1, {2, 2, 2});

  R.add_rule(t.T2M2T1, {1, 2}, t.MT1, {1});
  R.add_rule(t.T2M2T1, {2, 2}, t.MT1, {2});

  // MMS' C → right TRS: strip-s leading solve reads C(s,0); strip-s
  // multiply consumes C(s,0) as A and updates C(s,1).
  R.add_rule(t.MT1, {2, 1, 1}, t.MT1, {1, 1, 1});
  R.add_rule(t.MT1, {2, 1, 1}, t.MA, {1, 1, 2});
  R.add_rule(t.MT1, {2, 2, 1}, t.MT1, {1, 2, 1});
  R.add_rule(t.MT1, {2, 2, 1}, t.MA, {1, 2, 2});
  R.add_rule(t.MT1, {2, 1, 2}, t.MMT, {1, 1, 2});
  R.add_rule(t.MT1, {2, 2, 2}, t.MMT, {1, 2, 2});

  // MMS C → MMS as A-operand: sink sub (g,ci,cj) reads A(ci,g), produced
  // by source sub (1,ci,g) = +(2)(ci+1)(g+1).
  R.add_rule(t.MA, {2, 1, 1}, t.MA, {1, 1, 1});
  R.add_rule(t.MA, {2, 1, 1}, t.MA, {1, 1, 2});
  R.add_rule(t.MA, {2, 1, 2}, t.MA, {2, 1, 1});
  R.add_rule(t.MA, {2, 1, 2}, t.MA, {2, 1, 2});
  R.add_rule(t.MA, {2, 2, 1}, t.MA, {1, 2, 1});
  R.add_rule(t.MA, {2, 2, 1}, t.MA, {1, 2, 2});
  R.add_rule(t.MA, {2, 2, 2}, t.MA, {2, 2, 1});
  R.add_rule(t.MA, {2, 2, 2}, t.MA, {2, 2, 2});

  // Right-TRS X → MMS' as transposed B-operand: sink sub (g,ci,cj) reads
  // the stored-B block (cj, g) of X.
  R.add_rule(t.TB, {1, 1, 1}, t.TB, {1, 1, 1});
  R.add_rule(t.TB, {1, 1, 1}, t.TB, {1, 2, 1});
  R.add_rule(t.TB, {1, 2, 1}, t.TB, {1, 1, 2});
  R.add_rule(t.TB, {1, 2, 1}, t.TB, {1, 2, 2});
  R.add_rule(t.TB, {2, 1}, t.TB, {2, 1, 1});
  R.add_rule(t.TB, {2, 1}, t.TB, {2, 2, 1});
  R.add_rule(t.TB, {2, 2}, t.TB, {2, 1, 2});
  R.add_rule(t.TB, {2, 2}, t.TB, {2, 2, 2});

  // --- Cholesky ----------------------------------------------------------
  // CHO L → right TRS: the solve subtasks read L00.00, the multiply
  // subtasks read L00.10 (as transposed B), the trailing solves L00.11.
  R.add_rule(t.CT, {1, 1}, t.CT, {1, 1, 1});
  R.add_rule(t.CT, {1, 1}, t.CT, {1, 2, 1});
  R.add_rule(t.CT, {1, 2}, t.TB, {1, 1, 2});
  R.add_rule(t.CT, {1, 2}, t.TB, {1, 2, 2});
  R.add_rule(t.CT, {2, 2}, t.CT, {2, 1});
  R.add_rule(t.CT, {2, 2}, t.CT, {2, 2});

  // (CHO ~CT~> TRS) → (MMS' ~MC~> CHO): the symmetric down-date consumes
  // L10 as both its A and its (transposed) B operand — the paper's "TM2 =
  // TM ∪ TM1" union, spelled out.
  R.add_rule(t.CTMC, {2}, t.TM1, {1});
  R.add_rule(t.CTMC, {2}, t.TB, {1});

  // MMS' C (= A11) → CHO: leading factor reads A11.00; the sink's solve
  // reads A11.10 as RHS; the sink's down-date shares A11.11 with the
  // source's last writers.
  R.add_rule(t.MC, {2, 1, 1}, t.MC, {1, 1});
  R.add_rule(t.MC, {2, 2, 1}, t.MT1, {1, 2});
  R.add_rule(t.MC, {2, 2, 2}, t.MMT, {2, 1});

  return t;
}

}  // namespace ndf
