#include "algos/lu.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "algos/matmul.hpp"
#include "algos/trs.hpp"

namespace ndf {

namespace {

/// Partial-pivot LU on the panel rows [row0, n) × cols [col0, col0+c) of
/// the full matrix A; swaps are confined to the panel's own columns (the
/// enclosing spawn tree applies them elsewhere) and recorded globally.
void lu_panel(MatrixView<double> A, std::vector<int>& ipiv, std::size_t row0,
              std::size_t col0, std::size_t c) {
  const std::size_t n = A.rows();
  for (std::size_t j = 0; j < c; ++j) {
    const std::size_t pr = row0 + j;   // pivot row position
    const std::size_t pc = col0 + j;   // pivot column
    if (pr >= n) break;
    std::size_t best = pr;
    double bestv = std::abs(A(pr, pc));
    for (std::size_t i = pr + 1; i < n; ++i)
      if (std::abs(A(i, pc)) > bestv) {
        bestv = std::abs(A(i, pc));
        best = i;
      }
    ipiv[pr] = static_cast<int>(best);
    if (best != pr)
      for (std::size_t k = col0; k < col0 + c; ++k)
        std::swap(A(pr, k), A(best, k));
    const double piv = A(pr, pc);
    NDF_CHECK_MSG(piv != 0.0, "singular pivot at column " << pc);
    for (std::size_t i = pr + 1; i < n; ++i) {
      const double l = A(i, pc) / piv;
      A(i, pc) = l;
      for (std::size_t k = pc + 1; k < col0 + c; ++k)
        A(i, k) -= l * A(pr, k);
    }
  }
}

struct LuBuilder {
  SpawnTree& t;
  const LinalgTypes& ty;
  std::size_t n;  ///< full matrix dimension (rows)
  std::size_t base;

  /// Parallel panel factorization on rows [col0, n) × cols
  /// [col0, col0+c): per column, a parallel chunked pivot search, a
  /// log-depth reduction tree, the row swap, then parallel row updates.
  /// This is what keeps the paper's O(m log n) span: a serial panel strand
  /// would put Θ(r·c²) on the critical path.
  NodeId build_panel(std::size_t col0, std::size_t c,
                     const std::optional<LuViews>& v) {
    using Cand = std::pair<double, std::size_t>;  // |value|, row
    const std::size_t rows0 = n - col0;
    const std::size_t maxchunks = (rows0 + base - 1) / base;
    std::shared_ptr<std::vector<Cand>> scratch;
    if (v) scratch = std::make_shared<std::vector<Cand>>(maxchunks);

    std::vector<NodeId> cols;
    for (std::size_t j = 0; j < c; ++j) {
      const std::size_t pr = col0 + j, pc = col0 + j;
      const std::size_t rows = n - pr;
      const std::size_t nchunks = (rows + base - 1) / base;
      std::vector<NodeId> steps;

      // 1) Chunked pivot scan of column pc over rows [pr, n).
      std::vector<NodeId> scans;
      for (std::size_t k = 0; k < nchunks; ++k) {
        const std::size_t lo = pr + k * base;
        const std::size_t len = std::min(base, n - lo);
        NodeId s;
        if (v) {
          LuViews cv = *v;
          auto sc = scratch;
          s = t.strand(double(len), double(len) + 1.0, "piv_scan",
                       [cv, sc, k, lo, len, pc] {
                         Cand best{std::abs(cv.A(lo, pc)), lo};
                         for (std::size_t i = lo + 1; i < lo + len; ++i) {
                           const double a = std::abs(cv.A(i, pc));
                           if (a > best.first) best = {a, i};
                         }
                         (*sc)[k] = best;
                       });
          append_segments(t.node(s).reads,
                          segments_of(cv.A.block(lo, pc, len, 1)));
        } else {
          s = t.strand(double(len), double(len) + 1.0, "piv_scan");
        }
        scans.push_back(s);
      }
      steps.push_back(scans.size() > 1 ? t.par(std::move(scans))
                                       : scans[0]);

      // 2) Log-depth reduction to scratch[0] (left priority ties match the
      // serial first-maximum rule).
      for (std::size_t stride = 1; stride < nchunks; stride *= 2) {
        std::vector<NodeId> lvl;
        for (std::size_t i = 0; i + stride < nchunks; i += 2 * stride) {
          NodeId s;
          if (v) {
            auto sc = scratch;
            const std::size_t a = i, b2 = i + stride;
            s = t.strand(1.0, 2.0, "piv_red", [sc, a, b2] {
              if ((*sc)[b2].first > (*sc)[a].first) (*sc)[a] = (*sc)[b2];
            });
          } else {
            s = t.strand(1.0, 2.0, "piv_red");
          }
          lvl.push_back(s);
        }
        steps.push_back(lvl.size() > 1 ? t.par(std::move(lvl)) : lvl[0]);
      }

      // 3) Record the pivot and swap rows pr ↔ best over the panel columns.
      {
        NodeId s;
        if (v) {
          LuViews cv = *v;
          auto sc = scratch;
          s = t.strand(double(c) + 1.0, 2.0 * c + 1.0, "piv_swap",
                       [cv, sc, pr, col0, c, pc] {
                         const std::size_t best = (*sc)[0].second;
                         (*cv.ipiv)[pr] = static_cast<int>(best);
                         if (best != pr)
                           for (std::size_t k = col0; k < col0 + c; ++k)
                             std::swap(cv.A(pr, k), cv.A(best, k));
                         NDF_CHECK_MSG(cv.A(pr, pc) != 0.0,
                                       "singular pivot at column " << pc);
                       });
          // Conservative: the pivot row is data dependent.
          auto span_rows = cv.A.block(pr, col0, n - pr, c);
          append_segments(t.node(s).reads, segments_of(span_rows));
          append_segments(t.node(s).writes, segments_of(span_rows));
        } else {
          s = t.strand(double(c) + 1.0, 2.0 * c + 1.0, "piv_swap");
        }
        steps.push_back(s);
      }

      // 4) Parallel elimination below the pivot row, within the panel.
      if (pr + 1 < n) {
        std::vector<NodeId> upds;
        const std::size_t w = col0 + c - pc;  // columns pc..col0+c
        for (std::size_t lo = pr + 1; lo < n; lo += base) {
          const std::size_t len = std::min(base, n - lo);
          NodeId s;
          if (v) {
            LuViews cv = *v;
            s = t.strand(double(len) * w, double(len) * w + w, "piv_upd",
                         [cv, lo, len, pr, pc, col0, c] {
                           const double piv = cv.A(pr, pc);
                           for (std::size_t i = lo; i < lo + len; ++i) {
                             const double l = cv.A(i, pc) / piv;
                             cv.A(i, pc) = l;
                             for (std::size_t k = pc + 1; k < col0 + c; ++k)
                               cv.A(i, k) -= l * cv.A(pr, k);
                           }
                         });
            append_segments(t.node(s).reads,
                            segments_of(cv.A.block(pr, pc, 1, w)));
            append_segments(t.node(s).writes,
                            segments_of(cv.A.block(lo, pc, len, w)));
          } else {
            s = t.strand(double(len) * w, double(len) * w + w, "piv_upd");
          }
          upds.push_back(s);
        }
        steps.push_back(upds.size() > 1 ? t.par(std::move(upds)) : upds[0]);
      }

      cols.push_back(steps.size() > 1
                         ? t.seq(std::move(steps), double(rows) * (c - j) + 1)
                         : steps[0]);
    }
    if (cols.size() == 1) return cols[0];
    return t.seq(std::move(cols), double(rows0) * c, "panel");
  }

  /// Strand applying swaps ipiv[k0..k1) to columns [c0, c0+w).
  NodeId pivot_chunk(std::size_t k0, std::size_t k1, std::size_t c0,
                     std::size_t w, const std::optional<LuViews>& v) {
    const double work = double(k1 - k0) * w + 1.0;
    const double size = double(n - k0) * w + 1.0;
    if (!v) return t.strand(work, size, "piv");
    LuViews cv = *v;
    NodeId id = t.strand(work, size, "piv", [cv, k0, k1, c0, w] {
      apply_pivots(cv.A, *cv.ipiv, k0, k1, c0, c0 + w);
    });
    auto touched = cv.A.block(k0, c0, n - k0, w);
    append_segments(t.node(id).reads, segments_of(touched));
    append_segments(t.node(id).writes, segments_of(touched));
    return id;
  }

  /// Parallel pivot application over base-width column chunks.
  NodeId pivot_task(std::size_t k0, std::size_t k1, std::size_t c0,
                    std::size_t c1, const std::optional<LuViews>& v) {
    std::vector<NodeId> chunks;
    for (std::size_t c = c0; c < c1; c += base)
      chunks.push_back(pivot_chunk(k0, k1, c, std::min(base, c1 - c), v));
    if (chunks.size() == 1) return chunks[0];
    return t.par(std::move(chunks),
                 double(n - k0) * double(c1 - c0) + 1.0, "PIV");
  }

  /// Spawn tree for the instance on columns [col0, col0+c), rows [col0, n).
  NodeId build(std::size_t col0, std::size_t c,
               const std::optional<LuViews>& v) {
    const double r = double(n - col0);
    if (c <= base) return build_panel(col0, c, v);

    const std::size_t ch = (c + 1) / 2, cl = c - ch;
    const std::size_t mid = col0 + ch;

    const NodeId left = build(col0, ch, v);

    // Apply left-half swaps to the right-half columns, in parallel over
    // base-width column chunks (a monolithic pivot strand would put its
    // whole r·c work on the critical path).
    const NodeId piv_r =
        pivot_task(col0, mid, mid, col0 + c, v);

    // U01 ← L00⁻¹ A01 (unit-diagonal TRS), A11 −= L10·U01 (tall MMS),
    // composed with the ND fire construct TM just like inside TRS.
    std::optional<TrsViews> tv;
    std::optional<MmViews> mv;
    if (v) {
      auto L00 = v->A.block(col0, col0, ch, ch);
      auto A01 = v->A.block(col0, mid, ch, cl);
      auto L10 = v->A.block(mid, col0, n - mid, ch);
      auto A11 = v->A.block(mid, mid, n - mid, cl);
      tv = TrsViews{L00, A01, /*unit_diag=*/true};
      mv = MmViews{L10, A01, A11, false};
    }
    // The update MMS is strongly rectangular (tall), so its spawn tree may
    // p-split and no longer match the TM table's 8-way shape; Toledo's
    // LU-level composition is serial anyway (pivoting), so compose with
    // ";". The ND gains inside TRS/MMS remain.
    const NodeId trs =
        build_trs(t, ty, TrsSide::LeftLower, ch, cl, base, tv);
    const NodeId mms = build_mm(t, ty, n - mid, ch, cl, base, -1.0, mv);
    const NodeId upd = t.seq({trs, mms});

    const NodeId trail = build(mid, cl, v);

    // Apply trailing swaps back to the left half's bottom rows.
    const NodeId piv_l = pivot_task(mid, col0 + c, col0, mid, v);

    const double size = r * double(c);
    return t.seq({left, piv_r, upd, trail, piv_l}, size, "LU");
  }
};

}  // namespace

void lu_reference(MatrixView<double> A, std::vector<int>& ipiv) {
  const std::size_t n = A.rows();
  NDF_CHECK(A.cols() == n);
  ipiv.assign(n, 0);
  lu_panel(A, ipiv, 0, 0, n);
}

void apply_pivots(MatrixView<double> A, const std::vector<int>& ipiv,
                  std::size_t k0, std::size_t k1, std::size_t c0,
                  std::size_t c1) {
  for (std::size_t k = k0; k < k1 && k < A.rows(); ++k) {
    const std::size_t p = static_cast<std::size_t>(ipiv[k]);
    if (p != k)
      for (std::size_t c = c0; c < c1; ++c) std::swap(A(k, c), A(p, c));
  }
}

NodeId build_lu(SpawnTree& tree, const LinalgTypes& ty, std::size_t n,
                std::size_t base, const std::optional<LuViews>& views) {
  NDF_CHECK(n >= 1 && base >= 2);
  if (views) {
    NDF_CHECK(views->A.rows() == n && views->A.cols() == n);
    NDF_CHECK(views->ipiv != nullptr);
    views->ipiv->assign(n, 0);
  }
  LuBuilder b{tree, ty, n, base};
  return b.build(0, n, views);
}

SpawnTree make_lu_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const LinalgTypes ty = LinalgTypes::install(tree);
  tree.set_root(build_lu(tree, ty, n, base, std::nullopt));
  return tree;
}

}  // namespace ndf
