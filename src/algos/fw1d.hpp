// 1-D Floyd-Warshall (Sec. 3, Eq. 13–15, Fig. 10) — the synthetic dynamic
// programming benchmark from [50] whose dependency pattern mirrors the
// Floyd-Warshall APSP inner structure:
//
//     d(t, i) = d(t-1, i) ⊕ d(t-1, t-1)
//
// We instantiate ⊕ as min(d(t-1,i), d(t-1,t-1) + 1), which exercises the
// identical dataflow. The A/B task recursion of Eq. (14) carries the
// diagonal dependency through the AB/ABAB/BA/BB fire tables; the NP
// lowering has span Θ(n log n) while the ND span is the optimal Θ(n)
// (Eq. 15).
#pragma once

#include <optional>

#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

// Fire types (derived from the cell-level recurrence; the arXiv tables are
// a subset and leave two relations implicit — see fw1d.cpp):
//   AB  : A-task → same-rows B-task (diagonal values)
//   ABAB: first half-step → second half-step of an A-task
//   DA  : a diagonal task's LAST diagonal cell → the first row of the task
//         below it (the boundary d(t-1, t-1) read by row t)
//   VVA : A-shaped task → the same-column task below (row t-1 values)
//   VVB : B-shaped task → the same-column task below (the paper's "BB")
//   BBBB: the two row-halves of a B-task (positional, per the paper)
struct Fw1dTypes {
  FireType AB, ABAB, DA, VVA, VVB, BBBB;
  static Fw1dTypes install(SpawnTree& tree);
};

/// Builds the FW1D spawn tree over cells (t, i), t,i ∈ [1, n], of an
/// (n+1)×(n+1) table whose row 0 and column 0 hold the initial values.
NodeId build_fw1d(SpawnTree& tree, const Fw1dTypes& ty, std::size_t n,
                  std::size_t base, Matrix<double>* D);

/// Structure-only tree for analysis.
SpawnTree make_fw1d_tree(std::size_t n, std::size_t base);

/// Serial reference over the same table layout.
void fw1d_reference(Matrix<double>& D);

}  // namespace ndf
