// Divide-and-conquer matrix multiply-accumulate C ±= A·B in the ND model
// (Sec. 2): the 2-way algorithm splits all three dimensions, runs the four
// products into distinct C quadrants of each half in parallel, and connects
// the two halves (which write the same C quadrants) with the "MM" fire
// construct of Eq. (1) instead of a full serial barrier.
//
// The builder is shared by MM (sign=+1) and MMS (sign=-1, Sec. 3), supports
// rectangular operands (needed by LU), and an optional transposed-B variant
// (C ±= A·Bᵀ, needed by Cholesky's L10·L10ᵀ update).
#pragma once

#include <optional>

#include "algos/linalg_types.hpp"
#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

/// Operand bindings for an executable multiply. A is p×q, C is p×s; B is
/// q×s, or s×q when b_transposed (in which case the logical operand is Bᵀ).
struct MmViews {
  MatrixView<double> A, B, C;
  bool b_transposed = false;
};

/// Builds the spawn tree of C ±= A·B for logical dimensions (p, q, s).
/// If `views` is set, strands carry executable kernels and declared
/// read/write footprints. Returns the root node id (the caller composes it
/// further or calls tree.set_root()).
NodeId build_mm(SpawnTree& tree, const LinalgTypes& ty, std::size_t p,
                std::size_t q, std::size_t s, std::size_t base, double sign,
                const std::optional<MmViews>& views);

/// Convenience: square n×n×n structure-only tree (for analysis).
SpawnTree make_mm_tree(std::size_t n, std::size_t base);

/// Serial reference kernel: C += sign · A·B (or A·Bᵀ).
void mm_reference(MatrixView<double> A, MatrixView<double> B,
                  MatrixView<double> C, double sign, bool b_transposed = false);

}  // namespace ndf
