// Triangular system solver in the ND model (Sec. 3, Eq. 4, Figs. 6–8).
//
// TRS(T, B) solves T·X = B for lower-triangular T, overwriting B with X.
// The 2-way decomposition (Eq. 2) yields, per recursion level, two
// (TRS ~TM~> MMS) pairs in parallel, connected to the two trailing TRS
// subtasks by the "2TM2T" fire construct (Eq. 5); TM/MT refine recursively
// per Eq. (8). In NP mode (serial elision) the same tree has span
// Θ(n log n); in ND mode the span is Θ(n) (Fig. 8).
//
// The RightLowerT variant solves X·Lᵀ = B (same dependence structure with
// rows and columns exchanged); Cholesky uses it for L10 ← A10·L00⁻ᵀ, the
// paper's "TRS(L00, A10ᵀ)ᵀ".
#pragma once

#include <optional>

#include "algos/linalg_types.hpp"
#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

enum class TrsSide {
  LeftLower,   ///< T·X = B,  T is n×n lower, B is n×m
  RightLowerT  ///< X·Lᵀ = B, L is k×k lower, B is m×k
};

struct TrsViews {
  MatrixView<double> T;  ///< the triangular factor (lower)
  MatrixView<double> B;  ///< right-hand side, overwritten with X
  bool unit_diag = false;  ///< treat diag(T) as ones (LU's L factor)
};

/// Builds the TRS spawn tree; strands get kernels iff `views` is bound.
NodeId build_trs(SpawnTree& tree, const LinalgTypes& ty, TrsSide side,
                 std::size_t n, std::size_t m, std::size_t base,
                 const std::optional<TrsViews>& views);

/// Square n×n structure-only tree (for analysis), LeftLower side.
SpawnTree make_trs_tree(std::size_t n, std::size_t base);

/// Serial reference solvers (in-place on B).
void trs_reference(TrsSide side, MatrixView<double> T, MatrixView<double> B,
                   bool unit_diag = false);

}  // namespace ndf
