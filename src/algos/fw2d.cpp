#include "algos/fw2d.hpp"

#include <algorithm>

namespace ndf {

void fw2d_reference(Matrix<double>& D) {
  const std::size_t n = D.rows();
  NDF_CHECK(D.cols() == n);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        D(i, j) = std::min(D(i, j), D(i, k) + D(k, j));
}

namespace {

using View = MatrixView<double>;

/// min-plus kernel: X(i,j) = min(X(i,j), U(i,k) + V(k,j)), where the k
/// index runs over U's columns. A/B/C leaves pass aliased views (e.g. the
/// classic A leaf is X=U=V with the k-loop outermost).
void fw_leaf(View X, View U, View V) {
  const std::size_t q = U.cols();
  for (std::size_t k = 0; k < q; ++k)
    for (std::size_t i = 0; i < X.rows(); ++i)
      for (std::size_t j = 0; j < X.cols(); ++j)
        X(i, j) = std::min(X(i, j), U(i, k) + V(k, j));
}

struct Fw2dBuilder {
  SpawnTree& t;
  std::size_t base;
  bool exec;

  double task_size(char kind, std::size_t s) const {
    const double s2 = double(s) * s;
    switch (kind) {
      case 'A': return s2 + 1.0;
      case 'B':
      case 'C': return 2.0 * s2 + 1.0;
      default: return 3.0 * s2 + 1.0;
    }
  }

  NodeId leaf(char kind, std::size_t s, const std::optional<View>& X,
              const std::optional<View>& U, const std::optional<View>& V) {
    const double work = double(s) * s * s;
    if (exec) {
      View x = *X, u = *U, v = *V;
      NodeId id = t.strand(work, task_size(kind, s), "fw",
                           [x, u, v] { fw_leaf(x, u, v); });
      SpawnNode& node = t.node(id);
      append_segments(node.reads, segments_of(u));
      append_segments(node.reads, segments_of(v));
      append_segments(node.writes, segments_of(x));
      return id;
    }
    return t.strand(work, task_size(kind, s), "fw");
  }

  std::optional<View> quad(const std::optional<View>& v, int r, int c) {
    if (!v) return std::nullopt;
    const std::size_t h = (v->rows() + 1) / 2;
    const std::size_t w = (v->cols() + 1) / 2;
    return v->block(r ? h : 0, c ? w : 0, r ? v->rows() - h : h,
                    c ? v->cols() - w : w);
  }

  // A(X): diagonal block.
  NodeId build_a(std::size_t s, const std::optional<View>& X) {
    if (s <= base) return leaf('A', s, X, X, X);
    const std::size_t sh = (s + 1) / 2, sl = s - sh;
    auto X00 = quad(X, 0, 0), X01 = quad(X, 0, 1), X10 = quad(X, 1, 0),
         X11 = quad(X, 1, 1);
    const NodeId a1 = build_a(sh, X00);
    const NodeId bc1 = t.par({build_b(sh, sl, X01, X00),
                              build_c(sl, sh, X10, X00)});
    const NodeId d1 = build_d(sl, sh, sl, X11, X10, X01);
    const NodeId a2 = build_a(sl, X11);
    const NodeId bc2 = t.par({build_b(sl, sh, X10, X11),
                              build_c(sh, sl, X01, X11)});
    const NodeId d2 = build_d(sh, sl, sh, X00, X01, X10);
    return t.seq({a1, bc1, d1, a2, bc2, d2}, task_size('A', s), "fwA");
  }

  // B(X, U): X shares rows with the diagonal block U; X is r×c, U is r×r.
  NodeId build_b(std::size_t r, std::size_t c, const std::optional<View>& X,
                 const std::optional<View>& U) {
    if (std::max(r, c) <= base) return leaf('B', std::max(r, c), X, U, X);
    const std::size_t rh = (r + 1) / 2, rl = r - rh;
    const std::size_t ch = (c + 1) / 2, cl = c - ch;
    auto X00 = quad(X, 0, 0), X01 = quad(X, 0, 1), X10 = quad(X, 1, 0),
         X11 = quad(X, 1, 1);
    auto U00 = quad(U, 0, 0), U01 = quad(U, 0, 1), U10 = quad(U, 1, 0),
         U11 = quad(U, 1, 1);
    const NodeId s1 = t.par({build_b(rh, ch, X00, U00),
                             build_b(rh, cl, X01, U00)});
    const NodeId s2 = t.par({build_d(rl, rh, ch, X10, U10, X00),
                             build_d(rl, rh, cl, X11, U10, X01)});
    const NodeId s3 = t.par({build_b(rl, ch, X10, U11),
                             build_b(rl, cl, X11, U11)});
    const NodeId s4 = t.par({build_d(rh, rl, ch, X00, U01, X10),
                             build_d(rh, rl, cl, X01, U01, X11)});
    return t.seq({s1, s2, s3, s4}, task_size('B', std::max(r, c)), "fwB");
  }

  // C(X, V): X shares columns with the diagonal block V; X is r×c, V c×c.
  NodeId build_c(std::size_t r, std::size_t c, const std::optional<View>& X,
                 const std::optional<View>& V) {
    if (std::max(r, c) <= base) return leaf('C', std::max(r, c), X, X, V);
    auto X00 = quad(X, 0, 0), X01 = quad(X, 0, 1), X10 = quad(X, 1, 0),
         X11 = quad(X, 1, 1);
    auto V00 = quad(V, 0, 0), V01 = quad(V, 0, 1), V10 = quad(V, 1, 0),
         V11 = quad(V, 1, 1);
    const std::size_t rh = (r + 1) / 2, rl = r - rh;
    const std::size_t ch = (c + 1) / 2, cl = c - ch;
    const NodeId s1 = t.par({build_c(rh, ch, X00, V00),
                             build_c(rl, ch, X10, V00)});
    const NodeId s2 = t.par({build_d(rh, ch, cl, X01, X00, V01),
                             build_d(rl, ch, cl, X11, X10, V01)});
    const NodeId s3 = t.par({build_c(rh, cl, X01, V11),
                             build_c(rl, cl, X11, V11)});
    const NodeId s4 = t.par({build_d(rh, cl, ch, X00, X01, V10),
                             build_d(rl, cl, ch, X10, X11, V10)});
    return t.seq({s1, s2, s3, s4}, task_size('C', std::max(r, c)), "fwC");
  }

  // D(X, U, V): X is r×c, U is r×q, V is q×c, all disjoint k-ranges.
  NodeId build_d(std::size_t r, std::size_t q, std::size_t c,
                 const std::optional<View>& X, const std::optional<View>& U,
                 const std::optional<View>& V) {
    if (std::max({r, q, c}) <= base)
      return leaf('D', std::max({r, q, c}), X, U, V);
    auto X00 = quad(X, 0, 0), X01 = quad(X, 0, 1), X10 = quad(X, 1, 0),
         X11 = quad(X, 1, 1);
    auto U00 = quad(U, 0, 0), U01 = quad(U, 0, 1), U10 = quad(U, 1, 0),
         U11 = quad(U, 1, 1);
    auto V00 = quad(V, 0, 0), V01 = quad(V, 0, 1), V10 = quad(V, 1, 0),
         V11 = quad(V, 1, 1);
    const std::size_t rh = (r + 1) / 2, rl = r - rh;
    const std::size_t qh = (q + 1) / 2, ql = q - qh;
    const std::size_t ch = (c + 1) / 2, cl = c - ch;
    const NodeId g1 =
        t.par({t.par({build_d(rh, qh, ch, X00, U00, V00),
                      build_d(rh, qh, cl, X01, U00, V01)}),
               t.par({build_d(rl, qh, ch, X10, U10, V00),
                      build_d(rl, qh, cl, X11, U10, V01)})});
    const NodeId g2 =
        t.par({t.par({build_d(rh, ql, ch, X00, U01, V10),
                      build_d(rh, ql, cl, X01, U01, V11)}),
               t.par({build_d(rl, ql, ch, X10, U11, V10),
                      build_d(rl, ql, cl, X11, U11, V11)})});
    return t.seq({g1, g2}, task_size('D', std::max({r, q, c})), "fwD");
  }
};

}  // namespace

NodeId build_fw2d_np(SpawnTree& tree, std::size_t n, std::size_t base,
                     Matrix<double>* D) {
  NDF_CHECK(n >= 1 && base >= 2);
  std::optional<View> X;
  if (D) {
    NDF_CHECK(D->rows() == n && D->cols() == n);
    X = D->view();
  }
  Fw2dBuilder b{tree, base, D != nullptr};
  return b.build_a(n, X);
}

SpawnTree make_fw2d_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  tree.set_root(build_fw2d_np(tree, n, base, nullptr));
  return tree;
}

}  // namespace ndf
