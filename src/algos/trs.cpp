#include "algos/trs.hpp"

#include "algos/matmul.hpp"

namespace ndf {

void trs_reference(TrsSide side, MatrixView<double> T, MatrixView<double> B,
                   bool unit_diag) {
  if (side == TrsSide::LeftLower) {
    const std::size_t n = T.rows(), m = B.cols();
    NDF_CHECK(T.cols() == n && B.rows() == n);
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        double acc = B(i, j);
        for (std::size_t k = 0; k < i; ++k) acc -= T(i, k) * B(k, j);
        B(i, j) = unit_diag ? acc : acc / T(i, i);
      }
  } else {
    const std::size_t k = T.rows(), m = B.rows();
    NDF_CHECK(T.cols() == k && B.cols() == k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < k; ++j) {
        double acc = B(i, j);
        for (std::size_t l = 0; l < j; ++l) acc -= B(i, l) * T(j, l);
        B(i, j) = unit_diag ? acc : acc / T(j, j);
      }
  }
}

namespace {

struct TrsBuilder {
  SpawnTree& t;
  const LinalgTypes& ty;
  TrsSide side;
  std::size_t base;

  double leaf_work(std::size_t n, std::size_t m) const {
    return double(n) * n * m;  // triangular substitution flops (≈ n²m)
  }
  double task_size(std::size_t n, std::size_t m) const {
    return 0.5 * double(n) * n + double(n) * m;  // triangle + RHS
  }

  NodeId build(std::size_t n, std::size_t m,
               const std::optional<TrsViews>& v) {
    if (std::max(n, m) <= base) {
      NodeId id;
      if (v) {
        TrsViews cv = *v;
        const TrsSide s = side;
        id = t.strand(leaf_work(n, m), task_size(n, m), "trs",
                      [cv, s] { trs_reference(s, cv.T, cv.B, cv.unit_diag); });
        append_segments(t.node(id).reads, segments_of(cv.T));
        append_segments(t.node(id).writes, segments_of(cv.B));
      } else {
        id = t.strand(leaf_work(n, m), task_size(n, m), "trs");
      }
      return id;
    }

    const std::size_t nh = (n + 1) / 2, nl = n - nh;
    const std::size_t mh = (m + 1) / 2, ml = m - mh;

    // Triangle quadrants (shared by both sides; for RightLowerT the roles
    // of B's rows/columns are exchanged below).
    std::optional<MatrixView<double>> T00, T10, T11;
    if (v) {
      T00 = v->T.block(0, 0, nh, nh);
      T10 = v->T.block(nh, 0, nl, nh);
      T11 = v->T.block(nh, nh, nl, nl);
    }

    // One (TRS ~TM~> MMS) pair: solve the leading part of one RHS strip,
    // then down-date the trailing part of the same strip.
    auto pair = [&](int strip) {
      std::optional<TrsViews> tv;
      std::optional<MmViews> mv;
      std::size_t pn, pm;  // dimensions of the leading sub-TRS
      if (side == TrsSide::LeftLower) {
        pn = nh;
        pm = strip ? ml : mh;
        if (v) {
          auto Btop = v->B.block(0, strip ? mh : 0, nh, pm);
          auto Bbot = v->B.block(nh, strip ? mh : 0, nl, pm);
          tv = TrsViews{*T00, Btop, v->unit_diag};
          mv = MmViews{*T10, Btop, Bbot, false};  // Bbot -= T10·X(top)
        }
        const NodeId trs = build(pn, pm, tv);
        const NodeId mms =
            build_mm(t, ty, nl, nh, pm, base, -1.0, mv);
        return t.fire(ty.TM, trs, mms);  // left variant: X feeds B-operand
      }
      // RightLowerT: strips are row blocks of B; X00·L00ᵀ = B00 then
      // B01 -= X00·L10ᵀ.
      pn = nh;
      pm = strip ? ml : mh;
      if (v) {
        auto Bleft = v->B.block(strip ? mh : 0, 0, pm, nh);
        auto Bright = v->B.block(strip ? mh : 0, nh, pm, nl);
        tv = TrsViews{*T00, Bleft, v->unit_diag};
        mv = MmViews{Bleft, *T10, Bright, true};  // Bright -= X·L10ᵀ
      }
      const NodeId trs = build(pn, pm, tv);
      const NodeId mms = build_mm(t, ty, pm, nh, nl, base, -1.0, mv);
      return t.fire(ty.TM1, trs, mms);  // right variant: X feeds A-operand
    };

    const NodeId src = t.par({pair(0), pair(1)});

    // Trailing solves with T11 on the down-dated strips.
    auto tail = [&](int strip) {
      std::optional<TrsViews> tv;
      std::size_t pm = strip ? ml : mh;
      if (v) {
        auto Bv = side == TrsSide::LeftLower
                      ? v->B.block(nh, strip ? mh : 0, nl, pm)
                      : v->B.block(strip ? mh : 0, nh, pm, nl);
        tv = TrsViews{*T11, Bv, v->unit_diag};
      }
      return build(nl, pm, tv);
    };
    const NodeId snk = t.par({tail(0), tail(1)});

    return t.fire(side == TrsSide::LeftLower ? ty.T2M2T : ty.T2M2T1, src,
                  snk, task_size(n, m), "TRS");
  }
};

}  // namespace

NodeId build_trs(SpawnTree& tree, const LinalgTypes& ty, TrsSide side,
                 std::size_t n, std::size_t m, std::size_t base,
                 const std::optional<TrsViews>& views) {
  NDF_CHECK(n >= 1 && m >= 1 && base >= 1);
  if (views) {
    NDF_CHECK(views->T.rows() == n && views->T.cols() == n);
    if (side == TrsSide::LeftLower)
      NDF_CHECK(views->B.rows() == n && views->B.cols() == m);
    else
      NDF_CHECK(views->B.rows() == m && views->B.cols() == n);
  }
  TrsBuilder b{tree, ty, side, base};
  return b.build(n, m, views);
}

SpawnTree make_trs_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const LinalgTypes ty = LinalgTypes::install(tree);
  tree.set_root(build_trs(tree, ty, TrsSide::LeftLower, n, n, base,
                          std::nullopt));
  return tree;
}

}  // namespace ndf
