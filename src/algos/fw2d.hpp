// Floyd-Warshall all-pairs shortest paths via the cache-oblivious
// divide-and-conquer of Chowdhury-Ramachandran [23] (the "2D analog" of
// Claim 1, with parallel cache complexity Q*(N; M) = O(N^1.5/M^0.5) for
// N = n² input size).
//
// Four mutually recursive task types over the distance matrix D:
//   A(X)        — diagonal block, k-range = X's own rows;
//   B(X, U)     — row-panel update, X(i,j) = min(X(i,j), U(i,k)+X(k,j));
//   C(X, V)     — column-panel update, X(i,j) = min(X(i,j), X(i,k)+V(k,j));
//   D(X, U, V)  — disjoint update, X(i,j) = min(X(i,j), U(i,k)+V(k,j)).
//
// This module provides the NP-model composition (seq/par only), which is
// what the paper's Claim 1 measures (Q* is identical in NP and ND); the ND
// fire-table extension for FW2D is the "straightforward extension"
// mentioned in Sec. 3 and lives in fw2d_nd.* (see DESIGN.md E5/E2).
#pragma once

#include <optional>

#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

/// Builds the NP-model FW2D spawn tree over an n×n distance matrix.
/// Strands get kernels iff `D` is bound.
NodeId build_fw2d_np(SpawnTree& tree, std::size_t n, std::size_t base,
                     Matrix<double>* D);

/// Structure-only tree for analysis.
SpawnTree make_fw2d_tree(std::size_t n, std::size_t base);

/// Serial reference Floyd-Warshall (in place).
void fw2d_reference(Matrix<double>& D);

}  // namespace ndf
