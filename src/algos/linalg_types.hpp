// Fire types and rule tables for the dense linear-algebra algorithms of
// Sec. 2–3. The tables are derived from the block-level data flow of each
// algorithm (which quadrant each subtask reads/writes) and validated by the
// determinacy property tests; DESIGN.md records where they refine the
// arXiv text's tables (which contain several transcription typos and leave
// the transposed-operand variants implicit).
//
// Naming convention for the MM family. A "multiply task" is an 8-way MM
// node (fire of two 4-product groups), a q-split node, or a leaf; it reads
// A and B and accumulates into all of C. The pedigree shape alternates
// fire → par(group) → par(pair) → task, hence three mutually recursive
// types:
//   MMT: task → task, same C. Source's second k-half (its last writers)
//        gates the sink's first k-half:   { +(2) MMH -(1) }.
//   MMH: group → group, C partitioned positionally into pair rows:
//        { +(1) MMP -(1), +(2) MMP -(2) }.
//   MMP: pair → pair, positional C quadrants:
//        { +(1) MMT -(1), +(2) MMT -(2) }.
// (The paper's Eq. (1) writes the MM construct as two positional rules; at
// task-to-task granularity that leaves the source's second k-half and the
// sink's first unordered on shared C blocks, which the determinacy checker
// flags — the MMT/MMH/MMP split is the faithful repair.)
//
// Operand-flow types (X = a triangular solve's output, C = a multiply's
// output; "as A/B" = consumed as that operand of a multiply):
//   TM : left-TRS X → MMS as B       (paper Eq. (8), verified verbatim)
//   MB : MMS C → MMS as B
//   MT : MMS C → left-TRS as RHS     (+ MB/MMT side rules)
//   T2M2T : Eq. (5)                   { +(1)(2) MT -(1), +(2)(2) MT -(2) }
//   TM1: right-TRS X → MMS' as A     (the paper's "TM1" transposed variant)
//   MA : MMS C → MMS as A
//   MT1: MMS' C → right-TRS as RHS
//   T2M2T1: right-variant of Eq. (5)
//   TB : right-TRS X → MMS' as transposed-B
//   CT / CTMC / MC: Cholesky's tables over the above.
#pragma once

#include "nd/spawn_tree.hpp"

namespace ndf {

struct LinalgTypes {
  // MM family.
  FireType MMT, MMH, MMP;
  // Left triangular solve (T·X = B).
  FireType TM, T2M2T, MT, MB;
  // Right transposed solve (X·Lᵀ = B).
  FireType TM1, T2M2T1, MT1, MA, TB;
  // Cholesky.
  FireType CT, CTMC, MC;

  /// Registers all types and their rule tables in `tree.rules()`.
  static LinalgTypes install(SpawnTree& tree);
};

}  // namespace ndf
