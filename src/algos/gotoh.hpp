// Pairwise sequence alignment with affine gap cost (Gotoh [32]) in the ND
// model — the paper's footnote 3: "a similar recurrence applies to the
// pairwise sequence alignment with affine gap cost".
//
// Three DP tables over the same (i, j) grid:
//   M(i,j) — best score ending in a match/mismatch,
//   E(i,j) — best score ending in a gap in S (horizontal extension),
//   F(i,j) — best score ending in a gap in T (vertical extension).
// Every cell reads its west / north / north-west neighbours across the
// three tables, so the block-level dependence pattern is exactly LCS's
// (Eqs. 18–21): the LCS fire types HV/VH/H/V are reused unchanged, with a
// three-table kernel. Span: Θ(n) in ND vs Θ(n log n) in NP.
#pragma once

#include <optional>
#include <vector>

#include "algos/lcs.hpp"
#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

struct GotohParams {
  double match = 2.0;
  double mismatch = -1.0;
  double gap_open = -2.0;    ///< charged when a gap starts
  double gap_extend = -0.5;  ///< charged per gap column
};

struct GotohViews {
  const std::vector<int>* S = nullptr;
  const std::vector<int>* T = nullptr;
  Matrix<double>* M = nullptr;  ///< (n+1)×(n+1)
  Matrix<double>* E = nullptr;
  Matrix<double>* F = nullptr;
  GotohParams params;
};

/// Builds the alignment spawn tree over the n×n DP region using the LCS
/// fire types (install LcsTypes on the same tree first).
NodeId build_gotoh(SpawnTree& tree, const LcsTypes& ty, std::size_t n,
                   std::size_t base, const std::optional<GotohViews>& views);

/// Structure-only tree for analysis.
SpawnTree make_gotoh_tree(std::size_t n, std::size_t base);

/// Serial reference; initializes borders, fills all three tables, returns
/// the global alignment score M(n, n) ∨ E(n, n) ∨ F(n, n).
double gotoh_reference(const std::vector<int>& S, const std::vector<int>& T,
                       const GotohParams& p, Matrix<double>& M,
                       Matrix<double>& E, Matrix<double>& F);

/// Border initialization shared by the reference and the ND program.
void gotoh_init_borders(const GotohParams& p, Matrix<double>& M,
                        Matrix<double>& E, Matrix<double>& F);

}  // namespace ndf
