// Cholesky decomposition A = L·Lᵀ in the ND model (Sec. 3, Eq. 11, Fig. 9).
//
// The 2-way recursion per level:
//   L00 ← CHO(A00)                        (leading factor)
//   L10 ← TRS: L10·L00ᵀ = A10             (the paper's "TRS(L00, A10ᵀ)ᵀ")
//   A11 ← A11 − L10·L10ᵀ                  (symmetric down-date, MMS)
//   L11 ← CHO(A11)                        (trailing factor)
// composed as (CHO ~CT~> TRS) ~CTMC~> (MMS ~MC~> CHO) with the fire-rule
// tables in linalg_types.cpp. NP span is Θ(n log² n); ND span is Θ(n)
// (Eq. 12).
//
// The factor is produced in the lower triangle of A in place; the strict
// upper triangle is scratch (the MMS update writes it symmetrically).
#pragma once

#include <optional>

#include "algos/linalg_types.hpp"
#include "nd/spawn_tree.hpp"
#include "support/matrix.hpp"

namespace ndf {

/// Builds the Cholesky spawn tree over an n×n matrix; strands get kernels
/// iff `A` is bound.
NodeId build_cholesky(SpawnTree& tree, const LinalgTypes& ty, std::size_t n,
                      std::size_t base,
                      const std::optional<MatrixView<double>>& A);

/// Structure-only tree for analysis.
SpawnTree make_cholesky_tree(std::size_t n, std::size_t base);

/// Serial in-place reference (lower triangle).
void cholesky_reference(MatrixView<double> A);

}  // namespace ndf
