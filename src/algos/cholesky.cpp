#include "algos/cholesky.hpp"

#include <cmath>

#include "algos/matmul.hpp"
#include "algos/trs.hpp"

namespace ndf {

void cholesky_reference(MatrixView<double> A) {
  const std::size_t n = A.rows();
  NDF_CHECK(A.cols() == n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = A(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= A(j, k) * A(j, k);
    NDF_CHECK_MSG(d > 0.0, "matrix not positive definite at column " << j);
    const double l = std::sqrt(d);
    A(j, j) = l;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = A(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= A(i, k) * A(j, k);
      A(i, j) = acc / l;
    }
  }
}

namespace {

struct ChoBuilder {
  SpawnTree& t;
  const LinalgTypes& ty;
  std::size_t base;

  double leaf_work(std::size_t n) const {
    return double(n) * n * n / 3.0 + 1.0;
  }
  double task_size(std::size_t n) const { return 0.5 * double(n) * n + 1.0; }

  NodeId build(std::size_t n, const std::optional<MatrixView<double>>& A) {
    if (n <= base) {
      NodeId id;
      if (A) {
        MatrixView<double> Av = *A;
        id = t.strand(leaf_work(n), task_size(n), "cho",
                      [Av] { cholesky_reference(Av); });
        append_segments(t.node(id).reads, segments_of(Av));
        append_segments(t.node(id).writes, segments_of(Av));
      } else {
        id = t.strand(leaf_work(n), task_size(n), "cho");
      }
      return id;
    }

    const std::size_t nh = (n + 1) / 2, nl = n - nh;
    std::optional<MatrixView<double>> A00, A10, A11;
    std::optional<TrsViews> tv;
    std::optional<MmViews> mv;
    if (A) {
      A00 = A->block(0, 0, nh, nh);
      A10 = A->block(nh, 0, nl, nh);
      A11 = A->block(nh, nh, nl, nl);
      tv = TrsViews{*A00, *A10};           // L10·L00ᵀ = A10, in place
      mv = MmViews{*A10, *A10, *A11, true};  // A11 -= L10·L10ᵀ
    }

    const NodeId cho00 = build(nh, A00);
    const NodeId trs10 =
        build_trs(t, ty, TrsSide::RightLowerT, nh, nl, base, tv);
    const NodeId mms11 = build_mm(t, ty, nl, nh, nl, base, -1.0, mv);
    const NodeId cho11 = build(nl, A11);

    const NodeId left = t.fire(ty.CT, cho00, trs10);
    const NodeId right = t.fire(ty.MC, mms11, cho11);
    return t.fire(ty.CTMC, left, right, task_size(n), "CHO");
  }
};

}  // namespace

NodeId build_cholesky(SpawnTree& tree, const LinalgTypes& ty, std::size_t n,
                      std::size_t base,
                      const std::optional<MatrixView<double>>& A) {
  NDF_CHECK(n >= 1 && base >= 2);
  if (A) NDF_CHECK(A->rows() == n && A->cols() == n);
  ChoBuilder b{tree, ty, base};
  return b.build(n, A);
}

SpawnTree make_cholesky_tree(std::size_t n, std::size_t base) {
  SpawnTree tree;
  const LinalgTypes ty = LinalgTypes::install(tree);
  tree.set_root(build_cholesky(tree, ty, n, base, std::nullopt));
  return tree;
}

}  // namespace ndf
