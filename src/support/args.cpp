#include "support/args.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace ndf {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    NDF_CHECK_MSG(a.rfind("--", 0) == 0,
                  "unexpected positional argument '" << a << "'");
    const auto eq = a.find('=');
    if (eq == std::string::npos)
      kv_[a.substr(2)] = "true";
    else
      kv_[a.substr(2, eq - 2)] = a.substr(eq + 1);
  }
}

bool Args::has(const std::string& name) const { return kv_.count(name) > 0; }

std::vector<std::string> Args::names() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : kv_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string Args::get(const std::string& name, const std::string& dflt) const {
  const auto it = kv_.find(name);
  return it == kv_.end() ? dflt : it->second;
}

long long Args::get(const std::string& name, long long dflt) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return dflt;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  NDF_CHECK_MSG(end && *end == '\0',
                "flag --" << name << " is not an integer: " << it->second);
  return v;
}

double Args::get(const std::string& name, double dflt) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return dflt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  NDF_CHECK_MSG(end && *end == '\0',
                "flag --" << name << " is not a number: " << it->second);
  return v;
}

bool Args::get(const std::string& name, bool dflt) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return dflt;
  NDF_CHECK_MSG(it->second == "true" || it->second == "false",
                "flag --" << name << " is not a boolean: " << it->second);
  return it->second == "true";
}

}  // namespace ndf
