#include "support/fit.hpp"

#include <cmath>

#include "support/check.hpp"

namespace ndf {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  NDF_CHECK(xs.size() == ys.size());
  NDF_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  NDF_CHECK_MSG(denom != 0.0, "degenerate x values in fit");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;

  const double ybar = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

LinearFit fit_loglog(std::span<const double> xs, std::span<const double> ys) {
  NDF_CHECK(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    NDF_CHECK_MSG(xs[i] > 0 && ys[i] > 0, "log-log fit needs positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

std::vector<double> ratio(std::span<const double> ys,
                          std::span<const double> xs) {
  NDF_CHECK(xs.size() == ys.size());
  std::vector<double> r(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    NDF_CHECK(xs[i] != 0.0);
    r[i] = ys[i] / xs[i];
  }
  return r;
}

}  // namespace ndf
