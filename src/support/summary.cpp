#include "support/summary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace ndf {

Summary summarize(std::span<const double> xs) {
  NDF_CHECK_MSG(!xs.empty(), "summarize() needs a non-empty sample");
  Summary s;
  s.count = xs.size();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = sorted.size() % 2 == 1
                 ? sorted[sorted.size() / 2]
                 : 0.5 * (sorted[sorted.size() / 2 - 1] +
                          sorted[sorted.size() / 2]);
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / double(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double x : sorted) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / double(s.count - 1));
  }
  return s;
}

}  // namespace ndf
