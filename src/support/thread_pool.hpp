// A small reusable fixed-size thread pool: FIFO task queue, futures for
// results and exception propagation, drain-on-destruction semantics. This
// is the execution substrate of the parallel sweep engine (src/exp/sweep),
// but it is deliberately generic — any subsystem that wants to fan
// independent work across cores can own one.
//
// Semantics worth knowing:
//   - Tasks start in submission order (FIFO); with one worker the pool is
//     a strict serial executor, which tests exploit.
//   - A task's exception is captured into its future and rethrown by
//     future::get(); it never unwinds a worker thread.
//   - The destructor runs every task still queued, then joins. Queued work
//     is never silently dropped — a sweep that throws mid-fan-out can let
//     the pool go out of scope while tasks it no longer cares about are
//     pending, and they finish before any data they touch is destroyed.
//   - submit() after destruction has begun is a CheckError (it would race
//     the drain), not a silent no-op.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace ndf {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1; throws CheckError on 0 — a
  /// zero-size pool would deadlock every submit).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (every queued task runs), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `f` and returns the future of its result. The callable runs
  /// exactly once on some worker; exceptions surface from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only and std::function requires copyable
    // callables, so the task rides in a shared_ptr. The accounting guard
    // lives *inside* the packaged_task, so its stats update completes
    // before the future is satisfied: worker_stats() after wait_all()
    // counts every finished task, with no window where a waiter observes
    // the result but not the accounting.
    auto task = std::make_shared<std::packaged_task<R()>>(
        [this, fn = std::forward<F>(f)]() mutable -> R {
          const AccountingGuard guard(this);
          return fn();
        });
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Hardware concurrency clamped to >= 1 (the standard allows 0 for
  /// "unknown"). The default worker count for `--jobs=0` / unset.
  static std::size_t default_jobs();

  /// Per-worker self-profiling: wall-clock spent inside tasks and tasks
  /// executed, accumulated since construction. Everything not busy_s since
  /// the pool started is idle (queue waits + cv sleeps) — the imbalance
  /// signal `ndf_sweep --phase-times` prints per worker.
  struct WorkerStats {
    double busy_s = 0.0;
    std::size_t tasks = 0;
  };

  /// Snapshot of every worker's stats (index = worker). Taken under the
  /// queue lock; safe to call while tasks run, but a quiescent pool (after
  /// wait_all) gives exact totals.
  std::vector<WorkerStats> worker_stats();

 private:
  /// Times one task and books it to the executing worker on destruction —
  /// including when the task throws. Runs inside the packaged_task (see
  /// submit), which is what orders the update before future satisfaction.
  struct AccountingGuard {
    explicit AccountingGuard(ThreadPool* p)
        : pool(p), t0(std::chrono::steady_clock::now()) {}
    ~AccountingGuard();
    AccountingGuard(const AccountingGuard&) = delete;
    AccountingGuard& operator=(const AccountingGuard&) = delete;
    ThreadPool* pool;
    std::chrono::steady_clock::time_point t0;
  };

  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t worker);

  /// Index of the pool worker executing on this thread (set by
  /// worker_loop; SIZE_MAX on non-worker threads, where the guard books
  /// nothing).
  static thread_local std::size_t tls_worker_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<WorkerStats> stats_;  // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Waits for every future, then rethrows the first stored exception (in
/// submission order, so failures are reported deterministically). Waiting
/// on all before rethrowing matters: the caller's data must not be torn
/// down while sibling tasks still run.
template <typename T>
void wait_all(std::vector<std::future<T>>& futs) {
  for (auto& f : futs) f.wait();
  for (auto& f : futs) f.get();
}

/// Splits [0, n) into at most `chunks` contiguous ranges (sizes differing
/// by at most one) and submits one pool task per range; `body(begin, end)`
/// runs with begin < end. One task per *range* instead of per index is the
/// point: anything the body hoists out of its index loop (a reused
/// simulator core, scratch buffers) is amortized over the whole range.
/// Ranges are dequeued FIFO, so passing more chunks than workers trades
/// amortization span for dynamic load balance. Blocks until every range
/// completed; failures rethrow in submission (= index) order, after all
/// siblings finished with the caller's data (wait_all semantics).
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t n, std::size_t chunks,
                         Body&& body) {
  if (n == 0) return;
  chunks = std::min(std::max<std::size_t>(chunks, 1), n);
  const std::size_t base = n / chunks, extra = n % chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    futs.push_back(pool.submit([begin, end, &body] { body(begin, end); }));
    begin = end;
  }
  wait_all(futs);
}

}  // namespace ndf
