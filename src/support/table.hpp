// Console table printer used by the benchmark harness so every experiment
// prints the same aligned rows/series the paper's claims describe.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ndf {

/// A table cell: string, integer or double (doubles printed with %.4g).
using Cell = std::variant<std::string, long long, double>;

/// Column-aligned text table with an optional title.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with padded columns; also usable as CSV via to_csv().
  std::string to_string() const;
  std::string to_csv() const;

  void print(std::ostream& os) const;

  // Structured access (used by the bench harness's JSON mirror).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace ndf
