// Summary statistics over small samples (bench repetitions, per-unit
// durations): mean, median, min/max, standard deviation.
#pragma once

#include <span>

namespace ndf {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
};

/// Computes summary statistics; requires a non-empty sample.
Summary summarize(std::span<const double> xs);

}  // namespace ndf
