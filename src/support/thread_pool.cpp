#include "support/thread_pool.hpp"

#include <chrono>

namespace ndf {

ThreadPool::ThreadPool(std::size_t threads) {
  NDF_CHECK_MSG(threads >= 1,
                "thread pool needs at least one worker (got 0)");
  stats_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    NDF_CHECK_MSG(!stopping_, "submit on a thread pool being destroyed");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

thread_local std::size_t ThreadPool::tls_worker_ = std::size_t(-1);

ThreadPool::AccountingGuard::~AccountingGuard() {
  if (tls_worker_ == std::size_t(-1)) return;  // not on a pool worker
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Accounting rides the existing queue lock: one uncontended lock/unlock
  // per *task* (tasks are chunk-sized in the sweep), and worker_stats()
  // snapshots race-free under the same lock.
  std::lock_guard<std::mutex> lk(pool->mu_);
  pool->stats_[tls_worker_].busy_s += dt;
  ++pool->stats_[tls_worker_].tasks;
}

void ThreadPool::worker_loop(std::size_t worker) {
  tls_worker_ = worker;
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-destruction: exit only once the queue is empty, so every
      // task submitted before the destructor ran still executes.
      if (queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::size_t(hw);
}

}  // namespace ndf
