// Memory-footprint descriptors for strands.
//
// Builders that bind real matrix blocks to strands also record the byte
// ranges each strand reads and writes. Tests use these to verify the
// determinacy invariant of an elaborated DAG: any two strands with
// conflicting accesses (W∩W or W∩R) must be ordered by a dependence path —
// i.e. the fire rules expressed every true data dependency.
#pragma once

#include <cstdint>
#include <vector>

namespace ndf {

template <typename T>
class MatrixView;

/// Half-open range of addresses [lo, hi).
struct MemSegment {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;

  bool overlaps(const MemSegment& o) const { return lo < o.hi && o.lo < hi; }
};

/// True if any segment of `a` overlaps any segment of `b`.
inline bool segments_overlap(const std::vector<MemSegment>& a,
                             const std::vector<MemSegment>& b) {
  for (const auto& x : a)
    for (const auto& y : b)
      if (x.overlaps(y)) return true;
  return false;
}

/// Row-wise segments covered by a (possibly strided) matrix view.
template <typename T>
std::vector<MemSegment> segments_of(const MatrixView<T>& v) {
  std::vector<MemSegment> segs;
  segs.reserve(v.rows());
  for (std::size_t r = 0; r < v.rows(); ++r) {
    const T* row = &v(r, 0);
    segs.push_back(MemSegment{reinterpret_cast<std::uintptr_t>(row),
                              reinterpret_cast<std::uintptr_t>(row + v.cols())});
  }
  return segs;
}

/// Appends `more` onto `dst`.
inline void append_segments(std::vector<MemSegment>& dst,
                            const std::vector<MemSegment>& more) {
  dst.insert(dst.end(), more.begin(), more.end());
}

}  // namespace ndf
