// Least-squares fitting helpers used by the benchmark harness to check
// asymptotic shapes (e.g. that a measured span series grows like n, not
// n log n): we fit log y = a·log x + b and report the exponent a.
#pragma once

#include <span>
#include <vector>

namespace ndf {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y ≈ slope·x + intercept. Requires xs.size() ==
/// ys.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y ≈ C·x^slope by OLS in log-log space. All values must be > 0.
LinearFit fit_loglog(std::span<const double> xs, std::span<const double> ys);

/// Ratio series y_i / x_i, handy for "is this bounded by a constant" checks.
std::vector<double> ratio(std::span<const double> ys,
                          std::span<const double> xs);

}  // namespace ndf
