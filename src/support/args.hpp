// Minimal command-line flag parsing for the bench and example binaries:
// `--name=value` or `--flag` booleans; everything else is rejected so a
// typo'd sweep parameter fails loudly instead of silently benchmarking the
// default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ndf {

class Args {
 public:
  /// Parses argv; throws CheckError on malformed arguments.
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& dflt) const;
  long long get(const std::string& name, long long dflt) const;
  double get(const std::string& name, double dflt) const;
  bool get(const std::string& name, bool dflt) const;

  /// Names that were parsed but never queried — callers can warn on these.
  std::size_t size() const { return kv_.size(); }

  /// All parsed flag names, sorted — lets a binary reject flags it does
  /// not know instead of silently running defaults.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace ndf
