#include "support/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace ndf {

namespace {
std::string cell_to_string(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", std::get<double>(c));
  return buf;
}
}  // namespace

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<Cell> row) {
  NDF_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::vector<std::string>> grid;
  if (!header_.empty()) grid.push_back(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(cell_to_string(c));
    grid.push_back(std::move(r));
  }

  std::vector<std::size_t> width;
  for (const auto& r : grid) {
    if (width.size() < r.size()) width.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  for (std::size_t ri = 0; ri < grid.size(); ++ri) {
    const auto& r = grid[ri];
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << r[i];
      if (i + 1 < r.size())
        os << std::string(width[i] - r[i].size() + 2, ' ');
    }
    os << '\n';
    if (ri == 0 && !header_.empty()) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < width.size(); ++i)
        total += width[i] + (i + 1 < width.size() ? 2 : 0);
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << r[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(cell_to_string(c));
    emit(r);
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace ndf
