// Lightweight runtime checking for library invariants.
//
// NDF_CHECK is always on (it guards API misuse and structural invariants the
// rest of the library relies on); NDF_DCHECK compiles out in release builds
// and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ndf {

/// Thrown when a library invariant or API precondition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "NDF_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ndf

#define NDF_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::ndf::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NDF_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream ndf_os_;                                \
      ndf_os_ << msg;                                            \
      ::ndf::detail::check_fail(#expr, __FILE__, __LINE__, ndf_os_.str()); \
    }                                                            \
  } while (0)

#ifdef NDEBUG
#define NDF_DCHECK(expr) ((void)0)
#else
#define NDF_DCHECK(expr) NDF_CHECK(expr)
#endif
