// Deterministic random number generation for tests, workload generators and
// the randomized work-stealing scheduler. SplitMix64 seeds a xoshiro256**
// state; both are tiny, fast and reproducible across platforms.
#pragma once

#include <cstdint>

namespace ndf {

/// SplitMix64 — used to expand a user seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ndf
