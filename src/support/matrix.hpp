// Dense row-major matrix container plus non-owning block views.
//
// The divide-and-conquer algorithms in src/algos operate on quadrant views
// (A00, A01, ...) of a shared backing matrix, mirroring the in-place block
// decompositions in the paper (Eq. 2, Fig. 7, Fig. 9).
#pragma once

#include <cstddef>
#include <vector>

#include "support/check.hpp"

namespace ndf {

template <typename T>
class MatrixView;

/// Owning dense row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    NDF_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    NDF_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// View of the whole matrix.
  MatrixView<T> view() {
    return MatrixView<T>(data_.data(), rows_, cols_, cols_);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Non-owning view of a rectangular block of a row-major matrix.
///
/// Views are cheap to copy and support recursive quadrant splitting via
/// block(). The caller is responsible for keeping the backing storage alive.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::size_t rows, std::size_t cols, std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    NDF_DCHECK(cols <= stride);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  T* data() const { return data_; }

  T& operator()(std::size_t r, std::size_t c) const {
    NDF_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// Sub-block of extent (h, w) with top-left corner (r0, c0).
  MatrixView block(std::size_t r0, std::size_t c0, std::size_t h,
                   std::size_t w) const {
    NDF_CHECK_MSG(r0 + h <= rows_ && c0 + w <= cols_,
                  "block (" << r0 << "," << c0 << ")+" << h << "x" << w
                            << " out of " << rows_ << "x" << cols_);
    return MatrixView(data_ + r0 * stride_ + c0, h, w, stride_);
  }

  /// Quadrant helpers for even-sized square splits; q in {00,01,10,11}
  /// indexed by (row half, col half).
  MatrixView quadrant(int rhalf, int chalf) const {
    NDF_DCHECK(rows_ % 2 == 0 && cols_ % 2 == 0);
    const std::size_t hr = rows_ / 2, hc = cols_ / 2;
    return block(rhalf ? hr : 0, chalf ? hc : 0, hr, hc);
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace ndf
