# Empty dependencies file for bench_parallelizability.
# This may be replaced when dependencies are built.
