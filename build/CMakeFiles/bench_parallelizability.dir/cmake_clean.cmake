file(REMOVE_RECURSE
  "CMakeFiles/bench_parallelizability.dir/bench/bench_parallelizability.cpp.o"
  "CMakeFiles/bench_parallelizability.dir/bench/bench_parallelizability.cpp.o.d"
  "bench_parallelizability"
  "bench_parallelizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallelizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
