# Empty dependencies file for inspect_dag.
# This may be replaced when dependencies are built.
