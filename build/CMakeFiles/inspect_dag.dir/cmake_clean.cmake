file(REMOVE_RECURSE
  "CMakeFiles/inspect_dag.dir/examples/inspect_dag.cpp.o"
  "CMakeFiles/inspect_dag.dir/examples/inspect_dag.cpp.o.d"
  "inspect_dag"
  "inspect_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
