file(REMOVE_RECURSE
  "CMakeFiles/bench_pcc.dir/bench/bench_pcc.cpp.o"
  "CMakeFiles/bench_pcc.dir/bench/bench_pcc.cpp.o.d"
  "bench_pcc"
  "bench_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
