# Empty dependencies file for bench_pcc.
# This may be replaced when dependencies are built.
