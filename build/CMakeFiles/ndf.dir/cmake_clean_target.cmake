file(REMOVE_RECURSE
  "libndf.a"
)
