# Empty dependencies file for ndf.
# This may be replaced when dependencies are built.
