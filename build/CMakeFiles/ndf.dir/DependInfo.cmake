
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/cholesky.cpp" "CMakeFiles/ndf.dir/src/algos/cholesky.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/cholesky.cpp.o.d"
  "/root/repo/src/algos/fw1d.cpp" "CMakeFiles/ndf.dir/src/algos/fw1d.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/fw1d.cpp.o.d"
  "/root/repo/src/algos/fw2d.cpp" "CMakeFiles/ndf.dir/src/algos/fw2d.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/fw2d.cpp.o.d"
  "/root/repo/src/algos/gotoh.cpp" "CMakeFiles/ndf.dir/src/algos/gotoh.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/gotoh.cpp.o.d"
  "/root/repo/src/algos/lcs.cpp" "CMakeFiles/ndf.dir/src/algos/lcs.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/lcs.cpp.o.d"
  "/root/repo/src/algos/linalg_types.cpp" "CMakeFiles/ndf.dir/src/algos/linalg_types.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/linalg_types.cpp.o.d"
  "/root/repo/src/algos/lu.cpp" "CMakeFiles/ndf.dir/src/algos/lu.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/lu.cpp.o.d"
  "/root/repo/src/algos/matmul.cpp" "CMakeFiles/ndf.dir/src/algos/matmul.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/matmul.cpp.o.d"
  "/root/repo/src/algos/trs.cpp" "CMakeFiles/ndf.dir/src/algos/trs.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/algos/trs.cpp.o.d"
  "/root/repo/src/analysis/decompose.cpp" "CMakeFiles/ndf.dir/src/analysis/decompose.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/analysis/decompose.cpp.o.d"
  "/root/repo/src/analysis/determinacy.cpp" "CMakeFiles/ndf.dir/src/analysis/determinacy.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/analysis/determinacy.cpp.o.d"
  "/root/repo/src/analysis/ecc.cpp" "CMakeFiles/ndf.dir/src/analysis/ecc.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/analysis/ecc.cpp.o.d"
  "/root/repo/src/analysis/pcc.cpp" "CMakeFiles/ndf.dir/src/analysis/pcc.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/analysis/pcc.cpp.o.d"
  "/root/repo/src/nd/dot.cpp" "CMakeFiles/ndf.dir/src/nd/dot.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/dot.cpp.o.d"
  "/root/repo/src/nd/drs.cpp" "CMakeFiles/ndf.dir/src/nd/drs.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/drs.cpp.o.d"
  "/root/repo/src/nd/graph.cpp" "CMakeFiles/ndf.dir/src/nd/graph.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/graph.cpp.o.d"
  "/root/repo/src/nd/lower.cpp" "CMakeFiles/ndf.dir/src/nd/lower.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/lower.cpp.o.d"
  "/root/repo/src/nd/spawn_tree.cpp" "CMakeFiles/ndf.dir/src/nd/spawn_tree.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/spawn_tree.cpp.o.d"
  "/root/repo/src/nd/stats.cpp" "CMakeFiles/ndf.dir/src/nd/stats.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/stats.cpp.o.d"
  "/root/repo/src/nd/validate.cpp" "CMakeFiles/ndf.dir/src/nd/validate.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/nd/validate.cpp.o.d"
  "/root/repo/src/pmh/machine.cpp" "CMakeFiles/ndf.dir/src/pmh/machine.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/pmh/machine.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "CMakeFiles/ndf.dir/src/runtime/executor.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/runtime/executor.cpp.o.d"
  "/root/repo/src/sched/greedy_scheduler.cpp" "CMakeFiles/ndf.dir/src/sched/greedy_scheduler.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/greedy_scheduler.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "CMakeFiles/ndf.dir/src/sched/registry.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/registry.cpp.o.d"
  "/root/repo/src/sched/sb_scheduler.cpp" "CMakeFiles/ndf.dir/src/sched/sb_scheduler.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/sb_scheduler.cpp.o.d"
  "/root/repo/src/sched/serial_scheduler.cpp" "CMakeFiles/ndf.dir/src/sched/serial_scheduler.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/serial_scheduler.cpp.o.d"
  "/root/repo/src/sched/sim_core.cpp" "CMakeFiles/ndf.dir/src/sched/sim_core.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/sim_core.cpp.o.d"
  "/root/repo/src/sched/trace.cpp" "CMakeFiles/ndf.dir/src/sched/trace.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/trace.cpp.o.d"
  "/root/repo/src/sched/ws_scheduler.cpp" "CMakeFiles/ndf.dir/src/sched/ws_scheduler.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/sched/ws_scheduler.cpp.o.d"
  "/root/repo/src/support/args.cpp" "CMakeFiles/ndf.dir/src/support/args.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/support/args.cpp.o.d"
  "/root/repo/src/support/fit.cpp" "CMakeFiles/ndf.dir/src/support/fit.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/support/fit.cpp.o.d"
  "/root/repo/src/support/summary.cpp" "CMakeFiles/ndf.dir/src/support/summary.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/support/summary.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/ndf.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/ndf.dir/src/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
