# Empty dependencies file for bench_sb_scaling.
# This may be replaced when dependencies are built.
