file(REMOVE_RECURSE
  "CMakeFiles/bench_sb_scaling.dir/bench/bench_sb_scaling.cpp.o"
  "CMakeFiles/bench_sb_scaling.dir/bench/bench_sb_scaling.cpp.o.d"
  "bench_sb_scaling"
  "bench_sb_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sb_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
