file(REMOVE_RECURSE
  "CMakeFiles/test_trace_args.dir/tests/test_trace_args.cpp.o"
  "CMakeFiles/test_trace_args.dir/tests/test_trace_args.cpp.o.d"
  "test_trace_args"
  "test_trace_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
