# Empty dependencies file for test_trace_args.
# This may be replaced when dependencies are built.
