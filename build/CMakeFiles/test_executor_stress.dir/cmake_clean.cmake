file(REMOVE_RECURSE
  "CMakeFiles/test_executor_stress.dir/tests/test_executor_stress.cpp.o"
  "CMakeFiles/test_executor_stress.dir/tests/test_executor_stress.cpp.o.d"
  "test_executor_stress"
  "test_executor_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
