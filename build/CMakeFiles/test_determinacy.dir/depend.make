# Empty dependencies file for test_determinacy.
# This may be replaced when dependencies are built.
