file(REMOVE_RECURSE
  "CMakeFiles/test_determinacy.dir/tests/test_determinacy.cpp.o"
  "CMakeFiles/test_determinacy.dir/tests/test_determinacy.cpp.o.d"
  "test_determinacy"
  "test_determinacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
