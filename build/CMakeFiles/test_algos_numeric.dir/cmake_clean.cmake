file(REMOVE_RECURSE
  "CMakeFiles/test_algos_numeric.dir/tests/test_algos_numeric.cpp.o"
  "CMakeFiles/test_algos_numeric.dir/tests/test_algos_numeric.cpp.o.d"
  "test_algos_numeric"
  "test_algos_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
