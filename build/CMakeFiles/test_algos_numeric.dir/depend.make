# Empty dependencies file for test_algos_numeric.
# This may be replaced when dependencies are built.
