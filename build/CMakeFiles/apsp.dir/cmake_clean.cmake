file(REMOVE_RECURSE
  "CMakeFiles/apsp.dir/examples/apsp.cpp.o"
  "CMakeFiles/apsp.dir/examples/apsp.cpp.o.d"
  "apsp"
  "apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
