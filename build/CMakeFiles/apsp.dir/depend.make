# Empty dependencies file for apsp.
# This may be replaced when dependencies are built.
