# Empty dependencies file for test_drs.
# This may be replaced when dependencies are built.
