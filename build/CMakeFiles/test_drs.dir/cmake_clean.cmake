file(REMOVE_RECURSE
  "CMakeFiles/test_drs.dir/tests/test_drs.cpp.o"
  "CMakeFiles/test_drs.dir/tests/test_drs.cpp.o.d"
  "test_drs"
  "test_drs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
