# Empty dependencies file for bench_sb_vs_ws.
# This may be replaced when dependencies are built.
