file(REMOVE_RECURSE
  "CMakeFiles/bench_sb_vs_ws.dir/bench/bench_sb_vs_ws.cpp.o"
  "CMakeFiles/bench_sb_vs_ws.dir/bench/bench_sb_vs_ws.cpp.o.d"
  "bench_sb_vs_ws"
  "bench_sb_vs_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sb_vs_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
