file(REMOVE_RECURSE
  "CMakeFiles/bench_span_fw_lu.dir/bench/bench_span_fw_lu.cpp.o"
  "CMakeFiles/bench_span_fw_lu.dir/bench/bench_span_fw_lu.cpp.o.d"
  "bench_span_fw_lu"
  "bench_span_fw_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_span_fw_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
