# Empty dependencies file for bench_span_fw_lu.
# This may be replaced when dependencies are built.
