# Empty dependencies file for test_pmh.
# This may be replaced when dependencies are built.
