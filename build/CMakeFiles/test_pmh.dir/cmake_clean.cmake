file(REMOVE_RECURSE
  "CMakeFiles/test_pmh.dir/tests/test_pmh.cpp.o"
  "CMakeFiles/test_pmh.dir/tests/test_pmh.cpp.o.d"
  "test_pmh"
  "test_pmh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
