# Empty dependencies file for test_span.
# This may be replaced when dependencies are built.
