file(REMOVE_RECURSE
  "CMakeFiles/test_span.dir/tests/test_span.cpp.o"
  "CMakeFiles/test_span.dir/tests/test_span.cpp.o.d"
  "test_span"
  "test_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
