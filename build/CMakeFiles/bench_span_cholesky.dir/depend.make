# Empty dependencies file for bench_span_cholesky.
# This may be replaced when dependencies are built.
