file(REMOVE_RECURSE
  "CMakeFiles/bench_span_cholesky.dir/bench/bench_span_cholesky.cpp.o"
  "CMakeFiles/bench_span_cholesky.dir/bench/bench_span_cholesky.cpp.o.d"
  "bench_span_cholesky"
  "bench_span_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_span_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
