# Empty dependencies file for test_spawn_tree.
# This may be replaced when dependencies are built.
