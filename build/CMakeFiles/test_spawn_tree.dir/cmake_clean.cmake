file(REMOVE_RECURSE
  "CMakeFiles/test_spawn_tree.dir/tests/test_spawn_tree.cpp.o"
  "CMakeFiles/test_spawn_tree.dir/tests/test_spawn_tree.cpp.o.d"
  "test_spawn_tree"
  "test_spawn_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spawn_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
