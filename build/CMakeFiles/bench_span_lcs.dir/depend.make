# Empty dependencies file for bench_span_lcs.
# This may be replaced when dependencies are built.
