file(REMOVE_RECURSE
  "CMakeFiles/bench_span_lcs.dir/bench/bench_span_lcs.cpp.o"
  "CMakeFiles/bench_span_lcs.dir/bench/bench_span_lcs.cpp.o.d"
  "bench_span_lcs"
  "bench_span_lcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_span_lcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
