# Empty dependencies file for sequence_alignment.
# This may be replaced when dependencies are built.
