file(REMOVE_RECURSE
  "CMakeFiles/sequence_alignment.dir/examples/sequence_alignment.cpp.o"
  "CMakeFiles/sequence_alignment.dir/examples/sequence_alignment.cpp.o.d"
  "sequence_alignment"
  "sequence_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
