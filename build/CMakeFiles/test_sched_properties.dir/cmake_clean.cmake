file(REMOVE_RECURSE
  "CMakeFiles/test_sched_properties.dir/tests/test_sched_properties.cpp.o"
  "CMakeFiles/test_sched_properties.dir/tests/test_sched_properties.cpp.o.d"
  "test_sched_properties"
  "test_sched_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
