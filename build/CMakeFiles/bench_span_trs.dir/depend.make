# Empty dependencies file for bench_span_trs.
# This may be replaced when dependencies are built.
