file(REMOVE_RECURSE
  "CMakeFiles/bench_span_trs.dir/bench/bench_span_trs.cpp.o"
  "CMakeFiles/bench_span_trs.dir/bench/bench_span_trs.cpp.o.d"
  "bench_span_trs"
  "bench_span_trs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_span_trs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
