# Empty dependencies file for bench_sb_bounds.
# This may be replaced when dependencies are built.
