file(REMOVE_RECURSE
  "CMakeFiles/bench_sb_bounds.dir/bench/bench_sb_bounds.cpp.o"
  "CMakeFiles/bench_sb_bounds.dir/bench/bench_sb_bounds.cpp.o.d"
  "bench_sb_bounds"
  "bench_sb_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sb_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
