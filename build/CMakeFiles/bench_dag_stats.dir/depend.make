# Empty dependencies file for bench_dag_stats.
# This may be replaced when dependencies are built.
