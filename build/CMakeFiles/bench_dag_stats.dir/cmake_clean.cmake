file(REMOVE_RECURSE
  "CMakeFiles/bench_dag_stats.dir/bench/bench_dag_stats.cpp.o"
  "CMakeFiles/bench_dag_stats.dir/bench/bench_dag_stats.cpp.o.d"
  "bench_dag_stats"
  "bench_dag_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
