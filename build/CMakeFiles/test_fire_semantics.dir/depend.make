# Empty dependencies file for test_fire_semantics.
# This may be replaced when dependencies are built.
