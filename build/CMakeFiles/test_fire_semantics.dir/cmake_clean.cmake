file(REMOVE_RECURSE
  "CMakeFiles/test_fire_semantics.dir/tests/test_fire_semantics.cpp.o"
  "CMakeFiles/test_fire_semantics.dir/tests/test_fire_semantics.cpp.o.d"
  "test_fire_semantics"
  "test_fire_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fire_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
